//! # asterix-rs — workspace umbrella
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! (Cargo requires them to belong to a package); the system itself lives in
//! the `crates/` workspace members. Re-exports below give examples and
//! integration tests one import root.
//!
//! Start with [`asterixdb::Instance`] — see the README and
//! `examples/quickstart.rs`.

pub use asterix_adm as adm;
pub use asterix_algebricks as algebricks;
pub use asterix_aql as aql;
pub use asterix_external as external;
pub use asterix_feeds as feeds;
pub use asterix_hyracks as hyracks;
pub use asterix_metadata as metadata;
pub use asterix_storage as storage;
pub use asterix_txn as txn;
pub use asterixdb;
