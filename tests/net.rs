//! The network front end, end to end over loopback TCP: authenticated
//! prepared execution bit-identical to the in-process API, per-connection
//! session isolation (both over the wire and for plain in-process
//! threads), malformed-frame robustness, a concurrent soak with
//! disconnect-mid-query cleanup, and graceful shutdown that drains
//! in-flight queries while rejecting new connects with a typed error.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use asterix_adm::Value;
use asterix_net::{Client, ErrorCode, NetError, Server, ServerConfig, WireResult};
use asterix_obs::MetricValue;
use asterixdb::{ClusterConfig, Instance};

fn counter(ins: &Instance, name: &str) -> u64 {
    for (n, v) in ins.metrics().snapshot() {
        if n == name {
            if let MetricValue::Counter(c) = v {
                return c;
            }
        }
    }
    panic!("no counter named {name}");
}

fn adm_bytes(rows: &[Value]) -> Vec<Vec<u8>> {
    rows.iter().map(asterix_adm::serde::encode).collect()
}

/// A two-dataverse instance: `NetA.Items` and `NetB.Items` share a dataset
/// name but hold distinguishable rows, so any cross-session `USE` leak
/// shows up as wrong data, not an error.
fn two_dataverse_instance() -> (Arc<Instance>, tempfile::TempDir) {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = Instance::open(ClusterConfig::small(dir.path().join("db"))).unwrap();
    for (dv, tag) in [("NetA", 1000i64), ("NetB", 2000i64)] {
        instance
            .execute(&format!(
                r#"
            create dataverse {dv};
            use dataverse {dv};
            create type ItemType as open {{ id: int64 }};
            create dataset Items(ItemType) primary key id;
        "#
            ))
            .unwrap();
        for i in 1..=20i64 {
            instance
                .execute(&format!(
                    r#"use dataverse {dv};
                    insert into dataset Items ({{ "id": {i}, "tag": {} }});"#,
                    tag + i
                ))
                .unwrap();
        }
    }
    (instance, dir)
}

/// Satellite regression: two in-process threads, each with its own
/// session, resolving the same-named dataset in different dataverses.
/// Before the per-session refactor the instance-global `RwLock<Session>`
/// made one thread's `USE` change the other's current dataverse
/// mid-statement.
#[test]
fn in_process_sessions_are_isolated() {
    let (instance, _dir) = two_dataverse_instance();
    let mut threads = Vec::new();
    for (dv, base) in [("NetA", 1000i64), ("NetB", 2000i64)] {
        let ins = Arc::clone(&instance);
        threads.push(std::thread::spawn(move || {
            let sess = ins.new_session();
            for round in 0..30 {
                // Re-issuing USE every round maximizes interleaving churn.
                ins.execute_in(&sess, &format!("use dataverse {dv}")).unwrap();
                let rows = ins
                    .query_in(&sess, "for $x in dataset Items order by $x.id return $x.tag")
                    .unwrap();
                assert_eq!(rows.len(), 20, "round {round} in {dv}");
                for (i, v) in rows.iter().enumerate() {
                    assert_eq!(
                        v.as_i64(),
                        Some(base + i as i64 + 1),
                        "round {round}: thread for {dv} saw foreign rows"
                    );
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(instance.active_sessions(), 0, "sessions leaked after threads exited");
}

/// The ISSUE acceptance path: authenticated client prepares once and
/// executes repeatedly with different parameters, bit-identical to
/// `Instance::execute_prepared`; a second concurrent client's `USE` does
/// not move the first client's session.
#[test]
fn loopback_prepare_execute_bit_identity_and_use_isolation() {
    let (instance, _dir) = two_dataverse_instance();
    let server = Server::start(
        Arc::clone(&instance),
        ServerConfig { secret: Some("hunter2".into()), ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    // Wrong secret: typed Auth error, not a hang or a bare disconnect.
    match Client::connect(addr, Some("wrong")) {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Auth),
        other => panic!("expected Auth error, got {other:?}"),
    }
    // Missing secret too.
    match Client::connect(addr, None) {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Auth),
        other => panic!("expected Auth error, got {other:?}"),
    }

    let mut c1 = Client::connect(addr, Some("hunter2")).unwrap();
    c1.execute("use dataverse NetA").unwrap();
    let stmt = c1.prepare("for $x in dataset Items where $x.id = 3 return $x.tag").unwrap();
    assert_eq!(stmt.param_count, 1);

    // The in-process reference: same prepared statement, session pinned to
    // the same dataverse.
    let reference =
        instance.prepare("for $x in dataset Items where $x.id = 3 return $x.tag").unwrap();
    let ref_sess = instance.new_session();
    instance.execute_in(&ref_sess, "use dataverse NetA").unwrap();

    let mut c2 = Client::connect(addr, Some("hunter2")).unwrap();
    for i in 1..=20i64 {
        // A second client keeps yanking its own session around; c1 must
        // not notice.
        c2.execute("use dataverse NetB").unwrap();
        let wire = c1.execute_prepared(&stmt, &[Value::Int64(i)]).unwrap();
        let local =
            instance.execute_prepared_in(&ref_sess, &reference, &[Value::Int64(i)]).unwrap();
        assert_eq!(adm_bytes(&wire), adm_bytes(&local), "param {i}: wire != in-process");
        assert_eq!(wire.len(), 1);
        assert_eq!(wire[0].as_i64(), Some(1000 + i), "param {i} resolved in wrong dataverse");
    }
    // c2 really is in NetB.
    let c2_rows = c2.query("for $x in dataset Items where $x.id = 3 return $x.tag").unwrap();
    assert_eq!(c2_rows[0].as_i64(), Some(2003));

    // Execute's full statement-result shape over the wire.
    let results = c1.execute(r#"insert into dataset Items ({ "id": 21, "tag": 1021 });"#).unwrap();
    assert_eq!(results, vec![WireResult::Count(1)]);

    // net.* metrics flow through the registry and over the wire.
    let json = c1.metrics_json().unwrap();
    assert!(json.contains("\"net.requests\""), "metrics JSON missing net.*: {json}");
    assert!(counter(&instance, "net.requests") > 0);
    assert!(counter(&instance, "net.bytes_in") > 0);
    assert!(counter(&instance, "net.bytes_out") > 0);

    c1.close().unwrap();
    drop(c2);
    drop(ref_sess);
    server.shutdown();
    assert_eq!(instance.active_sessions(), 0, "server leaked sessions");
}

fn raw_connect(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

fn read_error_frame(s: &mut TcpStream) -> (u16, String) {
    let mut head = [0u8; 5];
    s.read_exact(&mut head).unwrap();
    let len = u32::from_be_bytes([head[0], head[1], head[2], head[3]]) as usize;
    assert_eq!(head[4], 0xEE, "expected an Error frame");
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).unwrap();
    let code = u16::from_be_bytes([payload[0], payload[1]]);
    (code, String::from_utf8_lossy(&payload[2..]).into_owned())
}

/// Satellite: the decoder's `max_frame_bytes` guard and general
/// malformed-input robustness — oversized, truncated, and garbage frames
/// produce typed protocol errors or clean disconnects, and the server
/// stays up for well-behaved clients throughout.
#[test]
fn malformed_frames_rejected_cleanly() {
    let (instance, _dir) = two_dataverse_instance();
    let server = Server::start(
        Arc::clone(&instance),
        ServerConfig { max_frame_bytes: 4096, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    // Oversized length prefix: typed FrameTooLarge before any allocation.
    let mut s = raw_connect(addr);
    s.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0x01]).unwrap();
    let (code, msg) = read_error_frame(&mut s);
    assert_eq!(ErrorCode::from_u16(code), ErrorCode::FrameTooLarge, "{msg}");
    drop(s);

    // A frame just over the limit is rejected; at the limit is fine.
    let mut s = raw_connect(addr);
    let mut frame = Vec::new();
    frame.extend_from_slice(&4097u32.to_be_bytes());
    frame.push(0x01);
    frame.extend_from_slice(&vec![0u8; 4097]);
    s.write_all(&frame).unwrap();
    let (code, _) = read_error_frame(&mut s);
    assert_eq!(ErrorCode::from_u16(code), ErrorCode::FrameTooLarge);
    drop(s);

    // Truncated frame then hangup: server must treat it as a clean loss.
    let mut s = raw_connect(addr);
    s.write_all(&[0x00, 0x00, 0x00, 0x10, 0x01, 0xAB]).unwrap();
    drop(s);

    // Skipping the handshake: first non-Hello frame is a typed Auth error.
    let mut s = raw_connect(addr);
    let mut frame = Vec::new();
    let aql = b"for $x in [1] return $x";
    frame.extend_from_slice(&(aql.len() as u32).to_be_bytes());
    frame.push(0x02);
    frame.extend_from_slice(aql);
    s.write_all(&frame).unwrap();
    let (code, _) = read_error_frame(&mut s);
    assert_eq!(ErrorCode::from_u16(code), ErrorCode::Auth);
    drop(s);

    // Unknown opcode after a valid handshake.
    let mut c = Client::connect(addr, None).unwrap();
    // (reach under the client: a garbage opcode via a raw socket instead)
    let mut s = raw_connect(addr);
    let mut hello = Vec::new();
    hello.extend_from_slice(&5u32.to_be_bytes());
    hello.push(0x01);
    hello.push(1); // protocol version
    hello.extend_from_slice(&0u32.to_be_bytes()); // empty secret
    s.write_all(&hello).unwrap();
    let mut head = [0u8; 5];
    s.read_exact(&mut head).unwrap();
    let mut banner = vec![0u8; u32::from_be_bytes([head[0], head[1], head[2], head[3]]) as usize];
    s.read_exact(&mut banner).unwrap();
    s.write_all(&[0x00, 0x00, 0x00, 0x00, 0x7F]).unwrap();
    let (code, _) = read_error_frame(&mut s);
    assert_eq!(ErrorCode::from_u16(code), ErrorCode::Protocol);
    drop(s);

    // Pure garbage hammering: random-ish byte blobs, all answered with an
    // error frame or a clean close — never a hang.
    for seed in 0u8..10 {
        let mut s = raw_connect(addr);
        let blob: Vec<u8> = (0..64).map(|i| seed.wrapping_mul(31).wrapping_add(i)).collect();
        let _ = s.write_all(&blob);
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink); // bounded by the read timeout
        drop(s);
    }

    // Through all of that, a well-behaved client still gets service.
    c.execute("use dataverse NetA").unwrap();
    let rows = c.query("for $x in dataset Items where $x.id = 1 return $x.tag").unwrap();
    assert_eq!(rows[0].as_i64(), Some(1001));
    assert!(counter(&instance, "net.wire_errors") >= 4);
    c.close().unwrap();
    server.shutdown();
    assert_eq!(instance.active_sessions(), 0);
}

fn hello_bytes() -> Vec<u8> {
    let mut hello = Vec::new();
    hello.extend_from_slice(&5u32.to_be_bytes());
    hello.push(0x01);
    hello.push(1); // protocol version
    hello.extend_from_slice(&0u32.to_be_bytes()); // empty secret
    hello
}

fn read_raw_frame(s: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut head = [0u8; 5];
    s.read_exact(&mut head).unwrap();
    let len = u32::from_be_bytes([head[0], head[1], head[2], head[3]]) as usize;
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).unwrap();
    (head[4], payload)
}

/// Regression: the server reads with a 100 ms idle tick, and frame reads
/// must *resume* across those ticks. A client whose bytes arrive with
/// longer gaps (normal on WAN or congested links) was previously desynced
/// — partial header bytes were discarded on each tick — or disconnected
/// with "truncated frame payload" when the gap fell mid-payload.
#[test]
fn trickling_client_survives_read_timeout_ticks() {
    let (instance, _dir) = two_dataverse_instance();
    let server = Server::start(Arc::clone(&instance), ServerConfig::default()).unwrap();
    let mut s = raw_connect(server.local_addr());
    s.set_nodelay(true).unwrap();

    // Dribble the handshake one byte per 130 ms: every byte lands in a
    // different server read tick.
    for b in hello_bytes() {
        s.write_all(&[b]).unwrap();
        std::thread::sleep(Duration::from_millis(130));
    }
    let (op, _banner) = read_raw_frame(&mut s);
    assert_eq!(op, 0x80, "expected Ok banner after a trickled Hello");

    // An Execute frame: header trickled bytewise, payload split around a
    // >tick pause (the old mid-payload read_exact path disconnected here).
    let aql: &[u8] = b"use dataverse NetA; for $x in dataset Items where $x.id = 2 return $x.tag";
    let mut head = Vec::new();
    head.extend_from_slice(&(aql.len() as u32).to_be_bytes());
    head.push(0x02);
    for b in head {
        s.write_all(&[b]).unwrap();
        std::thread::sleep(Duration::from_millis(130));
    }
    let (first, second) = aql.split_at(aql.len() / 2);
    s.write_all(first).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    s.write_all(second).unwrap();

    let (op, payload) = read_raw_frame(&mut s);
    assert_eq!(op, 0x81, "expected Results for the trickled Execute");
    let results = asterix_net::proto::decode_results(&payload).unwrap();
    let Some(WireResult::Rows(rows)) = results.last() else { panic!("expected rows") };
    assert_eq!(rows[0].as_i64(), Some(1002), "trickled query returned wrong data");

    drop(s);
    server.shutdown();
    assert_eq!(instance.active_sessions(), 0);
}

/// The per-connection prepared-handle map is capped: beyond
/// `max_prepared_per_conn` the server answers `Prepare` with a typed
/// PreparedLimit error instead of growing without bound, and the
/// connection (and its existing handles) keep working.
#[test]
fn prepared_statement_cap_is_enforced() {
    let (instance, _dir) = two_dataverse_instance();
    let server = Server::start(
        Arc::clone(&instance),
        ServerConfig { max_prepared_per_conn: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr(), None).unwrap();
    c.execute("use dataverse NetA").unwrap();
    let first = c.prepare("for $x in dataset Items where $x.id = 1 return $x.tag").unwrap();
    c.prepare("for $x in dataset Items order by $x.id return $x.id").unwrap();
    match c.prepare("for $x in dataset Items return $x") {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::PreparedLimit),
        other => panic!("expected PreparedLimit, got {other:?}"),
    }
    // Still a healthy connection: earlier handles execute fine.
    let rows = c.execute_prepared(&first, &[Value::Int64(5)]).unwrap();
    assert_eq!(rows[0].as_i64(), Some(1005));
    c.close().unwrap();
    server.shutdown();
    assert_eq!(instance.active_sessions(), 0);
}

/// Regression: a client that fires a query with a large reply and then
/// stops reading (full TCP window) used to wedge its worker in `write_all`
/// forever — and `shutdown()`, whose post-grace drain had no deadline,
/// with it. With a socket write timeout and a bounded abandon window,
/// shutdown must return promptly.
#[test]
fn shutdown_not_wedged_by_client_that_stops_reading() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = Instance::open(ClusterConfig::small(dir.path().join("db"))).unwrap();
    instance
        .execute(
            r#"
        create dataverse S;
        use dataverse S;
        create type T as open { id: int64, pad: string };
        create dataset Wide(T) primary key id;
    "#,
        )
        .unwrap();
    // 100 rows x 2 KiB pad: the cross join's ~20 MB reply dwarfs any
    // loopback socket buffer, so the worker's write_all must block.
    for start in (0..100i64).step_by(50) {
        let objs: Vec<String> = (start..start + 50)
            .map(|i| format!("{{ \"id\": {i}, \"pad\": \"{}\" }}", "x".repeat(2048)))
            .collect();
        instance
            .execute(&format!("use dataverse S; insert into dataset Wide ([{}]);", objs.join(", ")))
            .unwrap();
    }
    let server = Server::start(
        Arc::clone(&instance),
        ServerConfig {
            shutdown_grace: Duration::from_millis(200),
            write_timeout: Duration::from_millis(250),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut s = raw_connect(server.local_addr());
    s.write_all(&hello_bytes()).unwrap();
    let (op, _banner) = read_raw_frame(&mut s);
    assert_eq!(op, 0x80);
    let aql: &[u8] =
        b"use dataverse S; for $a in dataset Wide for $b in dataset Wide return $a.pad";
    let mut frame = Vec::new();
    frame.extend_from_slice(&(aql.len() as u32).to_be_bytes());
    frame.push(0x02);
    frame.extend_from_slice(aql);
    s.write_all(&frame).unwrap();
    // Never read the reply. Wait until the server starts writing it (bytes
    // become peekable on our side), i.e. the worker left the job and is in
    // the write path.
    let mut peek = [0u8; 1];
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match s.peek(&mut peek) {
            Ok(n) if n > 0 => break,
            _ => {
                assert!(Instant::now() < deadline, "reply never started");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    let t0 = Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown took {:?} with a non-reading client",
        t0.elapsed()
    );
    drop(s);
    // The worker exits on its own once its write times out.
    let deadline = Instant::now() + Duration::from_secs(10);
    while instance.active_sessions() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(instance.active_sessions(), 0, "wedged worker leaked its session");
}

/// Satellite: concurrent loopback soak. N clients hammer one prepared
/// statement with rotating parameters; results stay bit-identical to the
/// in-process reference, the plan cache keeps hitting, and after every
/// client disconnects — one of them mid-query — nothing leaks: no
/// sessions, no RM grants, no jobs, no spill files.
#[test]
fn concurrent_soak_hits_plan_cache_and_leaks_nothing() {
    let (instance, _dir) = two_dataverse_instance();
    let server = Server::start(Arc::clone(&instance), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // In-process reference rows, one per parameter value.
    let ref_sess = instance.new_session();
    instance.execute_in(&ref_sess, "use dataverse NetA").unwrap();
    let reference =
        instance.prepare("for $x in dataset Items where $x.id = 7 return $x.tag").unwrap();
    let expected: Vec<Vec<Vec<u8>>> = (1..=20i64)
        .map(|i| {
            adm_bytes(
                &instance.execute_prepared_in(&ref_sess, &reference, &[Value::Int64(i)]).unwrap(),
            )
        })
        .collect();

    let hits_before = counter(&instance, "compile.plan_cache.hits");
    let n_clients = 4;
    let per_client = 25;
    let mut threads = Vec::new();
    for t in 0..n_clients {
        let addr = addr;
        let expected = expected.clone();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr, None).unwrap();
            c.execute("use dataverse NetA").unwrap();
            let stmt = c.prepare("for $x in dataset Items where $x.id = 7 return $x.tag").unwrap();
            for k in 0..per_client {
                let i = ((t + k) % 20) as i64 + 1;
                let rows = c.execute_prepared(&stmt, &[Value::Int64(i)]).unwrap();
                assert_eq!(adm_bytes(&rows), expected[(i - 1) as usize], "client {t} iter {k}");
            }
            c.close().unwrap();
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let hits_after = counter(&instance, "compile.plan_cache.hits");
    assert!(
        hits_after >= hits_before + (n_clients * per_client - n_clients) as u64,
        "prepared soak should hit the plan cache: {hits_before} -> {hits_after}"
    );

    // Now the rude client: handshakes raw, fires a heavy query, and slams
    // the connection mid-query without reading the reply.
    {
        let mut s = raw_connect(addr);
        let mut hello = Vec::new();
        hello.extend_from_slice(&5u32.to_be_bytes());
        hello.push(0x01);
        hello.push(1); // protocol version
        hello.extend_from_slice(&0u32.to_be_bytes()); // empty secret
        s.write_all(&hello).unwrap();
        let mut head = [0u8; 5];
        s.read_exact(&mut head).unwrap();
        let mut banner =
            vec![0u8; u32::from_be_bytes([head[0], head[1], head[2], head[3]]) as usize];
        s.read_exact(&mut banner).unwrap();
        let aql = br#"use dataverse NetA;
            for $a in dataset Items for $b in dataset Items for $c in dataset Items
            where $a.tag = $b.tag and $b.tag = $c.tag return $a.tag"#;
        let mut frame = Vec::new();
        frame.extend_from_slice(&(aql.len() as u32).to_be_bytes());
        frame.push(0x02);
        frame.extend_from_slice(aql);
        s.write_all(&frame).unwrap();
        // Give the statement a moment to reach execution, then vanish.
        std::thread::sleep(Duration::from_millis(20));
        drop(s);
    }
    // The worker finishes (or fails to write the reply), notices the dead
    // socket, and tears the session down.
    drop(ref_sess);
    let deadline = Instant::now() + Duration::from_secs(10);
    while instance.active_sessions() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(instance.active_sessions(), 0, "disconnect leaked a session");
    assert!(instance.list_jobs().is_empty(), "disconnect leaked a job");
    assert_eq!(instance.resource_manager().stats().mem_granted_bytes.get(), 0);
    let pid = std::process::id();
    let leaked: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| {
            n.starts_with(&format!("asterix-sort-{pid}-"))
                || n.starts_with(&format!("asterix-join-{pid}-"))
        })
        .collect();
    assert!(leaked.is_empty(), "spill files leaked: {leaked:?}");
    server.shutdown();
}

/// Acceptance: graceful shutdown lets the in-flight query finish and
/// answers new connects with a typed ServerShutdown error while draining.
#[test]
fn graceful_shutdown_drains_in_flight_and_rejects_new() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = Instance::open(ClusterConfig::small(dir.path().join("db"))).unwrap();
    // A self-join fan-out big enough to reliably straddle the shutdown
    // call (the workload suite's proven "still running when poked" shape).
    let rows = 900usize;
    instance
        .execute(
            r#"
        create dataverse W;
        use dataverse W;
        create type R as open { id: int64, grp: int64, pad: string };
        create dataset Big(R) primary key id;
    "#,
        )
        .unwrap();
    for start in (0..rows).step_by(300) {
        let objs: Vec<String> = (start..(start + 300).min(rows))
            .map(|i| {
                format!("{{ \"id\": {i}, \"grp\": {}, \"pad\": \"{}\" }}", i % 3, "x".repeat(40))
            })
            .collect();
        instance.execute(&format!("insert into dataset Big ([{}]);", objs.join(", "))).unwrap();
    }

    let server = Arc::new(
        Server::start(
            Arc::clone(&instance),
            ServerConfig { shutdown_grace: Duration::from_secs(60), ..ServerConfig::default() },
        )
        .unwrap(),
    );
    let addr = server.local_addr();

    let runner = std::thread::spawn(move || {
        let mut c = Client::connect(addr, None).unwrap();
        c.execute("use dataverse W").unwrap();
        c.query(
            r#"for $a in dataset Big
               for $b in dataset Big
               where $a.grp = $b.grp
               order by $a.id
               return $a.id"#,
        )
    });
    // Let the query reach execution.
    let t0 = Instant::now();
    while instance.list_jobs().is_empty() && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(!instance.list_jobs().is_empty(), "in-flight query never started");

    let shutter = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.shutdown())
    };
    // While draining, a new connect is answered with a typed error. The
    // drain window is held open by the in-flight query, so the typed path
    // is what we must see (not a refused connection). Poll rather than
    // sleep a fixed delay: a connect that lands before the shutter thread
    // sets the drain flag simply succeeds — drop it and retry.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Client::connect(addr, None) {
            Err(NetError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::ServerShutdown);
                break;
            }
            Ok(early) => drop(early),
            Err(other) => panic!("expected typed ServerShutdown, got {other:?}"),
        }
        assert!(Instant::now() < deadline, "never saw the typed drain rejection");
        std::thread::sleep(Duration::from_millis(1));
    }

    // The in-flight query drains to completion with correct results.
    let got = runner.join().unwrap().unwrap();
    assert_eq!(got.len(), 3 * (rows / 3) * (rows / 3));
    assert_eq!(got[0].as_i64(), Some(0));
    shutter.join().unwrap();
    assert_eq!(instance.active_sessions(), 0);
    assert!(instance.list_jobs().is_empty());
}
