//! Feature-coverage integration tests: the §5.2 pilot-driven features
//! (temporal binning, positional variables), keyword-index access paths,
//! `load`, and the simulated-DFS external adaptor.

use asterix_adm::Value;
use asterixdb::{ClusterConfig, Instance};

fn instance(dir: &std::path::Path) -> std::sync::Arc<Instance> {
    Instance::open(ClusterConfig::small(dir)).unwrap()
}

#[test]
fn temporal_binning_windowed_aggregation() {
    // §5.2's behavioral-analysis pilot "led us to add support for temporal
    // binning, as time-windowed aggregation was needed."
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse W;
        use dataverse W;
        create type E as open { id: int64, at: datetime, hr: int64 };
        create dataset Events(E) primary key id;
    "#,
    )
    .unwrap();
    // Heart-rate-style samples every 20 minutes over 4 hours.
    for i in 0..12i64 {
        let minutes = i * 20;
        let (h, m) = (minutes / 60, minutes % 60);
        ins.execute(&format!(
            "insert into dataset Events ({{ \"id\": {i}, \
             \"at\": datetime(\"2014-03-01T{h:02}:{m:02}:00\"), \"hr\": {} }});",
            60 + i
        ))
        .unwrap();
    }
    // Hourly windows via interval-bin, averaged per window.
    let rows = ins
        .query(
            r#"for $e in dataset Events
               let $bin := interval-bin($e.at, datetime("2014-03-01T00:00:00"),
                                        day-time-duration("PT1H"))
               group by $w := get-interval-start($bin) with $e
               let $avg := avg(for $x in $e return $x.hr)
               order by $w
               return { "window": $w, "avg-hr": $avg };"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 4, "4 hourly windows");
    // First window holds samples 0,1,2 → avg hr = 61.
    assert_eq!(rows[0].field("avg-hr"), Value::Double(61.0));
    // Last window holds samples 9,10,11 → avg 70.
    assert_eq!(rows[3].field("avg-hr"), Value::Double(70.0));
}

#[test]
fn positional_variables() {
    // §5.2's cell-phone-analytics pilot "drove us to add support for
    // positional variables in AQL (akin to those in XQuery)."
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse P;
        use dataverse P;
        create type S as open { id: int64, steps: [string] };
        create dataset Sessions(S) primary key id;
        insert into dataset Sessions (
            { "id": 1, "steps": ["open", "search", "click", "buy"] });
    "#,
    )
    .unwrap();
    let rows = ins
        .query(
            r#"for $s in dataset Sessions
               for $step at $i in $s.steps
               where $i <= 2
               return { "pos": $i, "step": $step };"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].field("pos"), Value::Int64(1));
    assert_eq!(rows[0].field("step"), Value::string("open"));
    assert_eq!(rows[1].field("step"), Value::string("search"));
}

#[test]
fn keyword_index_access_path() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse K;
        use dataverse K;
        create type M as open { id: int64, message: string };
        create dataset Msgs(M) primary key id;
        create index kwIdx on Msgs(message) type keyword;
    "#,
    )
    .unwrap();
    for (i, text) in [
        "the concert tonight was great",
        "work deadline tomorrow",
        "tonight we ship the release",
        "lunch was nice",
    ]
    .iter()
    .enumerate()
    {
        ins.execute(&format!(
            "insert into dataset Msgs ({{ \"id\": {i}, \"message\": \"{text}\" }});"
        ))
        .unwrap();
    }
    let q = r#"for $m in dataset Msgs
               where some $w in word-tokens($m.message) satisfies $w = "tonight"
               return $m.id;"#;
    // The Query 6 pattern routes through the keyword index.
    let (plan, _) = ins.explain(q).unwrap();
    assert!(plan.contains("keyword-search K.Msgs.kwIdx"), "{plan}");
    let mut ids: Vec<i64> = ins.query(q).unwrap().iter().map(|v| v.as_i64().unwrap()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 2]);
    // Same answer without the index.
    ins.optimizer_options.write().enable_index_access = false;
    let mut ids2: Vec<i64> = ins.query(q).unwrap().iter().map(|v| v.as_i64().unwrap()).collect();
    ids2.sort_unstable();
    assert_eq!(ids, ids2);
}

#[test]
fn load_dataset_from_adm_file() {
    let dir = tempfile::TempDir::new().unwrap();
    let data = dir.path().join("users.adm");
    std::fs::write(
        &data,
        r#"{ "id": 1, "name": "a" }
           { "id": 2, "name": "b" }
           { "id": 3, "name": "c" }"#,
    )
    .unwrap();
    let ins = instance(&dir.path().join("db"));
    ins.execute(
        r#"
        create dataverse L;
        use dataverse L;
        create type U as open { id: int64, name: string };
        create dataset Users(U) primary key id;
    "#,
    )
    .unwrap();
    let res = ins
        .execute(&format!(
            "load dataset Users using localfs ((\"path\"=\"{}\"), (\"format\"=\"adm\"));",
            data.display()
        ))
        .unwrap();
    assert_eq!(res[0].count(), 3);
    assert_eq!(ins.query("for $u in dataset Users return $u;").unwrap().len(), 3);
}

#[test]
fn dfs_external_dataset() {
    // The simulated-HDFS adaptor (§2.3's "data residing in HDFS").
    let dir = tempfile::TempDir::new().unwrap();
    let dfs = dir.path().join("warehouse");
    std::fs::create_dir_all(&dfs).unwrap();
    std::fs::write(dfs.join("part-00000"), "{ \"k\": 1 }\n{ \"k\": 2 }").unwrap();
    std::fs::write(dfs.join("part-00001"), "{ \"k\": 3 }").unwrap();
    let ins = instance(&dir.path().join("db"));
    ins.execute(&format!(
        r#"create dataverse H;
           use dataverse H;
           create type T as open {{ k: int64 }};
           create external dataset Blocks(T)
               using dfs (("path"="hdfs://{}"), ("format"="adm"));"#,
        dfs.display()
    ))
    .unwrap();
    let total = ins.query("sum( for $b in dataset Blocks return $b.k );").unwrap();
    assert_eq!(total[0].as_i64(), Some(6));
    // External datasets are read-only: inserts are rejected.
    let err = ins.execute("insert into dataset Blocks ({ \"k\": 9 });").unwrap_err();
    assert!(err.to_string().contains("not a stored dataset"), "{err}");
}

#[test]
fn sql_vs_aql_aggregate_semantics_through_aql() {
    // §3: AQL's avg is null if any value is null; sql-avg skips nulls.
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse A;
        use dataverse A;
        create type T as open { id: int64, v: int64? };
        create dataset D(T) primary key id;
        insert into dataset D ([{ "id": 1, "v": 2 }, { "id": 2, "v": null },
                                { "id": 3, "v": 4 }]);
    "#,
    )
    .unwrap();
    let aql = ins.query("avg(for $d in dataset D return $d.v);").unwrap();
    assert_eq!(aql[0], Value::Null);
    let sql = ins.query("sql-avg(for $d in dataset D return $d.v);").unwrap();
    assert_eq!(sql[0], Value::Double(3.0));
    let cnt = ins.query("sql-count(for $d in dataset D return $d.v);").unwrap();
    assert_eq!(cnt[0], Value::Int64(2));
}

#[test]
fn drop_statements_and_reuse() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse X;
        use dataverse X;
        create type T as open { id: int64 };
        create dataset D(T) primary key id;
        create index ix on D(id);
        insert into dataset D ({ "id": 1 });
    "#,
    )
    .unwrap();
    ins.execute("drop index D.ix;").unwrap();
    ins.execute("drop dataset D;").unwrap();
    // The type is droppable once the dataset is gone; then the whole
    // dataverse can be rebuilt under the same names.
    ins.execute("drop type T;").unwrap();
    ins.execute(
        r#"
        create type T as open { id: int64, extra: string? };
        create dataset D(T) primary key id;
        insert into dataset D ({ "id": 7, "extra": "hi" });
    "#,
    )
    .unwrap();
    let rows = ins.query("for $d in dataset D return $d;").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].field("extra"), Value::string("hi"));
}

#[test]
fn rtree_spatial_intersect_access_path() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse S;
        use dataverse S;
        create type P as open { id: int64, loc: point };
        create dataset Places(P) primary key id;
        create index locIdx on Places(loc) type rtree;
    "#,
    )
    .unwrap();
    for i in 0..100i64 {
        let (x, y) = ((i % 10) as f64, (i / 10) as f64);
        ins.execute(&format!(
            "insert into dataset Places ({{ \"id\": {i}, \"loc\": point(\"{x},{y}\") }});"
        ))
        .unwrap();
    }
    let q = r#"for $p in dataset Places
               where spatial-intersect($p.loc, rectangle("2,2 4,4"))
               return $p.id;"#;
    let (plan, _) = ins.explain(q).unwrap();
    assert!(plan.contains("rtree-search"), "{plan}");
    let rows = ins.query(q).unwrap();
    assert_eq!(rows.len(), 9); // 3x3 grid cells
    ins.optimizer_options.write().enable_index_access = false;
    assert_eq!(ins.query(q).unwrap().len(), 9);
}

#[test]
fn autogenerated_primary_keys() {
    // §2.1: "The only fields that must currently be specified a priori are
    // the primary key fields. This restriction is temporary, as AsterixDB's
    // next release will offer auto-generated keys." — implemented here.
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse G;
        use dataverse G;
        create type T as open { id: int64, note: string };
        create dataset D(T) primary key id autogenerated;
    "#,
    )
    .unwrap();
    // Records without keys get fresh ones.
    for i in 0..5 {
        ins.execute(&format!("insert into dataset D ({{ \"note\": \"auto{i}\" }});")).unwrap();
    }
    // A record that brings its own key keeps it; later generated keys skip
    // past it.
    ins.execute("insert into dataset D ({ \"id\": 7, \"note\": \"manual\" });").unwrap();
    for i in 5..10 {
        ins.execute(&format!("insert into dataset D ({{ \"note\": \"auto{i}\" }});")).unwrap();
    }
    let ids = ins.query("for $d in dataset D order by $d.id return $d.id;").unwrap();
    assert_eq!(ids.len(), 11);
    // All ids distinct.
    let mut uniq: Vec<i64> = ids.iter().map(|v| v.as_i64().unwrap()).collect();
    uniq.dedup();
    assert_eq!(uniq.len(), 11, "auto keys must never collide: {uniq:?}");
    // And survives restart (replayed counter skips existing keys).
    drop(ins);
    let ins = instance(dir.path());
    ins.execute("use dataverse G;").unwrap();
    ins.execute("insert into dataset D ({ \"note\": \"after restart\" });").unwrap();
    assert_eq!(ins.query("for $d in dataset D return $d;").unwrap().len(), 12);
}

#[test]
fn secondary_feeds_cascade() {
    // §2.4: "AsterixDB also supports Secondary Feeds that are fed from
    // other feeds [...] to transform data and to feed Datasets or feed
    // other feeds."
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse SF;
        use dataverse SF;
        create type T as open { id: int64, v: int64 };
        create dataset Raw(T) primary key id;
        create dataset Doubled(T) primary key id;
        create function double_v($r) {
            { "id": $r.id, "v": $r.v * 2 }
        };
        create feed base using socket_adaptor (("format"="adm"));
        create secondary feed derived from feed base;
        connect feed base to dataset Raw;
        connect feed derived apply function double_v to dataset Doubled;
    "#,
    )
    .unwrap();
    let ep = ins.feed_endpoint("base").unwrap();
    for i in 0..30 {
        ep.send_text(format!("{{ \"id\": {i}, \"v\": {i} }}")).unwrap();
    }
    assert!(ins.feed_wait_stored("base", 30, std::time::Duration::from_secs(5)));
    assert!(ins.feed_wait_stored("derived", 30, std::time::Duration::from_secs(5)));
    ins.execute("disconnect feed derived from dataset Doubled;").unwrap();
    ins.execute("disconnect feed base from dataset Raw;").unwrap();
    let raw = ins.query("for $r in dataset Raw return $r.v;").unwrap();
    assert_eq!(raw.len(), 30);
    let doubled = ins.query("for $d in dataset Doubled where $d.id = 7 return $d.v;").unwrap();
    assert_eq!(doubled, vec![Value::Int64(14)]);
}
