//! The compiled-plan cache end-to-end: cached, uncached, and
//! cache-disabled executions must be bit-identical across the Table 3
//! query shapes; different literals of one query shape must share a single
//! cache entry; DDL must invalidate cached plans; and prepared statements
//! must bind fresh parameters on every execution, including under
//! concurrency.

use std::sync::Arc;

use asterix_adm::Value;
use asterixdb::{ClusterConfig, Instance};

/// A small two-dataset instance in the Table 3 shape: users with a
/// secondary range index, messages with an author index, 1:1 authorship.
fn tiny_instance(disable_plan_cache: bool) -> (Arc<Instance>, tempfile::TempDir) {
    let dir = tempfile::TempDir::new().unwrap();
    let mut cfg = ClusterConfig::small(dir.path().join("db"));
    cfg.nodes = 2;
    cfg.partitions_per_node = 2;
    cfg.disable_plan_cache = disable_plan_cache;
    let instance = Instance::open(cfg).unwrap();
    instance
        .execute(
            r#"
        create dataverse Cachet;
        use dataverse Cachet;
        create type UserType as open { id: int64 };
        create type MsgType as open { message-id: int64 };
        create dataset MugshotUsers(UserType) primary key id;
        create dataset MugshotMessages(MsgType) primary key message-id;
        create index msAuthorIdx on MugshotMessages(author-id) type btree;
        create index uSinceIdx on MugshotUsers(since) type btree;
    "#,
        )
        .unwrap();
    for i in 1..=30i64 {
        instance
            .execute(&format!(
                r#"insert into dataset MugshotUsers (
                    {{ "id": {i}, "name": "user{i}", "since": {since} }});"#,
                since = 2000 + i
            ))
            .unwrap();
        instance
            .execute(&format!(
                r#"insert into dataset MugshotMessages (
                    {{ "message-id": {i}, "author-id": {i}, "message": "msg{i}" }});"#
            ))
            .unwrap();
    }
    instance.dataset("MugshotUsers").unwrap().flush_all().unwrap();
    instance.dataset("MugshotMessages").unwrap().flush_all().unwrap();
    (instance, dir)
}

/// The Table 3 shapes: exact lookup, secondary range, indexed join,
/// group-by aggregation, order-by + limit.
const SHAPES: &[&str] = &[
    r#"for $u in dataset MugshotUsers where $u.id = 7 return $u.name"#,
    r#"for $u in dataset MugshotUsers
       where $u.since >= 2005 and $u.since <= 2015
       order by $u.id
       return { "id": $u.id, "since": $u.since }"#,
    r#"for $u in dataset MugshotUsers
       for $m in dataset MugshotMessages
       where $m.author-id /*+ indexnl */ = $u.id and $u.id <= 10
       order by $u.id
       return { "u": $u.id, "m": $m.message-id }"#,
    r#"for $m in dataset MugshotMessages
       group by $aid := $m.author-id with $m
       order by $aid
       return { "aid": $aid, "cnt": count($m) }"#,
    r#"for $u in dataset MugshotUsers order by $u.since desc limit 5 return $u.id"#,
];

/// Every shape returns bit-identical rows on the cold (miss) run, the hot
/// (hit) run, and on an instance with the cache disabled entirely.
#[test]
fn cached_and_uncached_results_are_bit_identical() {
    let (cached, _d1) = tiny_instance(false);
    let (uncached, _d2) = tiny_instance(true);
    // Setup's repeated inserts also ride the cache (their value
    // expressions share one entry per shape); start counting from here.
    cached.plan_cache().clear();
    let (hits0, misses0) =
        (cached.plan_cache().stats.hits.get(), cached.plan_cache().stats.misses.get());
    for q in SHAPES {
        let cold = cached.query(q).unwrap();
        let hot = cached.query(q).unwrap();
        let off = uncached.query(q).unwrap();
        assert!(!cold.is_empty(), "shape returns rows: {q}");
        assert_eq!(cold, hot, "hot run differs from cold: {q}");
        assert_eq!(cold, off, "cache-disabled run differs: {q}");
    }
    let stats = &cached.plan_cache().stats;
    assert_eq!(stats.misses.get() - misses0, SHAPES.len() as u64, "one miss per shape");
    assert_eq!(stats.hits.get() - hits0, SHAPES.len() as u64, "one hit per shape");
    assert_eq!(cached.plan_cache().len(), SHAPES.len());
    // The disabled instance never touched its cache.
    assert_eq!(uncached.plan_cache().stats.misses.get(), 0);
    assert!(uncached.plan_cache().is_empty());
}

/// Queries differing only in literal values share a single cache entry:
/// the second literal is a hit on the first literal's plan, with the new
/// constant bound into the parameter slots.
#[test]
fn different_literals_share_one_cache_entry() {
    let (instance, _dir) = tiny_instance(false);
    instance.plan_cache().clear();
    let hits0 = instance.plan_cache().stats.hits.get();
    let a = instance
        .query(
            r#"for $u in dataset MugshotUsers where $u.since < 2010 order by $u.id return $u.id"#,
        )
        .unwrap();
    assert_eq!(instance.plan_cache().len(), 1);
    assert_eq!(instance.plan_cache().stats.hits.get(), hits0);
    let b = instance
        .query(
            r#"for $u in dataset MugshotUsers where $u.since < 2020 order by $u.id return $u.id"#,
        )
        .unwrap();
    assert_eq!(instance.plan_cache().len(), 1, "same shape, one entry");
    assert_eq!(instance.plan_cache().stats.hits.get(), hits0 + 1);
    assert_eq!(a.len(), 9, "since 2001..=2009");
    assert_eq!(b.len(), 19, "since 2001..=2019 — new literal, new bounds");
}

/// A hot repeat collapses the compile side to a single sub-millisecond
/// `plan_cache` bind: no parse/translate/optimize/jobgen spans.
#[test]
fn hot_profile_shows_only_the_plan_cache_bind() {
    let (instance, _dir) = tiny_instance(false);
    let q = r#"for $u in dataset MugshotUsers where $u.id = 3 return $u.name"#;
    let cold = instance.profile(q).unwrap();
    let cold_names: Vec<&str> = cold.phases.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(cold_names, ["parse", "translate", "optimize", "jobgen", "plan_cache", "execute"]);
    let hot = instance.profile(q).unwrap();
    let hot_names: Vec<&str> = hot.phases.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(hot_names, ["parse", "plan_cache", "execute"], "hit skips compilation");
    assert_eq!(cold.rows, hot.rows);
    assert!(instance.plan_cache().stats.bind_us.count() >= 1, "bind time recorded");
}

/// DDL bumps the catalog epoch: a cached plan compiled before the DDL is
/// invalidated, so queries see the new catalog state (here, a dataset
/// dropped and recreated with different contents).
#[test]
fn ddl_invalidates_cached_plans() {
    let (instance, _dir) = tiny_instance(false);
    let q = r#"for $u in dataset MugshotUsers order by $u.id return $u.id"#;
    let hits0 = instance.plan_cache().stats.hits.get();
    assert_eq!(instance.query(q).unwrap().len(), 30);
    assert_eq!(instance.query(q).unwrap().len(), 30); // cached hit
    assert_eq!(instance.plan_cache().stats.hits.get(), hits0 + 1);
    instance
        .execute(
            r#"
        drop dataset MugshotUsers;
        create type SlimUser as open { id: int64 };
        create dataset MugshotUsers(SlimUser) primary key id;
        insert into dataset MugshotUsers ({ "id": 99 });
    "#,
        )
        .unwrap();
    let rows = instance.query(q).unwrap();
    assert_eq!(rows, vec![Value::Int64(99)], "post-DDL query sees the new dataset");
    assert!(
        instance.plan_cache().stats.invalidations.get() >= 1,
        "stale entry was invalidated, not served"
    );
}

/// Prepared statements: `prepare` lifts the literals, `execute_prepared`
/// binds replacements per execution, and arity mismatches are rejected.
#[test]
fn prepared_queries_rebind_parameters() {
    let (instance, _dir) = tiny_instance(false);
    instance.plan_cache().clear();
    let hits0 = instance.plan_cache().stats.hits.get();
    let prepared = instance
        .prepare(r#"for $u in dataset MugshotUsers where $u.id = 7 return $u.name"#)
        .unwrap();
    assert_eq!(prepared.param_count(), 1);
    assert_eq!(prepared.default_params(), &[Value::Int64(7)]);

    let with_default = instance.execute_prepared(&prepared, prepared.default_params()).unwrap();
    assert_eq!(with_default, vec![Value::String("user7".into())]);
    let with_other = instance.execute_prepared(&prepared, &[Value::Int64(12)]).unwrap();
    assert_eq!(with_other, vec![Value::String("user12".into())]);

    // Both executions and the equivalent ad-hoc query share one entry.
    assert_eq!(instance.plan_cache().len(), 1);
    let adhoc = instance
        .query(r#"for $u in dataset MugshotUsers where $u.id = 12 return $u.name"#)
        .unwrap();
    assert_eq!(adhoc, with_other);
    assert_eq!(instance.plan_cache().len(), 1);
    assert_eq!(instance.plan_cache().stats.hits.get(), hits0 + 2);

    let err = instance.execute_prepared(&prepared, &[]).unwrap_err();
    assert!(err.to_string().contains("expects 1 parameters"), "{err}");

    // Prepared profiles have no parse phase; the hot path is just the bind.
    let p = instance.profile_prepared(&prepared, &[Value::Int64(3)]).unwrap();
    let names: Vec<&str> = p.phases.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["plan_cache", "execute"]);
    assert_eq!(p.rows, vec![Value::String("user3".into())]);
}

/// Prepared execution still works (recompiling each time) when the cache
/// is disabled, with identical results.
#[test]
fn prepared_queries_work_with_cache_disabled() {
    let (instance, _dir) = tiny_instance(true);
    let prepared = instance
        .prepare(r#"for $u in dataset MugshotUsers where $u.id = 7 return $u.name"#)
        .unwrap();
    for id in [7i64, 21] {
        let rows = instance.execute_prepared(&prepared, &[Value::Int64(id)]).unwrap();
        assert_eq!(rows, vec![Value::String(format!("user{id}").into())]);
    }
    assert!(instance.plan_cache().is_empty());
}

/// Concurrent prepared executions hammer one cache entry under a two-slot
/// admission gate: every execution returns its own parameter's row.
#[test]
fn concurrent_prepared_executions_share_one_entry() {
    let dir = tempfile::TempDir::new().unwrap();
    let mut cfg = ClusterConfig::small(dir.path().join("db"));
    cfg.max_concurrent_queries = 2;
    cfg.max_queued_queries = 256;
    let instance = Instance::open(cfg).unwrap();
    instance
        .execute(
            r#"
        create dataverse Cachet;
        use dataverse Cachet;
        create type UserType as open { id: int64 };
        create dataset MugshotUsers(UserType) primary key id;
    "#,
        )
        .unwrap();
    for i in 1..=16i64 {
        instance
            .execute(&format!(
                r#"insert into dataset MugshotUsers ({{ "id": {i}, "name": "user{i}" }});"#
            ))
            .unwrap();
    }
    instance.plan_cache().clear();
    let (hits0, misses0) =
        (instance.plan_cache().stats.hits.get(), instance.plan_cache().stats.misses.get());
    let prepared = Arc::new(
        instance
            .prepare(r#"for $u in dataset MugshotUsers where $u.id = 1 return $u.name"#)
            .unwrap(),
    );
    let threads: Vec<_> = (1..=8i64)
        .map(|t| {
            let instance = Arc::clone(&instance);
            let prepared = Arc::clone(&prepared);
            std::thread::spawn(move || {
                for round in 0..4 {
                    let id = ((t + round) % 16) + 1;
                    let rows = instance.execute_prepared(&prepared, &[Value::Int64(id)]).unwrap();
                    assert_eq!(rows, vec![Value::String(format!("user{id}").into())]);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(instance.plan_cache().len(), 1, "all executions share one entry");
    let stats = &instance.plan_cache().stats;
    let (hits, misses) = (stats.hits.get() - hits0, stats.misses.get() - misses0);
    assert_eq!(hits + misses, 32, "every execution consulted the cache");
    // With a 2-slot gate, only the executions admitted before the first
    // insert can miss.
    assert!(misses <= 2, "misses: {misses}");
}
