//! Query profiling end-to-end: `Instance::profile` on the paper's join
//! queries must return per-operator breakdowns that reconcile with result
//! cardinalities, lifecycle spans for every compilation phase, and a
//! metrics registry that carries the storage-layer counters.

use std::sync::Arc;

use asterix_obs::{Metric, MetricValue};
use asterixdb::{ClusterConfig, Instance};

/// Two datasets with a 1:1 author relationship (message i's author-id is
/// user i), plus the paper's `msAuthorIdx` secondary index — the shape of
/// the Table 3/4 indexed join workload.
fn join_instance(n: usize) -> (Arc<Instance>, tempfile::TempDir) {
    join_instance_cfg(n, false)
}

fn join_instance_cfg(n: usize, disable_fusion: bool) -> (Arc<Instance>, tempfile::TempDir) {
    let dir = tempfile::TempDir::new().unwrap();
    let mut cfg = ClusterConfig::small(dir.path().join("db"));
    cfg.nodes = 2;
    cfg.partitions_per_node = 2;
    cfg.disable_fusion = disable_fusion;
    let instance = Instance::open(cfg).unwrap();
    instance
        .execute(
            r#"
        create dataverse Prof;
        use dataverse Prof;
        create type UserType as open { id: int64 };
        create type MsgType as open { message-id: int64 };
        create dataset MugshotUsers(UserType) primary key id;
        create dataset MugshotMessages(MsgType) primary key message-id;
        create index msAuthorIdx on MugshotMessages(author-id) type btree;
    "#,
        )
        .unwrap();
    for i in 1..=n as i64 {
        instance
            .execute(&format!(
                r#"insert into dataset MugshotUsers ({{ "id": {i}, "name": "user{i}" }});"#
            ))
            .unwrap();
        instance
            .execute(&format!(
                r#"insert into dataset MugshotMessages (
                    {{ "message-id": {i}, "author-id": {i}, "message": "msg{i}" }});"#
            ))
            .unwrap();
    }
    // Flush so scans read disk components and LSM flush metrics populate.
    instance.dataset("MugshotUsers").unwrap().flush_all().unwrap();
    instance.dataset("MugshotMessages").unwrap().flush_all().unwrap();
    (instance, dir)
}

const N: usize = 20;

/// Query 14's `indexnl` join: the outer scan's output tuple count equals
/// the result cardinality (1:1 relationship), the index-NL join probes
/// once per outer tuple, and every lifecycle phase is recorded.
#[test]
fn profile_reconciles_index_nl_join_with_cardinalities() {
    let (instance, _dir) = join_instance(N);
    let profile = instance
        .profile(
            r#"for $u in dataset MugshotUsers
               for $m in dataset MugshotMessages
               where $m.author-id /*+ indexnl */ = $u.id
               return { "u": $u.id, "m": $m.message-id }"#,
        )
        .unwrap();
    assert_eq!(profile.rows.len(), N, "1:1 join returns one row per user");

    // The outer data-scan emitted every user; with the 1:1 relationship
    // that equals the result cardinality.
    let scan = profile
        .operators
        .operators
        .iter()
        .find(|o| o.name.starts_with("data-scan") && o.name.contains("MugshotUsers"))
        .expect("users data-scan in profile");
    assert_eq!(scan.tuples_out() as usize, N, "scan output = result cardinality");

    // The index-NL join consumed each outer tuple and emitted one match
    // per probe. Its name carries the dataset.index label from the plan.
    let join = profile
        .operators
        .operators
        .iter()
        .find(|o| o.name.contains("msAuthorIdx"))
        .expect("index-NL join named after its index");
    assert_eq!(join.tuples_in() as usize, N, "one probe per outer tuple");
    assert_eq!(join.tuples_out() as usize, N, "one match per probe");

    // Lifecycle spans: every phase present, in order, and the execute
    // phase (which ran the Hyracks job) took measurable time.
    let names: Vec<&str> = profile.phases.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["parse", "translate", "optimize", "jobgen", "plan_cache", "execute"]);
    let execute = profile.phase("execute").unwrap();
    assert!(execute.duration > std::time::Duration::ZERO);
    assert!(profile.operators.elapsed <= execute.duration);

    // The annotated job description carries runtime counts per operator.
    assert!(profile.job.contains("out="), "annotated explain: {}", profile.job);
    assert!(profile.describe().contains("execute"));
}

/// The unhinted equijoin compiles to a hybrid hash join whose build port
/// (0) saw the inner input and probe port (1) the outer input.
#[test]
fn profile_distinguishes_hash_join_build_and_probe_inputs() {
    let (instance, _dir) = join_instance(N);
    let profile = instance
        .profile(
            r#"for $u in dataset MugshotUsers
               for $m in dataset MugshotMessages
               where $m.author-id = $u.id
               return { "u": $u.id, "m": $m.message-id }"#,
        )
        .unwrap();
    assert_eq!(profile.rows.len(), N);

    let join = profile.operator("hybrid-hash-join").expect("hash join in profile");
    assert_eq!(join.tuples_in_port(0) as usize, N, "build side = messages input");
    assert_eq!(join.tuples_in_port(1) as usize, N, "probe side = users input");
    assert_eq!(join.tuples_out() as usize, N);

    // Both scans fed the join in full.
    for ds in ["MugshotUsers", "MugshotMessages"] {
        let scan = profile
            .operators
            .operators
            .iter()
            .find(|o| o.name.starts_with("data-scan") && o.name.contains(ds))
            .unwrap_or_else(|| panic!("{ds} data-scan in profile"));
        assert_eq!(scan.tuples_out() as usize, N, "{ds} scan output");
    }
}

/// Exchange byte counters are exact, not estimates: the `bytes_sent`
/// delta for a profiled query equals the frame occupancy summed over
/// every operator's metered output port — both counters are incremented
/// at the same frame hand-off with the same serialized byte count.
#[test]
fn exchange_bytes_equal_summed_frame_occupancy() {
    let (instance, _dir) = join_instance(N);
    let before = instance.exchange_stats().bytes_sent();
    let profile = instance
        .profile(
            r#"for $u in dataset MugshotUsers
               for $m in dataset MugshotMessages
               where $m.author-id = $u.id
               return { "u": $u.id, "m": $m.message-id }"#,
        )
        .unwrap();
    assert_eq!(profile.rows.len(), N);

    let sent = instance.exchange_stats().bytes_sent() - before;
    let metered: u64 = profile.operators.operators.iter().map(|o| o.bytes_out()).sum();
    assert!(sent > 0, "query moved bytes through the exchange");
    assert_eq!(sent, metered, "exchange bytes_sent must equal summed output-port frame occupancy");

    // Registry view agrees with the accessor.
    match instance.metrics().get("exchange.bytes_sent") {
        Some(Metric::Counter(c)) => {
            assert_eq!(c.get(), instance.exchange_stats().bytes_sent())
        }
        other => panic!("exchange.bytes_sent missing: {other:?}"),
    }
}

/// Pipeline fusion is an execution-strategy change only: the same query
/// run fused and unfused returns identical rows, and every operator's
/// profiled tuple counts agree — the fused interior edges meter tuples
/// exactly like the channels they replaced.
#[test]
fn fusion_preserves_results_and_operator_tuple_counts() {
    use std::collections::BTreeMap;

    let query = r#"for $u in dataset MugshotUsers
                   where $u.id <= 10
                   return { "u": $u.id, "name": $u.name }"#;
    let (fused, _d1) = join_instance_cfg(N, false);
    let (unfused, _d2) = join_instance_cfg(N, true);
    let fp = fused.profile(query).unwrap();
    let up = unfused.profile(query).unwrap();

    assert!(fused.exchange_stats().pipelines_fused() > 0, "scan→filter→emit chain fuses");
    assert!(fused.exchange_stats().fusion_saved_threads() > 0);
    assert_eq!(unfused.exchange_stats().pipelines_fused(), 0, "fusion disabled");

    let sorted = |rows: &[asterix_adm::Value]| {
        let mut v = rows.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    };
    assert_eq!(fp.rows.len(), 10);
    assert_eq!(sorted(&fp.rows), sorted(&up.rows), "fused and unfused rows must be identical");

    // Per-operator tuple counts (aggregated by operator name — ids match
    // too, but names make failures readable) are unchanged by fusion.
    let counts = |p: &asterix_hyracks::JobProfile| -> BTreeMap<String, (u64, u64)> {
        let mut m = BTreeMap::new();
        for o in &p.operators {
            let e = m.entry(o.name.clone()).or_insert((0u64, 0u64));
            e.0 += o.tuples_in();
            e.1 += o.tuples_out();
        }
        m
    };
    assert_eq!(counts(&fp.operators), counts(&up.operators));
}

/// A LIMIT running inside a fused chain still stops the upstream early:
/// the query returns exactly the limited rows and the executor reports
/// fused pipelines for the job.
#[test]
fn fused_limit_stops_early_through_chain() {
    let (instance, _dir) = join_instance(N);
    let profile = instance
        .profile(
            r#"for $m in dataset MugshotMessages
               limit 3
               return $m.message-id"#,
        )
        .unwrap();
    assert_eq!(profile.rows.len(), 3, "limit 3 returns exactly 3 rows");
    assert!(
        instance.exchange_stats().pipelines_fused() > 0,
        "the limit ran inside a fused pipeline"
    );
    // The limit's downstream (emit/project/sink) saw exactly 3 tuples.
    let limit = profile.operator("limit").expect("limit operator in profile");
    assert_eq!(limit.tuples_out(), 3);
}

/// A join fixture with `extra` partner-less users beyond the `n` matched
/// pairs, under an arbitrary config tweak — the runtime-filter and
/// vectorization A/B tests build matched instances with one knob flipped.
fn ab_instance(
    n: usize,
    extra: usize,
    tweak: impl FnOnce(&mut ClusterConfig),
) -> (Arc<Instance>, tempfile::TempDir) {
    let dir = tempfile::TempDir::new().unwrap();
    let mut cfg = ClusterConfig::small(dir.path().join("db"));
    cfg.nodes = 2;
    cfg.partitions_per_node = 2;
    tweak(&mut cfg);
    let instance = Instance::open(cfg).unwrap();
    instance
        .execute(
            r#"
        create dataverse Prof;
        use dataverse Prof;
        create type UserType as open { id: int64 };
        create type MsgType as open { message-id: int64 };
        create dataset MugshotUsers(UserType) primary key id;
        create dataset MugshotMessages(MsgType) primary key message-id;
    "#,
        )
        .unwrap();
    for i in 1..=(n + extra) as i64 {
        instance
            .execute(&format!(
                r#"insert into dataset MugshotUsers ({{ "id": {i}, "name": "user{i}" }});"#
            ))
            .unwrap();
        if i <= n as i64 {
            instance
                .execute(&format!(
                    r#"insert into dataset MugshotMessages (
                        {{ "message-id": {i}, "author-id": {i}, "message": "msg{i}" }});"#
                ))
                .unwrap();
        }
    }
    instance.dataset("MugshotUsers").unwrap().flush_all().unwrap();
    instance.dataset("MugshotMessages").unwrap().flush_all().unwrap();
    (instance, dir)
}

fn sorted_rows(rows: &[asterix_adm::Value]) -> Vec<asterix_adm::Value> {
    let mut v = rows.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    v
}

/// Vectorized (batch-at-a-time) evaluation is an execution-strategy change
/// only: the Table-3 query shapes — scan+select (ordkey-classified numeric
/// and string comparisons), equijoin, and aggregation — return bit-identical
/// rows with the scalar path forced, and every operator's profiled tuple
/// counts agree between the two runs.
#[test]
fn vectorization_preserves_results_and_operator_tuple_counts() {
    use std::collections::BTreeMap;

    let queries = [
        // Ordkey fast path: integer comparison against a constant.
        r#"for $u in dataset MugshotUsers
           where $u.id <= 10
           return { "u": $u.id, "name": $u.name }"#,
        // Ordkey fast path: string equality, constant on the left.
        r#"for $u in dataset MugshotUsers
           where "user3" = $u.name
           return $u.id"#,
        // Hash equijoin (runtime filter rides along in both runs).
        r#"for $u in dataset MugshotUsers
           for $m in dataset MugshotMessages
           where $m.author-id = $u.id
           return { "u": $u.id, "m": $m.message-id }"#,
        // Aggregation over a selected scan.
        r#"avg(
            for $m in dataset MugshotMessages
            where $m.message-id > 5
            return $m.message-id
        )"#,
    ];
    let (vectorized, _d1) = ab_instance(N, N, |_| {});
    let (scalar, _d2) = ab_instance(N, N, |cfg| cfg.disable_vectorization = true);
    for q in queries {
        let vp = vectorized.profile(q).unwrap();
        let sp = scalar.profile(q).unwrap();
        assert_eq!(
            sorted_rows(&vp.rows),
            sorted_rows(&sp.rows),
            "vectorized and scalar rows must be identical: {q}"
        );
        let counts = |p: &asterixdb::QueryProfile| -> BTreeMap<String, (u64, u64)> {
            let mut m = BTreeMap::new();
            for o in &p.operators.operators {
                let e = m.entry(o.name.clone()).or_insert((0u64, 0u64));
                e.0 += o.tuples_in();
                e.1 += o.tuples_out();
            }
            m
        };
        assert_eq!(counts(&vp), counts(&sp), "per-operator tuple counts differ: {q}");
    }
}

/// Runtime join filters prune partner-less probe tuples before the
/// exchange without changing results, and the profiled tuple counts
/// reconcile exactly: the consult operator's in/out delta equals the
/// `filters.pruned_tuples` metric delta, and what it let through is what
/// the join's probe port received.
#[test]
fn runtime_filters_prune_probe_tuples_and_reconcile_counts() {
    let query = r#"for $u in dataset MugshotUsers
                   for $m in dataset MugshotMessages
                   where $m.author-id = $u.id
                   return { "u": $u.id, "m": $m.message-id }"#;
    // N matched users + N partner-less ones: the probe side scans 2N
    // tuples, only N can ever join.
    let (on, _d1) = ab_instance(N, N, |_| {});
    let (off, _d2) = ab_instance(N, N, |cfg| cfg.disable_runtime_filters = true);

    let on_profile = on.profile(query).unwrap();
    let off_profile = off.profile(query).unwrap();
    assert_eq!(on_profile.rows.len(), N);
    assert_eq!(
        sorted_rows(&on_profile.rows),
        sorted_rows(&off_profile.rows),
        "runtime filters must not change results"
    );

    // With filters disabled nothing is published, checked, or pruned —
    // and the compiler doesn't even insert the consult operator.
    assert_eq!(off.filter_stats().published.get(), 0);
    assert_eq!(off.filter_stats().pruned_tuples.get(), 0);
    assert!(off_profile.operators.find("runtime-filter-probe").is_none());

    // Filters-on: each build partition published at end-of-build. Pruning
    // itself is best-effort (the probe may outrun publication), but the
    // counts must reconcile exactly: scan out = consult in, and consult
    // in − consult out = pruned tuples.
    assert_eq!(on.filter_stats().published.get(), on.config().partitions() as u64);
    let consult =
        on_profile.operators.find("runtime-filter-probe").expect("consult operator in profile");
    let scan = on_profile
        .operators
        .operators
        .iter()
        .find(|o| o.name.starts_with("data-scan") && o.name.contains("MugshotUsers"))
        .expect("users data-scan in profile");
    let join = on_profile.operator("hybrid-hash-join").expect("hash join in profile");
    assert_eq!(scan.tuples_out(), 2 * N as u64, "probe scan sees matched + partner-less users");
    let pruned = on.filter_stats().pruned_tuples.get();
    assert_eq!(consult.tuples_in(), consult.tuples_out() + pruned, "consult drops = pruned");
    assert_eq!(join.tuples_in_port(1), consult.tuples_out(), "join probe port = consult out");
    assert_eq!(join.tuples_out(), N as u64);

    // The registry carries the same counters under `filters.*`.
    match on.metrics().get("filters.pruned_tuples") {
        Some(Metric::Counter(c)) => assert_eq!(c.get(), pruned),
        other => panic!("filters.pruned_tuples missing: {other:?}"),
    }
}

/// The instance registry aggregates every layer: exchange counters moved
/// out of `ExchangeStats`, per-shard cache counters, WAL appends, and the
/// LSM flush metrics recorded by `flush_all` — with the component gauges
/// matching the on-disk component counts.
#[test]
fn registry_carries_storage_and_exchange_metrics() {
    let (instance, _dir) = join_instance(N);
    instance.query("for $u in dataset MugshotUsers return $u").unwrap();

    let reg = instance.metrics();
    let snapshot = reg.snapshot();
    let counter_sum = |pred: &dyn Fn(&str) -> bool| -> u64 {
        snapshot
            .iter()
            .filter(|(name, _)| pred(name))
            .map(|(_, v)| match v {
                MetricValue::Counter(n) => *n,
                _ => 0,
            })
            .sum()
    };

    // Exchange counters live in the registry and agree with the legacy
    // accessors (which are now views over the same handles).
    match reg.get("exchange.tuples_sent") {
        Some(Metric::Counter(c)) => {
            assert_eq!(c.get(), instance.exchange_stats().tuples_sent());
            assert!(c.get() >= N as u64, "scan moved at least N tuples");
        }
        other => panic!("exchange.tuples_sent missing: {other:?}"),
    }

    // Per-shard cache counters sum to the aggregate hit/miss stats.
    let (hits, misses, _) = instance.cache_stats();
    let shard_sum: u64 = instance.per_shard_cache_stats().iter().map(|(h, m, _)| h + m).sum();
    assert_eq!(shard_sum, hits + misses);
    assert_eq!(counter_sum(&|n: &str| n.starts_with("cache.shard") && n.ends_with(".hits")), hits);

    // WAL appends were counted for the inserts.
    assert!(
        counter_sum(&|n: &str| n.starts_with("wal.node") && n.ends_with(".appends")) > 0,
        "inserts appended WAL records"
    );

    // Flushes were recorded and the component gauges match the trees.
    let flushes =
        counter_sum(&|n: &str| n.starts_with("lsm.Prof.MugshotUsers.") && n.ends_with(".flushes"));
    assert!(flushes >= 1, "flush_all recorded flush events");
    let users = instance.dataset("MugshotUsers").unwrap();
    let disk_total: i64 = users.primary.iter().map(|t| t.lsm().disk_component_count() as i64).sum();
    let gauge_total: i64 = snapshot
        .iter()
        .filter(|(name, _)| {
            name.starts_with("lsm.Prof.MugshotUsers.")
                && name.ends_with(".components")
                && !name.contains("msAuthorIdx")
        })
        .map(|(_, v)| match v {
            MetricValue::Gauge { value, .. } => *value,
            _ => 0,
        })
        .sum();
    assert_eq!(gauge_total, disk_total, "component gauges track disk components");

    // The schema-versioned JSON document wraps the same registry.
    let json = instance.metrics_json();
    assert!(json.starts_with("{\"schema_version\":1,\"metrics\":{"), "{json}");
    assert!(json.contains("\"exchange.frames_sent\""));
}

/// The profiled Table-3 join yields a span tree rooted at the query's
/// trace ID: compile phases and `execute` under the root, per-partition
/// pipeline spans under `execute`, and an `op:` span for every operator
/// that moved tuples — reconciled against the port meters.
#[test]
fn trace_spans_reconcile_with_operator_meters() {
    let (instance, _dir) = join_instance(N);
    let profile = instance
        .profile(
            r#"for $u in dataset MugshotUsers
               for $m in dataset MugshotMessages
               where $m.author-id = $u.id
               return { "u": $u.id, "m": $m.message-id }"#,
        )
        .unwrap();
    assert_eq!(profile.rows.len(), N);
    assert!(profile.trace_id > 0, "profiled query runs under a trace");
    assert!(!profile.trace.is_empty());

    // Root `query` span; queue wait and every compile phase directly under
    // it.
    let root = profile.trace_root().expect("root span");
    assert_eq!(root.name, "query");
    assert_eq!(root.parent_id, 0);
    let top: Vec<&str> =
        profile.trace_children(root.span_id).iter().map(|e| e.name.as_str()).collect();
    for phase in
        ["rm.queue_wait", "parse", "translate", "optimize", "jobgen", "plan_cache", "execute"]
    {
        assert!(top.contains(&phase), "{phase} missing under root: {top:?}");
    }

    // The execute subtree: one pipeline span per (chain, partition), each
    // labelled with its partition, with `op:` spans nested beneath.
    let execute =
        profile.trace.iter().find(|e| e.name == "execute").expect("execute span in trace");
    let threads = profile.trace_children(execute.span_id);
    assert!(!threads.is_empty(), "pipeline spans under execute");
    for t in &threads {
        assert!(t.label.starts_with('p'), "partition label on {t:?}");
        assert!(
            t.end_us() <= execute.end_us() + 1_000,
            "pipeline span inside execute: {t:?} vs {execute:?}"
        );
        for op in profile.trace_children(t.span_id) {
            assert!(op.name.starts_with("op:"), "pipeline children are operator spans: {op:?}");
            assert!(
                op.duration_us <= t.duration_us + 1_000,
                "operator span within its pipeline's busy time: {op:?} vs {t:?}"
            );
        }
    }

    // Every operator that moved tuples has at least one operator span, and
    // every operator span sits under a pipeline span of the execute
    // subtree.
    let thread_ids: Vec<u64> = threads.iter().map(|t| t.span_id).collect();
    for o in &profile.operators.operators {
        if o.tuples_in() + o.tuples_out() == 0 {
            continue;
        }
        let spans: Vec<_> =
            profile.trace.iter().filter(|e| e.name == format!("op:{}", o.name)).collect();
        assert!(!spans.is_empty(), "no trace span for metered operator {}", o.name);
        for s in &spans {
            assert!(thread_ids.contains(&s.parent_id), "operator span outside execute: {s:?}");
        }
    }
}

/// Under admission contention the queue wait is visible in the trace: with
/// one slot held, a profiled query's `rm.queue_wait` span covers the time
/// until the slot frees.
#[test]
fn queue_wait_span_appears_under_admission_contention() {
    let (instance, _dir) = ab_instance(5, 0, |cfg| cfg.max_concurrent_queries = 1);
    let hog = instance.resource_manager().begin("hog", None).unwrap();
    let release = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(60));
        drop(hog);
    });
    let profile = instance.profile("for $u in dataset MugshotUsers return $u.id").unwrap();
    release.join().unwrap();
    let root = profile.trace_root().expect("root span");
    let wait = profile
        .trace_children(root.span_id)
        .into_iter()
        .find(|e| e.name == "rm.queue_wait")
        .expect("queue-wait span under root");
    assert!(
        wait.duration_us >= 40_000,
        "queue wait must cover the held slot: {}us",
        wait.duration_us
    );
}

/// `to_chrome_trace` emits valid Chrome trace-event JSON: a `traceEvents`
/// array of complete (`ph:"X"`) events carrying the trace ID as `pid`,
/// plus `thread_name` metadata naming each partition lane.
#[test]
fn chrome_trace_export_is_valid_and_complete() {
    let (instance, _dir) = join_instance(N);
    let profile = instance
        .profile(
            r#"for $u in dataset MugshotUsers
               for $m in dataset MugshotMessages
               where $m.author-id = $u.id
               return { "u": $u.id, "m": $m.message-id }"#,
        )
        .unwrap();
    let doc = asterix_obs::json_parse(&profile.to_chrome_trace()).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_arr()).expect("traceEvents array");
    assert_eq!(
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).count(),
        profile.trace.len(),
        "one complete event per trace span"
    );
    for e in events {
        assert!(e.get("name").and_then(|v| v.as_str()).is_some(), "name in {e:?}");
        assert_eq!(e.get("pid").and_then(|v| v.as_f64()), Some(profile.trace_id as f64));
        match e.get("ph").and_then(|p| p.as_str()) {
            Some("X") => {
                assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
                assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
                assert!(e.get("args").and_then(|a| a.get("span_id")).is_some());
            }
            Some("M") => {
                assert_eq!(e.get("name").and_then(|v| v.as_str()), Some("thread_name"));
            }
            other => panic!("unexpected phase {other:?} in {e:?}"),
        }
    }
    // The main thread and at least one partition lane are named.
    let lanes: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|v| v.as_str()))
        .collect();
    assert!(lanes.contains(&"cc"), "main-thread lane named: {lanes:?}");
    assert!(lanes.iter().any(|l| l.starts_with('p')), "partition lane named: {lanes:?}");
}

/// `Metadata.ActiveJobs` is queryable with ordinary AQL while a query
/// runs, and shows the running query with live tuple progress.
#[test]
fn active_jobs_dataset_shows_running_query_live() {
    let (instance, _dir) = join_instance(N);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let worker = {
        let instance = Arc::clone(&instance);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Keep a profiled query in flight (description "profile", so
            // the poller can tell it apart from its own "query" jobs).
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                instance
                    .profile(
                        r#"for $u in dataset MugshotUsers
                           for $m in dataset MugshotMessages
                           where $m.author-id = $u.id
                           return { "u": $u.id, "m": $m.message-id }"#,
                    )
                    .unwrap();
            }
        })
    };
    let mut seen = None;
    for _ in 0..500 {
        let rows = instance
            .query(
                r#"for $j in dataset Metadata.ActiveJobs
                   where $j.Description = "profile" and $j.State = "running"
                   return $j"#,
            )
            .unwrap();
        if let Some(job) = rows.iter().find(|j| j.field("Tuples").as_i64().unwrap_or(0) > 0) {
            seen = Some(job.clone());
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    worker.join().unwrap();
    let job = seen.expect("observed the profiled query running with live tuple progress");
    assert!(job.field("JobId").as_i64().unwrap() > 0);
    assert!(job.field("TraceId").as_i64().unwrap() > 0, "profiled job carries its trace ID");
    assert!(job.field("MemGrantedBytes").as_i64().unwrap() > 0);
}

/// The live views, the one-call snapshot, the Prometheus exposition, and
/// the continuous sampler all read the same registry.
#[test]
fn system_views_snapshot_and_sampler_agree() {
    let (instance, _dir) = ab_instance(N, 0, |cfg| {
        cfg.metrics_sample_interval = Some(std::time::Duration::from_millis(20));
    });
    instance.query("for $u in dataset MugshotUsers return $u.id").unwrap();

    // Metadata.Metrics: ordinary AQL over the registry.
    let rows = instance
        .query(
            r#"for $m in dataset Metadata.Metrics
               where $m.Name = "exchange.tuples_sent"
               return $m"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].field("Kind").as_str(), Some("counter"));
    assert!(rows[0].field("Value").as_i64().unwrap() > 0);

    // system_snapshot: same registry, one call, valid JSON.
    let snap = instance.system_snapshot();
    assert!(snap.metrics.iter().any(|(n, _)| n == "exchange.tuples_sent"));
    let doc = asterix_obs::json_parse(&snap.to_json()).expect("snapshot JSON parses");
    assert!(doc.get("ts_us").is_some() && doc.get("jobs").is_some());
    assert!(doc.get("metrics").and_then(|m| m.get("exchange.tuples_sent")).is_some());

    // Prometheus text exposition.
    let prom = instance.metrics_prometheus();
    assert!(prom.contains("# TYPE exchange_tuples_sent counter"), "{prom}");

    // The sampler accumulates per-interval deltas; the queries above moved
    // counters, so a frame must land within a few intervals.
    let mut frames = asterix_obs::json_parse(&instance.metrics_timeseries_json()).unwrap();
    for _ in 0..100 {
        if frames.as_arr().is_some_and(|a| !a.is_empty()) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        instance.query("for $u in dataset MugshotUsers return $u.id").unwrap();
        frames = asterix_obs::json_parse(&instance.metrics_timeseries_json()).unwrap();
    }
    let frames = frames.as_arr().expect("timeseries is a JSON array");
    assert!(!frames.is_empty(), "sampler recorded registry deltas");
    assert!(frames[0].get("ts_us").is_some() && frames[0].get("values").is_some());
}

/// Columnar components are a storage-layout change only: every Table-3
/// query shape — projecting scans, pushed-down constant filters,
/// equijoins, aggregation, and full-record scans (which read columnar
/// components through whole-row reconstruction) — returns bit-identical
/// rows with `disable_columnar` set, while the columnar instance actually
/// projects columns and skips bytes.
#[test]
fn columnar_preserves_results_and_projects_columns() {
    let queries = [
        // Projecting scan: only two fields of the record are touched.
        r#"for $u in dataset MugshotUsers
           return { "u": $u.id, "name": $u.name }"#,
        // Pushed-down constant filter decided on raw column bytes.
        r#"for $u in dataset MugshotUsers
           where $u.id <= 10
           return { "u": $u.id, "name": $u.name }"#,
        // Equijoin: both scans project.
        r#"for $u in dataset MugshotUsers
           for $m in dataset MugshotMessages
           where $m.author-id = $u.id
           return { "u": $u.id, "m": $m.message-id }"#,
        // Aggregation over a selected projecting scan.
        r#"avg(
            for $m in dataset MugshotMessages
            where $m.message-id > 5
            return $m.message-id
        )"#,
        // Full-record scan: the variable escapes, so no projection — the
        // columnar component serves reconstructed whole rows.
        r#"for $u in dataset MugshotUsers return $u"#,
    ];
    let (on, _d1) = ab_instance(N, N, |_| {});
    let (off, _d2) = ab_instance(N, N, |cfg| cfg.disable_columnar = true);

    // Flushes on the columnar instance wrote columnar components; the
    // knob-off instance wrote none.
    assert!(on.columnar_stats().components.get() > 0, "flushes must build columnar components");
    assert_eq!(off.columnar_stats().components.get(), 0);

    for q in queries {
        let op_rows = on.query(q).unwrap();
        let off_rows = off.query(q).unwrap();
        assert_eq!(
            sorted_rows(&op_rows),
            sorted_rows(&off_rows),
            "columnar on/off rows must be identical: {q}"
        );
    }

    // The projecting queries read only the requested columns.
    assert!(on.columnar_stats().columns_projected.get() > 0, "scans must project columns");
    assert!(on.columnar_stats().bytes_skipped.get() > 0, "projection must skip column bytes");
    assert_eq!(off.columnar_stats().columns_projected.get(), 0);

    // The scan label advertises the projection (and the registry carries
    // the counters under stable names).
    let profile = on
        .profile(r#"for $u in dataset MugshotUsers return { "u": $u.id, "name": $u.name }"#)
        .unwrap();
    let scan = profile
        .operators
        .operators
        .iter()
        .find(|o| o.name.starts_with("data-scan"))
        .expect("data-scan in profile");
    assert!(scan.name.contains("[cols: id,name]"), "projecting scan label: {}", scan.name);
    match on.metrics().get("storage.columnar.columns_projected") {
        Some(Metric::Counter(c)) => assert!(c.get() > 0),
        other => panic!("storage.columnar.columns_projected missing: {other:?}"),
    }
}

/// Mid-migration trees — row components written under `disable_columnar`,
/// then columnar components after the knob flips — serve every query
/// bit-identically to an all-row instance over the same data.
#[test]
fn columnar_migration_mixed_tree_reads_identically() {
    let ddl = r#"
        create dataverse Prof;
        use dataverse Prof;
        create type UserType as open { id: int64 };
        create dataset MugshotUsers(UserType) primary key id;
    "#;
    let fill = |inst: &Arc<Instance>, lo: i64, hi: i64| {
        for i in lo..=hi {
            inst.execute(&format!(
                r#"insert into dataset MugshotUsers ({{ "id": {i}, "name": "user{i}" }});"#
            ))
            .unwrap();
        }
        inst.dataset("MugshotUsers").unwrap().flush_all().unwrap();
    };
    let dir = tempfile::TempDir::new().unwrap();
    let cfg_at = |path: &std::path::Path, disable: bool| {
        let mut cfg = ClusterConfig::small(path.join("db"));
        cfg.nodes = 2;
        cfg.partitions_per_node = 2;
        cfg.disable_columnar = disable;
        cfg
    };
    // First incarnation: columnar off — row components on disk.
    {
        let inst = Instance::open(cfg_at(dir.path(), true)).unwrap();
        inst.execute(ddl).unwrap();
        fill(&inst, 1, N as i64);
        assert_eq!(inst.columnar_stats().components.get(), 0);
    }
    // Second incarnation, same storage: columnar on — new flushes come
    // out column-major, so the tree now mixes both layouts.
    let mixed = Instance::open(cfg_at(dir.path(), false)).unwrap();
    mixed.execute("use dataverse Prof;").unwrap();
    fill(&mixed, N as i64 + 1, 2 * N as i64);
    assert!(mixed.columnar_stats().components.get() > 0, "post-flip flushes must be columnar");

    // Reference: all-row instance over the same records.
    let ref_dir = tempfile::TempDir::new().unwrap();
    let all_row = Instance::open(cfg_at(ref_dir.path(), true)).unwrap();
    all_row.execute(ddl).unwrap();
    fill(&all_row, 1, 2 * N as i64);

    let queries = [
        r#"for $u in dataset MugshotUsers return { "u": $u.id, "name": $u.name }"#,
        r#"for $u in dataset MugshotUsers where $u.id > 25 return $u.name"#,
        r#"for $u in dataset MugshotUsers return $u"#,
        r#"count(for $u in dataset MugshotUsers return $u.id)"#,
    ];
    for q in queries {
        assert_eq!(
            sorted_rows(&mixed.query(q).unwrap()),
            sorted_rows(&all_row.query(q).unwrap()),
            "mixed row+columnar tree must read identically: {q}"
        );
    }
}
