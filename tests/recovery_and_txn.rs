//! Crash recovery (§4.4's logical logging + shadowing) and record-level
//! transaction behavior under concurrency, exercised through the full
//! stack.

use std::sync::Arc;

use asterixdb::{ClusterConfig, Instance};

const DDL: &str = r#"
    create dataverse R;
    use dataverse R;
    create type T as open { id: int64, v: int64, tag: string };
    create dataset D(T) primary key id;
    create index vIdx on D(v);
"#;

fn open(dir: &std::path::Path) -> Arc<Instance> {
    Instance::open(ClusterConfig::small(dir)).unwrap()
}

fn insert(instance: &Instance, id: i64, v: i64) {
    instance
        .execute(&format!(
            "insert into dataset D ({{ \"id\": {id}, \"v\": {v}, \"tag\": \"t{id}\" }});"
        ))
        .unwrap();
}

#[test]
fn recovery_replays_committed_work_including_secondary_indexes() {
    let dir = tempfile::TempDir::new().unwrap();
    {
        let instance = open(dir.path());
        instance.execute(DDL).unwrap();
        for i in 0..100 {
            insert(&instance, i, i % 10);
        }
        instance.execute("delete $d from dataset D where $d.id < 10;").unwrap();
        // Crash: drop without flushing.
    }
    let instance = open(dir.path());
    instance.execute("use dataverse R;").unwrap();
    let all = instance.query("for $d in dataset D return $d.id;").unwrap();
    assert_eq!(all.len(), 90);
    // The secondary index was rebuilt by replay too: an indexed query finds
    // the right records.
    let via_ix = instance.query("for $d in dataset D where $d.v = 3 return $d.id;").unwrap();
    // v = 3 for ids ≡ 3 (mod 10); ids 13..93 → 9 records (id 3 deleted).
    assert_eq!(via_ix.len(), 9);
    let (plan, _) = instance.explain("for $d in dataset D where $d.v = 3 return $d.id;").unwrap();
    assert!(plan.contains("vIdx"), "{plan}");
}

#[test]
fn recovery_after_flush_and_more_writes() {
    let dir = tempfile::TempDir::new().unwrap();
    {
        let instance = open(dir.path());
        instance.execute(DDL).unwrap();
        for i in 0..50 {
            insert(&instance, i, i);
        }
        // Flush everything to disk components (writes Flush watermarks).
        instance.dataset("D").unwrap().flush_all().unwrap();
        // More writes that stay only in memory + WAL.
        for i in 50..80 {
            insert(&instance, i, i);
        }
    }
    let instance = open(dir.path());
    instance.execute("use dataverse R;").unwrap();
    let n = instance.query("for $d in dataset D return $d;").unwrap().len();
    assert_eq!(n, 80, "flushed (50) + replayed (30)");
}

#[test]
fn checkpoint_truncates_log_and_still_recovers() {
    let dir = tempfile::TempDir::new().unwrap();
    {
        let instance = open(dir.path());
        instance.execute(DDL).unwrap();
        for i in 0..40 {
            insert(&instance, i, i);
        }
        instance.checkpoint().unwrap();
        for i in 40..60 {
            insert(&instance, i, i);
        }
    }
    let instance = open(dir.path());
    instance.execute("use dataverse R;").unwrap();
    assert_eq!(instance.query("for $d in dataset D return $d;").unwrap().len(), 60);
}

#[test]
fn double_crash_recovery_is_idempotent() {
    let dir = tempfile::TempDir::new().unwrap();
    {
        let instance = open(dir.path());
        instance.execute(DDL).unwrap();
        for i in 0..30 {
            insert(&instance, i, i);
        }
    }
    // First recovery, then crash again without any new write.
    {
        let instance = open(dir.path());
        instance.execute("use dataverse R;").unwrap();
        assert_eq!(instance.query("for $d in dataset D return $d;").unwrap().len(), 30);
    }
    // Second recovery replays the same log over the recovered state —
    // replay is idempotent (inserts are upserts).
    let instance = open(dir.path());
    instance.execute("use dataverse R;").unwrap();
    assert_eq!(instance.query("for $d in dataset D return $d;").unwrap().len(), 30);
}

#[test]
fn ddl_survives_restart() {
    let dir = tempfile::TempDir::new().unwrap();
    {
        let instance = open(dir.path());
        instance.execute(DDL).unwrap();
        instance
            .execute(
                r#"create function tagged() {
                       for $d in dataset D return $d.tag
                   };"#,
            )
            .unwrap();
        insert(&instance, 1, 1);
    }
    let instance = open(dir.path());
    instance.execute("use dataverse R;").unwrap();
    // Types, datasets, indexes, and functions all came back.
    let idx = instance.query("for $ix in dataset Metadata.Index return $ix;").unwrap();
    assert_eq!(idx.len(), 2); // primary + vIdx
    let tags = instance.query("for $t in tagged() return $t;").unwrap();
    assert_eq!(tags.len(), 1);
}

#[test]
fn concurrent_inserts_from_many_threads() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open(dir.path());
    instance.execute(DDL).unwrap();
    let mut handles = Vec::new();
    for t in 0..8i64 {
        let instance = Arc::clone(&instance);
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let id = t * 1000 + i;
                instance
                    .execute(&format!(
                        "insert into dataset D ({{ \"id\": {id}, \"v\": {t}, \"tag\": \"x\" }});"
                    ))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(instance.query("for $d in dataset D return $d;").unwrap().len(), 400);
    // Per-thread groups all have exactly 50.
    let counts = instance
        .query(
            "for $d in dataset D group by $v := $d.v with $d \
             let $c := count($d) return $c;",
        )
        .unwrap();
    assert_eq!(counts.len(), 8);
    assert!(counts.iter().all(|c| c.as_i64() == Some(50)));
}

#[test]
fn concurrent_duplicate_inserts_exactly_one_wins() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open(dir.path());
    instance.execute(DDL).unwrap();
    let mut handles = Vec::new();
    for t in 0..8i64 {
        let instance = Arc::clone(&instance);
        handles.push(std::thread::spawn(move || {
            let mut wins = 0;
            for _ in 0..20 {
                let ok = instance
                    .execute(&format!(
                        "insert into dataset D ({{ \"id\": 42, \"v\": {t}, \"tag\": \"x\" }});"
                    ))
                    .is_ok();
                if ok {
                    wins += 1;
                }
            }
            wins
        }));
    }
    let total_wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total_wins, 1, "exactly one insert of pk 42 may succeed");
    assert_eq!(instance.query("for $d in dataset D where $d.id = 42 return $d;").unwrap().len(), 1);
}

#[test]
fn readers_see_consistent_data_during_writes() {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = open(dir.path());
    instance.execute(DDL).unwrap();
    for i in 0..200 {
        insert(&instance, i, 1);
    }
    let writer = {
        let instance = Arc::clone(&instance);
        std::thread::spawn(move || {
            for i in 200..400 {
                instance
                    .execute(&format!(
                        "insert into dataset D ({{ \"id\": {i}, \"v\": 1, \"tag\": \"w\" }});"
                    ))
                    .unwrap();
            }
        })
    };
    // Concurrent readers always see at least the initial 200 records and a
    // consistent (whole-record) view.
    for _ in 0..20 {
        let rows = instance.query("for $d in dataset D return $d.id;").unwrap();
        assert!(rows.len() >= 200);
    }
    writer.join().unwrap();
    assert_eq!(instance.query("for $d in dataset D return $d;").unwrap().len(), 400);
}
