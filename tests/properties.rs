//! Property-based tests (proptest) on the core invariants:
//! * the order-preserving key codec agrees with ADM's total order;
//! * binary serialization round-trips (self-describing and schema-aware);
//! * ADM text printing round-trips through the parser;
//! * the LSM tree behaves like a sorted map under arbitrary workloads with
//!   interleaved flushes and merges.

use std::collections::BTreeMap;
use std::sync::Arc;

use asterix_adm::{serde as adm_serde, Record, Value};
use asterix_storage::keycodec;
use asterix_storage::lsm::{LsmConfig, LsmTree, MergePolicy};
use asterix_storage::{BufferCache, NullObserver};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Value generators
// ---------------------------------------------------------------------------

fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Boolean),
        any::<i64>().prop_map(Value::Int64),
        any::<i32>().prop_map(Value::Int32),
        (-1.0e12f64..1.0e12).prop_map(Value::Double),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::string),
        (-100_000i32..100_000).prop_map(Value::Date),
        (0i32..86_400_000).prop_map(Value::Time),
        any::<i32>().prop_map(|v| Value::DateTime(v as i64 * 1000)),
    ]
}

fn nested_value() -> impl Strategy<Value = Value> {
    scalar_value().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::ordered_list),
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::unordered_list),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..5).prop_map(|fields| {
                let mut r = Record::new();
                for (name, v) in fields {
                    r.set(name, v);
                }
                Value::record(r)
            }),
        ]
    })
}

/// Keys usable in the B+-tree codec (no spatial/record keys).
fn key_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int64),
        "[a-zA-Z0-9]{0,16}".prop_map(Value::string),
        (-100_000i32..100_000).prop_map(Value::Date),
        any::<i32>().prop_map(|v| Value::DateTime(v as i64)),
        any::<bool>().prop_map(Value::Boolean),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Key encoding preserves ADM's total order for same-kind keys.
    #[test]
    fn keycodec_order_agrees_with_total_cmp(a in key_value(), b in key_value()) {
        // The byte order matches ADM's total order everywhere except the
        // documented caveat: *equal* numerics of different widths encode
        // adjacently-but-distinctly (point lookups coerce first).
        let ka = keycodec::encode_single(&a).unwrap();
        let kb = keycodec::encode_single(&b).unwrap();
        let caveat = a.is_numeric()
            && b.is_numeric()
            && a.total_cmp(&b).is_eq()
            && std::mem::discriminant(&a) != std::mem::discriminant(&b);
        if !caveat {
            prop_assert_eq!(ka.cmp(&kb), a.total_cmp(&b), "{} vs {}", a, b);
        }
    }

    /// Composite keys roundtrip through the codec.
    #[test]
    fn keycodec_roundtrip(parts in prop::collection::vec(key_value(), 1..4)) {
        let bytes = keycodec::encode_key(&parts).unwrap();
        let back = keycodec::decode_key(&bytes).unwrap();
        prop_assert_eq!(parts.len(), back.len());
        for (x, y) in parts.iter().zip(&back) {
            prop_assert!(x.total_cmp(y).is_eq(), "{} vs {}", x, y);
        }
    }

    /// Self-describing binary serialization round-trips any value.
    #[test]
    fn serde_roundtrip(v in nested_value()) {
        let bytes = adm_serde::encode(&v);
        let back = adm_serde::decode(&bytes).unwrap();
        prop_assert!(v.total_cmp(&back).is_eq(), "{} vs {}", v, back);
    }

    /// ADM text printing round-trips through the parser.
    #[test]
    fn print_parse_roundtrip(v in nested_value()) {
        let text = asterix_adm::print::to_adm_string(&v);
        let back = asterix_adm::parse::parse_value(&text).unwrap();
        prop_assert!(v.total_cmp(&back).is_eq(), "{} -> {} -> {}", v, text, back);
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn serde_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = adm_serde::decode(&bytes);
        let _ = keycodec::decode_key(&bytes);
    }
}

// ---------------------------------------------------------------------------
// Byte-frame tuple codec and canonical order keys
// ---------------------------------------------------------------------------

use asterix_adm::value::{Circle, DurationValue, IntervalKind, IntervalValue, Line, Point};
use asterix_adm::{decode_tuple, encode_tuple, ordkey, TupleRef};

fn any_point() -> impl Strategy<Value = Point> {
    ((-1.0e6f64..1.0e6), (-1.0e6f64..1.0e6)).prop_map(|(x, y)| Point::new(x, y))
}

/// Every `Value` variant, scalars only. `exact_numerics` keeps integers
/// inside the f64-exact range where ordkey's byte order matches
/// `total_cmp` without the documented ≥9.0e15 caveat.
fn every_scalar(exact_numerics: bool) -> impl Strategy<Value = Value> {
    let int64 =
        if exact_numerics { (-(1i64 << 52)..(1i64 << 52)).boxed() } else { any::<i64>().boxed() };
    let numerics = prop_oneof![
        any::<i8>().prop_map(Value::Int8),
        any::<i16>().prop_map(Value::Int16),
        any::<i32>().prop_map(Value::Int32),
        int64.prop_map(Value::Int64),
        (-1.0e6f32..1.0e6).prop_map(Value::Float),
        (-1.0e12f64..1.0e12).prop_map(Value::Double),
    ];
    let temporals = prop_oneof![
        (-100_000i32..100_000).prop_map(Value::Date),
        (0i32..86_400_000).prop_map(Value::Time),
        any::<i32>().prop_map(|v| Value::DateTime(v as i64 * 1000)),
        (any::<i32>(), any::<i32>()).prop_map(|(months, ms)| {
            Value::Duration(DurationValue { months, millis: ms as i64 })
        }),
        any::<i32>().prop_map(Value::YearMonthDuration),
        any::<i32>().prop_map(|v| Value::DayTimeDuration(v as i64)),
        (any::<i32>(), any::<i32>()).prop_map(|(s, e)| {
            Value::Interval(IntervalValue {
                kind: IntervalKind::DateTime,
                start: s as i64,
                end: e as i64,
            })
        }),
    ];
    let spatials = prop_oneof![
        any_point().prop_map(Value::Point),
        (any_point(), any_point()).prop_map(|(a, b)| Value::Line(Line { a, b })),
        (any_point(), any_point())
            .prop_map(|(a, b)| { Value::Rectangle(asterix_adm::value::Rectangle::new(a, b)) }),
        (any_point(), 0.0f64..1.0e6)
            .prop_map(|(center, radius)| { Value::Circle(Circle { center, radius }) }),
        prop::collection::vec(any_point(), 0..5).prop_map(|ps| Value::Polygon(Arc::from(ps))),
    ];
    prop_oneof![
        Just(Value::Missing),
        Just(Value::Null),
        any::<bool>().prop_map(Value::Boolean),
        numerics,
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::string),
        temporals,
        spatials,
        prop::collection::vec(any::<u8>(), 0..16).prop_map(|b| Value::Binary(Arc::from(b))),
    ]
}

/// Every `Value` variant including nested lists and records.
fn every_value(exact_numerics: bool) -> impl Strategy<Value = Value> {
    every_scalar(exact_numerics).prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::ordered_list),
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::unordered_list),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..5).prop_map(|fields| {
                let mut r = Record::new();
                for (name, v) in fields {
                    r.set(name, v);
                }
                Value::record(r)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The frame tuple codec round-trips tuples over every `Value`
    /// variant, and the zero-copy accessors agree with the bulk decode.
    #[test]
    fn tuple_codec_roundtrip(fields in prop::collection::vec(every_value(false), 0..6)) {
        let bytes = encode_tuple(&fields);
        let back = decode_tuple(&bytes).unwrap();
        prop_assert_eq!(fields.len(), back.len());
        for (x, y) in fields.iter().zip(&back) {
            prop_assert!(x.total_cmp(y).is_eq(), "{} vs {}", x, y);
        }
        let r = TupleRef::new(&bytes).unwrap();
        prop_assert_eq!(r.field_count(), fields.len());
        for (i, x) in fields.iter().enumerate() {
            let v = r.field_value(i).unwrap();
            prop_assert!(x.total_cmp(&v).is_eq(), "field {}: {} vs {}", i, x, v);
        }
    }

    /// The canonical order key's byte order is exactly ADM's total order —
    /// across types and across numeric widths (the encoding carries no
    /// width tag, so `int32 5`, `int64 5` and `double 5.0` tie).
    #[test]
    fn ordkey_byte_order_agrees_with_total_cmp(
        a in every_value(true),
        b in every_value(true),
    ) {
        let ka = ordkey::encode_value(&a);
        let kb = ordkey::encode_value(&b);
        prop_assert_eq!(ka.cmp(&kb), a.total_cmp(&b), "{} vs {}", a, b);
        // Byte equality is exactly total_cmp equality — what lets joins
        // and group-bys key hash tables on the encoded bytes directly.
        prop_assert_eq!(ka == kb, a.total_cmp(&b).is_eq());
    }

    /// Byte-level field hashing over the serialized tuple is bit-identical
    /// to hashing the decoded `Value`s, including out-of-range fields
    /// (which hash as MISSING on both sides).
    #[test]
    fn encoded_field_hash_matches_decoded_hash(
        fields in prop::collection::vec(every_value(false), 0..5),
        keys in prop::collection::vec(0usize..7, 0..4),
    ) {
        let bytes = encode_tuple(&fields);
        let r = TupleRef::new(&bytes).unwrap();
        prop_assert_eq!(
            asterix_hyracks::hash_encoded_fields(&r, &keys),
            asterix_hyracks::hash_fields(&fields, &keys)
        );
    }
}

// ---------------------------------------------------------------------------
// LSM model test
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LsmOp {
    Insert(u16, u8),
    Delete(u16),
    Flush,
    MergeAll,
}

fn lsm_op() -> impl Strategy<Value = LsmOp> {
    prop_oneof![
        6 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| LsmOp::Insert(k, v)),
        3 => any::<u16>().prop_map(LsmOp::Delete),
        1 => Just(LsmOp::Flush),
        1 => Just(LsmOp::MergeAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary insert/delete/flush/merge sequences, the LSM tree
    /// stays equivalent to a plain sorted map: same point lookups, same
    /// full scan.
    #[test]
    fn lsm_behaves_like_btreemap(ops in prop::collection::vec(lsm_op(), 1..120)) {
        let dir = tempfile::TempDir::new().unwrap();
        let tree = LsmTree::open(
            dir.path(),
            LsmConfig {
                mem_budget: 1 << 20,
                page_size: 256,
                bloom_fpp: 0.01,
                merge_policy: MergePolicy::NoMerge,
                max_frozen: 2,
                columnar: None,
            },
            BufferCache::new(64),
            Arc::new(NullObserver),
        )
        .unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                LsmOp::Insert(k, v) => {
                    let key = k.to_be_bytes().to_vec();
                    let val = vec![*v];
                    tree.insert(key.clone(), val.clone()).unwrap();
                    model.insert(key, val);
                }
                LsmOp::Delete(k) => {
                    let key = k.to_be_bytes().to_vec();
                    tree.delete(key.clone()).unwrap();
                    model.remove(&key);
                }
                LsmOp::Flush => {
                    tree.flush().unwrap();
                }
                LsmOp::MergeAll => {
                    tree.merge_all().unwrap();
                }
            }
        }
        // Full scans agree.
        let scanned = tree.scan(None, None).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
        // Random point lookups agree (including misses).
        for probe in [0u16, 1, 7, 1000, 65535] {
            let key = probe.to_be_bytes().to_vec();
            prop_assert_eq!(tree.get(&key).unwrap(), model.get(&key).cloned());
        }
    }
}

// ---------------------------------------------------------------------------
// Columnar shredding properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shredding against an inferred schema loses nothing: whenever a
    /// record shreds (heterogeneous records spill instead), splicing the
    /// columns and the rest back together yields exactly the original
    /// (name, encoded-value) fields — over every `Value` variant,
    /// including nested records, lists, and mixed field types.
    #[test]
    fn shred_splice_preserves_fields(
        rows in prop::collection::vec(
            prop::collection::vec(("[a-d]{1,2}", every_value(false)), 0..6),
            1..40
        ),
    ) {
        use asterix_adm::colschema::{shred, splice_full, SchemaBuilder};
        let encoded: Vec<Vec<u8>> = rows
            .iter()
            .map(|fields| {
                let mut r = Record::new();
                for (n, v) in fields {
                    r.set(n.clone(), v.clone());
                }
                adm_serde::encode(&Value::record(r))
            })
            .collect();
        let mut b = SchemaBuilder::new();
        for e in &encoded {
            b.observe(e);
        }
        let schema = b.finish(0.25, 16);
        let fields_of = |buf: &[u8]| {
            let mut v: Vec<(String, Vec<u8>)> = Vec::new();
            adm_serde::for_each_record_field(buf, &mut |n, b| {
                v.push((n.to_string(), b.to_vec()));
                true
            })
            .unwrap();
            v.sort();
            v
        };
        for e in &encoded {
            let Some(s) = shred(&schema, e) else { continue };
            let back = splice_full(&schema, &s.cols, s.rest.as_deref()).unwrap();
            prop_assert_eq!(fields_of(e), fields_of(&back));
        }
    }

    /// A columnar LSM tree is invisible at the read boundary: under
    /// arbitrary record shapes — stable, heterogeneous, and non-record
    /// values mixed in — its flushed scan is byte-identical to a plain
    /// row tree holding the same data. (The build-time verify contract:
    /// any row the shredder cannot reproduce bit-exactly spills whole.)
    #[test]
    fn columnar_tree_scans_bit_identical_to_row_tree(
        rows in prop::collection::vec(
            (any::<u16>(), prop::collection::vec(("[a-d]{1,2}", every_value(false)), 0..6)),
            1..60
        ),
        bare in prop::collection::vec((any::<u16>(), every_value(false)), 0..8),
    ) {
        use asterix_storage::{ColumnarOptions, SelfDescribingCodec};
        let mk = |dir: &std::path::Path, columnar: Option<ColumnarOptions>| {
            LsmTree::open(
                dir,
                LsmConfig {
                    mem_budget: 1 << 20,
                    page_size: 256,
                    bloom_fpp: 0.01,
                    merge_policy: MergePolicy::NoMerge,
                    max_frozen: 2,
                    columnar,
                },
                BufferCache::new(64),
                Arc::new(NullObserver),
            )
            .unwrap()
        };
        let d1 = tempfile::TempDir::new().unwrap();
        let d2 = tempfile::TempDir::new().unwrap();
        let col = mk(d1.path(), Some(ColumnarOptions::new(Arc::new(SelfDescribingCodec))));
        let row = mk(d2.path(), None);
        let mut put = |k: u16, bytes: Vec<u8>| {
            col.insert(k.to_be_bytes().to_vec(), bytes.clone()).unwrap();
            row.insert(k.to_be_bytes().to_vec(), bytes).unwrap();
        };
        for (k, fields) in &rows {
            let mut r = Record::new();
            for (n, v) in fields {
                r.set(n.clone(), v.clone());
            }
            put(*k, adm_serde::encode(&Value::record(r)));
        }
        // Non-record rows can only ride the spill path (or force the whole
        // component back to row format) — either way reads are identical.
        for (k, v) in &bare {
            put(*k, adm_serde::encode(v));
        }
        col.flush().unwrap();
        row.flush().unwrap();
        prop_assert_eq!(col.scan(None, None).unwrap(), row.scan(None, None).unwrap());
    }
}
