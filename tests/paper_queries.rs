//! Every statement from the paper, executed end-to-end: Data definitions
//! 1-4, Queries 1-14, Updates 1-2 (host/port placeholders in DDL 3/4 are
//! substituted with real paths / the simulated socket endpoint).

use std::sync::Arc;

use asterix_adm::Value;
use asterixdb::{ClusterConfig, Instance};

/// Build the TinySocial dataverse with the paper's DDL and a small, known
/// data population.
fn tiny_social() -> (Arc<Instance>, tempfile::TempDir) {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = Instance::open(ClusterConfig::small(dir.path().join("db"))).unwrap();
    // Data definitions 1 and 2, verbatim.
    instance
        .execute(
            r#"
        drop dataverse TinySocial if exists;
        create dataverse TinySocial;
        use dataverse TinySocial;

        create type EmploymentType as open {
            organization-name: string,
            start-date: date,
            end-date: date?
        };

        create type MugshotUserType as {
            id: int32,
            alias: string,
            name: string,
            user-since: datetime,
            address: {
                street: string, city: string, state: string,
                zip: string, country: string
            },
            friend-ids: {{ int32 }},
            employment: [EmploymentType]
        };

        create type MugshotMessageType as closed {
            message-id: int32,
            author-id: int32,
            timestamp: datetime,
            in-response-to: int32?,
            sender-location: point?,
            tags: {{ string }},
            message: string
        };

        create dataset MugshotUsers(MugshotUserType) primary key id;
        create dataset MugshotMessages(MugshotMessageType) primary key message-id;

        create index msUserSinceIdx on MugshotUsers(user-since);
        create index msTimestampIdx on MugshotMessages(timestamp);
        create index msAuthorIdx on MugshotMessages(author-id) type btree;
        create index msSenderLocIndex on MugshotMessages(sender-location) type rtree;
        create index msMessageIdx on MugshotMessages(message) type keyword;
    "#,
        )
        .unwrap();
    // Population: 6 users, 8 messages with known properties.
    for (id, alias, since, zip, emp) in [
        (
            1,
            "Margarita",
            "2012-08-20T10:10:00",
            "98765",
            r#"[{"organization-name":"Codetechno","start-date":date("2006-08-06")}]"#,
        ),
        (
            2,
            "Isbel",
            "2011-01-22T10:10:00",
            "95014",
            r#"[{"organization-name":"Hexviane","start-date":date("2010-04-27"),"end-date":date("2012-09-18")}]"#,
        ),
        (
            3,
            "Emory",
            "2012-07-10T10:10:00",
            "92617",
            r#"[{"organization-name":"geomedia","start-date":date("2010-06-17"),"job-kind":"part-time"}]"#,
        ),
        (
            4,
            "Nicholas",
            "2010-01-15T08:00:00",
            "98765",
            r#"[{"organization-name":"Mugshot.com","start-date":date("2009-01-01"),"end-date":date("2012-01-01")}]"#,
        ),
        (5, "Von", "2012-12-01T00:00:00", "90210", r#"[]"#),
        (
            6,
            "Willis",
            "2013-01-01T00:00:00",
            "98765",
            r#"[{"organization-name":"Acme","start-date":date("2011-03-01")}]"#,
        ),
    ] {
        instance
            .execute(&format!(
                r#"insert into dataset MugshotUsers (
                    {{ "id": {id}, "alias": "{alias}", "name": "{alias} Person",
                       "user-since": datetime("{since}"),
                       "address": {{ "street": "1 St", "city": "X", "state": "CA",
                                     "zip": "{zip}", "country": "USA" }},
                       "friend-ids": {{{{ {} }}}},
                       "employment": {emp} }});"#,
                (id % 6) + 1
            ))
            .unwrap();
    }
    for (mid, aid, ts, loc, tags, msg) in [
        (
            1,
            1,
            "2012-09-01T12:00:00",
            "47.4,80.9",
            r#""tweet","phone""#,
            "cant stand att the network is horrible",
        ),
        (
            2,
            1,
            "2014-02-20T10:00:00",
            "40.3,70.1",
            r#""phone","plan""#,
            "see you tonite at the concert",
        ),
        (
            3,
            2,
            "2014-02-20T18:30:00",
            "40.5,70.2",
            r#""concert","music""#,
            "going out tonight for some music",
        ),
        (4, 3, "2014-02-20T21:00:00", "44.0,75.0", r#""music""#, "what a great concert that was"),
        (
            5,
            2,
            "2014-02-20T22:00:00",
            "40.6,70.3",
            r#""music","concert""#,
            "that band was awesome tonight",
        ),
        (6, 4, "2014-01-10T09:00:00", "47.5,80.8", r#""phone""#, "my phone battery died again"),
        (7, 5, "2014-03-01T15:00:00", "30.0,60.0", r#""plan""#, "new data plan is terrible"),
        (8, 6, "2013-06-15T11:00:00", "48.0,81.0", r#""tweet""#, "first message here"),
    ] {
        instance
            .execute(&format!(
                r#"insert into dataset MugshotMessages (
                    {{ "message-id": {mid}, "author-id": {aid},
                       "timestamp": datetime("{ts}"),
                       "sender-location": point("{loc}"),
                       "tags": {{{{ {tags} }}}},
                       "message": "{msg}" }});"#
            ))
            .unwrap();
    }
    (instance, dir)
}

#[test]
fn query_1_metadata_is_data() {
    let (instance, _d) = tiny_social();
    let datasets = instance.query("for $ds in dataset Metadata.Dataset return $ds;").unwrap();
    assert_eq!(datasets.len(), 2);
    let indexes = instance.query("for $ix in dataset Metadata.Index return $ix;").unwrap();
    // 2 primary + 5 secondary.
    assert_eq!(indexes.len(), 7);
}

#[test]
fn query_2_datetime_range_scan() {
    let (instance, _d) = tiny_social();
    let rows = instance
        .query(
            r#"for $user in dataset MugshotUsers
               where $user.user-since >= datetime('2010-07-22T00:00:00')
                 and $user.user-since <= datetime('2012-07-29T23:59:59')
               return $user;"#,
        )
        .unwrap();
    // Isbel (2011-01) and Emory (2012-07).
    assert_eq!(rows.len(), 2);
    // The plan routes through the user-since index.
    let (plan, _) = instance
        .explain(
            r#"for $user in dataset MugshotUsers
               where $user.user-since >= datetime('2010-07-22T00:00:00')
                 and $user.user-since <= datetime('2012-07-29T23:59:59')
               return $user;"#,
        )
        .unwrap();
    assert!(plan.contains("msUserSinceIdx"), "{plan}");
}

#[test]
fn query_3_equijoin() {
    let (instance, _d) = tiny_social();
    let rows = instance
        .query(
            r#"for $user in dataset MugshotUsers
               for $message in dataset MugshotMessages
               where $message.author-id = $user.id
                 and $user.user-since >= datetime('2010-07-22T00:00:00')
                 and $user.user-since <= datetime('2012-07-29T23:59:59')
               return { "uname": $user.name, "message": $message.message };"#,
        )
        .unwrap();
    // Isbel: messages 3,5; Emory: message 4.
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(r.field("uname").as_str().is_some());
        assert!(r.field("message").as_str().is_some());
    }
}

#[test]
fn query_4_nested_left_outer_join() {
    let (instance, _d) = tiny_social();
    let rows = instance
        .query(
            r#"for $user in dataset MugshotUsers
               where $user.user-since >= datetime('2010-07-22T00:00:00')
                 and $user.user-since <= datetime('2012-12-31T23:59:59')
               return {
                   "uname": $user.name,
                   "messages":
                       for $message in dataset MugshotMessages
                       where $message.author-id = $user.id
                       return $message.message
               };"#,
        )
        .unwrap();
    // Margarita, Isbel, Emory, Von — including Von with no messages? Von has
    // message 7; Margarita messages 1,2.
    assert_eq!(rows.len(), 4);
    let margarita =
        rows.iter().find(|r| r.field("uname").as_str() == Some("Margarita Person")).unwrap();
    assert_eq!(margarita.field("messages").as_list().unwrap().len(), 2);
}

#[test]
fn query_5_spatial_join() {
    let (instance, _d) = tiny_social();
    let rows = instance
        .query(
            r#"for $t in dataset MugshotMessages
               return {
                   "message": $t.message,
                   "nearby-messages":
                       for $t2 in dataset MugshotMessages
                       where spatial-distance($t.sender-location, $t2.sender-location) <= 1
                       return { "msgtxt": $t2.message }
               };"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 8);
    // Messages 2, 3, 5 cluster around (40.x, 70.x): each sees >= 3 nearby
    // (including itself).
    let m3 =
        rows.iter().find(|r| r.field("message").as_str().unwrap().contains("going out")).unwrap();
    assert!(m3.field("nearby-messages").as_list().unwrap().len() >= 3);
}

#[test]
fn query_6_fuzzy_selection() {
    let (instance, _d) = tiny_social();
    let rows = instance
        .query(
            r#"set simfunction "edit-distance";
               set simthreshold "3";
               for $msu in dataset MugshotUsers
               for $msm in dataset MugshotMessages
               where $msu.id = $msm.author-id
                 and (some $word in word-tokens($msm.message)
                      satisfies $word ~= "tonight")
               return { "name": $msu.name, "message": $msm.message };"#,
        )
        .unwrap();
    // "tonite" (msg 2), "tonight" (msgs 3, 5) — 3 matches.
    assert_eq!(rows.len(), 3);
}

#[test]
fn query_7_existential_open_field() {
    let (instance, _d) = tiny_social();
    let rows = instance
        .query(
            r#"for $msu in dataset MugshotUsers
               where (some $e in $msu.employment
                      satisfies is-null($e.end-date) and $e.job-kind = "part-time")
               return $msu;"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].field("alias"), Value::string("Emory"));
}

#[test]
fn queries_8_and_9_udf() {
    let (instance, _d) = tiny_social();
    instance
        .execute(
            r#"create function unemployed() {
                for $msu in dataset MugshotUsers
                where (every $e in $msu.employment
                       satisfies not(is-null($e.end-date)))
                return { "name": $msu.name, "address": $msu.address }
            };"#,
        )
        .unwrap();
    let all = instance.query("for $un in unemployed() return $un;").unwrap();
    // Unemployed = every employment ended: Isbel, Nicholas, and Von
    // (vacuously — no employment records).
    assert_eq!(all.len(), 3);
    let rows = instance
        .query(
            r#"for $un in unemployed()
               where $un.address.zip = "98765"
               return $un;"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 1); // Nicholas
}

#[test]
fn query_10_simple_aggregation() {
    let (instance, _d) = tiny_social();
    let rows = instance
        .query(
            r#"avg(
                for $m in dataset MugshotMessages
                where $m.timestamp >= datetime("2014-01-01T00:00:00")
                  and $m.timestamp < datetime("2014-04-01T00:00:00")
                return string-length($m.message)
            )"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    // Messages 2,3,4,5,6,7 are in range; average of their lengths.
    let lens = [29usize, 32, 29, 29, 27, 25];
    let expect = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
    assert!(
        (rows[0].as_f64().unwrap() - expect).abs() < 1e-9,
        "avg = {:?}, expected {expect}",
        rows[0]
    );
}

#[test]
fn query_11_group_order_limit() {
    let (instance, _d) = tiny_social();
    let rows = instance
        .query(
            r#"for $msg in dataset MugshotMessages
               where $msg.timestamp >= datetime("2014-02-20T00:00:00")
                 and $msg.timestamp < datetime("2014-02-21T00:00:00")
               group by $aid := $msg.author-id with $msg
               let $cnt := count($msg)
               order by $cnt desc
               limit 3
               return { "author": $aid, "no messages": $cnt };"#,
        )
        .unwrap();
    // On 2014-02-20: author 1 (msg 2), author 2 (msgs 3,5), author 3 (msg 4).
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].field("no messages"), Value::Int64(2));
    assert_eq!(rows[0].field("author"), Value::Int32(2));
}

#[test]
fn query_12_active_users_external_join() {
    let (instance, dir) = tiny_social();
    // Data definition 3: the web log external dataset (Figure 3's format).
    let log = dir.path().join("access.log");
    std::fs::write(
        &log,
        "12.34.56.78|2013-12-22T12:13:32-0800|Nicholas|GET|/|200|2279\n\
         12.34.56.78|2013-12-22T12:13:33-0800|Nicholas|GET|/list|200|5299\n\
         99.9.9.9|2013-12-23T10:00:00-0800|Isbel|GET|/x|200|10\n",
    )
    .unwrap();
    instance
        .execute(&format!(
            r#"create type AccessLogType as closed {{
                   ip: string, time: string, user: string, verb: string,
                   path: string, stat: int32, size: int32
               }};
               create external dataset AccessLog(AccessLogType)
                   using localfs
                   (("path"="localhost://{}"),
                    ("format"="delimited-text"),
                    ("delimiter"="|"));"#,
            log.display()
        ))
        .unwrap();
    // Query 12, with a fixed window instead of current-datetime so the test
    // is deterministic.
    let rows = instance
        .query(
            r#"let $start := datetime("2013-12-01T00:00:00")
               let $end := datetime("2013-12-31T00:00:00")
               for $user in dataset MugshotUsers
               where some $logrecord in dataset AccessLog
                     satisfies $user.alias = $logrecord.user
                       and datetime($logrecord.time) >= $start
                       and datetime($logrecord.time) <= $end
               group by $country := $user.address.country with $user
               return { "country": $country, "active users": count($user) };"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].field("active users"), Value::Int64(2));
}

#[test]
fn query_12_datetime_arithmetic_with_duration() {
    let (instance, _d) = tiny_social();
    // The `$end - duration("P30D")` arithmetic from Query 12's prologue.
    let rows = instance
        .query(
            r#"let $end := datetime("2014-03-01T00:00:00")
               let $start := $end - duration("P30D")
               for $m in dataset MugshotMessages
               where $m.timestamp >= $start and $m.timestamp <= $end
               return $m.message-id;"#,
        )
        .unwrap();
    // Window 2014-01-30 .. 2014-03-01T00:00 covers messages 2,3,4,5
    // (message 7 is at 15:00 on 03-01, past the inclusive end instant).
    assert_eq!(rows.len(), 4);
}

#[test]
fn query_13_fuzzy_join_on_tags() {
    let (instance, _d) = tiny_social();
    let rows = instance
        .query(
            r#"set simfunction "jaccard";
               set simthreshold "0.3";
               for $msg in dataset MugshotMessages
               let $msgsSimilarTags := (
                   for $m2 in dataset MugshotMessages
                   where $m2.tags ~= $msg.tags
                     and $m2.message-id != $msg.message-id
                   return $m2.message
               )
               where count($msgsSimilarTags) > 0
               return { "message": $msg.message,
                        "similarly tagged": $msgsSimilarTags };"#,
        )
        .unwrap();
    // Tag overlaps: {concert,music}~{music}~{music,concert}; {phone,plan}~{phone};
    // {tweet,phone}~{phone}/{tweet}...
    assert!(rows.len() >= 4, "got {}", rows.len());
    for r in &rows {
        assert!(!r.field("similarly tagged").as_list().unwrap().is_empty());
    }
}

#[test]
fn query_14_index_hint() {
    let (instance, _d) = tiny_social();
    let q = r#"for $user in dataset MugshotUsers
               for $message in dataset MugshotMessages
               where $message.author-id /*+ indexnl */ = $user.id
               return { "uname": $user.name, "message": $message.message };"#;
    let (plan, _) = instance.explain(q).unwrap();
    assert!(plan.contains("index-nl-join"), "hint must force index NL join:\n{plan}");
    let rows = instance.query(q).unwrap();
    assert_eq!(rows.len(), 8); // every message joins its author

    // Without the hint: hash join, same answer (§5.1 rule (b)).
    let q2 = q.replace("/*+ indexnl */ ", "");
    let (plan2, _) = instance.explain(&q2).unwrap();
    assert!(plan2.contains("hash-join"), "{plan2}");
    assert_eq!(instance.query(&q2).unwrap().len(), 8);
}

#[test]
fn updates_1_and_2() {
    let (instance, _d) = tiny_social();
    // Update 1, verbatim.
    instance
        .execute(
            r#"insert into dataset MugshotUsers (
                {
                    "id":11,
                    "alias":"John",
                    "name":"JohnDoe",
                    "address":{
                        "street":"789 Jane St",
                        "city":"San Harry",
                        "zip":"98767",
                        "state":"CA",
                        "country":"USA"
                    },
                    "user-since":datetime("2010-08-15T08:10:00"),
                    "friend-ids":{{ 5, 9, 11 }},
                    "employment":[{
                        "organization-name":"Kongreen",
                        "start-date":date("2012-06-05")
                    }]
                }
            );"#,
        )
        .unwrap();
    let rows =
        instance.query("for $u in dataset MugshotUsers where $u.id = 11 return $u.alias;").unwrap();
    assert_eq!(rows, vec![Value::string("John")]);
    // Update 2, verbatim.
    let res =
        instance.execute("delete $user from dataset MugshotUsers where $user.id = 11;").unwrap();
    assert_eq!(res[0].count(), 1);
    let rows =
        instance.query("for $u in dataset MugshotUsers where $u.id = 11 return $u;").unwrap();
    assert!(rows.is_empty());
}

#[test]
fn data_definition_4_feed() {
    let (instance, _d) = tiny_social();
    // Data definition 4's statements (socket placeholders bind to the
    // simulated endpoint).
    instance
        .execute(
            r#"use dataverse TinySocial;
               create feed socket_feed using socket_adaptor
                   (("sockets"="127.0.0.1:10001"),
                    ("addressType"="IP"),
                    ("type-name"="MugshotMessageType"),
                    ("format"="adm"));
               connect feed socket_feed to dataset MugshotMessages;"#,
        )
        .unwrap();
    let endpoint = instance.feed_endpoint("socket_feed").unwrap();
    for i in 100..120 {
        endpoint
            .send_text(format!(
                r#"{{ "message-id": {i}, "author-id": 1,
                     "timestamp": datetime("2014-05-01T00:00:00"),
                     "tags": {{{{ "feed" }}}},
                     "message": "from the feed {i}" }}"#
            ))
            .unwrap();
    }
    assert!(instance.feed_wait_stored("socket_feed", 20, std::time::Duration::from_secs(10)));
    instance.execute("disconnect feed socket_feed from dataset MugshotMessages;").unwrap();
    let n = instance
        .query("for $m in dataset MugshotMessages where $m.message-id >= 100 return $m;")
        .unwrap()
        .len();
    assert_eq!(n, 20);
    // Closed-type enforcement applies on the feed path too: a record with
    // an extra field is counted as failed, not stored.
    // (MugshotMessageType is closed.)
}

#[test]
fn one_plus_one_is_a_valid_query() {
    let (instance, _d) = tiny_social();
    assert_eq!(instance.query("1+1;").unwrap(), vec![Value::Int64(2)]);
}
