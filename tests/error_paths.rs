//! Error-path and edge-case coverage through the public API.

use asterixdb::{ClusterConfig, Instance};

fn instance(dir: &std::path::Path) -> std::sync::Arc<Instance> {
    Instance::open(ClusterConfig::small(dir)).unwrap()
}

#[test]
fn statement_errors_are_reported_not_panicked() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    // Parse error.
    assert!(ins.execute("for $x in").is_err());
    // Unknown dataverse.
    assert!(ins.execute("use dataverse Nope;").is_err());
    // Unknown dataset in a query.
    ins.execute("create dataverse E; use dataverse E;").unwrap();
    let err = ins.query("for $x in dataset Ghost return $x;").unwrap_err();
    assert!(err.to_string().contains("Ghost"), "{err}");
    // Unknown session parameter.
    assert!(ins.execute("set bogus \"1\";").is_err());
    // Dataset with an unknown type.
    assert!(ins.execute("create dataset D(NoType) primary key id;").is_err());
    // Duplicate dataverse.
    assert!(ins.execute("create dataverse E;").is_err());
    // Drop of missing things without `if exists` errors; with it, succeeds.
    assert!(ins.execute("drop dataset Ghost;").is_err());
    ins.execute("drop dataset Ghost if exists;").unwrap();
    ins.execute("drop type Ghost if exists;").unwrap();
    ins.execute("drop function ghost if exists;").unwrap();
}

#[test]
fn feed_rejects_records_that_fail_type_validation() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse F;
        use dataverse F;
        create type Strict as closed { id: int64 };
        create dataset D(Strict) primary key id;
        create feed f using socket_adaptor (("format"="adm"));
        connect feed f to dataset D;
    "#,
    )
    .unwrap();
    let ep = ins.feed_endpoint("f").unwrap();
    ep.send_text("{ \"id\": 1 }").unwrap(); // ok
    ep.send_text("{ \"id\": 2, \"extra\": true }").unwrap(); // closed-type violation
    ep.send_text("not adm at all").unwrap(); // parse failure
    ep.send_text("{ \"id\": 3 }").unwrap(); // ok
    assert!(ins.feed_wait_stored("f", 2, std::time::Duration::from_secs(5)));
    // Give the failing records a beat to be counted, then disconnect.
    std::thread::sleep(std::time::Duration::from_millis(50));
    ins.execute("disconnect feed f from dataset D;").unwrap();
    let rows = ins.query("for $d in dataset D return $d.id;").unwrap();
    assert_eq!(rows.len(), 2, "only valid records stored");
}

#[test]
fn distinct_by_through_full_stack() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse Q;
        use dataverse Q;
        create type T as open { id: int64, c: string };
        create dataset D(T) primary key id;
        insert into dataset D ([
            { "id": 1, "c": "x" }, { "id": 2, "c": "y" },
            { "id": 3, "c": "x" }, { "id": 4, "c": "z" },
            { "id": 5, "c": "y" }
        ]);
    "#,
    )
    .unwrap();
    let rows = ins.query("for $d in dataset D distinct by $d.c return $d.c;").unwrap();
    assert_eq!(rows.len(), 3);
}

#[test]
fn deeply_nested_queries_and_records() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse N;
        use dataverse N;
        create type T as open { id: int64 };
        create dataset D(T) primary key id;
        insert into dataset D ([{ "id": 1 }, { "id": 2 }, { "id": 3 }]);
    "#,
    )
    .unwrap();
    // Three levels of nesting: for each record, the list of records whose
    // id is smaller, each with the list of ids smaller than *that*.
    let rows = ins
        .query(
            r#"for $a in dataset D
               order by $a.id
               return {
                   "id": $a.id,
                   "below": for $b in dataset D
                            where $b.id < $a.id
                            return {
                                "id": $b.id,
                                "below": for $c in dataset D
                                         where $c.id < $b.id
                                         return $c.id
                            }
               };"#,
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    let third = &rows[2];
    let below = third.field("below");
    assert_eq!(below.as_list().unwrap().len(), 2);
    // Record printing of the whole nested result round-trips.
    let text = asterix_adm::print::to_adm_string(third);
    let back = asterix_adm::parse::parse_value(&text).unwrap();
    assert!(third.total_cmp(&back).is_eq());
}

#[test]
fn empty_dataset_edge_cases() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse Z;
        use dataverse Z;
        create type T as open { id: int64, v: int64 };
        create dataset D(T) primary key id;
        create index vIdx on D(v);
    "#,
    )
    .unwrap();
    assert!(ins.query("for $d in dataset D return $d;").unwrap().is_empty());
    assert_eq!(
        ins.query("count(for $d in dataset D return $d);").unwrap()[0],
        asterix_adm::Value::Int64(0)
    );
    assert_eq!(
        ins.query("avg(for $d in dataset D return $d.v);").unwrap()[0],
        asterix_adm::Value::Null
    );
    // Indexed query over empty data.
    assert!(ins.query("for $d in dataset D where $d.v = 5 return $d;").unwrap().is_empty());
    // Group by over empty input yields no groups.
    assert!(ins
        .query(
            "for $d in dataset D group by $k := $d.v with $d \
             let $c := count($d) return $c;"
        )
        .unwrap()
        .is_empty());
    // Delete from empty dataset affects nothing.
    let res = ins.execute("delete $d from dataset D where $d.id = 1;").unwrap();
    assert_eq!(res[0].count(), 0);
}

#[test]
fn dropped_dataset_storage_does_not_resurrect() {
    // A dropped dataset's flushed components must not reappear when a new
    // dataset is created under the same name.
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance(dir.path());
    ins.execute(
        r#"
        create dataverse RZ;
        use dataverse RZ;
        create type T as open { id: int64 };
        create dataset D(T) primary key id;
        insert into dataset D ([{ "id": 1 }, { "id": 2 }, { "id": 3 }]);
    "#,
    )
    .unwrap();
    // Force the data onto disk, then drop.
    ins.dataset("D").unwrap().flush_all().unwrap();
    ins.execute("drop dataset D;").unwrap();
    ins.execute("create dataset D(T) primary key id;").unwrap();
    assert!(
        ins.query("for $d in dataset D return $d;").unwrap().is_empty(),
        "recreated dataset must start empty"
    );
    ins.execute("insert into dataset D ({ \"id\": 1 });").unwrap();
    assert_eq!(ins.query("for $d in dataset D return $d;").unwrap().len(), 1);
}
