//! Differential testing: the compiled (Hyracks) path vs. the interpreter,
//! and indexed vs. scan plans, must agree on randomized data — the
//! cross-checking oracle for the whole query stack.

use std::collections::HashMap;
use std::sync::Arc;

use asterix_adm::functions::FunctionContext;
use asterix_adm::Value;
use asterix_algebricks::expr::EvalCtx;
use asterix_algebricks::interp;
use asterix_algebricks::metadata::MetadataProvider;
use asterix_algebricks::rules::{optimize, OptimizerOptions};
use asterix_aql::parser::parse_expression;
use asterix_aql::translate::Translator;
use asterixdb::{ClusterConfig, Instance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_instance(seed: u64, n: usize) -> (Arc<Instance>, tempfile::TempDir) {
    let dir = tempfile::TempDir::new().unwrap();
    let instance = Instance::open(ClusterConfig::small(dir.path())).unwrap();
    instance
        .execute(
            r#"
        create dataverse Diff;
        use dataverse Diff;
        create type UT as open { id: int64, grp: int64, score: int64, name: string };
        create dataset U(UT) primary key id;
        create index grpIdx on U(grp);
        create type MT as open { mid: int64, author: int64, len: int64 };
        create dataset M(MT) primary key mid;
        create index authorIdx on M(author);
    "#,
        )
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let users = instance.dataset("U").unwrap();
    for i in 0..n as i64 {
        let rec = asterix_adm::parse::parse_value(&format!(
            "{{ \"id\": {i}, \"grp\": {}, \"score\": {}, \"name\": \"u{i}\" }}",
            rng.gen_range(0..7),
            rng.gen_range(0..1000)
        ))
        .unwrap();
        users.insert(&rec).unwrap();
    }
    let msgs = instance.dataset("M").unwrap();
    for m in 0..(n * 3) as i64 {
        let rec = asterix_adm::parse::parse_value(&format!(
            "{{ \"mid\": {m}, \"author\": {}, \"len\": {} }}",
            rng.gen_range(0..n as i64),
            rng.gen_range(1..200)
        ))
        .unwrap();
        msgs.insert(&rec).unwrap();
    }
    (instance, dir)
}

/// Queries exercising scans, index paths, joins, groups, sorts, subqueries.
const QUERIES: &[&str] = &[
    "for $u in dataset U where $u.grp = 3 return $u.id",
    "for $u in dataset U where $u.id = 17 return $u.name",
    "for $u in dataset U where $u.score >= 100 and $u.score < 300 return $u.id",
    "for $u in dataset U for $m in dataset M where $m.author = $u.id and $u.grp = 2 \
     return { \"n\": $u.name, \"l\": $m.len }",
    "for $u in dataset U for $m in dataset M where $m.author /*+ indexnl */ = $u.id \
     and $u.grp = 2 return $m.mid",
    "for $m in dataset M group by $a := $m.author with $m let $c := count($m) \
     where $c > 2 return { \"a\": $a, \"c\": $c }",
    "for $u in dataset U order by $u.score desc, $u.id asc limit 7 return $u.id",
    "avg(for $m in dataset M where $m.author < 10 return $m.len)",
    "for $u in dataset U where $u.grp = 1 \
     return { \"u\": $u.id, \"msgs\": for $m in dataset M where $m.author = $u.id \
     return $m.mid }",
    "sum(for $u in dataset U return $u.score)",
    "for $u in dataset U where some $x in [1, 2, 3] satisfies $u.grp = $x return $u.id",
];

fn canonical(mut rows: Vec<Value>) -> Vec<String> {
    rows.sort_by(|a, b| a.total_cmp(b));
    rows.iter().map(asterix_adm::print::to_adm_string).collect()
}

/// For nested queries the inner list order is nondeterministic across
/// plans; normalize by sorting inner lists too.
fn deep_canonical(rows: Vec<Value>) -> Vec<String> {
    fn norm(v: &Value) -> Value {
        match v {
            Value::Record(r) => {
                let mut out = asterix_adm::Record::new();
                for (k, x) in r.iter() {
                    out.push_unchecked(k, norm(x));
                }
                Value::record(out)
            }
            Value::OrderedList(items) => {
                let mut xs: Vec<Value> = items.iter().map(norm).collect();
                xs.sort_by(|a, b| a.total_cmp(b));
                Value::ordered_list(xs)
            }
            other => other.clone(),
        }
    }
    canonical(rows.iter().map(norm).collect())
}

#[test]
fn compiled_equals_interpreted_on_random_data() {
    let (instance, _d) = build_instance(0xA57E, 120);
    // Reach inside: build provider + translator the way the instance does,
    // so we can run the interpreter against the same storage.
    for q in QUERIES {
        let compiled_rows = instance.query(q).unwrap();

        // Interpreter path over the same optimized plan.
        let provider: Arc<dyn MetadataProvider> =
            Arc::new(asterixdb::provider::InstanceProvider { shared: instance_shared(&instance) });
        let catalog = asterixdb::provider::SessionCatalog {
            shared: instance_shared(&instance),
            current_dataverse: "Diff".to_string(),
        };
        let mut tr = Translator::new(&catalog);
        let e = parse_expression(q).unwrap();
        let plan = tr.translate_query(&e).unwrap();
        let fctx = FunctionContext::default();
        let optimized = optimize(plan, &provider, &fctx, &OptimizerOptions::default());
        let ctx = EvalCtx::new(Arc::clone(&provider), fctx);
        let interp_rows = interp::eval_subplan(&optimized, &HashMap::new(), &ctx).unwrap();

        let ordered = q.contains("order by");
        if ordered {
            assert_eq!(compiled_rows, interp_rows, "ordered results differ for {q}");
        } else {
            assert_eq!(
                deep_canonical(compiled_rows),
                deep_canonical(interp_rows),
                "results differ for {q}"
            );
        }
    }
}

#[test]
fn indexed_and_scan_plans_agree() {
    let (instance, _d) = build_instance(0xBEEF, 150);
    for q in QUERIES {
        instance.optimizer_options.write().enable_index_access = true;
        let with_ix = instance.query(q).unwrap();
        instance.optimizer_options.write().enable_index_access = false;
        let without = instance.query(q).unwrap();
        if q.contains("order by") {
            assert_eq!(with_ix, without, "ordered results differ for {q}");
        } else {
            assert_eq!(deep_canonical(with_ix), deep_canonical(without), "results differ for {q}");
        }
    }
}

#[test]
fn limit_pushdown_ablation_agrees() {
    let (instance, _d) = build_instance(0xCAFE, 150);
    let q = "for $u in dataset U order by $u.score desc, $u.id asc limit 9 return $u.id";
    instance.optimizer_options.write().push_limit_into_sort = false;
    let plain = instance.query(q).unwrap();
    instance.optimizer_options.write().push_limit_into_sort = true;
    let pushed = instance.query(q).unwrap();
    assert_eq!(plain, pushed);
    assert_eq!(plain.len(), 9);
}

#[test]
fn compiled_jobgen_and_run_random_filters() {
    // Fuzz filter thresholds: compiled results must equal a straight scan
    // filter computed in the test.
    let (instance, _d) = build_instance(0xF00D, 200);
    let all = instance.query("for $u in dataset U return $u;").unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..12 {
        let lo = rng.gen_range(0..900i64);
        let hi = lo + rng.gen_range(1..100i64);
        let rows = instance
            .query(&format!(
                "for $u in dataset U where $u.score >= {lo} and $u.score < {hi} return $u.id;"
            ))
            .unwrap();
        let expect = all
            .iter()
            .filter(|u| {
                let s = u.field("score").as_i64().unwrap();
                s >= lo && s < hi
            })
            .count();
        assert_eq!(rows.len(), expect, "score in [{lo},{hi})");
    }
}

/// Access the instance's shared state (the provider constructor is public
/// for embedding scenarios like this one).
fn instance_shared(instance: &Instance) -> Arc<asterixdb::provider::Shared> {
    instance.shared_state()
}
