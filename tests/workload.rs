//! Workload-manager integration tests: admission control bounding
//! concurrent queries, typed rejection when the wait queue is full, and
//! cooperative cancellation / deadlines unwinding running queries without
//! leaking memory grants or spill files.

use std::sync::Arc;
use std::time::{Duration, Instant};

use asterixdb::{AdmissionError, AsterixError, ClusterConfig, Instance, JobState, QueryOpts};

fn instance_with(
    dir: &std::path::Path,
    tune: impl FnOnce(&mut ClusterConfig),
) -> std::sync::Arc<Instance> {
    let mut cfg = ClusterConfig::small(dir);
    tune(&mut cfg);
    Instance::open(cfg).unwrap()
}

/// Create dataverse `W` with dataset `Big` holding `rows` padded records in
/// three groups, so a self-join on `grp` fans out to (rows/3)^2 * 3 pairs.
fn load_big(ins: &Instance, rows: usize) {
    ins.execute(
        r#"
        create dataverse W;
        use dataverse W;
        create type R as open { id: int64, grp: int64, pad: string };
        create dataset Big(R) primary key id;
    "#,
    )
    .unwrap();
    for start in (0..rows).step_by(300) {
        let objs: Vec<String> = (start..(start + 300).min(rows))
            .map(|i| {
                format!("{{ \"id\": {i}, \"grp\": {}, \"pad\": \"{}\" }}", i % 3, "x".repeat(40))
            })
            .collect();
        ins.execute(&format!("insert into dataset Big ([{}]);", objs.join(", "))).unwrap();
    }
}

/// A query heavy enough (self-join fan-out plus a large sort) that it is
/// reliably still running when the test cancels it.
const HEAVY: &str = r#"for $a in dataset Big
for $b in dataset Big
where $a.grp = $b.grp
order by $a.id
return { "a": $a.id, "b": $b.id };"#;

/// Spin until the workload manager shows a Running job, then return it.
fn wait_for_running(ins: &Instance) -> asterixdb::JobInfo {
    let start = Instant::now();
    loop {
        if let Some(j) = ins.list_jobs().into_iter().find(|j| j.state == JobState::Running) {
            return j;
        }
        assert!(start.elapsed() < Duration::from_secs(10), "query never reached Running");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn admission_caps_concurrent_queries() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance_with(dir.path(), |cfg| {
        cfg.max_concurrent_queries = 2;
        cfg.max_queued_queries = 64;
        cfg.admission_timeout = Duration::from_secs(60);
    });
    load_big(&ins, 60);
    let mut handles = Vec::new();
    for _ in 0..6 {
        let ins = Arc::clone(&ins);
        handles.push(std::thread::spawn(move || {
            ins.query("for $x in dataset Big where $x.grp = 1 return $x.id;")
        }));
    }
    for h in handles {
        let rows = h.join().unwrap().unwrap();
        assert_eq!(rows.len(), 20);
    }
    let stats = ins.resource_manager().stats();
    // The six query threads (plus the sequential setup statements) were all
    // admitted, but never more than two executed at once.
    assert!(stats.admitted.get() >= 6);
    assert!(stats.running.peak() <= 2, "admission cap exceeded: peak {}", stats.running.peak());
    assert_eq!(stats.rejected.get(), 0);
    assert!(ins.list_jobs().is_empty());
}

#[test]
fn admission_rejects_when_queue_is_full() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance_with(dir.path(), |cfg| {
        cfg.max_concurrent_queries = 1;
        cfg.max_queued_queries = 0;
    });
    load_big(&ins, 900);
    let runner = {
        let ins = Arc::clone(&ins);
        std::thread::spawn(move || ins.query(HEAVY))
    };
    let hog = wait_for_running(&ins);
    // One slot, zero queue capacity: the next query is rejected outright
    // with a typed error rather than blocking.
    match ins.query("for $x in dataset Big return $x.id;") {
        Err(AsterixError::Admission(AdmissionError::Rejected { queued, max_queued })) => {
            assert_eq!((queued, max_queued), (0, 0));
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert!(ins.resource_manager().stats().rejected.get() >= 1);
    // Put the hog out of its misery and confirm it unwound as cancelled.
    assert!(ins.cancel(hog.id));
    match runner.join().unwrap() {
        Err(AsterixError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn cancel_and_deadline_unwind_without_leaks() {
    let dir = tempfile::TempDir::new().unwrap();
    let ins = instance_with(dir.path(), |cfg| {
        // A tiny per-query grant forces the heavy join/sort to spill, so
        // this also exercises spill-file cleanup on the cancel path.
        cfg.per_query_mem_bytes = 2 << 20;
    });
    load_big(&ins, 1500);

    // Part 1: explicit cancel of a running query.
    let runner = {
        let ins = Arc::clone(&ins);
        std::thread::spawn(move || ins.query(HEAVY))
    };
    let victim = wait_for_running(&ins);
    assert!(victim.mem_granted > 0, "running job should hold a grant");
    assert!(ins.cancel(victim.id));
    let cancelled_at = Instant::now();
    match runner.join().unwrap() {
        Err(AsterixError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(
        cancelled_at.elapsed() < Duration::from_secs(5),
        "cancellation must unwind promptly, took {:?}",
        cancelled_at.elapsed()
    );
    let stats = ins.resource_manager().stats();
    assert_eq!(stats.cancelled.get(), 1);

    // Part 2: a deadline fires the same cooperative unwind on its own.
    let res = ins.query_with(HEAVY, &QueryOpts { deadline: Some(Duration::from_millis(50)) });
    match res {
        Err(AsterixError::Cancelled) => {}
        other => panic!("expected Cancelled from deadline, got {other:?}"),
    }
    assert_eq!(stats.cancelled.get(), 2);

    // Both tickets dropped: jobs table empty, every grant returned.
    assert!(ins.list_jobs().is_empty());
    assert_eq!(stats.mem_granted_bytes.get(), 0);

    // No spill files survive the unwinds. (The other tests in this binary
    // run entirely in memory, so any marker here is a leak from this test.)
    let pid = std::process::id();
    let leaked: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| {
            n.starts_with(&format!("asterix-sort-{pid}-"))
                || n.starts_with(&format!("asterix-join-{pid}-"))
        })
        .collect();
    assert!(leaked.is_empty(), "spill files leaked: {leaked:?}");
}
