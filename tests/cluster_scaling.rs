//! Cluster-shape sanity: the same workload must produce identical answers
//! across cluster topologies (1×1, 2×2, 4×3 nodes×partitions) — the
//! "scale gracefully" desideratum (#7 in §1), scaled to a laptop.

use asterix_adm::Value;
use asterixdb::{ClusterConfig, Instance};

fn run_workload(nodes: usize, ppn: usize) -> (usize, Vec<Value>, Value) {
    let dir = tempfile::TempDir::new().unwrap();
    let mut cfg = ClusterConfig::small(dir.path());
    cfg.nodes = nodes;
    cfg.partitions_per_node = ppn;
    let instance = Instance::open(cfg).unwrap();
    instance
        .execute(
            r#"
        create dataverse C;
        use dataverse C;
        create type U as open { id: int64, grp: int64 };
        create type M as open { mid: int64, author: int64, n: int64 };
        create dataset Users(U) primary key id;
        create dataset Msgs(M) primary key mid;
        create index grpIdx on Users(grp);
    "#,
        )
        .unwrap();
    let users = instance.dataset("Users").unwrap();
    for i in 0..300i64 {
        users
            .insert(
                &asterix_adm::parse::parse_value(&format!(
                    "{{ \"id\": {i}, \"grp\": {} }}",
                    i % 11
                ))
                .unwrap(),
            )
            .unwrap();
    }
    let msgs = instance.dataset("Msgs").unwrap();
    for m in 0..900i64 {
        msgs.insert(
            &asterix_adm::parse::parse_value(&format!(
                "{{ \"mid\": {m}, \"author\": {}, \"n\": {} }}",
                m % 300,
                m % 7
            ))
            .unwrap(),
        )
        .unwrap();
    }

    // Join + filter.
    let join = instance
        .query(
            "for $u in dataset Users for $m in dataset Msgs \
             where $m.author = $u.id and $u.grp = 4 return $m.mid;",
        )
        .unwrap()
        .len();
    // Grouped aggregation with global ordering.
    let grouped = instance
        .query(
            "for $m in dataset Msgs group by $k := $m.n with $m \
             let $c := count($m) order by $k return $c;",
        )
        .unwrap();
    // Scalar aggregate.
    let total = instance.query("sum(for $m in dataset Msgs return $m.n);").unwrap().pop().unwrap();
    (join, grouped, total)
}

#[test]
fn answers_are_topology_invariant() {
    let base = run_workload(1, 1);
    for (nodes, ppn) in [(2, 2), (4, 3), (1, 8)] {
        let got = run_workload(nodes, ppn);
        assert_eq!(got.0, base.0, "join count at {nodes}x{ppn}");
        assert_eq!(got.1, base.1, "group counts at {nodes}x{ppn}");
        assert_eq!(got.2.total_cmp(&base.2), std::cmp::Ordering::Equal, "sum at {nodes}x{ppn}");
    }
    // And the absolute values are right.
    // grp 4 has users 4, 15, 26, ..., 290 → 27 users; each user authors 3
    // messages (900 msgs over 300 authors).
    assert_eq!(base.0, 27 * 3);
    assert_eq!(base.1.len(), 7);
}
