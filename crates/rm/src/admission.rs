//! Bounded-concurrency admission queue.
//!
//! Modeled on the Cluster Controller's job-management role in the paper:
//! at most `max_concurrent` queries execute at once, at most `max_queued`
//! wait behind them, and a waiter gives up after `queue_timeout`. All
//! waiting is condvar-based — no sleep-polling — so release, cancellation,
//! and timeout latency are not quantized.

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cancel::CancellationToken;
use crate::stats::RmStats;

/// Typed admission failures, surfaced to clients as distinct error variants
/// so callers can tell "back off and retry" (queue pressure) from "give up".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The wait queue is full: the query was turned away immediately.
    Rejected { queued: usize, max_queued: usize },
    /// The query waited `queue_timeout` without getting a slot.
    QueueTimeout { waited: Duration },
    /// The query was cancelled (or its deadline fired) while still queued.
    Cancelled,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Rejected { queued, max_queued } => {
                write!(f, "admission rejected: {queued}/{max_queued} queries already queued")
            }
            AdmissionError::QueueTimeout { waited } => {
                write!(f, "admission queue timeout after {waited:?}")
            }
            AdmissionError::Cancelled => write!(f, "cancelled while queued for admission"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Default)]
struct AdmState {
    running: usize,
    queued: usize,
}

/// The admission gate. `admit()` blocks on a condvar until a slot frees,
/// the timeout elapses, or the query's cancellation token fires.
pub struct AdmissionController {
    max_concurrent: usize,
    max_queued: usize,
    queue_timeout: Duration,
    state: Mutex<AdmState>,
    cv: Condvar,
    stats: RmStats,
}

impl AdmissionController {
    pub fn new(
        max_concurrent: usize,
        max_queued: usize,
        queue_timeout: Duration,
        stats: RmStats,
    ) -> Arc<AdmissionController> {
        Arc::new(AdmissionController {
            max_concurrent: max_concurrent.max(1),
            max_queued,
            queue_timeout,
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
            stats,
        })
    }

    /// Wait for an execution slot. Returns an RAII [`AdmissionPermit`]
    /// whose drop frees the slot and wakes the next waiter.
    pub fn admit(
        self: &Arc<Self>,
        token: Option<&CancellationToken>,
    ) -> Result<AdmissionPermit, AdmissionError> {
        let mut st = self.state.lock().unwrap();
        if st.running < self.max_concurrent {
            st.running += 1;
            self.stats.running.add(1);
            self.stats.admitted.inc();
            self.stats.queue_wait_us.record(0);
            return Ok(AdmissionPermit { ctrl: Arc::clone(self) });
        }
        if st.queued >= self.max_queued {
            self.stats.rejected.inc();
            return Err(AdmissionError::Rejected {
                queued: st.queued,
                max_queued: self.max_queued,
            });
        }
        st.queued += 1;
        self.stats.queued.add(1);
        let start = Instant::now();
        loop {
            if token.is_some_and(|t| t.is_cancelled()) {
                st.queued -= 1;
                self.stats.queued.sub(1);
                return Err(AdmissionError::Cancelled);
            }
            let waited = start.elapsed();
            let Some(mut remaining) = self.queue_timeout.checked_sub(waited) else {
                st.queued -= 1;
                self.stats.queued.sub(1);
                self.stats.rejected.inc();
                return Err(AdmissionError::QueueTimeout { waited });
            };
            // A deadline token must wake at its deadline, not at the queue
            // timeout; wait until whichever comes first.
            if let Some(until_deadline) = token.and_then(|t| t.until_deadline()) {
                remaining = remaining.min(until_deadline);
            }
            let (guard, _timed_out) = self.cv.wait_timeout(st, remaining).unwrap();
            st = guard;
            if st.running < self.max_concurrent {
                st.queued -= 1;
                st.running += 1;
                self.stats.queued.sub(1);
                self.stats.running.add(1);
                self.stats.admitted.inc();
                self.stats.queue_wait_us.record(start.elapsed().as_micros() as u64);
                return Ok(AdmissionPermit { ctrl: Arc::clone(self) });
            }
        }
    }

    /// Wake every queued waiter so it can re-check its cancellation token.
    pub fn wake_all(&self) {
        let _st = self.state.lock().unwrap();
        self.cv.notify_all();
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.running -= 1;
        self.stats.running.sub(1);
        self.cv.notify_all();
    }
}

/// One occupied execution slot; dropping it releases the slot.
pub struct AdmissionPermit {
    ctrl: Arc<AdmissionController>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.ctrl.release();
    }
}
