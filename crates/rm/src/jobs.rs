//! Live jobs table: the reproduction of the Cluster Controller's job view.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use asterix_obs::Counter;

use crate::cancel::CancellationToken;

/// Lifecycle of an admitted-or-waiting query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for an admission slot.
    Queued,
    /// Executing.
    Running,
    /// Cancellation requested; the job is unwinding cooperatively.
    Cancelling,
}

impl JobState {
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Cancelling => "cancelling",
        }
    }
}

/// Snapshot of one live job as returned by `Instance::list_jobs()`.
#[derive(Clone, Debug)]
pub struct JobInfo {
    pub id: u64,
    pub state: JobState,
    pub description: String,
    /// Bytes granted from the memory pool (0 while queued).
    pub mem_granted: usize,
    /// Tuples the job's executor has pushed through its exchanges so far.
    pub tuples: u64,
    /// Trace ID when the job runs under tracing (0 otherwise).
    pub trace_id: u64,
}

struct JobEntry {
    state: JobState,
    description: String,
    token: CancellationToken,
    mem_granted: usize,
    /// Shared with the executor, which bumps it as frames are sent.
    progress: Counter,
    trace_id: u64,
}

/// Id-ordered table of live jobs. Entries exist from registration (Queued)
/// until the owning `QueryTicket` drops.
#[derive(Default)]
pub struct JobTable {
    next_id: AtomicU64,
    jobs: Mutex<BTreeMap<u64, JobEntry>>,
}

impl JobTable {
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// Register a new job in Queued state; returns its id.
    pub fn register(&self, description: &str, token: CancellationToken) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.jobs.lock().unwrap().insert(
            id,
            JobEntry {
                state: JobState::Queued,
                description: description.to_string(),
                token,
                mem_granted: 0,
                progress: Counter::new(),
                trace_id: 0,
            },
        );
        id
    }

    /// The job's live tuple-progress counter (a cheap atomic handle the
    /// executor bumps), or a detached counter for unknown ids.
    pub fn progress(&self, id: u64) -> Counter {
        self.jobs.lock().unwrap().get(&id).map(|e| e.progress.clone()).unwrap_or_default()
    }

    /// Tag a job with the trace it is recording into.
    pub fn set_trace(&self, id: u64, trace_id: u64) {
        if let Some(e) = self.jobs.lock().unwrap().get_mut(&id) {
            e.trace_id = trace_id;
        }
    }

    pub fn set_running(&self, id: u64, mem_granted: usize) {
        if let Some(e) = self.jobs.lock().unwrap().get_mut(&id) {
            // A cancel that raced admission keeps the Cancelling state.
            if e.state == JobState::Queued {
                e.state = JobState::Running;
            }
            e.mem_granted = mem_granted;
        }
    }

    /// Flip a job to Cancelling and hand back its token, or None when the
    /// id is unknown (already finished).
    pub fn cancel(&self, id: u64) -> Option<CancellationToken> {
        let mut jobs = self.jobs.lock().unwrap();
        jobs.get_mut(&id).map(|e| {
            e.state = JobState::Cancelling;
            e.token.clone()
        })
    }

    pub fn remove(&self, id: u64) {
        self.jobs.lock().unwrap().remove(&id);
    }

    pub fn list(&self) -> Vec<JobInfo> {
        self.jobs
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, e)| JobInfo {
                id,
                state: e.state,
                description: e.description.clone(),
                mem_granted: e.mem_granted,
                tuples: e.progress.get(),
                trace_id: e.trace_id,
            })
            .collect()
    }
}
