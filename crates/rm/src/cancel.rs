//! Cooperative cancellation tokens.
//!
//! A token is a cheap `Arc<AtomicBool>` clone (plus an optional absolute
//! deadline) that the executor threads check at frame-send and
//! `PipelineOp::push` boundaries. Once set, a cancelled query unwinds
//! through the same error path as `DownstreamClosed` early-stop, so spill
//! files are removed by their RAII guards and channels drain normally.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Shared cancellation flag with an optional deadline. Clones observe the
/// same state; the default token never fires on its own.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    inner: Arc<TokenInner>,
}

impl CancellationToken {
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// A token that auto-cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancellationToken {
        CancellationToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that auto-cancels `after` from now.
    pub fn deadline_in(after: Duration) -> CancellationToken {
        CancellationToken::with_deadline(Instant::now() + after)
    }

    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once `cancel()` was called or the deadline passed. A fired
    /// deadline latches the flag so later checks are a single atomic load.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Time left until the deadline (None when no deadline is set; zero
    /// when it already passed).
    pub fn until_deadline(&self) -> Option<Duration> {
        self.inner.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}
