//! `rm.*` metric handles, adopted by the instance-wide registry.

use asterix_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Workload-manager metrics. Handles are `Arc`-backed clones updated with
/// relaxed atomics on the admission/grant paths; `register_into` adopts
/// them under `{prefix}.*` so the Table 3/4 bench JSON `metrics` block and
/// `Instance::metrics_json()` carry them without extra plumbing.
#[derive(Clone, Debug, Default)]
pub struct RmStats {
    /// Queries that got an execution slot (immediately or after queueing).
    pub admitted: Counter,
    /// Queries turned away: full wait queue or queue-wait timeout.
    pub rejected: Counter,
    /// Queries that actually unwound due to cancellation or deadline.
    pub cancelled: Counter,
    /// Admission wait per admitted query (µs; 0 for immediate admission).
    pub queue_wait_us: Histogram,
    /// Live bytes granted from the query memory pool (peak = high water).
    pub mem_granted_bytes: Gauge,
    /// Queries currently executing (peak ≤ max_concurrent by construction).
    pub running: Gauge,
    /// Queries currently waiting for admission.
    pub queued: Gauge,
}

impl RmStats {
    pub fn new() -> RmStats {
        RmStats::default()
    }

    /// Adopt every handle into `reg` under `{prefix}.*`.
    pub fn register_into(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.register_counter(&format!("{prefix}.admitted"), &self.admitted);
        reg.register_counter(&format!("{prefix}.rejected"), &self.rejected);
        reg.register_counter(&format!("{prefix}.cancelled"), &self.cancelled);
        reg.register_histogram(&format!("{prefix}.queue_wait_us"), &self.queue_wait_us);
        reg.register_gauge(&format!("{prefix}.mem_granted_bytes"), &self.mem_granted_bytes);
        reg.register_gauge(&format!("{prefix}.running"), &self.running);
        reg.register_gauge(&format!("{prefix}.queued"), &self.queued);
    }
}
