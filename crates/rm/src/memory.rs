//! Cluster-wide query memory pool.
//!
//! Each admitted query takes a [`MemoryGrant`] — at most its ask, at most
//! the pool's headroom, never below the configured floor (admission already
//! bounds how many grants can be live, so the floor is a bounded
//! overcommit, not a leak). The compiler divides the grant across the
//! plan's sort/group/join operators; dropping the grant returns the bytes.

use std::sync::{Arc, Mutex};

use asterix_obs::Gauge;

pub struct MemoryPool {
    capacity: usize,
    min_grant: usize,
    used: Mutex<usize>,
    /// `rm.mem_granted_bytes`: live grant total, with peak tracking.
    gauge: Gauge,
}

impl MemoryPool {
    pub fn new(capacity: usize, min_grant: usize, gauge: Gauge) -> Arc<MemoryPool> {
        Arc::new(MemoryPool { capacity, min_grant: min_grant.max(1), used: Mutex::new(0), gauge })
    }

    /// Carve `want` bytes (clamped to headroom, floored at `min_grant`) out
    /// of the pool. Never blocks: admission is the concurrency gate.
    pub fn grant(self: &Arc<Self>, want: usize) -> MemoryGrant {
        let mut used = self.used.lock().unwrap();
        let headroom = self.capacity.saturating_sub(*used);
        let bytes = want.min(headroom).max(self.min_grant);
        *used += bytes;
        self.gauge.add(bytes as i64);
        MemoryGrant { pool: Arc::clone(self), bytes }
    }

    pub fn used(&self) -> usize {
        *self.used.lock().unwrap()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One query's slice of the pool; dropping it returns the bytes.
pub struct MemoryGrant {
    pool: Arc<MemoryPool>,
    bytes: usize,
}

impl MemoryGrant {
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for MemoryGrant {
    fn drop(&mut self) {
        let mut used = self.pool.used.lock().unwrap();
        *used = used.saturating_sub(self.bytes);
        self.pool.gauge.sub(self.bytes as i64);
    }
}
