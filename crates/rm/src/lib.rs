//! Workload manager (resource manager) for the AsterixDB reproduction.
//!
//! The paper's Hyracks layer is a *managed* runtime: the Cluster Controller
//! tracks every job's lifecycle and the memory-hungry operators (sort,
//! hybrid hash join) run against fixed budgets. This crate supplies that
//! missing layer for the reproduction:
//!
//! - [`AdmissionController`] — a bounded-concurrency admission queue with a
//!   bounded wait queue and a queue-wait timeout, producing typed
//!   [`AdmissionError::Rejected`] / [`AdmissionError::QueueTimeout`] errors.
//! - [`MemoryPool`] — a cluster-wide pool that grants each admitted query a
//!   memory budget ([`MemoryGrant`], released on drop) which the compiler
//!   divides across the plan's sort/group/join operators.
//! - [`CancellationToken`] — a cooperative cancellation flag (with optional
//!   deadline) carried by a running job and checked at frame boundaries.
//! - [`JobTable`] — the live jobs table behind `Instance::list_jobs()`.
//! - [`RmStats`] — `rm.*` metrics (admitted/rejected/cancelled counters,
//!   queue-wait histogram, granted-bytes and running/queued gauges) that
//!   register into the instance-wide `MetricsRegistry`.
//!
//! Everything here is dependency-light by design: std sync primitives plus
//! `asterix-obs` metric handles. The [`ResourceManager`] facade ties the
//! pieces together for `asterixdb::Instance`.

mod admission;
mod cancel;
mod jobs;
mod memory;
mod stats;

use std::sync::Arc;
use std::time::Duration;

pub use admission::{AdmissionController, AdmissionError, AdmissionPermit};
pub use cancel::CancellationToken;
pub use jobs::{JobInfo, JobState, JobTable};
pub use memory::{MemoryGrant, MemoryPool};
pub use stats::RmStats;

/// Sizing knobs for a [`ResourceManager`]. Defaults are generous so an
/// unconfigured instance behaves like the pre-workload-manager code.
#[derive(Clone, Debug)]
pub struct RmConfig {
    /// Queries allowed to execute at once; further queries wait.
    pub max_concurrent: usize,
    /// Queries allowed to wait for admission; further queries are rejected.
    pub max_queued: usize,
    /// How long a query may wait for admission before `QueueTimeout`.
    pub queue_timeout: Duration,
    /// Cluster-wide query working-memory pool divided among running queries.
    pub mem_pool_bytes: usize,
    /// Working-memory budget requested per query (capped by pool headroom).
    pub per_query_mem_bytes: usize,
    /// Floor for a grant even when the pool is exhausted — admission already
    /// bounds concurrency, so this bounded overcommit avoids starving an
    /// admitted query outright.
    pub min_grant_bytes: usize,
}

impl Default for RmConfig {
    fn default() -> RmConfig {
        RmConfig {
            max_concurrent: 64,
            max_queued: 256,
            queue_timeout: Duration::from_secs(10),
            mem_pool_bytes: 1 << 30,
            per_query_mem_bytes: 128 << 20,
            min_grant_bytes: 1 << 20,
        }
    }
}

/// Facade over admission, memory, cancellation, and the jobs table.
///
/// `begin()` runs a query through admission, grants it memory, and returns a
/// [`QueryTicket`] whose drop releases everything — the RAII shape means no
/// exit path (success, error, cancellation, panic unwind) can leak a permit
/// or a grant.
pub struct ResourceManager {
    admission: Arc<AdmissionController>,
    pool: Arc<MemoryPool>,
    jobs: JobTable,
    stats: RmStats,
    per_query_mem: usize,
}

impl ResourceManager {
    pub fn new(cfg: RmConfig) -> Arc<ResourceManager> {
        let stats = RmStats::new();
        let admission = AdmissionController::new(
            cfg.max_concurrent,
            cfg.max_queued,
            cfg.queue_timeout,
            stats.clone(),
        );
        let pool = MemoryPool::new(
            cfg.mem_pool_bytes,
            cfg.min_grant_bytes,
            stats.mem_granted_bytes.clone(),
        );
        Arc::new(ResourceManager {
            admission,
            pool,
            jobs: JobTable::new(),
            stats,
            per_query_mem: cfg.per_query_mem_bytes,
        })
    }

    pub fn stats(&self) -> &RmStats {
        &self.stats
    }

    /// Admit one query: register it as Queued, wait for an admission slot,
    /// then grant memory and flip it to Running. `deadline` (relative)
    /// arms the ticket's cancellation token to fire on expiry.
    pub fn begin(
        self: &Arc<Self>,
        description: &str,
        deadline: Option<Duration>,
    ) -> Result<QueryTicket, AdmissionError> {
        let token = match deadline {
            Some(d) => CancellationToken::deadline_in(d),
            None => CancellationToken::new(),
        };
        let id = self.jobs.register(description, token.clone());
        let permit = match self.admission.admit(Some(&token)) {
            Ok(p) => p,
            Err(e) => {
                self.jobs.remove(id);
                return Err(e);
            }
        };
        let grant = self.pool.grant(self.per_query_mem);
        self.jobs.set_running(id, grant.bytes());
        Ok(QueryTicket { id, token, rm: Arc::clone(self), _permit: permit, grant })
    }

    /// Request cooperative cancellation of a live job. Returns false when
    /// the id is unknown (e.g. the query already finished). The `rm.cancelled`
    /// counter is bumped by the caller when the query actually unwinds, so
    /// a cancel that races with completion is not miscounted.
    pub fn cancel(&self, id: u64) -> bool {
        match self.jobs.cancel(id) {
            Some(token) => {
                token.cancel();
                // Wake admission waiters so a still-queued job notices.
                self.admission.wake_all();
                true
            }
            None => false,
        }
    }

    pub fn list_jobs(&self) -> Vec<JobInfo> {
        self.jobs.list()
    }
}

/// RAII handle for one admitted query: admission permit + memory grant +
/// cancellation token + jobs-table entry, all released on drop.
pub struct QueryTicket {
    id: u64,
    token: CancellationToken,
    rm: Arc<ResourceManager>,
    _permit: AdmissionPermit,
    grant: MemoryGrant,
}

impl QueryTicket {
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// Bytes of working memory granted to this query.
    pub fn mem_granted(&self) -> usize {
        self.grant.bytes()
    }

    /// Live tuple-progress counter for this job — a cheap atomic handle
    /// the executor bumps and `Metadata.ActiveJobs` reads.
    pub fn progress(&self) -> asterix_obs::Counter {
        self.rm.jobs.progress(self.id)
    }

    /// Tag this job with the trace it is recording into, so live views
    /// can correlate jobs with traces.
    pub fn set_trace_id(&self, trace_id: u64) {
        self.rm.jobs.set_trace(self.id, trace_id);
    }
}

impl Drop for QueryTicket {
    fn drop(&mut self) {
        self.rm.jobs.remove(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    fn quick_cfg(max_concurrent: usize, max_queued: usize, timeout_ms: u64) -> RmConfig {
        RmConfig {
            max_concurrent,
            max_queued,
            queue_timeout: Duration::from_millis(timeout_ms),
            mem_pool_bytes: 64 << 20,
            per_query_mem_bytes: 16 << 20,
            min_grant_bytes: 1 << 20,
        }
    }

    #[test]
    fn admission_bounds_concurrency_and_queues() {
        let rm = ResourceManager::new(quick_cfg(2, 8, 2_000));
        let t1 = rm.begin("q1", None).unwrap();
        let t2 = rm.begin("q2", None).unwrap();
        assert_eq!(rm.stats().running.get(), 2);
        // Third query must wait; release a slot from another thread.
        let rm2 = Arc::clone(&rm);
        let h = std::thread::spawn(move || rm2.begin("q3", None).map(|t| t.id()));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(rm.stats().queued.get(), 1);
        drop(t1);
        let id3 = h.join().unwrap().unwrap();
        assert!(id3 > t2.id());
        assert_eq!(rm.stats().admitted.get(), 3);
        assert_eq!(rm.stats().running.get(), 1);
        assert!(rm.stats().running.peak() <= 2);
    }

    #[test]
    fn queue_timeout_and_rejection_are_typed() {
        let rm = ResourceManager::new(quick_cfg(1, 1, 30));
        let _t1 = rm.begin("hog", None).unwrap();
        // Occupies the single queue slot until its timeout fires.
        let rm2 = Arc::clone(&rm);
        let waiter = std::thread::spawn(move || rm2.begin("waiter", None).err());
        std::thread::sleep(Duration::from_millis(10));
        // Queue is full now: instant rejection.
        match rm.begin("overflow", None) {
            Err(AdmissionError::Rejected { queued, max_queued }) => {
                assert_eq!((queued, max_queued), (1, 1));
            }
            other => panic!("expected Rejected, got {other:?}", other = other.map(|t| t.id())),
        }
        match waiter.join().unwrap() {
            Some(AdmissionError::QueueTimeout { .. }) => {}
            other => panic!("expected QueueTimeout, got {other:?}"),
        }
        assert_eq!(rm.stats().rejected.get(), 2);
        assert_eq!(rm.stats().admitted.get(), 1);
    }

    #[test]
    fn permits_serialize_a_burst() {
        let rm = ResourceManager::new(quick_cfg(2, 64, 5_000));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..8 {
            let (rm, peak, live) = (Arc::clone(&rm), Arc::clone(&peak), Arc::clone(&live));
            handles.push(std::thread::spawn(move || {
                let _t = rm.begin(&format!("q{i}"), None).unwrap();
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(10));
                live.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission cap exceeded");
        assert_eq!(rm.stats().admitted.get(), 8);
        assert!(rm.stats().running.peak() <= 2);
        assert_eq!(rm.stats().queue_wait_us.count(), 8);
    }

    #[test]
    fn grants_come_from_the_pool_and_release_on_drop() {
        let rm = ResourceManager::new(RmConfig {
            mem_pool_bytes: 24 << 20,
            per_query_mem_bytes: 16 << 20,
            min_grant_bytes: 1 << 20,
            ..quick_cfg(8, 8, 1_000)
        });
        let t1 = rm.begin("big", None).unwrap();
        assert_eq!(t1.mem_granted(), 16 << 20);
        let t2 = rm.begin("squeezed", None).unwrap();
        assert_eq!(t2.mem_granted(), 8 << 20); // pool headroom, not the ask
        let t3 = rm.begin("floor", None).unwrap();
        assert_eq!(t3.mem_granted(), 1 << 20); // min-grant overcommit floor
        assert_eq!(rm.stats().mem_granted_bytes.get(), 25 << 20);
        drop(t1);
        drop(t2);
        drop(t3);
        assert_eq!(rm.stats().mem_granted_bytes.get(), 0);
        assert_eq!(rm.stats().mem_granted_bytes.peak(), 25 << 20);
    }

    #[test]
    fn jobs_table_tracks_states_and_cancel() {
        let rm = ResourceManager::new(quick_cfg(1, 4, 2_000));
        let t1 = rm.begin("running", None).unwrap();
        let rm2 = Arc::clone(&rm);
        let h = std::thread::spawn(move || rm2.begin("queued", None));
        std::thread::sleep(Duration::from_millis(30));
        let jobs = rm.list_jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].state, JobState::Running);
        assert_eq!(jobs[0].description, "running");
        assert_eq!(jobs[1].state, JobState::Queued);
        assert!(rm.cancel(t1.id()));
        assert!(t1.token().is_cancelled());
        assert_eq!(rm.list_jobs()[0].state, JobState::Cancelling);
        drop(t1); // releases the slot; queued query admits
        let t2 = h.join().unwrap().unwrap();
        assert!(!rm.cancel(999), "unknown id must report false");
        assert_eq!(rm.list_jobs().len(), 1);
        assert_eq!(rm.list_jobs()[0].id, t2.id());
    }

    #[test]
    fn cancelling_a_queued_query_unblocks_its_wait() {
        let rm = ResourceManager::new(quick_cfg(1, 4, 30_000));
        let _t1 = rm.begin("hog", None).unwrap();
        let rm2 = Arc::clone(&rm);
        let h = std::thread::spawn(move || rm2.begin("victim", None));
        let start = Instant::now();
        // Wait until the victim shows up as Queued, then cancel it.
        let victim = loop {
            if let Some(j) = rm.list_jobs().iter().find(|j| j.state == JobState::Queued) {
                break j.id;
            }
            assert!(start.elapsed() < Duration::from_secs(5));
            std::thread::yield_now();
        };
        assert!(rm.cancel(victim));
        match h.join().unwrap() {
            Err(AdmissionError::Cancelled) => {}
            other => panic!("expected Cancelled, got {:?}", other.map(|t| t.id())),
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "cancel must not wait out the queue timeout"
        );
    }

    #[test]
    fn deadline_tokens_fire_without_explicit_cancel() {
        let tok = CancellationToken::deadline_in(Duration::from_millis(20));
        assert!(!tok.is_cancelled());
        std::thread::sleep(Duration::from_millis(40));
        assert!(tok.is_cancelled());
        // Plain tokens never fire on their own.
        let plain = CancellationToken::new();
        assert!(!plain.is_cancelled());
        plain.cancel();
        assert!(plain.is_cancelled());
        assert!(plain.clone().is_cancelled(), "clones share state");
    }

    #[test]
    fn ticket_progress_and_trace_id_are_live() {
        let rm = ResourceManager::new(quick_cfg(2, 2, 1_000));
        let t = rm.begin("traced", None).unwrap();
        t.set_trace_id(42);
        t.progress().add(17);
        let jobs = rm.list_jobs();
        assert_eq!(jobs[0].trace_id, 42);
        assert_eq!(jobs[0].tuples, 17);
        // Unknown ids yield a detached counter, not a panic.
        rm.jobs.progress(9999).inc();
    }

    #[test]
    fn stats_register_under_rm_prefix() {
        let rm = ResourceManager::new(quick_cfg(2, 2, 100));
        let reg = asterix_obs::MetricsRegistry::new();
        rm.stats().register_into(&reg, "rm");
        let t = rm.begin("q", None).unwrap();
        drop(t);
        let names = reg.names();
        for expect in [
            "rm.admitted",
            "rm.rejected",
            "rm.cancelled",
            "rm.queue_wait_us",
            "rm.mem_granted_bytes",
            "rm.running",
            "rm.queued",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect} in {names:?}");
        }
        let json = reg.to_json();
        assert!(json.contains("\"rm.admitted\":1"), "bad json: {json}");
    }
}
