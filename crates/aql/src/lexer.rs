//! AQL lexer.
//!
//! Notable AQL-isms: `$`-prefixed variables, `{{ }}` bag delimiters, the
//! fuzzy operator `~=`, `:=` bindings, and optimizer hints carried in
//! comments (`/*+ indexnl */`, Query 14), which are surfaced as
//! [`Token::Hint`] rather than skipped.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (keywords are contextual in AQL).
    Ident(String),
    /// `$name` variable reference.
    Variable(String),
    StringLit(String),
    IntLit(i64),
    DoubleLit(f64),
    FloatLit(f32),
    Int8Lit(i8),
    Int16Lit(i16),
    Int32Lit(i32),
    /// `/*+ ... */` optimizer hint body (trimmed).
    Hint(String),
    // Punctuation / operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    LDoubleBrace,
    RDoubleBrace,
    Comma,
    Colon,
    Semicolon,
    Dot,
    Assign, // :=
    Eq,     // =
    Neq,    // !=
    Lt,
    Le,
    Gt,
    Ge,
    FuzzyEq, // ~=
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    QuestionMark,
    AtSign,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Variable(s) => write!(f, "${s}"),
            Token::StringLit(s) => write!(f, "{s:?}"),
            Token::IntLit(v) => write!(f, "{v}"),
            Token::DoubleLit(v) => write!(f, "{v}"),
            Token::FloatLit(v) => write!(f, "{v}f"),
            Token::Int8Lit(v) => write!(f, "{v}i8"),
            Token::Int16Lit(v) => write!(f, "{v}i16"),
            Token::Int32Lit(v) => write!(f, "{v}i32"),
            Token::Hint(s) => write!(f, "/*+ {s} */"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LDoubleBrace => write!(f, "{{{{"),
            Token::RDoubleBrace => write!(f, "}}}}"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::Semicolon => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, ":="),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::FuzzyEq => write!(f, "~="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::QuestionMark => write!(f, "?"),
            Token::AtSign => write!(f, "@"),
        }
    }
}

/// A token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
    pub line: usize,
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError { message: msg.into(), line: self.line }
    }
}

/// Tokenize AQL source.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut lx = Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments (collecting hints).
        loop {
            match lx.peek() {
                Some(c) if c.is_whitespace() => {
                    lx.bump();
                }
                Some('/') if lx.peek2() == Some('/') => {
                    while let Some(c) = lx.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if lx.peek2() == Some('*') => {
                    let start_line = lx.line;
                    lx.bump();
                    lx.bump();
                    let is_hint = lx.peek() == Some('+');
                    if is_hint {
                        lx.bump();
                    }
                    let body_start = lx.pos;
                    let mut body_end = None;
                    while lx.pos < lx.bytes.len() {
                        if lx.src[lx.pos..].starts_with("*/") {
                            body_end = Some(lx.pos);
                            lx.bump();
                            lx.bump();
                            break;
                        }
                        lx.bump();
                    }
                    let Some(end) = body_end else {
                        return Err(LexError {
                            message: "unterminated comment".into(),
                            line: start_line,
                        });
                    };
                    if is_hint {
                        out.push(Spanned {
                            token: Token::Hint(lx.src[body_start..end].trim().to_string()),
                            offset: body_start,
                            line: start_line,
                        });
                    }
                }
                _ => break,
            }
        }
        let offset = lx.pos;
        let line = lx.line;
        let Some(c) = lx.peek() else { break };
        let token = match c {
            '(' => {
                lx.bump();
                Token::LParen
            }
            ')' => {
                lx.bump();
                Token::RParen
            }
            '[' => {
                lx.bump();
                Token::LBracket
            }
            ']' => {
                lx.bump();
                Token::RBracket
            }
            '{' => {
                lx.bump();
                if lx.peek() == Some('{') {
                    lx.bump();
                    Token::LDoubleBrace
                } else {
                    Token::LBrace
                }
            }
            '}' => {
                lx.bump();
                if lx.peek() == Some('}') {
                    lx.bump();
                    Token::RDoubleBrace
                } else {
                    Token::RBrace
                }
            }
            ',' => {
                lx.bump();
                Token::Comma
            }
            ';' => {
                lx.bump();
                Token::Semicolon
            }
            '.' => {
                lx.bump();
                Token::Dot
            }
            '?' => {
                lx.bump();
                Token::QuestionMark
            }
            '@' => {
                lx.bump();
                Token::AtSign
            }
            ':' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Token::Assign
                } else {
                    Token::Colon
                }
            }
            '=' => {
                lx.bump();
                Token::Eq
            }
            '!' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Token::Neq
                } else {
                    return Err(lx.err("expected '=' after '!'"));
                }
            }
            '<' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Token::Le
                } else {
                    Token::Lt
                }
            }
            '>' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Token::Ge
                } else {
                    Token::Gt
                }
            }
            '~' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Token::FuzzyEq
                } else {
                    return Err(lx.err("expected '=' after '~'"));
                }
            }
            '+' => {
                lx.bump();
                Token::Plus
            }
            '-' => {
                lx.bump();
                Token::Minus
            }
            '*' => {
                lx.bump();
                Token::Star
            }
            '/' => {
                lx.bump();
                Token::Slash
            }
            '%' => {
                lx.bump();
                Token::Percent
            }
            '$' => {
                lx.bump();
                let start = lx.pos;
                while let Some(c) = lx.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        lx.bump();
                    } else {
                        break;
                    }
                }
                if lx.pos == start {
                    return Err(lx.err("expected variable name after '$'"));
                }
                Token::Variable(lx.src[start..lx.pos].to_string())
            }
            '"' | '\'' => {
                let quote = c;
                lx.bump();
                let mut s = String::new();
                loop {
                    match lx.bump() {
                        None => return Err(lx.err("unterminated string literal")),
                        Some(c) if c == quote => break,
                        Some('\\') => match lx.bump() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('u') => {
                                let mut code = 0u32;
                                for _ in 0..4 {
                                    let d = lx
                                        .bump()
                                        .and_then(|c| c.to_digit(16))
                                        .ok_or_else(|| lx.err("bad \\u escape"))?;
                                    code = code * 16 + d;
                                }
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            Some(c) if c == quote => s.push(quote),
                            Some(other) => {
                                return Err(lx.err(format!("unknown escape '\\{other}' in string")))
                            }
                            None => return Err(lx.err("unterminated string literal")),
                        },
                        Some(c) => s.push(c),
                    }
                }
                Token::StringLit(s)
            }
            c if c.is_ascii_digit() => {
                let start = lx.pos;
                let mut is_float = false;
                while let Some(c) = lx.peek() {
                    match c {
                        '0'..='9' => {
                            lx.bump();
                        }
                        '.' => {
                            // A digit must follow for this to be a decimal
                            // point (otherwise it's field access like 1.x —
                            // not valid AQL, but keep lexing robust).
                            if lx.peek2().is_some_and(|d| d.is_ascii_digit()) {
                                is_float = true;
                                lx.bump();
                            } else {
                                break;
                            }
                        }
                        'e' | 'E' => {
                            is_float = true;
                            lx.bump();
                            if matches!(lx.peek(), Some('+') | Some('-')) {
                                lx.bump();
                            }
                        }
                        _ => break,
                    }
                }
                let text = &lx.src[start..lx.pos];
                // Typed suffixes.
                if lx.src[lx.pos..].starts_with("i8") {
                    lx.pos += 2;
                    Token::Int8Lit(text.parse().map_err(|_| lx.err("invalid int8 literal"))?)
                } else if lx.src[lx.pos..].starts_with("i16") {
                    lx.pos += 3;
                    Token::Int16Lit(text.parse().map_err(|_| lx.err("invalid int16 literal"))?)
                } else if lx.src[lx.pos..].starts_with("i32") {
                    lx.pos += 3;
                    Token::Int32Lit(text.parse().map_err(|_| lx.err("invalid int32 literal"))?)
                } else if lx.src[lx.pos..].starts_with("i64") {
                    lx.pos += 3;
                    Token::IntLit(text.parse().map_err(|_| lx.err("invalid int64 literal"))?)
                } else if lx.peek() == Some('f') {
                    lx.bump();
                    Token::FloatLit(text.parse().map_err(|_| lx.err("invalid float literal"))?)
                } else if is_float {
                    Token::DoubleLit(text.parse().map_err(|_| lx.err("invalid double literal"))?)
                } else {
                    Token::IntLit(text.parse().map_err(|_| lx.err("invalid int literal"))?)
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = lx.pos;
                while let Some(c) = lx.peek() {
                    // AQL identifiers allow '-' (e.g. `author-id`,
                    // `word-tokens`); a '-' is part of the identifier when
                    // followed by an alphanumeric (so `a - 1` still lexes
                    // as subtraction).
                    if c.is_alphanumeric() || c == '_' {
                        lx.bump();
                    } else if c == '-'
                        && lx.peek2().is_some_and(|d| d.is_alphanumeric() || d == '_')
                    {
                        lx.bump();
                    } else {
                        break;
                    }
                }
                Token::Ident(lx.src[start..lx.pos].to_string())
            }
            other => return Err(lx.err(format!("unexpected character {other:?}"))),
        };
        out.push(Spanned { token, offset, line });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("for $x in dataset M return $x;"),
            vec![
                Token::Ident("for".into()),
                Token::Variable("x".into()),
                Token::Ident("in".into()),
                Token::Ident("dataset".into()),
                Token::Ident("M".into()),
                Token::Ident("return".into()),
                Token::Variable("x".into()),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn hyphenated_identifiers_vs_subtraction() {
        assert_eq!(
            toks("$m.author-id"),
            vec![Token::Variable("m".into()), Token::Dot, Token::Ident("author-id".into()),]
        );
        assert_eq!(toks("a - 1"), vec![Token::Ident("a".into()), Token::Minus, Token::IntLit(1)]);
        // `a -1` also subtracts (minus followed by digit).
        assert_eq!(toks("a -1"), vec![Token::Ident("a".into()), Token::Minus, Token::IntLit(1)]);
    }

    #[test]
    fn operators_and_bags() {
        assert_eq!(
            toks("{{ 1, 2 }} ~= $x := y != z <= w"),
            vec![
                Token::LDoubleBrace,
                Token::IntLit(1),
                Token::Comma,
                Token::IntLit(2),
                Token::RDoubleBrace,
                Token::FuzzyEq,
                Token::Variable("x".into()),
                Token::Assign,
                Token::Ident("y".into()),
                Token::Neq,
                Token::Ident("z".into()),
                Token::Le,
                Token::Ident("w".into()),
            ]
        );
    }

    #[test]
    fn hints_are_tokens_comments_are_not() {
        let t = toks("a /* plain */ /*+ indexnl */ = b");
        assert_eq!(
            t,
            vec![
                Token::Ident("a".into()),
                Token::Hint("indexnl".into()),
                Token::Eq,
                Token::Ident("b".into()),
            ]
        );
        assert_eq!(toks("x // line comment\n y").len(), 2);
    }

    #[test]
    fn string_escapes_and_quotes() {
        assert_eq!(
            toks(r#""a\"b" 'c\'d'"#),
            vec![Token::StringLit("a\"b".into()), Token::StringLit("c'd".into()),]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(
            toks("1 2.5 1e3 7i8 9i32 2.5f"),
            vec![
                Token::IntLit(1),
                Token::DoubleLit(2.5),
                Token::DoubleLit(1000.0),
                Token::Int8Lit(7),
                Token::Int32Lit(9),
                Token::FloatLit(2.5),
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("a ~ b").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn line_tracking() {
        let spanned = tokenize("a\nb\nc").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 3);
    }
}
