//! Statement normalization for the plan cache (prepared queries).
//!
//! [`normalize_query`] walks a parsed query expression and lifts every
//! literal constant into a parameter vector, replacing it with an
//! [`Expr::Param`] slot numbered in walk order. Two queries that differ
//! only in constants normalize to the same shape — `$x.f < 5` and
//! `$x.f < 7` produce identical fingerprints — so they share one compiled
//! plan, re-bound per execution with their own parameter vectors.
//!
//! What is *not* parameterized:
//! * `limit`/`offset` expressions — the translator folds them into the
//!   plan's `Limit` operator at compile time (`const_usize` requires a
//!   constant), so they stay literal and differing limits get distinct
//!   cache entries;
//! * anything that is not a literal (dataset names, field names,
//!   variables, function names, hints) — those are the query's shape.
//!
//! Session state that changes a query's *translation* (current dataverse,
//! `simfunction`/`simthreshold`) is not visible in the AST; the cache key
//! built on top of the fingerprint must include it (see the asterixdb
//! crate's plan cache).

use asterix_adm::Value;

use crate::ast::{Clause, Expr, Flwor};

/// A query normalized for caching: the literal-stripped expression, the
/// lifted literals (the statement's own parameter vector), and a canonical
/// fingerprint of the stripped shape.
#[derive(Debug, Clone)]
pub struct NormalizedQuery {
    /// The query with literals replaced by `Expr::Param` slots.
    pub expr: Expr,
    /// The lifted literals, in slot order. Executing the normalized query
    /// with exactly these parameters is equivalent to the original.
    pub params: Vec<Value>,
    /// Canonical text of the literal-stripped AST — identical across
    /// queries differing only in parameterizable constants.
    pub fingerprint: String,
}

/// Normalize a parsed query expression (the body of `Statement::Query`).
pub fn normalize_query(expr: &Expr) -> NormalizedQuery {
    let mut params = Vec::new();
    let stripped = lift_expr(expr, &mut params);
    let fingerprint = format!("{stripped:?}");
    NormalizedQuery { expr: stripped, params, fingerprint }
}

fn lift_expr(e: &Expr, params: &mut Vec<Value>) -> Expr {
    match e {
        Expr::Literal(v) => {
            params.push(v.clone());
            Expr::Param(params.len() - 1)
        }
        // Already a slot (normalizing an already-normalized tree is the
        // identity on shape; keep the existing numbering).
        Expr::Param(i) => Expr::Param(*i),
        Expr::Variable(_) | Expr::DatasetAccess { .. } => e.clone(),
        Expr::FieldAccess(base, name) => {
            Expr::FieldAccess(Box::new(lift_expr(base, params)), name.clone())
        }
        Expr::IndexAccess(base, idx) => {
            Expr::IndexAccess(Box::new(lift_expr(base, params)), Box::new(lift_expr(idx, params)))
        }
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| lift_expr(a, params)).collect(),
        },
        Expr::Arith(op, a, b) => {
            Expr::Arith(*op, Box::new(lift_expr(a, params)), Box::new(lift_expr(b, params)))
        }
        Expr::Neg(a) => Expr::Neg(Box::new(lift_expr(a, params))),
        Expr::Compare { op, left, right, index_nl_hint } => Expr::Compare {
            op: *op,
            left: Box::new(lift_expr(left, params)),
            right: Box::new(lift_expr(right, params)),
            index_nl_hint: *index_nl_hint,
        },
        Expr::And(es) => Expr::And(es.iter().map(|x| lift_expr(x, params)).collect()),
        Expr::Or(es) => Expr::Or(es.iter().map(|x| lift_expr(x, params)).collect()),
        Expr::Not(a) => Expr::Not(Box::new(lift_expr(a, params))),
        Expr::RecordCtor(fields) => Expr::RecordCtor(
            fields.iter().map(|(n, x)| (n.clone(), lift_expr(x, params))).collect(),
        ),
        Expr::ListCtor { ordered, items } => Expr::ListCtor {
            ordered: *ordered,
            items: items.iter().map(|x| lift_expr(x, params)).collect(),
        },
        Expr::Quantified { q, var, collection, predicate } => Expr::Quantified {
            q: *q,
            var: var.clone(),
            collection: Box::new(lift_expr(collection, params)),
            predicate: Box::new(lift_expr(predicate, params)),
        },
        Expr::IfThenElse(c, t, e2) => Expr::IfThenElse(
            Box::new(lift_expr(c, params)),
            Box::new(lift_expr(t, params)),
            Box::new(lift_expr(e2, params)),
        ),
        Expr::Flwor(f) => Expr::Flwor(Box::new(lift_flwor(f, params))),
    }
}

fn lift_flwor(f: &Flwor, params: &mut Vec<Value>) -> Flwor {
    Flwor {
        clauses: f.clauses.iter().map(|c| lift_clause(c, params)).collect(),
        ret: lift_expr(&f.ret, params),
    }
}

fn lift_clause(c: &Clause, params: &mut Vec<Value>) -> Clause {
    match c {
        Clause::For { var, positional, source } => Clause::For {
            var: var.clone(),
            positional: positional.clone(),
            source: lift_expr(source, params),
        },
        Clause::Let { var, expr } => {
            Clause::Let { var: var.clone(), expr: lift_expr(expr, params) }
        }
        Clause::Where(e) => Clause::Where(lift_expr(e, params)),
        Clause::GroupBy { keys, with } => Clause::GroupBy {
            keys: keys.iter().map(|(n, e)| (n.clone(), lift_expr(e, params))).collect(),
            with: with.clone(),
        },
        Clause::OrderBy(keys) => {
            Clause::OrderBy(keys.iter().map(|(e, d)| (lift_expr(e, params), *d)).collect())
        }
        // Limit/offset stay literal: the translator requires compile-time
        // constants here (they shape the plan's Limit operator), so
        // differing limits are legitimately different cache entries.
        Clause::Limit { .. } => c.clone(),
        Clause::DistinctBy(es) => {
            Clause::DistinctBy(es.iter().map(|e| lift_expr(e, params)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    fn norm(src: &str) -> NormalizedQuery {
        normalize_query(&parse_expression(src).unwrap())
    }

    #[test]
    fn literals_lift_in_walk_order() {
        let n = norm("for $x in [1, 2, 3] where $x.f < 5 return $x");
        assert_eq!(
            n.params,
            vec![Value::Int64(1), Value::Int64(2), Value::Int64(3), Value::Int64(5)]
        );
        assert!(!format!("{:?}", n.expr).contains("Literal"), "{:?}", n.expr);
    }

    #[test]
    fn differing_literals_share_a_fingerprint() {
        let a = norm("for $x in dataset Metadata.Dataverse where $x.f < 5 return $x.f");
        let b = norm("for $x in dataset Metadata.Dataverse where $x.f < 7 return $x.f");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_ne!(a.params, b.params);
    }

    #[test]
    fn differing_shapes_do_not_collide() {
        let a = norm("for $x in dataset Metadata.Dataverse where $x.f < 5 return $x.f");
        let b = norm("for $x in dataset Metadata.Dataverse where $x.g < 5 return $x.f");
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn limit_and_offset_stay_literal() {
        let a = norm("for $x in dataset Metadata.Dataverse limit 5 return $x");
        let b = norm("for $x in dataset Metadata.Dataverse limit 10 return $x");
        assert_ne!(a.fingerprint, b.fingerprint, "limits must not share an entry");
        assert!(a.params.is_empty(), "limit literal must not be lifted: {:?}", a.params);
        let c = norm("for $x in dataset Metadata.Dataverse limit 5 offset 2 return $x");
        assert!(c.params.is_empty());
    }

    #[test]
    fn normalization_is_idempotent_on_shape() {
        let once = norm("for $x in dataset Metadata.Dataverse where $x.f = \"a\" return $x");
        let mut again_params = Vec::new();
        let again = super::lift_expr(&once.expr, &mut again_params);
        assert_eq!(format!("{again:?}"), once.fingerprint);
        assert!(again_params.is_empty());
    }
}
