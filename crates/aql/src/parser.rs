//! Recursive-descent parser for AQL.
//!
//! Keywords are contextual (AQL allows `dataset`, `for`, etc. as field
//! names after a dot), so the parser matches identifier text at the points
//! where keywords are expected.

use std::fmt;

use asterix_adm::Value;

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Token};

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError { message: e.message, line: e.line }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parse a sequence of semicolon-terminated statements.
pub fn parse_statements(src: &str) -> PResult<Vec<Statement>> {
    Ok(parse_statements_spanned(src)?.into_iter().map(|(s, _)| s).collect())
}

/// Like [`parse_statements`], also returning each statement's source text
/// (used to persist DDL for catalog replay).
pub fn parse_statements_spanned(src: &str) -> PResult<Vec<(Statement, String)>> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        if p.eat(&Token::Semicolon) {
            continue;
        }
        let start_offset = p.tokens[p.pos].offset;
        let stmt = p.parse_statement()?;
        // Statements are separated by semicolons; the final one may omit it.
        if !p.at_end() && !p.eat(&Token::Semicolon) {
            return Err(p.err("expected ';' after statement"));
        }
        let end_offset = p.tokens.get(p.pos).map(|t| t.offset).unwrap_or(src.len());
        let text = src[start_offset..end_offset].trim().trim_end_matches(';').trim().to_string();
        out.push((stmt, text));
    }
    Ok(out)
}

/// Parse a single expression (must consume all input).
pub fn parse_expression(src: &str) -> PResult<Expr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    if !p.at_end() && !p.eat(&Token::Semicolon) {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let found = match self.peek() {
            Some(t) => format!(" (found {t})"),
            None => " (at end of input)".to_string(),
        };
        ParseError { message: format!("{}{}", msg.into(), found), line: self.line() }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> PResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{t}'")))
        }
    }

    /// Is the current token the identifier/keyword `kw`?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}'")))
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn expect_variable(&mut self) -> PResult<String> {
        match self.bump() {
            Some(Token::Variable(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected variable"))
            }
        }
    }

    fn expect_string(&mut self) -> PResult<String> {
        match self.bump() {
            Some(Token::StringLit(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected string literal"))
            }
        }
    }

    // -- statements ----------------------------------------------------------

    fn parse_statement(&mut self) -> PResult<Statement> {
        if self.at_kw("drop") {
            return self.parse_drop();
        }
        if self.at_kw("create") {
            return self.parse_create();
        }
        if self.at_kw("use") {
            self.bump();
            self.expect_kw("dataverse")?;
            return Ok(Statement::UseDataverse(self.expect_ident()?));
        }
        if self.at_kw("set") {
            self.bump();
            let key = self.expect_ident()?;
            let value = self.expect_string()?;
            return Ok(Statement::Set { key, value });
        }
        if self.at_kw("insert") {
            self.bump();
            self.expect_kw("into")?;
            self.expect_kw("dataset")?;
            let dataset = self.parse_qualified_name()?;
            self.expect(&Token::LParen)?;
            let expr = self.parse_expr()?;
            self.expect(&Token::RParen)?;
            return Ok(Statement::Insert { dataset, expr });
        }
        if self.at_kw("delete") {
            self.bump();
            let var = self.expect_variable()?;
            self.expect_kw("from")?;
            self.expect_kw("dataset")?;
            let dataset = self.parse_qualified_name()?;
            let condition = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
            return Ok(Statement::Delete { var, dataset, condition });
        }
        if self.at_kw("load") {
            self.bump();
            self.expect_kw("dataset")?;
            let dataset = self.parse_qualified_name()?;
            self.expect_kw("using")?;
            let adaptor = self.expect_ident()?;
            let properties = self.parse_properties()?;
            return Ok(Statement::Load { dataset, adaptor, properties });
        }
        if self.at_kw("connect") {
            self.bump();
            self.expect_kw("feed")?;
            let feed = self.parse_qualified_name()?;
            let apply_function = if self.eat_kw("apply") {
                self.expect_kw("function")?;
                Some(self.expect_ident()?)
            } else {
                None
            };
            self.expect_kw("to")?;
            self.expect_kw("dataset")?;
            let dataset = self.parse_qualified_name()?;
            return Ok(Statement::ConnectFeed { feed, dataset, apply_function });
        }
        if self.at_kw("disconnect") {
            self.bump();
            self.expect_kw("feed")?;
            let feed = self.parse_qualified_name()?;
            self.expect_kw("from")?;
            self.expect_kw("dataset")?;
            let dataset = self.parse_qualified_name()?;
            return Ok(Statement::DisconnectFeed { feed, dataset });
        }
        // Otherwise: a query expression.
        Ok(Statement::Query(self.parse_expr()?))
    }

    fn parse_if_exists(&mut self) -> bool {
        if self.at_kw("if")
            && matches!(self.peek_at(1), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("exists"))
        {
            self.pos += 2;
            true
        } else {
            false
        }
    }

    fn parse_drop(&mut self) -> PResult<Statement> {
        self.expect_kw("drop")?;
        if self.eat_kw("dataverse") {
            let name = self.expect_ident()?;
            let if_exists = self.parse_if_exists();
            return Ok(Statement::DropDataverse { name, if_exists });
        }
        if self.eat_kw("type") {
            let name = self.expect_ident()?;
            let if_exists = self.parse_if_exists();
            return Ok(Statement::DropType { name, if_exists });
        }
        if self.eat_kw("dataset") {
            let name = self.parse_qualified_name()?;
            let if_exists = self.parse_if_exists();
            return Ok(Statement::DropDataset { name, if_exists });
        }
        if self.eat_kw("index") {
            // `drop index <dataset>.<index>` or `drop index <dv>.<ds>.<ix>`.
            let mut parts = vec![self.expect_ident()?];
            while self.eat(&Token::Dot) {
                parts.push(self.expect_ident()?);
            }
            if parts.len() < 2 {
                return Err(self.err("expected dataset.index after 'drop index'"));
            }
            let name = parts.pop().unwrap();
            let dataset = parts.join(".");
            let if_exists = self.parse_if_exists();
            return Ok(Statement::DropIndex { dataset, name, if_exists });
        }
        if self.eat_kw("function") {
            let name = self.expect_ident()?;
            let if_exists = self.parse_if_exists();
            return Ok(Statement::DropFunction { name, if_exists });
        }
        Err(self.err("expected dataverse/type/dataset/index/function after 'drop'"))
    }

    fn parse_create(&mut self) -> PResult<Statement> {
        self.expect_kw("create")?;
        if self.eat_kw("dataverse") {
            let name = self.expect_ident()?;
            let if_not_exists = if self.at_kw("if") {
                self.bump();
                self.expect_kw("not")?;
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            return Ok(Statement::CreateDataverse { name, if_not_exists });
        }
        if self.eat_kw("type") {
            let name = self.expect_ident()?;
            self.expect_kw("as")?;
            // `as open { ... }` / `as closed { ... }` / `as { ... }`.
            let open = if self.eat_kw("open") { true } else { !self.eat_kw("closed") };
            let ty = self.parse_type_expr(open)?;
            return Ok(Statement::CreateType { name, ty });
        }
        if self.eat_kw("secondary") {
            self.expect_kw("feed")?;
            let name = self.parse_qualified_name()?;
            self.expect_kw("from")?;
            self.expect_kw("feed")?;
            let parent = self.parse_qualified_name()?;
            return Ok(Statement::CreateSecondaryFeed { name, parent });
        }
        if self.eat_kw("external") {
            self.expect_kw("dataset")?;
            let name = self.parse_qualified_name()?;
            self.expect(&Token::LParen)?;
            let type_name = self.expect_ident()?;
            self.expect(&Token::RParen)?;
            self.expect_kw("using")?;
            let adaptor = self.expect_ident()?;
            let properties = self.parse_properties()?;
            return Ok(Statement::CreateExternalDataset { name, type_name, adaptor, properties });
        }
        if self.eat_kw("dataset") {
            let name = self.parse_qualified_name()?;
            self.expect(&Token::LParen)?;
            let type_name = self.expect_ident()?;
            self.expect(&Token::RParen)?;
            self.expect_kw("primary")?;
            self.expect_kw("key")?;
            let mut primary_key = vec![self.expect_ident()?];
            while self.eat(&Token::Comma) {
                primary_key.push(self.expect_ident()?);
            }
            let autogenerated = self.eat_kw("autogenerated");
            if autogenerated && primary_key.len() != 1 {
                return Err(self.err("autogenerated keys must be single-field"));
            }
            return Ok(Statement::CreateDataset { name, type_name, primary_key, autogenerated });
        }
        if self.eat_kw("index") {
            let name = self.expect_ident()?;
            self.expect_kw("on")?;
            let dataset = self.parse_qualified_name()?;
            self.expect(&Token::LParen)?;
            let mut fields = vec![self.parse_field_path()?];
            while self.eat(&Token::Comma) {
                fields.push(self.parse_field_path()?);
            }
            self.expect(&Token::RParen)?;
            let index_type = if self.eat_kw("type") {
                if self.eat_kw("btree") {
                    IndexTypeAst::BTree
                } else if self.eat_kw("rtree") {
                    IndexTypeAst::RTree
                } else if self.eat_kw("keyword") {
                    IndexTypeAst::Keyword
                } else if self.eat_kw("ngram") {
                    self.expect(&Token::LParen)?;
                    let k = match self.bump() {
                        Some(Token::IntLit(k)) if k > 0 => k as usize,
                        _ => return Err(self.err("expected gram length")),
                    };
                    self.expect(&Token::RParen)?;
                    IndexTypeAst::NGram(k)
                } else {
                    return Err(self.err("expected btree/rtree/keyword/ngram"));
                }
            } else {
                IndexTypeAst::BTree // "btree is the default" (§2.2)
            };
            return Ok(Statement::CreateIndex { name, dataset, fields, index_type });
        }
        if self.eat_kw("feed") {
            let name = self.parse_qualified_name()?;
            self.expect_kw("using")?;
            let adaptor = self.expect_ident()?;
            let properties = self.parse_properties()?;
            return Ok(Statement::CreateFeed { name, adaptor, properties });
        }
        if self.eat_kw("function") {
            let name = self.expect_ident()?;
            self.expect(&Token::LParen)?;
            let mut params = Vec::new();
            if !self.eat(&Token::RParen) {
                loop {
                    params.push(self.expect_variable()?);
                    if self.eat(&Token::Comma) {
                        continue;
                    }
                    self.expect(&Token::RParen)?;
                    break;
                }
            }
            self.expect(&Token::LBrace)?;
            let body = self.parse_expr()?;
            self.expect(&Token::RBrace)?;
            return Ok(Statement::CreateFunction { name, params, body });
        }
        Err(self.err("expected dataverse/type/dataset/index/feed/function after 'create'"))
    }

    fn parse_field_path(&mut self) -> PResult<String> {
        let mut path = self.expect_ident()?;
        while self.eat(&Token::Dot) {
            path.push('.');
            path.push_str(&self.expect_ident()?);
        }
        Ok(path)
    }

    fn parse_qualified_name(&mut self) -> PResult<String> {
        let first = self.expect_ident()?;
        if self.peek() == Some(&Token::Dot) && matches!(self.peek_at(1), Some(Token::Ident(_))) {
            self.bump();
            let second = self.expect_ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    /// `(("key"="value"), ...)` adaptor property lists.
    fn parse_properties(&mut self) -> PResult<Vec<(String, String)>> {
        self.expect(&Token::LParen)?;
        let mut out = Vec::new();
        if self.eat(&Token::RParen) {
            return Ok(out);
        }
        loop {
            self.expect(&Token::LParen)?;
            let k = self.expect_string()?;
            self.expect(&Token::Eq)?;
            let v = self.expect_string()?;
            self.expect(&Token::RParen)?;
            out.push((k, v));
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(&Token::RParen)?;
            break;
        }
        Ok(out)
    }

    fn parse_type_expr(&mut self, open_default: bool) -> PResult<TypeExpr> {
        match self.peek() {
            Some(Token::LBrace) => {
                self.bump();
                let mut fields = Vec::new();
                if !self.eat(&Token::RBrace) {
                    loop {
                        let name = match self.bump() {
                            Some(Token::Ident(s)) => s,
                            Some(Token::StringLit(s)) => s,
                            _ => return Err(self.err("expected field name")),
                        };
                        self.expect(&Token::Colon)?;
                        let ty = self.parse_type_expr(true)?;
                        let optional = self.eat(&Token::QuestionMark);
                        fields.push((name, ty, optional));
                        if self.eat(&Token::Comma) {
                            continue;
                        }
                        self.expect(&Token::RBrace)?;
                        break;
                    }
                }
                Ok(TypeExpr::Record { fields, open: open_default })
            }
            Some(Token::LBracket) => {
                self.bump();
                let inner = self.parse_type_expr(true)?;
                self.expect(&Token::RBracket)?;
                Ok(TypeExpr::OrderedList(Box::new(inner)))
            }
            Some(Token::LDoubleBrace) => {
                self.bump();
                let inner = self.parse_type_expr(true)?;
                self.expect(&Token::RDoubleBrace)?;
                Ok(TypeExpr::UnorderedList(Box::new(inner)))
            }
            Some(Token::Ident(_)) => Ok(TypeExpr::Named(self.expect_ident()?)),
            _ => Err(self.err("expected type expression")),
        }
    }

    // -- expressions ---------------------------------------------------------

    fn parse_expr(&mut self) -> PResult<Expr> {
        // FLWOR?
        if self.at_kw("for") || self.at_kw("let") {
            // `let` can also start a FLWOR (Query 12 starts with let).
            return self.parse_flwor();
        }
        if self.at_kw("some") || self.at_kw("every") {
            return self.parse_quantified();
        }
        if self.at_kw("if") && self.peek_at(1) == Some(&Token::LParen) {
            self.bump();
            self.expect(&Token::LParen)?;
            let c = self.parse_expr()?;
            self.expect(&Token::RParen)?;
            self.expect_kw("then")?;
            let t = self.parse_expr()?;
            self.expect_kw("else")?;
            let e = self.parse_expr()?;
            return Ok(Expr::IfThenElse(Box::new(c), Box::new(t), Box::new(e)));
        }
        self.parse_or()
    }

    fn parse_quantified(&mut self) -> PResult<Expr> {
        let q = if self.eat_kw("some") {
            Quantifier::Some
        } else {
            self.expect_kw("every")?;
            Quantifier::Every
        };
        let var = self.expect_variable()?;
        self.expect_kw("in")?;
        let collection = self.parse_or()?;
        self.expect_kw("satisfies")?;
        let predicate = self.parse_expr()?;
        Ok(Expr::Quantified {
            q,
            var,
            collection: Box::new(collection),
            predicate: Box::new(predicate),
        })
    }

    fn parse_flwor(&mut self) -> PResult<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.eat_kw("for") {
                let var = self.expect_variable()?;
                let positional =
                    if self.eat_kw("at") { Some(self.expect_variable()?) } else { None };
                self.expect_kw("in")?;
                let source = self.parse_or()?;
                clauses.push(Clause::For { var, positional, source });
            } else if self.eat_kw("let") {
                let var = self.expect_variable()?;
                self.expect(&Token::Assign)?;
                let expr = self.parse_expr()?;
                clauses.push(Clause::Let { var, expr });
            } else if self.eat_kw("where") {
                clauses.push(Clause::Where(self.parse_expr()?));
            } else if self.at_kw("group") {
                self.bump();
                self.expect_kw("by")?;
                let mut keys = Vec::new();
                loop {
                    let kvar = self.expect_variable()?;
                    self.expect(&Token::Assign)?;
                    let e = self.parse_expr()?;
                    keys.push((kvar, e));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect_kw("with")?;
                let mut with = vec![self.expect_variable()?];
                while self.eat(&Token::Comma) {
                    with.push(self.expect_variable()?);
                }
                clauses.push(Clause::GroupBy { keys, with });
            } else if self.at_kw("order") {
                self.bump();
                self.expect_kw("by")?;
                let mut keys = Vec::new();
                loop {
                    let e = self.parse_expr()?;
                    let desc = if self.eat_kw("desc") {
                        true
                    } else {
                        self.eat_kw("asc");
                        false
                    };
                    keys.push((e, desc));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                clauses.push(Clause::OrderBy(keys));
            } else if self.eat_kw("limit") {
                let count = self.parse_expr()?;
                let offset = if self.eat_kw("offset") { Some(self.parse_expr()?) } else { None };
                clauses.push(Clause::Limit { count, offset });
            } else if self.at_kw("distinct") {
                self.bump();
                self.expect_kw("by")?;
                let mut keys = vec![self.parse_expr()?];
                while self.eat(&Token::Comma) {
                    keys.push(self.parse_expr()?);
                }
                clauses.push(Clause::DistinctBy(keys));
            } else if self.eat_kw("return") {
                let ret = self.parse_expr()?;
                return Ok(Expr::Flwor(Box::new(Flwor { clauses, ret })));
            } else {
                return Err(self.err("expected FLWOR clause or 'return'"));
            }
        }
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        let mut items = vec![self.parse_and()?];
        while self.eat_kw("or") {
            items.push(self.parse_and()?);
        }
        Ok(if items.len() == 1 { items.pop().unwrap() } else { Expr::Or(items) })
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        let mut items = vec![self.parse_not()?];
        while self.eat_kw("and") {
            items.push(self.parse_not()?);
        }
        Ok(if items.len() == 1 { items.pop().unwrap() } else { Expr::And(items) })
    }

    fn parse_not(&mut self) -> PResult<Expr> {
        if self.at_kw("not") && self.peek_at(1) != Some(&Token::LParen) {
            self.bump();
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> PResult<Expr> {
        // Quantified expressions can appear as comparison operands inside
        // and/or chains (Query 6).
        if self.at_kw("some") || self.at_kw("every") {
            return self.parse_quantified();
        }
        let left = self.parse_additive()?;
        // Optional hint before the operator (Query 14).
        let mut hint = false;
        if let Some(Token::Hint(h)) = self.peek() {
            if h.contains("indexnl") {
                hint = true;
            }
            self.bump();
        }
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Neq) => CmpOp::Neq,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(Token::FuzzyEq) => CmpOp::FuzzyEq,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_additive()?;
        Ok(Expr::Compare { op, left: Box::new(left), right: Box::new(right), index_nl_hint: hint })
    }

    fn parse_additive(&mut self) -> PResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> PResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                Some(Token::Percent) => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        if self.eat(&Token::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.eat(&Token::Plus);
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat(&Token::Dot) {
                let name = match self.bump() {
                    Some(Token::Ident(s)) => s,
                    Some(Token::StringLit(s)) => s,
                    _ => return Err(self.err("expected field name after '.'")),
                };
                e = Expr::FieldAccess(Box::new(e), name);
            } else if self.peek() == Some(&Token::LBracket) {
                self.bump();
                let idx = self.parse_expr()?;
                self.expect(&Token::RBracket)?;
                e = Expr::IndexAccess(Box::new(e), Box::new(idx));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        match self.peek().cloned() {
            Some(Token::IntLit(v)) => {
                self.bump();
                Ok(Expr::Literal(Value::Int64(v)))
            }
            Some(Token::DoubleLit(v)) => {
                self.bump();
                Ok(Expr::Literal(Value::Double(v)))
            }
            Some(Token::FloatLit(v)) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(v)))
            }
            Some(Token::Int8Lit(v)) => {
                self.bump();
                Ok(Expr::Literal(Value::Int8(v)))
            }
            Some(Token::Int16Lit(v)) => {
                self.bump();
                Ok(Expr::Literal(Value::Int16(v)))
            }
            Some(Token::Int32Lit(v)) => {
                self.bump();
                Ok(Expr::Literal(Value::Int32(v)))
            }
            Some(Token::StringLit(s)) => {
                self.bump();
                Ok(Expr::Literal(Value::string(s)))
            }
            Some(Token::Variable(name)) => {
                self.bump();
                Ok(Expr::Variable(name))
            }
            Some(Token::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::LBracket) => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat(&Token::RBracket) {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat(&Token::Comma) {
                            continue;
                        }
                        self.expect(&Token::RBracket)?;
                        break;
                    }
                }
                Ok(Expr::ListCtor { ordered: true, items })
            }
            Some(Token::LDoubleBrace) => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat(&Token::RDoubleBrace) {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat(&Token::Comma) {
                            continue;
                        }
                        self.expect(&Token::RDoubleBrace)?;
                        break;
                    }
                }
                Ok(Expr::ListCtor { ordered: false, items })
            }
            Some(Token::LBrace) => {
                self.bump();
                let mut fields = Vec::new();
                if !self.eat(&Token::RBrace) {
                    loop {
                        let name = match self.bump() {
                            Some(Token::StringLit(s)) => s,
                            Some(Token::Ident(s)) => s,
                            _ => return Err(self.err("expected record field name")),
                        };
                        self.expect(&Token::Colon)?;
                        let value = self.parse_expr()?;
                        fields.push((name, value));
                        if self.eat(&Token::Comma) {
                            continue;
                        }
                        self.expect(&Token::RBrace)?;
                        break;
                    }
                }
                Ok(Expr::RecordCtor(fields))
            }
            Some(Token::Ident(word)) => {
                // Keyword-led expressions.
                if word.eq_ignore_ascii_case("true") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Boolean(true)));
                }
                if word.eq_ignore_ascii_case("false") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Boolean(false)));
                }
                if word.eq_ignore_ascii_case("null") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Null));
                }
                if word.eq_ignore_ascii_case("missing") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Missing));
                }
                if word.eq_ignore_ascii_case("dataset") {
                    self.bump();
                    let name = self.parse_qualified_name()?;
                    let (dataverse, name) = match name.split_once('.') {
                        Some((dv, n)) => (Some(dv.to_string()), n.to_string()),
                        None => (None, name),
                    };
                    return Ok(Expr::DatasetAccess { dataverse, name });
                }
                if word.eq_ignore_ascii_case("for") || word.eq_ignore_ascii_case("let") {
                    return self.parse_flwor();
                }
                if word.eq_ignore_ascii_case("some") || word.eq_ignore_ascii_case("every") {
                    return self.parse_quantified();
                }
                // Function call or bare identifier error.
                self.bump();
                if self.peek() == Some(&Token::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat(&Token::Comma) {
                                continue;
                            }
                            self.expect(&Token::RParen)?;
                            break;
                        }
                    }
                    Ok(Expr::Call { name: word, args })
                } else {
                    Err(self.err(format!("unexpected identifier '{word}'")))
                }
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Expr {
        parse_expression(src).unwrap()
    }

    #[test]
    fn one_plus_one() {
        // "the expression 1+1 is a valid AQL query that evaluates to 2"
        assert_eq!(
            q("1+1"),
            Expr::Arith(
                ArithOp::Add,
                Box::new(Expr::Literal(Value::Int64(1))),
                Box::new(Expr::Literal(Value::Int64(1))),
            )
        );
    }

    #[test]
    fn paper_query_2_parses() {
        let e = q(r#"
            for $user in dataset MugshotUsers
            where $user.user-since >= datetime('2010-07-22T00:00:00')
              and $user.user-since <= datetime('2012-07-29T23:59:59')
            return $user
        "#);
        let Expr::Flwor(f) = e else { panic!("not a flwor") };
        assert_eq!(f.clauses.len(), 2);
        assert!(matches!(&f.clauses[0], Clause::For { var, .. } if var == "user"));
        assert!(matches!(&f.clauses[1], Clause::Where(Expr::And(cs)) if cs.len() == 2));
    }

    #[test]
    fn paper_query_11_parses() {
        let e = q(r#"
            for $msg in dataset MugshotMessages
            where $msg.timestamp >= datetime("2014-02-20T00:00:00")
              and $msg.timestamp < datetime("2014-02-21T00:00:00")
            group by $aid := $msg.author-id with $msg
            let $cnt := count($msg)
            order by $cnt desc
            limit 3
            return { "author" : $aid, "no messages" : $cnt }
        "#);
        let Expr::Flwor(f) = e else { panic!() };
        assert!(f.clauses.iter().any(
            |c| matches!(c, Clause::GroupBy { keys, with } if keys.len() == 1 && with.len() == 1)
        ));
        assert!(f.clauses.iter().any(|c| matches!(c, Clause::OrderBy(ks) if ks[0].1)));
        assert!(f.clauses.iter().any(|c| matches!(c, Clause::Limit { .. })));
        assert!(matches!(&f.ret, Expr::RecordCtor(fs) if fs.len() == 2));
    }

    #[test]
    fn query14_hint_is_captured() {
        let e = q(r#"
            for $user in dataset MugshotUsers
            for $message in dataset MugshotMessages
            where $message.author-id /*+ indexnl */ = $user.id
            return { "uname" : $user.name, "message" : $message.message }
        "#);
        let Expr::Flwor(f) = e else { panic!() };
        let Clause::Where(Expr::Compare { index_nl_hint, .. }) = &f.clauses[2] else {
            panic!("no where compare: {:?}", f.clauses[2]);
        };
        assert!(index_nl_hint);
    }

    #[test]
    fn quantified_in_where() {
        let e = q(r#"
            for $msu in dataset MugshotUsers
            where (some $e in $msu.employment
                   satisfies is-null($e.end-date) and $e.job-kind = "part-time")
            return $msu
        "#);
        let Expr::Flwor(f) = e else { panic!() };
        assert!(matches!(&f.clauses[1], Clause::Where(Expr::Quantified { .. })));
    }

    #[test]
    fn nested_flwor_in_return() {
        let e = q(r#"
            for $user in dataset MugshotUsers
            return {
                "uname" : $user.name,
                "messages" :
                    for $message in dataset MugshotMessages
                    where $message.author-id = $user.id
                    return $message.message
            }
        "#);
        let Expr::Flwor(f) = e else { panic!() };
        let Expr::RecordCtor(fields) = &f.ret else { panic!() };
        assert!(matches!(&fields[1].1, Expr::Flwor(_)));
    }

    #[test]
    fn ddl_statements_parse() {
        let stmts = parse_statements(
            r#"
            drop dataverse TinySocial if exists;
            create dataverse TinySocial;
            use dataverse TinySocial;
            create type EmploymentType as open {
                organization-name: string,
                start-date: date,
                end-date: date?
            };
            create type MugshotMessageType as closed {
                message-id: int32,
                in-response-to: int32?,
                sender-location: point?,
                tags: {{ string }},
                message: string
            };
            create dataset MugshotUsers(MugshotUserType) primary key id;
            create index msUserSinceIdx on MugshotUsers(user-since);
            create index msSenderLocIndex on MugshotMessages(sender-location) type rtree;
            create index msMessageIdx on MugshotMessages(message) type keyword;
            create index msNgram on MugshotMessages(message) type ngram(3);
        "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 10);
        assert!(matches!(&stmts[0], Statement::DropDataverse { if_exists: true, .. }));
        let Statement::CreateType { ty: TypeExpr::Record { fields, open }, .. } = &stmts[3] else {
            panic!()
        };
        assert!(*open);
        assert_eq!(fields.len(), 3);
        assert!(fields[2].2, "end-date should be optional");
        let Statement::CreateType { ty: TypeExpr::Record { open, fields }, .. } = &stmts[4] else {
            panic!()
        };
        assert!(!*open);
        assert!(matches!(&fields[3].1, TypeExpr::UnorderedList(_)));
        assert!(matches!(
            &stmts[6],
            Statement::CreateIndex { index_type: IndexTypeAst::BTree, .. }
        ));
        assert!(matches!(
            &stmts[9],
            Statement::CreateIndex { index_type: IndexTypeAst::NGram(3), .. }
        ));
    }

    #[test]
    fn dml_statements_parse() {
        let stmts = parse_statements(
            r#"
            set simfunction "edit-distance";
            set simthreshold "3";
            insert into dataset MugshotUsers ({ "id": 11, "alias": "John" });
            delete $user from dataset MugshotUsers where $user.id = 11;
        "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 4);
        assert!(matches!(&stmts[0], Statement::Set { key, .. } if key == "simfunction"));
        assert!(matches!(&stmts[2], Statement::Insert { .. }));
        assert!(
            matches!(&stmts[3], Statement::Delete { condition: Some(_), var, .. } if var == "user")
        );
    }

    #[test]
    fn external_and_feed_ddl() {
        let stmts = parse_statements(
            r#"
            create external dataset AccessLog(AccessLogType)
                using localfs
                (("path"="localhost:///tmp/log.csv"),
                 ("format"="delimited-text"),
                 ("delimiter"="|"));
            create feed socket_feed using socket_adaptor
                (("sockets"="127.0.0.1:10001"),
                 ("type-name"="MugshotMessageType"));
            connect feed socket_feed to dataset MugshotMessages;
            disconnect feed socket_feed from dataset MugshotMessages;
        "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 4);
        let Statement::CreateExternalDataset { adaptor, properties, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(adaptor, "localfs");
        assert_eq!(properties.len(), 3);
        assert!(matches!(&stmts[2], Statement::ConnectFeed { .. }));
    }

    #[test]
    fn function_ddl_and_calls() {
        let stmts = parse_statements(
            r#"
            create function unemployed() {
                for $msu in dataset MugshotUsers
                where (every $e in $msu.employment satisfies not(is-null($e.end-date)))
                return { "name" : $msu.name }
            };
            for $un in unemployed() where $un.address.zip = "98765" return $un;
        "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(matches!(&stmts[0], Statement::CreateFunction { params, .. } if params.is_empty()));
        let Statement::Query(Expr::Flwor(f)) = &stmts[1] else { panic!() };
        assert!(
            matches!(&f.clauses[0], Clause::For { source: Expr::Call { name, .. }, .. } if name == "unemployed")
        );
    }

    #[test]
    fn positional_variable() {
        let e = q("for $x at $i in $xs return $i");
        let Expr::Flwor(f) = e else { panic!() };
        assert!(matches!(&f.clauses[0], Clause::For { positional: Some(p), .. } if p == "i"));
    }

    #[test]
    fn parse_errors_have_lines() {
        let err = parse_statements("for $x in\n dataset M\n return").unwrap_err();
        assert!(err.line >= 3, "{err}");
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("{ \"a\" 1 }").is_err());
        assert!(parse_statements("create banana Foo;").is_err());
    }
}
