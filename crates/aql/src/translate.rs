//! AQL → Algebricks translation.
//!
//! FLWOR clauses become a pipeline of logical operators; adjacent dataset
//! `for` clauses become joins (which the optimizer turns into hash joins
//! when equality predicates exist — the paper's safe rule (b)); nested
//! FLWORs become correlated subplans; user-defined functions (views with
//! parameters, §2.5) are inlined at their call sites.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use asterix_adm::Value;
use asterix_algebricks::expr::{CompareOp, LogicalExpr, QuantKind, VarId};
use asterix_algebricks::plan::{AggCall, AggFunc, JoinKind, LogicalOp, SortSpec};

use crate::ast::*;

/// A stored user-defined function.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    pub params: Vec<String>,
    pub body: Expr,
}

/// What the translator needs from the catalog: dataset name resolution
/// (against the session's `use dataverse`) and UDF lookup.
pub trait AqlCatalog {
    /// Resolve `name` (possibly `Dataverse.Name`) to the qualified dataset
    /// name, or `None` if no such dataset exists.
    fn resolve_dataset(&self, name: &str) -> Option<String>;

    /// Look up a user-defined function by name and arity.
    fn function(&self, name: &str, arity: usize) -> Option<FunctionDef>;
}

/// Translation errors.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslateError(pub String);

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.0)
    }
}

impl std::error::Error for TranslateError {}

type TResult<T> = Result<T, TranslateError>;

fn terr<T>(msg: impl Into<String>) -> TResult<T> {
    Err(TranslateError(msg.into()))
}

/// The AQL-to-plan translator. One per statement.
pub struct Translator<'a> {
    catalog: &'a dyn AqlCatalog,
    next_var: usize,
    /// Session fuzzy-matching settings (`set simfunction/simthreshold`).
    pub simfunction: String,
    pub simthreshold: String,
    /// Inlining depth guard against recursive UDFs.
    depth: usize,
}

/// Variable scope: AQL variable name → compiler variable id.
pub type Scope = HashMap<String, VarId>;

impl<'a> Translator<'a> {
    pub fn new(catalog: &'a dyn AqlCatalog) -> Translator<'a> {
        Translator {
            catalog,
            next_var: 0,
            simfunction: "jaccard".into(),
            simthreshold: "0.5".into(),
            depth: 0,
        }
    }

    fn fresh(&mut self) -> VarId {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    /// Allocate a fresh variable id (for callers seeding scopes manually,
    /// e.g. the delete path and feed compute functions).
    pub fn fresh_var(&mut self) -> VarId {
        self.fresh()
    }

    /// Build the plan for `delete $var from dataset DS where cond`: scan,
    /// filter, and emit the primary key values of matching records.
    pub fn translate_delete(
        &mut self,
        var_name: &str,
        dataset_qualified: &str,
        pk_fields: &[String],
        condition: Option<&Expr>,
    ) -> TResult<LogicalOp> {
        let v = self.fresh();
        let mut scope = Scope::new();
        scope.insert(var_name.to_string(), v);
        let mut plan = LogicalOp::DataSourceScan { dataset: dataset_qualified.to_string(), var: v };
        if let Some(cond) = condition {
            let c = self.translate_expr(cond, &scope)?;
            plan = LogicalOp::Select { input: Box::new(plan), condition: c };
        }
        let pk_items: Vec<LogicalExpr> = pk_fields
            .iter()
            .map(|f| {
                let mut e = LogicalExpr::Var(v);
                for part in f.split('.') {
                    e = LogicalExpr::field(e, part);
                }
                e
            })
            .collect();
        Ok(LogicalOp::Emit {
            input: Box::new(plan),
            expr: LogicalExpr::ListCtor { ordered: true, items: pk_items },
        })
    }

    /// Translate a top-level query expression into an `Emit`-rooted plan.
    pub fn translate_query(&mut self, e: &Expr) -> TResult<LogicalOp> {
        let scope = Scope::new();
        match e {
            Expr::Flwor(f) => self.translate_flwor(f, &scope),
            // A top-level aggregate over a FLWOR (Query 10's `avg(for ...
            // return ...)`) compiles to a distributed scalar Aggregate —
            // the local/global split of Figure 6 — rather than a
            // materialize-then-aggregate expression.
            Expr::Call { name, args }
                if args.len() == 1
                    && AggFunc::from_name(name).is_some()
                    && matches!(&args[0], Expr::Flwor(_)) =>
            {
                let Expr::Flwor(f) = &args[0] else { unreachable!() };
                let (func, sql) = AggFunc::from_name(name).unwrap();
                let inner = self.translate_flwor(f, &scope)?;
                let LogicalOp::Emit { input, expr } = inner else {
                    return terr("flwor did not produce an emit root");
                };
                let agg_var = self.fresh();
                let agg = LogicalOp::Aggregate {
                    input,
                    aggs: vec![AggCall { var: agg_var, func, sql, input: expr }],
                };
                Ok(LogicalOp::Emit { input: Box::new(agg), expr: LogicalExpr::Var(agg_var) })
            }
            other => {
                // Non-FLWOR query (e.g. `1+1`, or a bare function call):
                // one row from the empty tuple source.
                let expr = self.translate_expr(other, &scope)?;
                Ok(LogicalOp::Emit { input: Box::new(LogicalOp::EmptyTupleSource), expr })
            }
        }
    }

    fn translate_flwor(&mut self, f: &Flwor, outer: &Scope) -> TResult<LogicalOp> {
        let mut scope = outer.clone();
        let mut plan = LogicalOp::EmptyTupleSource;
        let mut saw_indexnl_hint = false;

        for clause in &f.clauses {
            match clause {
                Clause::For { var, positional, source } => {
                    let v = self.fresh();
                    let p = positional.as_ref().map(|_| self.fresh());
                    plan = self.translate_for_source(plan, source, v, p, &scope)?;
                    scope.insert(var.clone(), v);
                    if let (Some(pv), Some(pname)) = (p, positional) {
                        scope.insert(pname.clone(), pv);
                    }
                }
                Clause::Let { var, expr } => {
                    let e = self.translate_expr(expr, &scope)?;
                    let v = self.fresh();
                    plan = LogicalOp::Assign { input: Box::new(plan), var: v, expr: e };
                    scope.insert(var.clone(), v);
                }
                Clause::Where(cond) => {
                    if contains_indexnl_hint(cond) {
                        saw_indexnl_hint = true;
                    }
                    let c = self.translate_expr(cond, &scope)?;
                    plan = LogicalOp::Select { input: Box::new(plan), condition: c };
                }
                Clause::GroupBy { keys, with } => {
                    let mut key_pairs = Vec::with_capacity(keys.len());
                    let mut new_scope = Scope::new();
                    // Keep outer (pre-FLWOR) variables visible: AQL group by
                    // hides only the FLWOR-local ungrouped variables.
                    for (name, v) in outer {
                        new_scope.insert(name.clone(), *v);
                    }
                    for (kname, kexpr) in keys {
                        let ke = self.translate_expr(kexpr, &scope)?;
                        let kv = self.fresh();
                        key_pairs.push((kv, ke));
                        new_scope.insert(kname.clone(), kv);
                    }
                    let mut aggs = Vec::with_capacity(with.len());
                    for wname in with {
                        let Some(&old) = scope.get(wname) else {
                            return terr(format!("undefined group variable ${wname}"));
                        };
                        let av = self.fresh();
                        aggs.push(AggCall {
                            var: av,
                            func: AggFunc::Listify,
                            sql: false,
                            input: LogicalExpr::Var(old),
                        });
                        new_scope.insert(wname.clone(), av);
                    }
                    plan = LogicalOp::GroupBy { input: Box::new(plan), keys: key_pairs, aggs };
                    scope = new_scope;
                }
                Clause::OrderBy(keys) => {
                    let mut specs = Vec::with_capacity(keys.len());
                    for (e, desc) in keys {
                        specs.push(SortSpec {
                            expr: self.translate_expr(e, &scope)?,
                            descending: *desc,
                        });
                    }
                    plan = LogicalOp::Order { input: Box::new(plan), keys: specs };
                }
                Clause::Limit { count, offset } => {
                    let c = self.const_usize(count, &scope)?;
                    let o = match offset {
                        Some(e) => self.const_usize(e, &scope)?,
                        None => 0,
                    };
                    plan = LogicalOp::Limit { input: Box::new(plan), count: c, offset: o };
                }
                Clause::DistinctBy(exprs) => {
                    let mut es = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        es.push(self.translate_expr(e, &scope)?);
                    }
                    plan = LogicalOp::Distinct { input: Box::new(plan), exprs: es };
                }
            }
        }
        let ret = self.translate_expr(&f.ret, &scope)?;
        let mut plan = LogicalOp::Emit { input: Box::new(plan), expr: ret };
        if saw_indexnl_hint {
            plan = mark_joins_indexnl(plan);
        }
        Ok(plan)
    }

    /// Translate the source of a `for` clause, combining with the plan so
    /// far (scan / join for datasets, unnest for everything else).
    fn translate_for_source(
        &mut self,
        plan: LogicalOp,
        source: &Expr,
        var: VarId,
        positional: Option<VarId>,
        scope: &Scope,
    ) -> TResult<LogicalOp> {
        // Iterating a dataset?
        if let Expr::DatasetAccess { dataverse, name } = source {
            let qualified = self.resolve_dataset(dataverse, name)?;
            let scan = LogicalOp::DataSourceScan { dataset: qualified, var };
            if positional.is_some() {
                return terr("positional variables are not supported over datasets");
            }
            return Ok(match plan {
                LogicalOp::EmptyTupleSource => scan,
                prev => LogicalOp::Join {
                    left: Box::new(prev),
                    right: Box::new(scan),
                    condition: LogicalExpr::Const(Value::Boolean(true)),
                    kind: JoinKind::Inner,
                    index_nl_hint: false,
                },
            });
        }
        // General collection expression: unnest.
        let e = self.translate_expr(source, scope)?;
        Ok(LogicalOp::Unnest { input: Box::new(plan), var, expr: e, positional, outer: false })
    }

    fn resolve_dataset(&self, dataverse: &Option<String>, name: &str) -> TResult<String> {
        let full = match dataverse {
            Some(dv) => format!("{dv}.{name}"),
            None => name.to_string(),
        };
        self.catalog
            .resolve_dataset(&full)
            .ok_or_else(|| TranslateError(format!("cannot find dataset {full}")))
    }

    fn const_usize(&mut self, e: &Expr, scope: &Scope) -> TResult<usize> {
        let le = self.translate_expr(e, scope)?;
        match le {
            LogicalExpr::Const(v) => {
                v.as_i64().filter(|i| *i >= 0).map(|i| i as usize).ok_or_else(|| {
                    TranslateError("limit/offset must be a non-negative integer".into())
                })
            }
            _ => terr("limit/offset must be a constant"),
        }
    }

    /// Translate an expression under a variable scope.
    pub fn translate_expr(&mut self, e: &Expr, scope: &Scope) -> TResult<LogicalExpr> {
        Ok(match e {
            Expr::Literal(v) => LogicalExpr::Const(v.clone()),
            Expr::Param(i) => LogicalExpr::Param(*i),
            Expr::Variable(name) => match scope.get(name) {
                Some(v) => LogicalExpr::Var(*v),
                None => return terr(format!("undefined variable ${name}")),
            },
            Expr::DatasetAccess { dataverse, name } => {
                // A dataset used as a value: subquery returning its records.
                let qualified = self.resolve_dataset(dataverse, name)?;
                let v = self.fresh();
                LogicalExpr::Subquery(Arc::new(LogicalOp::Emit {
                    input: Box::new(LogicalOp::DataSourceScan { dataset: qualified, var: v }),
                    expr: LogicalExpr::Var(v),
                }))
            }
            Expr::FieldAccess(base, name) => {
                LogicalExpr::field(self.translate_expr(base, scope)?, name.clone())
            }
            Expr::IndexAccess(base, idx) => LogicalExpr::IndexAccess(
                Box::new(self.translate_expr(base, scope)?),
                Box::new(self.translate_expr(idx, scope)?),
            ),
            Expr::Arith(op, a, b) => LogicalExpr::Arith(
                match op {
                    ArithOp::Add => '+',
                    ArithOp::Sub => '-',
                    ArithOp::Mul => '*',
                    ArithOp::Div => '/',
                    ArithOp::Mod => '%',
                },
                Box::new(self.translate_expr(a, scope)?),
                Box::new(self.translate_expr(b, scope)?),
            ),
            Expr::Neg(a) => LogicalExpr::Neg(Box::new(self.translate_expr(a, scope)?)),
            Expr::Compare { op, left, right, .. } => {
                let l = self.translate_expr(left, scope)?;
                let r = self.translate_expr(right, scope)?;
                if *op == CmpOp::FuzzyEq && self.simfunction == "edit-distance" {
                    // Lower `~=` under edit-distance to a named predicate so
                    // the ngram-index rule can recognize it.
                    let t: i64 = self.simthreshold.parse().map_err(|_| {
                        TranslateError(format!(
                            "simthreshold {:?} is not an integer",
                            self.simthreshold
                        ))
                    })?;
                    LogicalExpr::call(
                        "edit-distance-ok",
                        vec![l, r, LogicalExpr::Const(Value::Int64(t))],
                    )
                } else {
                    LogicalExpr::Compare(
                        match op {
                            CmpOp::Eq => CompareOp::Eq,
                            CmpOp::Neq => CompareOp::Neq,
                            CmpOp::Lt => CompareOp::Lt,
                            CmpOp::Le => CompareOp::Le,
                            CmpOp::Gt => CompareOp::Gt,
                            CmpOp::Ge => CompareOp::Ge,
                            CmpOp::FuzzyEq => CompareOp::FuzzyEq,
                        },
                        Box::new(l),
                        Box::new(r),
                    )
                }
            }
            Expr::And(es) => {
                let mut out = Vec::with_capacity(es.len());
                for x in es {
                    out.push(self.translate_expr(x, scope)?);
                }
                LogicalExpr::And(out)
            }
            Expr::Or(es) => {
                let mut out = Vec::with_capacity(es.len());
                for x in es {
                    out.push(self.translate_expr(x, scope)?);
                }
                LogicalExpr::Or(out)
            }
            Expr::Not(a) => LogicalExpr::Not(Box::new(self.translate_expr(a, scope)?)),
            Expr::RecordCtor(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (name, x) in fields {
                    out.push((name.clone(), self.translate_expr(x, scope)?));
                }
                LogicalExpr::RecordCtor(out)
            }
            Expr::ListCtor { ordered, items } => {
                let mut out = Vec::with_capacity(items.len());
                for x in items {
                    out.push(self.translate_expr(x, scope)?);
                }
                LogicalExpr::ListCtor { ordered: *ordered, items: out }
            }
            Expr::Quantified { q, var, collection, predicate } => {
                let coll = self.translate_expr(collection, scope)?;
                let v = self.fresh();
                let mut inner = scope.clone();
                inner.insert(var.clone(), v);
                let pred = self.translate_expr(predicate, &inner)?;
                LogicalExpr::Quantified {
                    kind: match q {
                        Quantifier::Some => QuantKind::Some,
                        Quantifier::Every => QuantKind::Every,
                    },
                    var: v,
                    collection: Box::new(coll),
                    predicate: Box::new(pred),
                }
            }
            Expr::IfThenElse(c, t, e2) => LogicalExpr::IfThenElse(
                Box::new(self.translate_expr(c, scope)?),
                Box::new(self.translate_expr(t, scope)?),
                Box::new(self.translate_expr(e2, scope)?),
            ),
            Expr::Flwor(f) => LogicalExpr::Subquery(Arc::new(self.translate_flwor(f, scope)?)),
            Expr::Call { name, args } => {
                // `dataset("X")`-style calls are not in the subset; check
                // UDFs first (they shadow nothing — builtin names win).
                if asterix_adm::functions::is_builtin(name) {
                    let mut out = Vec::with_capacity(args.len());
                    for a in args {
                        out.push(self.translate_expr(a, scope)?);
                    }
                    LogicalExpr::Call(name.clone(), out)
                } else if let Some(def) = self.catalog.function(name, args.len()) {
                    self.inline_udf(&def, args, scope)?
                } else {
                    return terr(format!("unknown function {name}({} args)", args.len()));
                }
            }
        })
    }

    /// Inline a UDF call: `f($a) { <flwor> }` becomes a subquery whose plan
    /// binds the parameters with assigns before the body's clauses.
    fn inline_udf(
        &mut self,
        def: &FunctionDef,
        args: &[Expr],
        scope: &Scope,
    ) -> TResult<LogicalExpr> {
        if self.depth > 16 {
            return terr("UDF inlining too deep (recursive function?)");
        }
        self.depth += 1;
        let result = (|| {
            // Bind parameters to fresh vars assigned from the arguments.
            let mut inner_scope = scope.clone();
            let mut assigns: Vec<(VarId, LogicalExpr)> = Vec::with_capacity(args.len());
            for (param, arg) in def.params.iter().zip(args) {
                let e = self.translate_expr(arg, scope)?;
                let v = self.fresh();
                assigns.push((v, e));
                inner_scope.insert(param.clone(), v);
            }
            match &def.body {
                Expr::Flwor(f) => {
                    let body = self.translate_flwor(f, &inner_scope)?;
                    // Prepend the parameter assigns below the body's leaves:
                    // wrap them as outer bindings using a synthetic pipeline:
                    // Emit is the root; we rewrite its input to join with an
                    // assign chain only when parameters exist.
                    let plan =
                        if assigns.is_empty() { body } else { prepend_assigns(body, assigns) };
                    Ok(LogicalExpr::Subquery(Arc::new(plan)))
                }
                other => {
                    // Expression-bodied function: a single-row subplan.
                    let body = self.translate_expr(other, &inner_scope)?;
                    let mut plan: LogicalOp = LogicalOp::EmptyTupleSource;
                    for (v, e) in assigns {
                        plan = LogicalOp::Assign { input: Box::new(plan), var: v, expr: e };
                    }
                    let sub = LogicalOp::Emit { input: Box::new(plan), expr: body };
                    // The subquery yields a 1-element list; take item 0.
                    Ok(LogicalExpr::IndexAccess(
                        Box::new(LogicalExpr::Subquery(Arc::new(sub))),
                        Box::new(LogicalExpr::Const(Value::Int64(0))),
                    ))
                }
            }
        })();
        self.depth -= 1;
        result
    }
}

/// Insert parameter assigns at the bottom of a plan tree (below the
/// leftmost source).
fn prepend_assigns(plan: LogicalOp, assigns: Vec<(VarId, LogicalExpr)>) -> LogicalOp {
    // Build the assign chain over the empty source.
    let mut chain = LogicalOp::EmptyTupleSource;
    for (v, e) in assigns {
        chain = LogicalOp::Assign { input: Box::new(chain), var: v, expr: e };
    }
    // Replace the leftmost leaf of `plan` with a join against the chain
    // (one row, so semantically a parameter binding).
    fn rewrite(op: LogicalOp, chain: &mut Option<LogicalOp>) -> LogicalOp {
        match op {
            LogicalOp::EmptyTupleSource => match chain.take() {
                Some(c) => c,
                None => LogicalOp::EmptyTupleSource,
            },
            LogicalOp::DataSourceScan { .. } | LogicalOp::IndexSearch { .. } => {
                match chain.take() {
                    Some(c) => LogicalOp::Join {
                        left: Box::new(c),
                        right: Box::new(op),
                        condition: LogicalExpr::Const(Value::Boolean(true)),
                        kind: JoinKind::Inner,
                        index_nl_hint: false,
                    },
                    None => op,
                }
            }
            LogicalOp::Assign { input, var, expr } => {
                LogicalOp::Assign { input: Box::new(rewrite(*input, chain)), var, expr }
            }
            LogicalOp::Select { input, condition } => {
                LogicalOp::Select { input: Box::new(rewrite(*input, chain)), condition }
            }
            LogicalOp::Unnest { input, var, expr, positional, outer } => LogicalOp::Unnest {
                input: Box::new(rewrite(*input, chain)),
                var,
                expr,
                positional,
                outer,
            },
            LogicalOp::Join { left, right, condition, kind, index_nl_hint } => LogicalOp::Join {
                left: Box::new(rewrite(*left, chain)),
                right,
                condition,
                kind,
                index_nl_hint,
            },
            LogicalOp::GroupBy { input, keys, aggs } => {
                LogicalOp::GroupBy { input: Box::new(rewrite(*input, chain)), keys, aggs }
            }
            LogicalOp::Aggregate { input, aggs } => {
                LogicalOp::Aggregate { input: Box::new(rewrite(*input, chain)), aggs }
            }
            LogicalOp::Order { input, keys } => {
                LogicalOp::Order { input: Box::new(rewrite(*input, chain)), keys }
            }
            LogicalOp::Limit { input, count, offset } => {
                LogicalOp::Limit { input: Box::new(rewrite(*input, chain)), count, offset }
            }
            LogicalOp::Distinct { input, exprs } => {
                LogicalOp::Distinct { input: Box::new(rewrite(*input, chain)), exprs }
            }
            LogicalOp::Emit { input, expr } => {
                LogicalOp::Emit { input: Box::new(rewrite(*input, chain)), expr }
            }
            other => other,
        }
    }
    rewrite(plan, &mut Some(chain))
}

/// Does the condition AST contain an `/*+ indexnl */`-hinted comparison?
fn contains_indexnl_hint(e: &Expr) -> bool {
    match e {
        Expr::Compare { index_nl_hint: true, .. } => true,
        Expr::Compare { left, right, .. } => {
            contains_indexnl_hint(left) || contains_indexnl_hint(right)
        }
        Expr::And(es) | Expr::Or(es) => es.iter().any(contains_indexnl_hint),
        Expr::Not(x) | Expr::Neg(x) => contains_indexnl_hint(x),
        _ => false,
    }
}

/// Set the `indexnl` hint on every join in the plan (the paper's hints are
/// per-query in practice: Query 14 has exactly one join).
fn mark_joins_indexnl(plan: LogicalOp) -> LogicalOp {
    plan.transform_up(&mut |op| match op {
        LogicalOp::Join { left, right, condition, kind, .. } => {
            LogicalOp::Join { left, right, condition, kind, index_nl_hint: true }
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    struct TestCatalog;

    impl AqlCatalog for TestCatalog {
        fn resolve_dataset(&self, name: &str) -> Option<String> {
            let known = [
                "MugshotUsers",
                "MugshotMessages",
                "AccessLog",
                "Metadata.Dataset",
                "Metadata.Index",
            ];
            known
                .iter()
                .find(|k| **k == name || k.split('.').next_back() == Some(name))
                .map(|k| format!("TinySocial.{}", k.split('.').next_back().unwrap()))
        }

        fn function(&self, name: &str, arity: usize) -> Option<FunctionDef> {
            if name == "unemployed" && arity == 0 {
                let body = parse_expression(
                    r#"for $msu in dataset MugshotUsers
                       where every $e in $msu.employment satisfies not(is-null($e.end-date))
                       return { "name" : $msu.name }"#,
                )
                .unwrap();
                return Some(FunctionDef { params: vec![], body });
            }
            if name == "add2" && arity == 1 {
                let body = parse_expression("$x + 2").unwrap();
                return Some(FunctionDef { params: vec!["x".into()], body });
            }
            None
        }
    }

    fn translate(src: &str) -> LogicalOp {
        let e = parse_expression(src).unwrap();
        Translator::new(&TestCatalog).translate_query(&e).unwrap()
    }

    #[test]
    fn simple_scan_return() {
        let plan = translate("for $ds in dataset Metadata.Dataset return $ds");
        let p = plan.pretty();
        assert!(p.contains("data-scan TinySocial.Dataset"), "{p}");
        assert!(p.starts_with("emit"), "{p}");
    }

    #[test]
    fn two_fors_become_join() {
        let plan = translate(
            r#"for $user in dataset MugshotUsers
               for $message in dataset MugshotMessages
               where $message.author-id = $user.id
               return { "uname": $user.name }"#,
        );
        let p = plan.pretty();
        assert!(p.contains("join"), "{p}");
        assert!(p.matches("data-scan").count() == 2, "{p}");
    }

    #[test]
    fn hint_marks_join() {
        let plan = translate(
            r#"for $user in dataset MugshotUsers
               for $message in dataset MugshotMessages
               where $message.author-id /*+ indexnl */ = $user.id
               return $user"#,
        );
        fn has_hinted_join(op: &LogicalOp) -> bool {
            if let LogicalOp::Join { index_nl_hint: true, .. } = op {
                return true;
            }
            op.inputs().iter().any(|i| has_hinted_join(i))
        }
        assert!(has_hinted_join(&plan), "{}", plan.pretty());
    }

    #[test]
    fn group_by_with_listify() {
        let plan = translate(
            r#"for $msg in dataset MugshotMessages
               group by $aid := $msg.author-id with $msg
               let $cnt := count($msg)
               order by $cnt desc
               limit 3
               return { "author": $aid, "cnt": $cnt }"#,
        );
        let p = plan.pretty();
        assert!(p.contains("group-by (1 keys)"), "{p}");
        assert!(p.contains("order"), "{p}");
        assert!(p.contains("limit 3"), "{p}");
    }

    #[test]
    fn nested_flwor_is_subquery() {
        let plan = translate(
            r#"for $user in dataset MugshotUsers
               return {
                   "name": $user.name,
                   "messages": for $m in dataset MugshotMessages
                               where $m.author-id = $user.id
                               return $m.message
               }"#,
        );
        let LogicalOp::Emit { expr, .. } = &plan else { panic!() };
        let LogicalExpr::RecordCtor(fields) = expr else { panic!() };
        assert!(matches!(&fields[1].1, LogicalExpr::Subquery(_)));
    }

    #[test]
    fn let_scoping_and_undefined_vars() {
        let plan = translate("for $x in dataset MugshotUsers let $y := $x.id return $y");
        assert!(plan.pretty().contains("assign"));
        let e = parse_expression("for $x in dataset MugshotUsers return $zzz").unwrap();
        let err = Translator::new(&TestCatalog).translate_query(&e).unwrap_err();
        assert!(err.0.contains("zzz"), "{err}");
    }

    #[test]
    fn udf_flwor_inlining() {
        let plan = translate(
            r#"for $un in unemployed()
               where $un.name = "X"
               return $un"#,
        );
        let p = plan.pretty();
        // The UDF body becomes a subquery under an unnest.
        assert!(p.contains("unnest"), "{p}");
    }

    #[test]
    fn udf_expr_inlining() {
        let plan = translate("add2(40)");
        // Expression-bodied UDF: evaluates through a 1-row subplan.
        let LogicalOp::Emit { expr, .. } = &plan else { panic!() };
        assert!(matches!(expr, LogicalExpr::IndexAccess(..)), "{expr:?}");
    }

    #[test]
    fn fuzzy_lowering_depends_on_session() {
        let e = parse_expression(
            "for $m in dataset MugshotMessages where $m.message ~= \"tonight\" return $m",
        )
        .unwrap();
        let mut tr = Translator::new(&TestCatalog);
        tr.simfunction = "edit-distance".into();
        tr.simthreshold = "3".into();
        let plan = tr.translate_query(&e).unwrap();
        fn find_call(op: &LogicalOp, name: &str) -> bool {
            fn expr_has(e: &LogicalExpr, name: &str) -> bool {
                match e {
                    LogicalExpr::Call(n, args) => {
                        n == name || args.iter().any(|a| expr_has(a, name))
                    }
                    _ => false,
                }
            }
            if let LogicalOp::Select { condition, .. } = op {
                if expr_has(condition, name) {
                    return true;
                }
            }
            op.inputs().iter().any(|i| find_call(i, name))
        }
        assert!(find_call(&plan, "edit-distance-ok"), "{}", plan.pretty());

        // Under jaccard semantics the ~= stays a fuzzy comparison.
        let mut tr = Translator::new(&TestCatalog);
        tr.simfunction = "jaccard".into();
        let plan = tr.translate_query(&e).unwrap();
        assert!(!find_call(&plan, "edit-distance-ok"), "{}", plan.pretty());
    }

    #[test]
    fn unknown_dataset_and_function_error() {
        let e = parse_expression("for $x in dataset NoSuch return $x").unwrap();
        assert!(Translator::new(&TestCatalog).translate_query(&e).is_err());
        let e = parse_expression("nosuchfn(1, 2)").unwrap();
        assert!(Translator::new(&TestCatalog).translate_query(&e).is_err());
    }

    #[test]
    fn quantified_scoping() {
        let plan = translate(
            r#"for $u in dataset MugshotUsers
               where some $e in $u.employment satisfies $e.job-kind = "part-time"
               return $u"#,
        );
        assert!(plan.pretty().contains("select"), "{}", plan.pretty());
    }

    #[test]
    fn non_flwor_query() {
        let plan = translate("1 + 1");
        let LogicalOp::Emit { input, .. } = &plan else { panic!() };
        assert!(matches!(**input, LogicalOp::EmptyTupleSource));
    }
}
