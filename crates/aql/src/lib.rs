//! # asterix-aql — the Asterix Query Language (§3)
//!
//! AQL is an expression language loosely based on XQuery: FLWOR
//! (for-let-where-order by-return) expressions with group by and limit,
//! quantified expressions, fuzzy comparison (`~=`), rich literals (records,
//! ordered lists, bags, typed constructors), and DDL/DML statements
//! (dataverses, types, datasets, indexes, feeds, functions, insert/delete,
//! load). This crate lexes and parses AQL and translates queries into
//! Algebricks logical plans.

pub mod ast;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod translate;

pub use ast::{Expr, Statement};
pub use normalize::{normalize_query, NormalizedQuery};
pub use parser::{parse_expression, parse_statements};
pub use translate::{AqlCatalog, FunctionDef, Translator};
