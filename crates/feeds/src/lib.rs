//! # asterix-feeds — continuous data ingestion (§2.4, §4.5)
//!
//! A feed's Ingestion Pipeline has three Stages — **intake**, **compute**,
//! and **store** — each an Operator. The Intake stage runs the feed adaptor
//! and converts incoming data to ADM; the compute stage applies an optional
//! pre-processing function; the store stage inserts into the target Dataset
//! (and its indexes). **Feed Joints** tap the pipeline between stages,
//! buffering an operator's output and letting data be routed simultaneously
//! along multiple paths — which is how Secondary Feeds cascade.
//!
//! The paper's socket adaptor listens on TCP; here the socket is simulated
//! by an in-process channel endpoint ([`SocketEndpoint`]) that external
//! "clients" push data into — the same push-based intake path without
//! binding real ports. A `localfs` file adaptor reads ADM files.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};

use asterix_adm::{AdmError, Value};

/// Feed errors.
#[derive(Debug)]
pub enum FeedError {
    Adm(AdmError),
    Io(std::io::Error),
    Closed(String),
    Config(String),
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::Adm(e) => write!(f, "{e}"),
            FeedError::Io(e) => write!(f, "io error: {e}"),
            FeedError::Closed(m) => write!(f, "feed closed: {m}"),
            FeedError::Config(m) => write!(f, "feed config error: {m}"),
        }
    }
}

impl std::error::Error for FeedError {}

impl From<AdmError> for FeedError {
    fn from(e: AdmError) -> Self {
        FeedError::Adm(e)
    }
}

impl From<std::io::Error> for FeedError {
    fn from(e: std::io::Error) -> Self {
        FeedError::Io(e)
    }
}

type FResult<T> = Result<T, FeedError>;

/// Raw items produced by an adaptor before the intake stage parses them.
#[derive(Debug, Clone)]
pub enum RawItem {
    /// ADM text to be parsed (`("format"="adm")`).
    Text(String),
    /// An already-typed value (in-process producers).
    Value(Value),
    /// End of feed.
    Eof,
}

/// The push endpoint of the simulated socket adaptor: what a TCP client
/// would be on the paper's deployment.
#[derive(Clone)]
pub struct SocketEndpoint {
    tx: Sender<RawItem>,
}

impl SocketEndpoint {
    /// Push one ADM-text datum (blocking if the intake buffer is full —
    /// feed back-pressure).
    pub fn send_text(&self, text: impl Into<String>) -> FResult<()> {
        self.tx
            .send(RawItem::Text(text.into()))
            .map_err(|_| FeedError::Closed("intake stopped".into()))
    }

    /// Push one typed value.
    pub fn send_value(&self, v: Value) -> FResult<()> {
        self.tx.send(RawItem::Value(v)).map_err(|_| FeedError::Closed("intake stopped".into()))
    }

    /// Try to push without blocking; `false` when the buffer is full.
    pub fn try_send_value(&self, v: Value) -> FResult<bool> {
        match self.tx.try_send(RawItem::Value(v)) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => Ok(false),
            Err(TrySendError::Disconnected(_)) => Err(FeedError::Closed("intake stopped".into())),
        }
    }

    /// Close the feed (EOF).
    pub fn close(&self) {
        let _ = self.tx.send(RawItem::Eof);
    }
}

/// A Feed Joint: buffers an operator's output and offers a subscription
/// mechanism so data can flow along multiple paths (§4.5).
pub struct FeedJoint {
    subscribers: Mutex<Vec<Sender<RawItem>>>,
    delivered: AtomicU64,
}

impl Default for FeedJoint {
    fn default() -> Self {
        Self::new()
    }
}

impl FeedJoint {
    pub fn new() -> FeedJoint {
        FeedJoint { subscribers: Mutex::new(Vec::new()), delivered: AtomicU64::new(0) }
    }

    /// Subscribe a new consumer (e.g. a secondary feed's pipeline);
    /// returns its receiving end, directly consumable by
    /// [`IngestionPipeline::start`].
    pub fn subscribe(&self, buffer: usize) -> Receiver<RawItem> {
        let (tx, rx) = bounded(buffer.max(1));
        self.subscribers.lock().push(tx);
        rx
    }

    /// Route a value to every subscriber.
    pub fn publish(&self, v: &Value) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(RawItem::Value(v.clone())).is_ok());
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Values published so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

/// Counters for a running pipeline.
#[derive(Debug, Default)]
pub struct FeedStats {
    pub ingested: AtomicU64,
    pub stored: AtomicU64,
    pub failed: AtomicU64,
}

/// Monotonic change signal for a pipeline's counters: the pipeline thread
/// bumps it after every stored/failed update (and once on exit), so waiters
/// can block on progress instead of sleep-polling the counters.
#[derive(Default)]
pub struct ProgressNotifier {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl ProgressNotifier {
    pub fn new() -> ProgressNotifier {
        ProgressNotifier::default()
    }

    /// The current change sequence. Capture this BEFORE reading the
    /// counters, then pass it to [`ProgressNotifier::wait_change`]: an
    /// update landing between the read and the wait advances the sequence,
    /// so the wait returns immediately — no lost-wakeup window.
    pub fn current(&self) -> u64 {
        *self.seq.lock()
    }

    /// Advance the sequence and wake every waiter.
    pub fn notify(&self) {
        *self.seq.lock() += 1;
        self.cv.notify_all();
    }

    /// Block until the sequence advances past `last` or `timeout` elapses;
    /// returns the sequence observed on wakeup (== `last` on timeout).
    pub fn wait_change(&self, last: u64, timeout: std::time::Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        let mut seq = self.seq.lock();
        while *seq <= last {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            if self.cv.wait_for(&mut seq, deadline - now).timed_out() {
                break;
            }
        }
        *seq
    }
}

/// Fires a final notify when the pipeline thread exits for any reason, so
/// waiters observe the end of the stream instead of sleeping out their
/// timeout.
struct NotifyOnExit(Arc<ProgressNotifier>);

impl Drop for NotifyOnExit {
    fn drop(&mut self) {
        self.0.notify();
    }
}

/// The compute stage's pre-processing function: None drops the record
/// (filtering feeds), Some transforms it (§2.4: "apply a previously
/// defined function to the output of the adaptor").
pub type ComputeFn = Arc<dyn Fn(Value) -> FResult<Option<Value>> + Send + Sync>;

/// The store stage: insert into the target dataset + its indexes.
pub type StoreFn = Arc<dyn Fn(Value) -> FResult<()> + Send + Sync>;

/// A running ingestion pipeline (intake → compute → store on one thread,
/// with feed joints after intake and compute).
pub struct IngestionPipeline {
    handle: Option<JoinHandle<FResult<()>>>,
    stop: Arc<AtomicBool>,
    /// Joint after the intake stage (pre-compute data).
    pub intake_joint: Arc<FeedJoint>,
    /// Joint after the compute stage (what the store stage sees).
    pub compute_joint: Arc<FeedJoint>,
    pub stats: Arc<FeedStats>,
    /// Signals every stored/failed counter update (condvar-based waits for
    /// ingestion progress — see [`ProgressNotifier`]).
    pub progress: Arc<ProgressNotifier>,
}

impl IngestionPipeline {
    /// Start a pipeline consuming `rx`.
    pub fn start(
        name: impl Into<String>,
        rx: Receiver<RawItem>,
        compute: Option<ComputeFn>,
        store: StoreFn,
    ) -> IngestionPipeline {
        let stop = Arc::new(AtomicBool::new(false));
        let intake_joint = Arc::new(FeedJoint::new());
        let compute_joint = Arc::new(FeedJoint::new());
        let stats = Arc::new(FeedStats::default());
        let progress = Arc::new(ProgressNotifier::new());
        let (stop2, ij, cj, st, pn) = (
            Arc::clone(&stop),
            Arc::clone(&intake_joint),
            Arc::clone(&compute_joint),
            Arc::clone(&stats),
            Arc::clone(&progress),
        );
        let name = name.into();
        let handle = std::thread::Builder::new()
            .name(format!("feed-{name}"))
            .spawn(move || -> FResult<()> {
                let _exit = NotifyOnExit(Arc::clone(&pn));
                loop {
                    if stop2.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                    // Bounded wait so disconnects are honored even when the
                    // source goes quiet (a secondary feed's parent may stay
                    // connected but idle).
                    let item = match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                        Ok(i) => i,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return Ok(()),
                    };
                    // Intake: raw → ADM.
                    let value = match item {
                        RawItem::Eof => return Ok(()),
                        RawItem::Value(v) => v,
                        RawItem::Text(t) => match asterix_adm::parse::parse_value(&t) {
                            Ok(v) => v,
                            Err(_) => {
                                st.failed.fetch_add(1, Ordering::Relaxed);
                                pn.notify();
                                continue;
                            }
                        },
                    };
                    st.ingested.fetch_add(1, Ordering::Relaxed);
                    ij.publish(&value);
                    // Compute: optional pre-processing function.
                    let value = match &compute {
                        None => Some(value),
                        Some(f) => match f(value) {
                            Ok(v) => v,
                            Err(_) => {
                                st.failed.fetch_add(1, Ordering::Relaxed);
                                pn.notify();
                                continue;
                            }
                        },
                    };
                    let Some(value) = value else { continue };
                    cj.publish(&value);
                    // Store: into the dataset and its indexes.
                    match store(value) {
                        Ok(()) => {
                            st.stored.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            st.failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    pn.notify();
                }
            })
            .expect("spawn feed thread");
        IngestionPipeline {
            handle: Some(handle),
            stop,
            intake_joint,
            compute_joint,
            stats,
            progress,
        }
    }

    /// Request stop and wait for the pipeline thread (disconnect feed).
    /// Returns within one poll interval even if the source is still open.
    pub fn disconnect(mut self) -> FResult<()> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            match h.join() {
                Ok(r) => r,
                Err(_) => Err(FeedError::Closed("feed thread panicked".into())),
            }
        } else {
            Ok(())
        }
    }

    /// Is the pipeline thread still running?
    pub fn is_running(&self) -> bool {
        self.handle.as_ref().is_some_and(|h| !h.is_finished())
    }
}

/// Create a simulated socket adaptor: returns the client endpoint and the
/// receiver the pipeline consumes. `buffer` is the intake queue length
/// (back-pressure bound).
pub fn socket_adaptor(buffer: usize) -> (SocketEndpoint, Receiver<RawItem>) {
    let (tx, rx) = bounded(buffer.max(1));
    (SocketEndpoint { tx }, rx)
}

/// File adaptor: spawn a reader pushing each line of an ADM file as a raw
/// item (used by `load`-like feeds and examples).
pub fn file_adaptor(path: std::path::PathBuf, buffer: usize) -> FResult<Receiver<RawItem>> {
    let (tx, rx) = bounded(buffer.max(1));
    let content = std::fs::read_to_string(&path)?;
    std::thread::Builder::new()
        .name("feed-file-adaptor".into())
        .spawn(move || {
            for value in asterix_adm::parse::parse_many(&content).unwrap_or_default() {
                if tx.send(RawItem::Value(value)).is_err() {
                    return;
                }
            }
            let _ = tx.send(RawItem::Eof);
        })
        .expect("spawn file adaptor");
    Ok(rx)
}

/// Connect a secondary feed: subscribe to a joint of the primary pipeline
/// and run a new pipeline over the subscription (cascading networks of
/// feeds, §2.4).
pub fn secondary_feed(
    name: impl Into<String>,
    parent_joint: &FeedJoint,
    compute: Option<ComputeFn>,
    store: StoreFn,
    buffer: usize,
) -> IngestionPipeline {
    let rx = parent_joint.subscribe(buffer);
    IngestionPipeline::start(name, rx, compute, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn wait_for(cond: impl Fn() -> bool) {
        for _ in 0..200 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("condition not reached in time");
    }

    #[test]
    fn socket_feed_ingests_into_store() {
        let (endpoint, rx) = socket_adaptor(16);
        let stored: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
        let stored2 = Arc::clone(&stored);
        let pipeline = IngestionPipeline::start(
            "t",
            rx,
            None,
            Arc::new(move |v| {
                stored2.lock().push(v);
                Ok(())
            }),
        );
        for i in 0..10 {
            endpoint.send_text(format!("{{ \"id\": {i} }}")).unwrap();
        }
        endpoint.close();
        wait_for(|| stored.lock().len() == 10);
        assert_eq!(pipeline.stats.ingested.load(Ordering::Relaxed), 10);
        assert_eq!(pipeline.stats.stored.load(Ordering::Relaxed), 10);
        pipeline.disconnect().unwrap();
    }

    #[test]
    fn malformed_input_counts_as_failed() {
        let (endpoint, rx) = socket_adaptor(4);
        let pipeline = IngestionPipeline::start("t", rx, None, Arc::new(|_| Ok(())));
        endpoint.send_text("{ not adm").unwrap();
        endpoint.send_text("{ \"ok\": true }").unwrap();
        endpoint.close();
        wait_for(|| pipeline.stats.stored.load(Ordering::Relaxed) == 1);
        assert_eq!(pipeline.stats.failed.load(Ordering::Relaxed), 1);
        pipeline.disconnect().unwrap();
    }

    #[test]
    fn compute_stage_transforms_and_filters() {
        let (endpoint, rx) = socket_adaptor(16);
        let stored: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
        let stored2 = Arc::clone(&stored);
        let compute: ComputeFn = Arc::new(|v: Value| {
            let id = v.field("id").as_i64().unwrap_or(0);
            if id % 2 == 0 {
                Ok(Some(v)) // keep evens only
            } else {
                Ok(None)
            }
        });
        let pipeline = IngestionPipeline::start(
            "t",
            rx,
            Some(compute),
            Arc::new(move |v| {
                stored2.lock().push(v);
                Ok(())
            }),
        );
        for i in 0..10 {
            endpoint
                .send_value(asterix_adm::parse::parse_value(&format!("{{ \"id\": {i} }}")).unwrap())
                .unwrap();
        }
        endpoint.close();
        wait_for(|| pipeline.stats.ingested.load(Ordering::Relaxed) == 10);
        wait_for(|| stored.lock().len() == 5);
        pipeline.disconnect().unwrap();
    }

    #[test]
    fn secondary_feed_cascades_through_joint() {
        let (endpoint, rx) = socket_adaptor(16);
        let primary_store: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
        let ps = Arc::clone(&primary_store);
        let primary = IngestionPipeline::start(
            "primary",
            rx,
            None,
            Arc::new(move |v| {
                ps.lock().push(v);
                Ok(())
            }),
        );
        // Secondary feed taps the primary's intake joint.
        let secondary_store: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
        let ss = Arc::clone(&secondary_store);
        let secondary = secondary_feed(
            "secondary",
            &primary.intake_joint,
            None,
            Arc::new(move |v| {
                ss.lock().push(v);
                Ok(())
            }),
            16,
        );
        assert_eq!(primary.intake_joint.subscriber_count(), 1);
        for i in 0..5 {
            endpoint.send_text(format!("{{ \"id\": {i} }}")).unwrap();
        }
        wait_for(|| primary_store.lock().len() == 5 && secondary_store.lock().len() == 5);
        endpoint.close();
        primary.disconnect().unwrap();
        secondary.disconnect().unwrap();
    }

    #[test]
    fn file_adaptor_reads_adm() {
        let dir = tempfile::TempDir::new().unwrap();
        let path = dir.path().join("feed.adm");
        std::fs::write(&path, "{ \"a\": 1 }\n{ \"a\": 2 }\n{ \"a\": 3 }").unwrap();
        let rx = file_adaptor(path, 4).unwrap();
        let stored: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&stored);
        let pipeline = IngestionPipeline::start(
            "f",
            rx,
            None,
            Arc::new(move |v| {
                s2.lock().push(v);
                Ok(())
            }),
        );
        wait_for(|| stored.lock().len() == 3);
        pipeline.disconnect().unwrap();
    }

    #[test]
    fn progress_notifier_wakes_waiters_on_store() {
        let (endpoint, rx) = socket_adaptor(4);
        let pipeline = IngestionPipeline::start("t", rx, None, Arc::new(|_| Ok(())));
        // Idle pipeline: a bounded wait times out without advancing.
        let last = pipeline.progress.current();
        assert_eq!(pipeline.progress.wait_change(last, Duration::from_millis(20)), last);
        // A store advances the sequence and wakes the waiter; the counter
        // update is published before the notify.
        endpoint.send_text("{ \"id\": 1 }").unwrap();
        let new_seq = pipeline.progress.wait_change(last, Duration::from_secs(5));
        assert!(new_seq > last, "notifier did not advance");
        assert_eq!(pipeline.stats.stored.load(Ordering::Relaxed), 1);
        // Closing the feed fires a final notify so waiters observe the end
        // of the stream.
        endpoint.close();
        let end_seq = pipeline.progress.wait_change(new_seq, Duration::from_secs(5));
        assert!(end_seq > new_seq, "pipeline exit did not notify");
        pipeline.disconnect().unwrap();
    }

    #[test]
    fn backpressure_try_send() {
        let (endpoint, _rx) = socket_adaptor(2);
        // No pipeline consuming: the buffer fills.
        assert!(endpoint.try_send_value(Value::Int64(1)).unwrap());
        assert!(endpoint.try_send_value(Value::Int64(2)).unwrap());
        assert!(!endpoint.try_send_value(Value::Int64(3)).unwrap());
    }
}
