//! LSM inverted indexes: `keyword` and `ngram(k)` index types (§2.2).
//!
//! Both are layered on the LSM B+-tree framework with composite keys
//! `(token, primary-key)`, exactly how AsterixDB LSM-ifies its inverted
//! index. A keyword index tokenizes string fields into words (or bag
//! elements into tokens); an n-gram index tokenizes into k-grams and
//! supports fuzzy (edit-distance) string search via T-occurrence candidate
//! generation followed by verification.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use asterix_adm::strings::{edit_distance_check, gram_tokens, word_tokens};
use asterix_adm::{AdmError, Value};

use crate::cache::BufferCache;
use crate::error::{Result, StorageError};
use crate::keycodec::encode_key;
use crate::lsm::{LsmConfig, LsmObserver, LsmTree};

/// How field values are split into tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tokenizer {
    /// Word tokens of a string, or the string elements of a list/bag —
    /// the `keyword` index type.
    Keyword,
    /// Lowercased k-grams with `#` padding — the `ngram(k)` index type.
    NGram(usize),
}

impl Tokenizer {
    /// Tokenize an ADM value. Strings tokenize directly; lists/bags
    /// tokenize element-wise (for keyword indexes on tag bags, Query 13).
    pub fn tokens(&self, v: &Value) -> Result<Vec<String>> {
        match v {
            Value::String(s) => Ok(match self {
                Tokenizer::Keyword => word_tokens(s),
                Tokenizer::NGram(k) => gram_tokens(s, *k),
            }),
            Value::OrderedList(items) | Value::UnorderedList(items) => {
                let mut out = Vec::new();
                for item in items.iter() {
                    match item {
                        Value::String(s) => match self {
                            // Bag elements are whole tokens for keyword
                            // indexes (tags are matched as units).
                            Tokenizer::Keyword => out.push(s.to_lowercase()),
                            Tokenizer::NGram(k) => out.extend(gram_tokens(s, *k)),
                        },
                        other if other.is_unknown() => {}
                        other => {
                            return Err(StorageError::Adm(AdmError::InvalidArgument(format!(
                                "cannot tokenize {} element",
                                other.type_name()
                            ))))
                        }
                    }
                }
                Ok(out)
            }
            v if v.is_unknown() => Ok(Vec::new()),
            other => Err(StorageError::Adm(AdmError::InvalidArgument(format!(
                "cannot tokenize {}",
                other.type_name()
            )))),
        }
    }
}

/// An LSM inverted index mapping tokens to primary keys.
pub struct InvertedIndex {
    tree: LsmTree,
    tokenizer: Tokenizer,
}

impl InvertedIndex {
    /// Open (or create) an inverted index at `dir`.
    pub fn open(
        dir: &Path,
        tokenizer: Tokenizer,
        cfg: LsmConfig,
        cache: Arc<BufferCache>,
        observer: Arc<dyn LsmObserver>,
    ) -> Result<InvertedIndex> {
        Ok(InvertedIndex { tree: LsmTree::open(dir, cfg, cache, observer)?, tokenizer })
    }

    /// The underlying LSM tree.
    pub fn lsm(&self) -> &LsmTree {
        &self.tree
    }

    /// The tokenizer in force.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    fn entry_key(token: &str, pk: &[Value]) -> Result<Vec<u8>> {
        let mut composite = Vec::with_capacity(1 + pk.len());
        composite.push(Value::string(token));
        composite.extend_from_slice(pk);
        encode_key(&composite)
    }

    /// Index `field_value` under primary key `pk`.
    pub fn insert(&self, field_value: &Value, pk: &[Value]) -> Result<()> {
        let mut toks = self.tokenizer.tokens(field_value)?;
        toks.sort_unstable();
        toks.dedup();
        for t in toks {
            self.tree.insert(Self::entry_key(&t, pk)?, Vec::new())?;
        }
        Ok(())
    }

    /// Remove the postings of `field_value` for `pk` (antimatter).
    pub fn delete(&self, field_value: &Value, pk: &[Value]) -> Result<()> {
        let mut toks = self.tokenizer.tokens(field_value)?;
        toks.sort_unstable();
        toks.dedup();
        for t in toks {
            self.tree.delete(Self::entry_key(&t, pk)?)?;
        }
        Ok(())
    }

    /// All primary keys whose indexed value contains `token`.
    pub fn lookup_token(&self, token: &str) -> Result<Vec<Vec<Value>>> {
        let prefix = encode_key(&[Value::string(token)])?;
        let hi = crate::keycodec::prefix_successor(&prefix);
        let mut out = Vec::new();
        self.tree.scan_with(Some(&prefix), hi.as_deref(), |k, _| {
            if let Ok(mut vals) = crate::keycodec::decode_key(k) {
                // Strip the token, keep the pk suffix.
                vals.remove(0);
                out.push(vals);
            }
            true
        })?;
        Ok(out)
    }

    /// Primary keys that match at least `t` of `tokens` (T-occurrence).
    /// This is the candidate-generation primitive behind indexed fuzzy
    /// selection and indexed similarity joins.
    pub fn t_occurrence(&self, tokens: &[String], t: usize) -> Result<Vec<Vec<Value>>> {
        if tokens.is_empty() || t == 0 {
            return Ok(Vec::new());
        }
        let mut counts: HashMap<Vec<u8>, (usize, Vec<Value>)> = HashMap::new();
        let mut uniq: Vec<&String> = tokens.iter().collect();
        uniq.sort_unstable();
        uniq.dedup();
        for tok in uniq {
            for pk in self.lookup_token(tok)? {
                let key = encode_key(&pk)?;
                let slot = counts.entry(key).or_insert_with(|| (0, pk));
                slot.0 += 1;
            }
        }
        Ok(counts.into_values().filter_map(|(n, pk)| (n >= t).then_some(pk)).collect())
    }

    /// Primary keys containing *all* tokens (conjunctive keyword search).
    pub fn conjunctive(&self, tokens: &[String]) -> Result<Vec<Vec<Value>>> {
        let mut uniq: Vec<&String> = tokens.iter().collect();
        uniq.sort_unstable();
        uniq.dedup();
        self.t_occurrence(&uniq.iter().map(|s| s.to_string()).collect::<Vec<_>>(), uniq.len())
    }

    /// Fuzzy string search on an `ngram(k)` index: candidate primary keys
    /// for strings within edit distance `ed` of `query`, generated with the
    /// standard gram-count lower bound `|G(q)| - k·ed`, then to be verified
    /// against the primary records by the caller (the post-verification
    /// `select` of Figure 6 / §4.4 covers consistency; edit-distance
    /// verification covers filter exactness).
    pub fn fuzzy_candidates(&self, query: &str, ed: usize) -> Result<Vec<Vec<Value>>> {
        let k = match self.tokenizer {
            Tokenizer::NGram(k) => k,
            Tokenizer::Keyword => {
                return Err(StorageError::Adm(AdmError::InvalidArgument(
                    "fuzzy string search requires an ngram index".into(),
                )))
            }
        };
        let grams = gram_tokens(query, k);
        let lower = grams.len().saturating_sub(k * ed);
        if lower == 0 {
            // Threshold degenerates: every record is a candidate; signal the
            // caller to fall back to a scan rather than enumerate the index.
            return Err(StorageError::InvalidState(
                "t-occurrence lower bound is 0; fall back to scan".into(),
            ));
        }
        self.t_occurrence(&grams, lower)
    }

    /// Convenience: verified fuzzy match — candidate pks whose stored
    /// string (fetched by `fetch`) is within `ed` of `query`.
    pub fn fuzzy_search(
        &self,
        query: &str,
        ed: usize,
        mut fetch: impl FnMut(&[Value]) -> Result<Option<String>>,
    ) -> Result<Vec<Vec<Value>>> {
        let mut out = Vec::new();
        for pk in self.fuzzy_candidates(query, ed)? {
            if let Some(s) = fetch(&pk)? {
                if edit_distance_check(query, &s, ed).is_some() {
                    out.push(pk);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsm::{MergePolicy, NullObserver};
    use tempfile::TempDir;

    fn open(dir: &Path, tok: Tokenizer) -> InvertedIndex {
        InvertedIndex::open(
            dir,
            tok,
            LsmConfig {
                mem_budget: 1 << 20,
                page_size: 512,
                bloom_fpp: 0.01,
                merge_policy: MergePolicy::NoMerge,
                max_frozen: 2,
                columnar: None,
            },
            BufferCache::new(128),
            Arc::new(NullObserver),
        )
        .unwrap()
    }

    #[test]
    fn keyword_index_over_messages() {
        let dir = TempDir::new().unwrap();
        let ix = open(dir.path(), Tokenizer::Keyword);
        let msgs = [
            (1i64, "see you tonight"),
            (2, "what a great day"),
            (3, "tonight we dine"),
            (4, "nothing here"),
        ];
        for (id, text) in msgs {
            ix.insert(&Value::string(text), &[Value::Int64(id)]).unwrap();
        }
        let hits = ix.lookup_token("tonight").unwrap();
        let mut ids: Vec<i64> = hits.iter().map(|pk| pk[0].as_i64().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
        // Case-insensitivity through word tokenization.
        ix.insert(&Value::string("TONIGHT!"), &[Value::Int64(5)]).unwrap();
        assert_eq!(ix.lookup_token("tonight").unwrap().len(), 3);
    }

    #[test]
    fn keyword_index_over_tag_bags() {
        let dir = TempDir::new().unwrap();
        let ix = open(dir.path(), Tokenizer::Keyword);
        let bag =
            |tags: &[&str]| Value::unordered_list(tags.iter().map(|t| Value::string(t)).collect());
        ix.insert(&bag(&["music", "live"]), &[Value::Int64(1)]).unwrap();
        ix.insert(&bag(&["music", "food"]), &[Value::Int64(2)]).unwrap();
        ix.insert(&bag(&["sports"]), &[Value::Int64(3)]).unwrap();
        assert_eq!(ix.lookup_token("music").unwrap().len(), 2);
        let both = ix.conjunctive(&["music".into(), "live".into()]).unwrap();
        assert_eq!(both.len(), 1);
        assert_eq!(both[0][0], Value::Int64(1));
        // T-occurrence with t=1 is a disjunction.
        let any = ix.t_occurrence(&["music".into(), "sports".into()], 1).unwrap();
        assert_eq!(any.len(), 3);
    }

    #[test]
    fn delete_removes_postings() {
        let dir = TempDir::new().unwrap();
        let ix = open(dir.path(), Tokenizer::Keyword);
        ix.insert(&Value::string("hello world"), &[Value::Int64(1)]).unwrap();
        ix.lsm().flush().unwrap();
        ix.delete(&Value::string("hello world"), &[Value::Int64(1)]).unwrap();
        assert!(ix.lookup_token("hello").unwrap().is_empty());
        assert!(ix.lookup_token("world").unwrap().is_empty());
    }

    #[test]
    fn ngram_fuzzy_search() {
        let dir = TempDir::new().unwrap();
        let ix = open(dir.path(), Tokenizer::NGram(2));
        let store: Vec<(i64, &str)> =
            vec![(1, "tonight"), (2, "tonite"), (3, "tomorrow"), (4, "tonsil"), (5, "night")];
        for (id, s) in &store {
            ix.insert(&Value::string(s), &[Value::Int64(*id)]).unwrap();
        }
        ix.lsm().flush().unwrap();
        let fetch = |pk: &[Value]| -> Result<Option<String>> {
            let id = pk[0].as_i64().unwrap();
            Ok(store.iter().find(|(i, _)| *i == id).map(|(_, s)| s.to_string()))
        };
        let mut hits: Vec<i64> = ix
            .fuzzy_search("tonight", 2, fetch)
            .unwrap()
            .iter()
            .map(|pk| pk[0].as_i64().unwrap())
            .collect();
        hits.sort_unstable();
        // edit distances: tonight=0, tonite=3, tomorrow=5, tonsil=4, night=2.
        assert_eq!(hits, vec![1, 5]);
        // With ed=3 the candidate bound loosens and "tonite" verifies too.
        let mut hits3: Vec<i64> = ix
            .fuzzy_search("tonight", 3, fetch)
            .unwrap()
            .iter()
            .map(|pk| pk[0].as_i64().unwrap())
            .collect();
        hits3.sort_unstable();
        assert_eq!(hits3, vec![1, 2, 5]);
    }

    #[test]
    fn fuzzy_on_keyword_index_is_rejected() {
        let dir = TempDir::new().unwrap();
        let ix = open(dir.path(), Tokenizer::Keyword);
        assert!(ix.fuzzy_candidates("abc", 1).is_err());
    }

    #[test]
    fn degenerate_threshold_falls_back() {
        let dir = TempDir::new().unwrap();
        let ix = open(dir.path(), Tokenizer::NGram(3));
        ix.insert(&Value::string("ab"), &[Value::Int64(1)]).unwrap();
        // |G("ab")| = 4 with k=3; ed=2 → lower bound 4 - 6 ≤ 0 → fallback.
        assert!(ix.fuzzy_candidates("ab", 2).is_err());
    }

    #[test]
    fn unknown_values_index_nothing() {
        let dir = TempDir::new().unwrap();
        let ix = open(dir.path(), Tokenizer::Keyword);
        ix.insert(&Value::Null, &[Value::Int64(1)]).unwrap();
        ix.insert(&Value::Missing, &[Value::Int64(2)]).unwrap();
        assert_eq!(ix.lsm().live_count().unwrap(), 0);
    }
}
