//! Immutable LSM disk components.
//!
//! A disk component is a single file holding a sorted run of
//! `(key, antimatter, value)` entries, a sparse page index, and a bloom
//! filter over its keys. Components are written once (by flush or merge) and
//! then never modified; they are installed atomically by creating a `.valid`
//! marker file after the data file is durable — the paper's "validity bit"
//! shadowing scheme (§4.4). Crash recovery deletes any component file that
//! lacks its marker.

use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::bloom::BloomFilter;
use crate::cache::{next_file_id, BufferCache};
use crate::error::{Result, StorageError};

const MAGIC: u64 = 0x4153_5458_4c53_4d31; // "ASTXLSM1"

/// One entry in a component: key bytes, tombstone flag, value bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub key: Vec<u8>,
    /// Antimatter entries mark deletions of matching keys in older
    /// components (§4.3: deferred-update, append-only structures).
    pub antimatter: bool,
    pub value: Vec<u8>,
}

impl Entry {
    pub fn put(key: Vec<u8>, value: Vec<u8>) -> Self {
        Entry { key, antimatter: false, value }
    }

    pub fn tombstone(key: Vec<u8>) -> Self {
        Entry { key, antimatter: true, value: Vec::new() }
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *buf.get(*pos).ok_or_else(|| StorageError::Corrupt("truncated varint".into()))?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflow".into()));
        }
    }
}

struct PageMeta {
    first_key: Vec<u8>,
    offset: u64,
    len: u32,
    entries: u32,
}

/// Configuration for building components.
#[derive(Debug, Clone)]
pub struct ComponentConfig {
    pub page_size: usize,
    pub bloom_fpp: f64,
}

impl Default for ComponentConfig {
    fn default() -> Self {
        ComponentConfig { page_size: crate::cache::PAGE_SIZE, bloom_fpp: 0.01 }
    }
}

/// An immutable, sorted, bloom-filtered disk component.
pub struct DiskComponent {
    path: PathBuf,
    file_id: u64,
    cache: Arc<BufferCache>,
    pages: Vec<PageMeta>,
    bloom: BloomFilter,
    entry_count: u64,
    file_len: u64,
    /// Sequence range [min_seq, max_seq] of the flushes merged into this
    /// component (AsterixDB-style component naming).
    pub min_seq: u64,
    pub max_seq: u64,
}

impl DiskComponent {
    /// Path of the data file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn marker_path(path: &Path) -> PathBuf {
        path.with_extension("valid")
    }

    /// Build a component from an already-sorted, deduplicated entry stream.
    /// The stream MUST be sorted ascending by key with unique keys.
    pub fn build<I>(
        path: &Path,
        cache: Arc<BufferCache>,
        cfg: &ComponentConfig,
        min_seq: u64,
        max_seq: u64,
        entries: I,
        expected: usize,
    ) -> Result<Arc<DiskComponent>>
    where
        I: IntoIterator<Item = Entry>,
    {
        let mut file = File::create(path)?;
        let mut bloom = BloomFilter::with_capacity(expected, cfg.bloom_fpp);
        let mut pages: Vec<PageMeta> = Vec::new();
        let mut page_buf: Vec<u8> = Vec::with_capacity(cfg.page_size * 2);
        let mut page_first: Option<Vec<u8>> = None;
        let mut page_entries = 0u32;
        let mut offset = 0u64;
        let mut entry_count = 0u64;

        let flush_page = |file: &mut File,
                          pages: &mut Vec<PageMeta>,
                          page_buf: &mut Vec<u8>,
                          page_first: &mut Option<Vec<u8>>,
                          page_entries: &mut u32,
                          offset: &mut u64|
         -> Result<()> {
            if page_buf.is_empty() {
                return Ok(());
            }
            file.write_all(page_buf)?;
            pages.push(PageMeta {
                first_key: page_first.take().unwrap_or_default(),
                offset: *offset,
                len: page_buf.len() as u32,
                entries: *page_entries,
            });
            *offset += page_buf.len() as u64;
            page_buf.clear();
            *page_entries = 0;
            Ok(())
        };

        for e in entries {
            if page_first.is_none() {
                page_first = Some(e.key.clone());
            }
            bloom.insert(&e.key);
            write_varint(&mut page_buf, e.key.len() as u64);
            write_varint(&mut page_buf, e.value.len() as u64);
            page_buf.push(u8::from(e.antimatter));
            page_buf.extend_from_slice(&e.key);
            page_buf.extend_from_slice(&e.value);
            page_entries += 1;
            entry_count += 1;
            if page_buf.len() >= cfg.page_size {
                flush_page(
                    &mut file,
                    &mut pages,
                    &mut page_buf,
                    &mut page_first,
                    &mut page_entries,
                    &mut offset,
                )?;
            }
        }
        flush_page(
            &mut file,
            &mut pages,
            &mut page_buf,
            &mut page_first,
            &mut page_entries,
            &mut offset,
        )?;

        // Page index.
        let index_offset = offset;
        let mut index_buf = Vec::new();
        write_varint(&mut index_buf, pages.len() as u64);
        for p in &pages {
            write_varint(&mut index_buf, p.first_key.len() as u64);
            index_buf.extend_from_slice(&p.first_key);
            index_buf.extend_from_slice(&p.offset.to_le_bytes());
            index_buf.extend_from_slice(&p.len.to_le_bytes());
            index_buf.extend_from_slice(&p.entries.to_le_bytes());
        }
        file.write_all(&index_buf)?;

        // Bloom filter.
        let bloom_offset = index_offset + index_buf.len() as u64;
        let bloom_bytes = bloom.to_bytes();
        file.write_all(&bloom_bytes)?;

        // Footer.
        let mut footer = Vec::with_capacity(56);
        footer.extend_from_slice(&index_offset.to_le_bytes());
        footer.extend_from_slice(&bloom_offset.to_le_bytes());
        footer.extend_from_slice(&entry_count.to_le_bytes());
        footer.extend_from_slice(&min_seq.to_le_bytes());
        footer.extend_from_slice(&max_seq.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        file.write_all(&footer)?;
        file.sync_all()?;

        // Atomic install: the validity marker is created only after the data
        // file is durable.
        let marker = Self::marker_path(path);
        File::create(&marker)?.sync_all()?;

        let file_len = offset + index_buf.len() as u64 + bloom_bytes.len() as u64 + 48;
        Ok(Arc::new(DiskComponent {
            path: path.to_path_buf(),
            file_id: next_file_id(),
            cache,
            pages,
            bloom,
            entry_count,
            file_len,
            min_seq,
            max_seq,
        }))
    }

    /// Open a previously built component, verifying its validity marker.
    pub fn open(path: &Path, cache: Arc<BufferCache>) -> Result<Arc<DiskComponent>> {
        if !Self::marker_path(path).exists() {
            return Err(StorageError::InvalidState(format!(
                "component {} has no validity marker",
                path.display()
            )));
        }
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < 48 {
            return Err(StorageError::Corrupt("component too small".into()));
        }
        let mut footer = [0u8; 48];
        file.seek(SeekFrom::End(-48))?;
        file.read_exact(&mut footer)?;
        let magic = u64::from_le_bytes(footer[40..48].try_into().unwrap());
        if magic != MAGIC {
            return Err(StorageError::Corrupt("bad component magic".into()));
        }
        let index_offset = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let bloom_offset = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let entry_count = u64::from_le_bytes(footer[16..24].try_into().unwrap());
        let min_seq = u64::from_le_bytes(footer[24..32].try_into().unwrap());
        let max_seq = u64::from_le_bytes(footer[32..40].try_into().unwrap());

        // Page index.
        let index_len = (bloom_offset - index_offset) as usize;
        let mut index_buf = vec![0u8; index_len];
        file.seek(SeekFrom::Start(index_offset))?;
        file.read_exact(&mut index_buf)?;
        let mut pos = 0usize;
        let npages = read_varint(&index_buf, &mut pos)? as usize;
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            let klen = read_varint(&index_buf, &mut pos)? as usize;
            if pos + klen + 16 > index_buf.len() {
                return Err(StorageError::Corrupt("truncated page index".into()));
            }
            let first_key = index_buf[pos..pos + klen].to_vec();
            pos += klen;
            let offset = u64::from_le_bytes(index_buf[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let len = u32::from_le_bytes(index_buf[pos..pos + 4].try_into().unwrap());
            pos += 4;
            let entries = u32::from_le_bytes(index_buf[pos..pos + 4].try_into().unwrap());
            pos += 4;
            pages.push(PageMeta { first_key, offset, len, entries });
        }

        // Bloom.
        let bloom_len = (file_len - 48 - bloom_offset) as usize;
        let mut bloom_buf = vec![0u8; bloom_len];
        file.seek(SeekFrom::Start(bloom_offset))?;
        file.read_exact(&mut bloom_buf)?;
        let bloom = BloomFilter::from_bytes(&bloom_buf)
            .ok_or_else(|| StorageError::Corrupt("bad bloom filter".into()))?;

        Ok(Arc::new(DiskComponent {
            path: path.to_path_buf(),
            file_id: next_file_id(),
            cache,
            pages,
            bloom,
            entry_count,
            file_len,
            min_seq,
            max_seq,
        }))
    }

    /// Number of entries (including antimatter).
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    fn read_page(&self, idx: usize) -> Result<Arc<Vec<u8>>> {
        let meta = &self.pages[idx];
        let (offset, len, path) = (meta.offset, meta.len as usize, self.path.clone());
        self.cache.get_or_load((self.file_id, idx as u32), move || {
            let mut file = File::open(&path)?;
            file.seek(SeekFrom::Start(offset))?;
            let mut buf = vec![0u8; len];
            file.read_exact(&mut buf)?;
            Ok::<_, StorageError>(buf)
        })
    }

    fn parse_page(buf: &[u8]) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            let klen = read_varint(buf, &mut pos)? as usize;
            let vlen = read_varint(buf, &mut pos)? as usize;
            let anti =
                *buf.get(pos).ok_or_else(|| StorageError::Corrupt("truncated entry".into()))? != 0;
            pos += 1;
            if pos + klen + vlen > buf.len() {
                return Err(StorageError::Corrupt("entry spans past page".into()));
            }
            let key = buf[pos..pos + klen].to_vec();
            pos += klen;
            let value = buf[pos..pos + vlen].to_vec();
            pos += vlen;
            out.push(Entry { key, antimatter: anti, value });
        }
        Ok(out)
    }

    /// Index of the last page whose first key is <= `key` (candidate page).
    fn locate_page(&self, key: &[u8]) -> Option<usize> {
        if self.pages.is_empty() {
            return None;
        }
        match self.pages.binary_search_by(|p| p.first_key.as_slice().cmp(key)) {
            Ok(i) => Some(i),
            Err(0) => None, // key below the first page's first key
            Err(i) => Some(i - 1),
        }
    }

    /// Point lookup; returns the entry (possibly antimatter) if present.
    pub fn get(&self, key: &[u8]) -> Result<Option<Entry>> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let Some(pidx) = self.locate_page(key) else {
            return Ok(None);
        };
        let page = self.read_page(pidx)?;
        let entries = Self::parse_page(&page)?;
        match entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
            Ok(i) => Ok(Some(entries[i].clone())),
            Err(_) => Ok(None),
        }
    }

    /// Iterate entries with keys in `[lo, hi)`; `None` bounds are open.
    pub fn range(self: &Arc<Self>, lo: Option<&[u8]>, hi: Option<&[u8]>) -> ComponentIter {
        let start_page = match lo {
            Some(lo) => self.locate_page(lo).unwrap_or(0),
            None => 0,
        };
        ComponentIter {
            comp: Arc::clone(self),
            page_idx: start_page,
            entries: Vec::new(),
            entry_idx: 0,
            lo: lo.map(|b| b.to_vec()),
            hi: hi.map(|b| b.to_vec()),
            primed: false,
            error: None,
        }
    }

    /// Delete the component's files and invalidate cached pages.
    pub fn destroy(&self) -> Result<()> {
        self.cache.invalidate_file(self.file_id);
        let _ = fs::remove_file(Self::marker_path(&self.path));
        fs::remove_file(&self.path)?;
        Ok(())
    }

    /// Remove any component data files in `dir` lacking a validity marker.
    /// Returns the paths of valid components, sorted by name. This is the
    /// crash-recovery garbage collection step from §4.4.
    pub fn scavenge_dir(dir: &Path) -> Result<Vec<PathBuf>> {
        let mut valid = Vec::new();
        if !dir.exists() {
            return Ok(valid);
        }
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("dat") {
                if Self::marker_path(&path).exists() {
                    valid.push(path);
                } else {
                    let _ = fs::remove_file(&path);
                }
            }
        }
        valid.sort();
        Ok(valid)
    }
}

/// Forward iterator over one component's entries in a key range.
pub struct ComponentIter {
    comp: Arc<DiskComponent>,
    page_idx: usize,
    entries: Vec<Entry>,
    entry_idx: usize,
    lo: Option<Vec<u8>>,
    hi: Option<Vec<u8>>,
    primed: bool,
    error: Option<StorageError>,
}

impl ComponentIter {
    /// Surface any I/O error hit during iteration.
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }

    fn load_page(&mut self) -> bool {
        while self.page_idx < self.comp.pages.len() {
            match self.comp.read_page(self.page_idx).and_then(|p| DiskComponent::parse_page(&p)) {
                Ok(entries) => {
                    self.page_idx += 1;
                    self.entries = entries;
                    self.entry_idx = 0;
                    if !self.primed {
                        self.primed = true;
                        if let Some(lo) = &self.lo {
                            self.entry_idx =
                                self.entries.partition_point(|e| e.key.as_slice() < lo.as_slice());
                        }
                    }
                    if self.entry_idx < self.entries.len() {
                        return true;
                    }
                }
                Err(e) => {
                    self.error = Some(e);
                    return false;
                }
            }
        }
        false
    }
}

impl Iterator for ComponentIter {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        loop {
            if self.entry_idx >= self.entries.len() && !self.load_page() {
                return None;
            }
            let e = self.entries[self.entry_idx].clone();
            self.entry_idx += 1;
            if let Some(hi) = &self.hi {
                if e.key.as_slice() >= hi.as_slice() {
                    // Past the upper bound: stop (and skip remaining pages).
                    self.page_idx = self.comp.pages.len();
                    self.entries.clear();
                    return None;
                }
            }
            if let Some(lo) = &self.lo {
                if e.key.as_slice() < lo.as_slice() {
                    continue;
                }
            }
            return Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn key(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    fn build_n(dir: &Path, n: u32) -> Arc<DiskComponent> {
        let cache = BufferCache::new(64);
        let entries = (0..n).map(|i| Entry::put(key(i * 2), vec![i as u8; 8]));
        DiskComponent::build(
            &dir.join("c_0_0.dat"),
            cache,
            &ComponentConfig { page_size: 256, bloom_fpp: 0.01 },
            0,
            0,
            entries,
            n as usize,
        )
        .unwrap()
    }

    #[test]
    fn build_get_roundtrip() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 1000);
        assert_eq!(c.entry_count(), 1000);
        for i in 0..1000u32 {
            let got = c.get(&key(i * 2)).unwrap().unwrap();
            assert_eq!(got.value, vec![i as u8; 8]);
            assert!(c.get(&key(i * 2 + 1)).unwrap().is_none());
        }
    }

    #[test]
    fn open_roundtrip() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 500);
        let path = c.path().to_path_buf();
        drop(c);
        let cache = BufferCache::new(64);
        let c2 = DiskComponent::open(&path, cache).unwrap();
        assert_eq!(c2.entry_count(), 500);
        assert!(c2.get(&key(10)).unwrap().is_some());
        assert!(c2.get(&key(11)).unwrap().is_none());
    }

    #[test]
    fn range_scans() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 100);
        let all: Vec<Entry> = c.range(None, None).collect();
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key));
        let mid: Vec<Entry> = c.range(Some(&key(10)), Some(&key(20))).collect();
        assert_eq!(mid.len(), 5); // keys 10,12,14,16,18
        assert_eq!(mid[0].key, key(10));
        let from_odd: Vec<Entry> = c.range(Some(&key(11)), Some(&key(15))).collect();
        assert_eq!(from_odd.len(), 2); // 12, 14
        let none: Vec<Entry> = c.range(Some(&key(500)), None).collect();
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn validity_marker_enforced() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 10);
        let path = c.path().to_path_buf();
        fs::remove_file(path.with_extension("valid")).unwrap();
        let cache = BufferCache::new(8);
        assert!(DiskComponent::open(&path, cache).is_err());
        // Scavenge removes the orphaned data file.
        let valid = DiskComponent::scavenge_dir(dir.path()).unwrap();
        assert!(valid.is_empty());
        assert!(!path.exists());
    }

    #[test]
    fn scavenge_keeps_valid() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 10);
        let valid = DiskComponent::scavenge_dir(dir.path()).unwrap();
        assert_eq!(valid, vec![c.path().to_path_buf()]);
    }

    #[test]
    fn antimatter_entries_survive_roundtrip() {
        let dir = TempDir::new().unwrap();
        let cache = BufferCache::new(8);
        let entries = vec![
            Entry::put(key(1), b"v1".to_vec()),
            Entry::tombstone(key(2)),
            Entry::put(key(3), b"v3".to_vec()),
        ];
        let c = DiskComponent::build(
            &dir.path().join("c_1_1.dat"),
            cache,
            &ComponentConfig::default(),
            1,
            1,
            entries,
            3,
        )
        .unwrap();
        let e = c.get(&key(2)).unwrap().unwrap();
        assert!(e.antimatter);
        let e = c.get(&key(3)).unwrap().unwrap();
        assert!(!e.antimatter);
    }

    #[test]
    fn destroy_removes_files() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 10);
        let path = c.path().to_path_buf();
        c.destroy().unwrap();
        assert!(!path.exists());
        assert!(!path.with_extension("valid").exists());
    }
}
