//! Immutable LSM disk components.
//!
//! A disk component is a single file holding a sorted run of
//! `(key, antimatter, value)` entries, a sparse page index, and a bloom
//! filter over its keys. Components are written once (by flush or merge) and
//! then never modified; they are installed atomically by creating a `.valid`
//! marker file after the data file is durable — the paper's "validity bit"
//! shadowing scheme (§4.4). Crash recovery deletes any component file that
//! lacks its marker or fails structural validation.
//!
//! Two on-disk layouts share the `.dat` extension and are told apart by the
//! trailing magic number:
//!
//! * **Row** (`ASTXLSM1`): interleaved `(key, antimatter, value)` pages —
//!   the original format, still used for schema-unstable data and as the
//!   fallback when columnar builds abort.
//! * **Columnar** (`ASTXLSM2`): rows are grouped into page-sized *row
//!   groups*; within each group the keys live on one page run and every
//!   inferred schema column on its own run, with leftover fields in a
//!   per-row "rest" record run and untranslatable rows on a row-stored
//!   "spill" run. A group directory in the footer addresses every run, so
//!   projecting scans read only the columns they need and late-materialize
//!   encoded records without touching the rest of the row.

use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use asterix_adm::colschema::{self, InferredSchema};
use asterix_adm::serde as adm_serde;

use crate::bloom::BloomFilter;
use crate::cache::{next_file_id, BufferCache};
use crate::columnar::{ColumnarOptions, ColumnarStats, Projection, RowCodec};
use crate::error::{Result, StorageError};

const MAGIC: u64 = 0x4153_5458_4c53_4d31; // "ASTXLSM1"
const MAGIC_COLUMNAR: u64 = 0x4153_5458_4c53_4d32; // "ASTXLSM2"

const ROW_FOOTER: u64 = 48;
const COL_FOOTER: u64 = 64;

/// Row-group key-page entry kinds.
const KIND_SHREDDED: u8 = 0;
const KIND_ANTIMATTER: u8 = 1;
const KIND_SPILL: u8 = 2;

/// One entry in a component: key bytes, tombstone flag, value bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub key: Vec<u8>,
    /// Antimatter entries mark deletions of matching keys in older
    /// components (§4.3: deferred-update, append-only structures).
    pub antimatter: bool,
    pub value: Vec<u8>,
}

impl Entry {
    pub fn put(key: Vec<u8>, value: Vec<u8>) -> Self {
        Entry { key, antimatter: false, value }
    }

    pub fn tombstone(key: Vec<u8>) -> Self {
        Entry { key, antimatter: true, value: Vec::new() }
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *buf.get(*pos).ok_or_else(|| StorageError::Corrupt("truncated varint".into()))?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflow".into()));
        }
    }
}

struct PageMeta {
    first_key: Vec<u8>,
    offset: u64,
    len: u32,
    entries: u32,
}

/// One columnar row group: `nrows` keys on chunk 0, each schema column on
/// chunk `1..=ncols`, the rest records on chunk `ncols+1`, spilled rows on
/// chunk `ncols+2`.
struct GroupMeta {
    first_key: Vec<u8>,
    nrows: u32,
    /// `(offset, len)` per chunk; zero-length chunks occupy no file space.
    chunks: Vec<(u64, u32)>,
}

/// Physical layout of a component's payload.
enum Layout {
    Row { pages: Vec<PageMeta> },
    Columnar(ColMeta),
}

struct ColMeta {
    groups: Vec<GroupMeta>,
    schema: InferredSchema,
    codec: Arc<dyn RowCodec>,
    stats: Arc<ColumnarStats>,
}

impl ColMeta {
    fn slots(&self) -> usize {
        self.schema.columns.len() + 3
    }
}

/// Configuration for building components.
#[derive(Debug, Clone)]
pub struct ComponentConfig {
    pub page_size: usize,
    pub bloom_fpp: f64,
}

impl Default for ComponentConfig {
    fn default() -> Self {
        ComponentConfig { page_size: crate::cache::PAGE_SIZE, bloom_fpp: 0.01 }
    }
}

/// An immutable, sorted, bloom-filtered disk component.
pub struct DiskComponent {
    path: PathBuf,
    file_id: u64,
    cache: Arc<BufferCache>,
    layout: Layout,
    bloom: BloomFilter,
    entry_count: u64,
    file_len: u64,
    /// Sequence range [min_seq, max_seq] of the flushes merged into this
    /// component (AsterixDB-style component naming).
    pub min_seq: u64,
    pub max_seq: u64,
}

impl DiskComponent {
    /// Path of the data file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn marker_path(path: &Path) -> PathBuf {
        path.with_extension("valid")
    }

    /// Whether this component stores its payload column-major.
    pub fn is_columnar(&self) -> bool {
        matches!(self.layout, Layout::Columnar(_))
    }

    /// The inferred schema of a columnar component (None for row layout).
    pub fn schema(&self) -> Option<&InferredSchema> {
        match &self.layout {
            Layout::Columnar(m) => Some(&m.schema),
            Layout::Row { .. } => None,
        }
    }

    /// Build a row-layout component from an already-sorted, deduplicated
    /// entry stream. The stream MUST be sorted ascending by key with unique
    /// keys.
    pub fn build<I>(
        path: &Path,
        cache: Arc<BufferCache>,
        cfg: &ComponentConfig,
        min_seq: u64,
        max_seq: u64,
        entries: I,
        expected: usize,
    ) -> Result<Arc<DiskComponent>>
    where
        I: IntoIterator<Item = Entry>,
    {
        let mut file = File::create(path)?;
        let mut bloom = BloomFilter::with_capacity(expected, cfg.bloom_fpp);
        let mut pages: Vec<PageMeta> = Vec::new();
        let mut page_buf: Vec<u8> = Vec::with_capacity(cfg.page_size * 2);
        let mut page_first: Option<Vec<u8>> = None;
        let mut page_entries = 0u32;
        let mut offset = 0u64;
        let mut entry_count = 0u64;

        let flush_page = |file: &mut File,
                          pages: &mut Vec<PageMeta>,
                          page_buf: &mut Vec<u8>,
                          page_first: &mut Option<Vec<u8>>,
                          page_entries: &mut u32,
                          offset: &mut u64|
         -> Result<()> {
            if page_buf.is_empty() {
                return Ok(());
            }
            file.write_all(page_buf)?;
            pages.push(PageMeta {
                first_key: page_first.take().unwrap_or_default(),
                offset: *offset,
                len: page_buf.len() as u32,
                entries: *page_entries,
            });
            *offset += page_buf.len() as u64;
            page_buf.clear();
            *page_entries = 0;
            Ok(())
        };

        for e in entries {
            if page_first.is_none() {
                page_first = Some(e.key.clone());
            }
            bloom.insert(&e.key);
            write_varint(&mut page_buf, e.key.len() as u64);
            write_varint(&mut page_buf, e.value.len() as u64);
            page_buf.push(u8::from(e.antimatter));
            page_buf.extend_from_slice(&e.key);
            page_buf.extend_from_slice(&e.value);
            page_entries += 1;
            entry_count += 1;
            if page_buf.len() >= cfg.page_size {
                flush_page(
                    &mut file,
                    &mut pages,
                    &mut page_buf,
                    &mut page_first,
                    &mut page_entries,
                    &mut offset,
                )?;
            }
        }
        flush_page(
            &mut file,
            &mut pages,
            &mut page_buf,
            &mut page_first,
            &mut page_entries,
            &mut offset,
        )?;

        // Page index.
        let index_offset = offset;
        let mut index_buf = Vec::new();
        write_varint(&mut index_buf, pages.len() as u64);
        for p in &pages {
            write_varint(&mut index_buf, p.first_key.len() as u64);
            index_buf.extend_from_slice(&p.first_key);
            index_buf.extend_from_slice(&p.offset.to_le_bytes());
            index_buf.extend_from_slice(&p.len.to_le_bytes());
            index_buf.extend_from_slice(&p.entries.to_le_bytes());
        }
        file.write_all(&index_buf)?;

        // Bloom filter.
        let bloom_offset = index_offset + index_buf.len() as u64;
        let bloom_bytes = bloom.to_bytes();
        file.write_all(&bloom_bytes)?;

        // Footer.
        let mut footer = Vec::with_capacity(ROW_FOOTER as usize);
        footer.extend_from_slice(&index_offset.to_le_bytes());
        footer.extend_from_slice(&bloom_offset.to_le_bytes());
        footer.extend_from_slice(&entry_count.to_le_bytes());
        footer.extend_from_slice(&min_seq.to_le_bytes());
        footer.extend_from_slice(&max_seq.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        file.write_all(&footer)?;
        file.sync_all()?;

        // Atomic install: the validity marker is created only after the data
        // file is durable.
        let marker = Self::marker_path(path);
        File::create(&marker)?.sync_all()?;

        let file_len = bloom_offset + bloom_bytes.len() as u64 + ROW_FOOTER;
        Ok(Arc::new(DiskComponent {
            path: path.to_path_buf(),
            file_id: next_file_id(),
            cache,
            layout: Layout::Row { pages },
            bloom,
            entry_count,
            file_len,
            min_seq,
            max_seq,
        }))
    }

    /// Attempt to build a columnar component from sorted entries. Returns
    /// `Ok(None)` — the caller then builds the row layout instead — when the
    /// data is schema-unstable: no field qualifies for a column, or fewer
    /// than `min_shred_fraction` of the rows shred cleanly.
    ///
    /// Every shredded row is verified round-trip (`to_stored(splice(shred))
    /// == original`) at build time; rows failing verification ride the
    /// spill run verbatim, so reads always reproduce the exact stored
    /// bytes.
    pub fn build_columnar(
        path: &Path,
        cache: Arc<BufferCache>,
        cfg: &ComponentConfig,
        columnar: &ColumnarOptions,
        min_seq: u64,
        max_seq: u64,
        entries: &[Entry],
    ) -> Result<Option<Arc<DiskComponent>>> {
        enum Plan<'a> {
            Anti,
            Spill,
            Shred { cols: Vec<Option<&'a [u8]>>, rest: Option<Vec<u8>> },
        }

        // Pass 1: translate rows to the self-describing encoding and infer
        // the schema from the ones that translate.
        let codec = &columnar.codec;
        let mut builder = colschema::SchemaBuilder::new();
        let mut sds: Vec<Option<Vec<u8>>> = Vec::with_capacity(entries.len());
        let mut live_rows = 0u64;
        for e in entries {
            if e.antimatter {
                sds.push(None);
                continue;
            }
            live_rows += 1;
            let sd = codec.to_self_describing(&e.value).filter(|sd| builder.observe(sd));
            sds.push(sd);
        }
        if live_rows == 0 {
            return Ok(None);
        }
        let schema = builder.finish(columnar.min_presence, columnar.max_columns);
        if schema.columns.is_empty() {
            return Ok(None);
        }

        // Pass 2: shred and verify each row; anything surprising spills.
        let mut plans: Vec<Plan<'_>> = Vec::with_capacity(entries.len());
        let mut shredded = 0u64;
        let mut spilled = 0u64;
        for (e, sd) in entries.iter().zip(&sds) {
            if e.antimatter {
                plans.push(Plan::Anti);
                continue;
            }
            let plan = sd
                .as_deref()
                .and_then(|sd| colschema::shred(&schema, sd))
                .and_then(|s| {
                    let spliced =
                        colschema::splice_full(&schema, &s.cols, s.rest.as_deref()).ok()?;
                    let back = codec.to_stored(&spliced)?;
                    (back == e.value).then_some(Plan::Shred { cols: s.cols, rest: s.rest })
                })
                .unwrap_or(Plan::Spill);
            match plan {
                Plan::Shred { .. } => shredded += 1,
                _ => spilled += 1,
            }
            plans.push(plan);
        }
        if (shredded as f64) < columnar.min_shred_fraction * live_rows as f64 {
            return Ok(None);
        }

        // Pass 3: write row groups.
        let ncols = schema.columns.len();
        let mut file = File::create(path)?;
        let mut bloom = BloomFilter::with_capacity(entries.len(), cfg.bloom_fpp);
        let mut groups: Vec<GroupMeta> = Vec::new();
        let mut offset = 0u64;

        let mut key_buf: Vec<u8> = Vec::with_capacity(cfg.page_size * 2);
        let mut col_bufs: Vec<Vec<u8>> = vec![Vec::new(); ncols];
        let mut rest_buf: Vec<u8> = Vec::new();
        let mut spill_buf: Vec<u8> = Vec::new();
        let mut group_first: Option<Vec<u8>> = None;
        let mut group_rows = 0u32;

        let flush_group = |file: &mut File,
                           groups: &mut Vec<GroupMeta>,
                           key_buf: &mut Vec<u8>,
                           col_bufs: &mut Vec<Vec<u8>>,
                           rest_buf: &mut Vec<u8>,
                           spill_buf: &mut Vec<u8>,
                           group_first: &mut Option<Vec<u8>>,
                           group_rows: &mut u32,
                           offset: &mut u64|
         -> Result<()> {
            if *group_rows == 0 {
                return Ok(());
            }
            let mut chunks = Vec::with_capacity(ncols + 3);
            let write_chunk =
                |file: &mut File, buf: &mut Vec<u8>, offset: &mut u64| -> Result<(u64, u32)> {
                    let at = *offset;
                    let len = buf.len() as u32;
                    if len > 0 {
                        file.write_all(buf)?;
                        *offset += len as u64;
                        buf.clear();
                    }
                    Ok((at, len))
                };
            chunks.push(write_chunk(file, key_buf, offset)?);
            for cb in col_bufs.iter_mut() {
                chunks.push(write_chunk(file, cb, offset)?);
            }
            chunks.push(write_chunk(file, rest_buf, offset)?);
            chunks.push(write_chunk(file, spill_buf, offset)?);
            groups.push(GroupMeta {
                first_key: group_first.take().unwrap_or_default(),
                nrows: *group_rows,
                chunks,
            });
            *group_rows = 0;
            Ok(())
        };

        for (e, plan) in entries.iter().zip(&plans) {
            if group_first.is_none() {
                group_first = Some(e.key.clone());
            }
            bloom.insert(&e.key);
            write_varint(&mut key_buf, e.key.len() as u64);
            key_buf.extend_from_slice(&e.key);
            match plan {
                Plan::Anti => key_buf.push(KIND_ANTIMATTER),
                Plan::Spill => {
                    key_buf.push(KIND_SPILL);
                    write_varint(&mut spill_buf, e.value.len() as u64);
                    spill_buf.extend_from_slice(&e.value);
                }
                Plan::Shred { cols, rest } => {
                    key_buf.push(KIND_SHREDDED);
                    for (cb, col) in col_bufs.iter_mut().zip(cols) {
                        match col {
                            Some(bytes) => {
                                cb.push(1);
                                write_varint(cb, bytes.len() as u64);
                                cb.extend_from_slice(bytes);
                            }
                            None => cb.push(0),
                        }
                    }
                    match rest {
                        Some(bytes) => {
                            rest_buf.push(1);
                            write_varint(&mut rest_buf, bytes.len() as u64);
                            rest_buf.extend_from_slice(bytes);
                        }
                        None => rest_buf.push(0),
                    }
                }
            }
            group_rows += 1;
            if key_buf.len() >= cfg.page_size {
                flush_group(
                    &mut file,
                    &mut groups,
                    &mut key_buf,
                    &mut col_bufs,
                    &mut rest_buf,
                    &mut spill_buf,
                    &mut group_first,
                    &mut group_rows,
                    &mut offset,
                )?;
            }
        }
        flush_group(
            &mut file,
            &mut groups,
            &mut key_buf,
            &mut col_bufs,
            &mut rest_buf,
            &mut spill_buf,
            &mut group_first,
            &mut group_rows,
            &mut offset,
        )?;

        // Group directory.
        let dir_offset = offset;
        let mut dir_buf = Vec::new();
        write_varint(&mut dir_buf, groups.len() as u64);
        for g in &groups {
            write_varint(&mut dir_buf, g.first_key.len() as u64);
            dir_buf.extend_from_slice(&g.first_key);
            dir_buf.extend_from_slice(&g.nrows.to_le_bytes());
            for (off, len) in &g.chunks {
                dir_buf.extend_from_slice(&off.to_le_bytes());
                dir_buf.extend_from_slice(&len.to_le_bytes());
            }
        }
        file.write_all(&dir_buf)?;

        // Schema blob.
        let schema_offset = dir_offset + dir_buf.len() as u64;
        let schema_bytes = schema.to_bytes();
        file.write_all(&schema_bytes)?;

        // Bloom filter.
        let bloom_offset = schema_offset + schema_bytes.len() as u64;
        let bloom_bytes = bloom.to_bytes();
        file.write_all(&bloom_bytes)?;

        // Footer.
        let entry_count = entries.len() as u64;
        let mut footer = Vec::with_capacity(COL_FOOTER as usize);
        footer.extend_from_slice(&dir_offset.to_le_bytes());
        footer.extend_from_slice(&schema_offset.to_le_bytes());
        footer.extend_from_slice(&bloom_offset.to_le_bytes());
        footer.extend_from_slice(&entry_count.to_le_bytes());
        footer.extend_from_slice(&min_seq.to_le_bytes());
        footer.extend_from_slice(&max_seq.to_le_bytes());
        footer.extend_from_slice(&(ncols as u64).to_le_bytes());
        footer.extend_from_slice(&MAGIC_COLUMNAR.to_le_bytes());
        file.write_all(&footer)?;
        file.sync_all()?;

        let marker = Self::marker_path(path);
        File::create(&marker)?.sync_all()?;

        columnar.stats.components.inc();
        columnar.stats.fallback_rows.add(spilled);

        let file_len = bloom_offset + bloom_bytes.len() as u64 + COL_FOOTER;
        Ok(Some(Arc::new(DiskComponent {
            path: path.to_path_buf(),
            file_id: next_file_id(),
            cache,
            layout: Layout::Columnar(ColMeta {
                groups,
                schema,
                codec: Arc::clone(&columnar.codec),
                stats: Arc::clone(&columnar.stats),
            }),
            bloom,
            entry_count,
            file_len,
            min_seq,
            max_seq,
        })))
    }

    /// Open a previously built component, verifying its validity marker.
    /// Columnar components additionally need `columnar` options for their
    /// row codec; opening one without is an error (a tree that ever built
    /// columnar components must keep supplying the codec, even with the
    /// build knob off).
    pub fn open(
        path: &Path,
        cache: Arc<BufferCache>,
        columnar: Option<&ColumnarOptions>,
    ) -> Result<Arc<DiskComponent>> {
        if !Self::marker_path(path).exists() {
            return Err(StorageError::InvalidState(format!(
                "component {} has no validity marker",
                path.display()
            )));
        }
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        match Self::read_magic(&mut file, file_len)? {
            MAGIC => {
                let meta = Self::read_row_meta(&mut file, file_len)?;
                Ok(Arc::new(DiskComponent {
                    path: path.to_path_buf(),
                    file_id: next_file_id(),
                    cache,
                    layout: Layout::Row { pages: meta.pages },
                    bloom: meta.bloom,
                    entry_count: meta.entry_count,
                    file_len,
                    min_seq: meta.min_seq,
                    max_seq: meta.max_seq,
                }))
            }
            MAGIC_COLUMNAR => {
                let c = columnar.ok_or_else(|| {
                    StorageError::InvalidState(format!(
                        "columnar component {} opened without a row codec",
                        path.display()
                    ))
                })?;
                let meta = Self::read_col_meta(&mut file, file_len)?;
                Ok(Arc::new(DiskComponent {
                    path: path.to_path_buf(),
                    file_id: next_file_id(),
                    cache,
                    layout: Layout::Columnar(ColMeta {
                        groups: meta.groups,
                        schema: meta.schema,
                        codec: Arc::clone(&c.codec),
                        stats: Arc::clone(&c.stats),
                    }),
                    bloom: meta.bloom,
                    entry_count: meta.entry_count,
                    file_len,
                    min_seq: meta.min_seq,
                    max_seq: meta.max_seq,
                }))
            }
            other => Err(StorageError::Corrupt(format!("bad component magic {other:#x}"))),
        }
    }

    fn read_magic(file: &mut File, file_len: u64) -> Result<u64> {
        if file_len < 8 {
            return Err(StorageError::Corrupt("component too small".into()));
        }
        let mut buf = [0u8; 8];
        file.seek(SeekFrom::End(-8))?;
        file.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn read_row_meta(file: &mut File, file_len: u64) -> Result<RowMeta> {
        if file_len < ROW_FOOTER {
            return Err(StorageError::Corrupt("component too small".into()));
        }
        let mut footer = [0u8; ROW_FOOTER as usize];
        file.seek(SeekFrom::End(-(ROW_FOOTER as i64)))?;
        file.read_exact(&mut footer)?;
        let index_offset = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let bloom_offset = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let entry_count = u64::from_le_bytes(footer[16..24].try_into().unwrap());
        let min_seq = u64::from_le_bytes(footer[24..32].try_into().unwrap());
        let max_seq = u64::from_le_bytes(footer[32..40].try_into().unwrap());
        if index_offset > bloom_offset || bloom_offset > file_len - ROW_FOOTER {
            return Err(StorageError::Corrupt("row footer offsets out of bounds".into()));
        }

        // Page index.
        let index_len = (bloom_offset - index_offset) as usize;
        let mut index_buf = vec![0u8; index_len];
        file.seek(SeekFrom::Start(index_offset))?;
        file.read_exact(&mut index_buf)?;
        let mut pos = 0usize;
        let npages = read_varint(&index_buf, &mut pos)? as usize;
        let mut pages = Vec::with_capacity(npages.min(1 << 20));
        for _ in 0..npages {
            let klen = read_varint(&index_buf, &mut pos)? as usize;
            if pos + klen + 16 > index_buf.len() {
                return Err(StorageError::Corrupt("truncated page index".into()));
            }
            let first_key = index_buf[pos..pos + klen].to_vec();
            pos += klen;
            let offset = u64::from_le_bytes(index_buf[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let len = u32::from_le_bytes(index_buf[pos..pos + 4].try_into().unwrap());
            pos += 4;
            let entries = u32::from_le_bytes(index_buf[pos..pos + 4].try_into().unwrap());
            pos += 4;
            if offset + len as u64 > index_offset {
                return Err(StorageError::Corrupt("page spans past index".into()));
            }
            pages.push(PageMeta { first_key, offset, len, entries });
        }

        // Bloom.
        let bloom_len = (file_len - ROW_FOOTER - bloom_offset) as usize;
        let mut bloom_buf = vec![0u8; bloom_len];
        file.seek(SeekFrom::Start(bloom_offset))?;
        file.read_exact(&mut bloom_buf)?;
        let bloom = BloomFilter::from_bytes(&bloom_buf)
            .ok_or_else(|| StorageError::Corrupt("bad bloom filter".into()))?;

        Ok(RowMeta { pages, bloom, entry_count, min_seq, max_seq })
    }

    fn read_col_meta(file: &mut File, file_len: u64) -> Result<ColFileMeta> {
        if file_len < COL_FOOTER {
            return Err(StorageError::Corrupt("component too small".into()));
        }
        let mut footer = [0u8; COL_FOOTER as usize];
        file.seek(SeekFrom::End(-(COL_FOOTER as i64)))?;
        file.read_exact(&mut footer)?;
        let dir_offset = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let schema_offset = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let bloom_offset = u64::from_le_bytes(footer[16..24].try_into().unwrap());
        let entry_count = u64::from_le_bytes(footer[24..32].try_into().unwrap());
        let min_seq = u64::from_le_bytes(footer[32..40].try_into().unwrap());
        let max_seq = u64::from_le_bytes(footer[40..48].try_into().unwrap());
        let ncols = u64::from_le_bytes(footer[48..56].try_into().unwrap()) as usize;
        if dir_offset > schema_offset
            || schema_offset > bloom_offset
            || bloom_offset > file_len - COL_FOOTER
            || ncols > 1 << 16
        {
            return Err(StorageError::Corrupt("columnar footer offsets out of bounds".into()));
        }

        // Group directory.
        let dir_len = (schema_offset - dir_offset) as usize;
        let mut dir_buf = vec![0u8; dir_len];
        file.seek(SeekFrom::Start(dir_offset))?;
        file.read_exact(&mut dir_buf)?;
        let mut pos = 0usize;
        let ngroups = read_varint(&dir_buf, &mut pos)? as usize;
        let mut groups = Vec::with_capacity(ngroups.min(1 << 20));
        for _ in 0..ngroups {
            let klen = read_varint(&dir_buf, &mut pos)? as usize;
            if pos + klen + 4 + 12 * (ncols + 3) > dir_buf.len() {
                return Err(StorageError::Corrupt("truncated group directory".into()));
            }
            let first_key = dir_buf[pos..pos + klen].to_vec();
            pos += klen;
            let nrows = u32::from_le_bytes(dir_buf[pos..pos + 4].try_into().unwrap());
            pos += 4;
            let mut chunks = Vec::with_capacity(ncols + 3);
            for _ in 0..ncols + 3 {
                let off = u64::from_le_bytes(dir_buf[pos..pos + 8].try_into().unwrap());
                pos += 8;
                let len = u32::from_le_bytes(dir_buf[pos..pos + 4].try_into().unwrap());
                pos += 4;
                if off + len as u64 > dir_offset {
                    return Err(StorageError::Corrupt("chunk spans past directory".into()));
                }
                chunks.push((off, len));
            }
            groups.push(GroupMeta { first_key, nrows, chunks });
        }

        // Schema blob.
        let schema_len = (bloom_offset - schema_offset) as usize;
        let mut schema_buf = vec![0u8; schema_len];
        file.seek(SeekFrom::Start(schema_offset))?;
        file.read_exact(&mut schema_buf)?;
        let schema = InferredSchema::from_bytes(&schema_buf)
            .ok_or_else(|| StorageError::Corrupt("bad schema blob".into()))?;
        if schema.columns.len() != ncols {
            return Err(StorageError::Corrupt("schema/footer column count mismatch".into()));
        }

        // Bloom.
        let bloom_len = (file_len - COL_FOOTER - bloom_offset) as usize;
        let mut bloom_buf = vec![0u8; bloom_len];
        file.seek(SeekFrom::Start(bloom_offset))?;
        file.read_exact(&mut bloom_buf)?;
        let bloom = BloomFilter::from_bytes(&bloom_buf)
            .ok_or_else(|| StorageError::Corrupt("bad bloom filter".into()))?;

        Ok(ColFileMeta { groups, schema, bloom, entry_count, min_seq, max_seq })
    }

    /// Structurally validate a component file without installing it: footer
    /// magic, page index or group directory, schema blob, bloom filter.
    /// Catches torn writes — e.g. a crash mid-footer after the validity
    /// marker was created by an earlier, overwritten build of the same
    /// path — that the marker alone cannot.
    pub fn validate(path: &Path) -> Result<()> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        match Self::read_magic(&mut file, file_len)? {
            MAGIC => Self::read_row_meta(&mut file, file_len).map(|_| ()),
            MAGIC_COLUMNAR => Self::read_col_meta(&mut file, file_len).map(|_| ()),
            other => Err(StorageError::Corrupt(format!("bad component magic {other:#x}"))),
        }
    }

    /// Number of entries (including antimatter).
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Read one cached page: a row page, or one columnar group chunk
    /// addressed as `group * slots + slot`.
    fn read_span(&self, page_no: u32, offset: u64, len: usize) -> Result<Arc<Vec<u8>>> {
        if len == 0 {
            return Ok(Arc::new(Vec::new()));
        }
        let path = self.path.clone();
        self.cache.get_or_load((self.file_id, page_no), move || {
            let mut file = File::open(&path)?;
            file.seek(SeekFrom::Start(offset))?;
            let mut buf = vec![0u8; len];
            file.read_exact(&mut buf)?;
            Ok::<_, StorageError>(buf)
        })
    }

    fn read_chunk(&self, m: &ColMeta, group: usize, slot: usize) -> Result<Arc<Vec<u8>>> {
        let (off, len) = m.groups[group].chunks[slot];
        self.read_span((group * m.slots() + slot) as u32, off, len as usize)
    }

    fn parse_page(buf: &[u8]) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            let klen = read_varint(buf, &mut pos)? as usize;
            let vlen = read_varint(buf, &mut pos)? as usize;
            let anti =
                *buf.get(pos).ok_or_else(|| StorageError::Corrupt("truncated entry".into()))? != 0;
            pos += 1;
            if pos + klen + vlen > buf.len() {
                return Err(StorageError::Corrupt("entry spans past page".into()));
            }
            let key = buf[pos..pos + klen].to_vec();
            pos += klen;
            let value = buf[pos..pos + vlen].to_vec();
            pos += vlen;
            out.push(Entry { key, antimatter: anti, value });
        }
        Ok(out)
    }

    /// Parse a columnar key chunk into `(key, kind)` rows.
    fn parse_key_chunk(buf: &[u8], nrows: u32) -> Result<Vec<(Vec<u8>, u8)>> {
        let mut out = Vec::with_capacity(nrows as usize);
        let mut pos = 0usize;
        for _ in 0..nrows {
            let klen = read_varint(buf, &mut pos)? as usize;
            if pos + klen + 1 > buf.len() {
                return Err(StorageError::Corrupt("truncated key chunk".into()));
            }
            let key = buf[pos..pos + klen].to_vec();
            pos += klen;
            let kind = buf[pos];
            pos += 1;
            if kind > KIND_SPILL {
                return Err(StorageError::Corrupt(format!("bad row kind {kind}")));
            }
            out.push((key, kind));
        }
        if pos != buf.len() {
            return Err(StorageError::Corrupt("trailing bytes in key chunk".into()));
        }
        Ok(out)
    }

    /// Parse a presence-prefixed chunk (column or rest run) into per-row
    /// byte ranges.
    fn parse_presence_chunk(buf: &[u8], nrows: usize) -> Result<Vec<Option<(usize, usize)>>> {
        let mut out = Vec::with_capacity(nrows);
        let mut pos = 0usize;
        for _ in 0..nrows {
            let present = *buf
                .get(pos)
                .ok_or_else(|| StorageError::Corrupt("truncated column run".into()))?;
            pos += 1;
            if present == 0 {
                out.push(None);
                continue;
            }
            let len = read_varint(buf, &mut pos)? as usize;
            if pos + len > buf.len() {
                return Err(StorageError::Corrupt("column value spans past run".into()));
            }
            out.push(Some((pos, pos + len)));
            pos += len;
        }
        Ok(out)
    }

    /// Parse a spill chunk into per-spilled-row byte ranges.
    fn parse_spill_chunk(buf: &[u8], nrows: usize) -> Result<Vec<(usize, usize)>> {
        let mut out = Vec::with_capacity(nrows);
        let mut pos = 0usize;
        for _ in 0..nrows {
            let len = read_varint(buf, &mut pos)? as usize;
            if pos + len > buf.len() {
                return Err(StorageError::Corrupt("spill value spans past run".into()));
            }
            out.push((pos, pos + len));
            pos += len;
        }
        Ok(out)
    }

    /// Materialize every entry of one columnar row group, reconstructing
    /// each shredded row's exact original stored bytes through the codec.
    fn reconstruct_group(&self, m: &ColMeta, g: usize) -> Result<Vec<Entry>> {
        let keys = Self::parse_key_chunk(&self.read_chunk(m, g, 0)?, m.groups[g].nrows)?;
        let nshred = keys.iter().filter(|(_, k)| *k == KIND_SHREDDED).count();
        let nspill = keys.iter().filter(|(_, k)| *k == KIND_SPILL).count();
        let ncols = m.schema.columns.len();
        let mut col_data = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let buf = self.read_chunk(m, g, 1 + c)?;
            let ranges = Self::parse_presence_chunk(&buf, nshred)?;
            col_data.push((buf, ranges));
        }
        let rest_buf = self.read_chunk(m, g, 1 + ncols)?;
        let rest_ranges = Self::parse_presence_chunk(&rest_buf, nshred)?;
        let spill_buf = self.read_chunk(m, g, 2 + ncols)?;
        let spill_ranges = Self::parse_spill_chunk(&spill_buf, nspill)?;

        let mut out = Vec::with_capacity(keys.len());
        let (mut si, mut pi) = (0usize, 0usize);
        for (key, kind) in keys {
            match kind {
                KIND_ANTIMATTER => out.push(Entry::tombstone(key)),
                KIND_SPILL => {
                    let (a, b) = spill_ranges[pi];
                    pi += 1;
                    out.push(Entry::put(key, spill_buf[a..b].to_vec()));
                }
                _ => {
                    let cols: Vec<Option<&[u8]>> = col_data
                        .iter()
                        .map(|(buf, ranges)| ranges[si].map(|(a, b)| &buf[a..b]))
                        .collect();
                    let rest = rest_ranges[si].map(|(a, b)| &rest_buf[a..b]);
                    si += 1;
                    let sd = colschema::splice_full(&m.schema, &cols, rest)
                        .map_err(|e| StorageError::Corrupt(format!("splice failed: {e}")))?;
                    let value = m.codec.to_stored(&sd).ok_or_else(|| {
                        StorageError::Corrupt("codec rejected reconstructed row".into())
                    })?;
                    out.push(Entry::put(key, value));
                }
            }
        }
        Ok(out)
    }

    /// Advance a presence-prefixed chunk cursor by one row.
    fn presence_next(buf: &[u8], pos: &mut usize) -> Result<Option<(usize, usize)>> {
        let present =
            *buf.get(*pos).ok_or_else(|| StorageError::Corrupt("truncated column run".into()))?;
        *pos += 1;
        if present == 0 {
            return Ok(None);
        }
        let len = read_varint(buf, pos)? as usize;
        if *pos + len > buf.len() {
            return Err(StorageError::Corrupt("column value spans past run".into()));
        }
        let at = *pos;
        *pos += len;
        Ok(Some((at, at + len)))
    }

    /// Advance a spill chunk cursor by one spilled row.
    fn spill_next(buf: &[u8], pos: &mut usize) -> Result<(usize, usize)> {
        let len = read_varint(buf, pos)? as usize;
        if *pos + len > buf.len() {
            return Err(StorageError::Corrupt("spill value spans past run".into()));
        }
        let at = *pos;
        *pos += len;
        Ok((at, at + len))
    }

    /// [`Self::reconstruct_group`] restricted to keys in `[lo, hi)`: rows
    /// outside the bounds are skipped with cursor walks (no splice, no
    /// codec), so a short range over a big group pays for the rows it
    /// yields, not the group. Unbounded scans take the full-group path.
    fn reconstruct_group_bounded(
        &self,
        m: &ColMeta,
        g: usize,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<Entry>> {
        if lo.is_none() && hi.is_none() {
            return self.reconstruct_group(m, g);
        }
        let key_buf = self.read_chunk(m, g, 0)?;
        let nrows = m.groups[g].nrows as usize;
        let mut rows = Vec::with_capacity(nrows);
        let mut pos = 0usize;
        for _ in 0..nrows {
            let klen = read_varint(&key_buf, &mut pos)? as usize;
            if pos + klen + 1 > key_buf.len() {
                return Err(StorageError::Corrupt("truncated key chunk".into()));
            }
            rows.push(((pos, pos + klen), key_buf[pos + klen]));
            pos += klen + 1;
        }
        let start = match lo {
            Some(lo) => rows.partition_point(|((a, b), _)| &key_buf[*a..*b] < lo),
            None => 0,
        };
        let end = match hi {
            Some(hi) => rows.partition_point(|((a, b), _)| &key_buf[*a..*b] < hi),
            None => rows.len(),
        };
        if start >= end {
            return Ok(Vec::new());
        }
        let si = rows[..start].iter().filter(|(_, k)| *k == KIND_SHREDDED).count();
        let pi = rows[..start].iter().filter(|(_, k)| *k == KIND_SPILL).count();
        let any_shred = rows[start..end].iter().any(|(_, k)| *k == KIND_SHREDDED);
        let any_spill = rows[start..end].iter().any(|(_, k)| *k == KIND_SPILL);
        let ncols = m.schema.columns.len();

        let empty: Arc<Vec<u8>> = Arc::new(Vec::new());
        let mut col_bufs: Vec<Arc<Vec<u8>>> = Vec::with_capacity(ncols);
        let mut col_pos = vec![0usize; ncols];
        let (rest_buf, mut rest_pos) = if any_shred {
            for c in 0..ncols {
                col_bufs.push(self.read_chunk(m, g, 1 + c)?);
            }
            (self.read_chunk(m, g, 1 + ncols)?, 0usize)
        } else {
            col_bufs.resize(ncols, Arc::clone(&empty));
            (Arc::clone(&empty), 0usize)
        };
        if any_shred {
            for c in 0..ncols {
                for _ in 0..si {
                    Self::presence_next(&col_bufs[c], &mut col_pos[c])?;
                }
            }
            for _ in 0..si {
                Self::presence_next(&rest_buf, &mut rest_pos)?;
            }
        }
        let (spill_buf, mut spill_pos) = if any_spill {
            let buf = self.read_chunk(m, g, 2 + ncols)?;
            let mut p = 0usize;
            for _ in 0..pi {
                Self::spill_next(&buf, &mut p)?;
            }
            (buf, p)
        } else {
            (Arc::clone(&empty), 0usize)
        };

        let mut out = Vec::with_capacity(end - start);
        for &((a, b), kind) in &rows[start..end] {
            let key = key_buf[a..b].to_vec();
            match kind {
                KIND_ANTIMATTER => out.push(Entry::tombstone(key)),
                KIND_SPILL => {
                    let (x, y) = Self::spill_next(&spill_buf, &mut spill_pos)?;
                    out.push(Entry::put(key, spill_buf[x..y].to_vec()));
                }
                KIND_SHREDDED => {
                    let mut ranges = Vec::with_capacity(ncols);
                    for c in 0..ncols {
                        ranges.push(Self::presence_next(&col_bufs[c], &mut col_pos[c])?);
                    }
                    let rest_r = Self::presence_next(&rest_buf, &mut rest_pos)?;
                    let cols: Vec<Option<&[u8]>> = ranges
                        .iter()
                        .enumerate()
                        .map(|(c, r)| r.map(|(x, y)| &col_bufs[c][x..y]))
                        .collect();
                    let rest = rest_r.map(|(x, y)| &rest_buf[x..y]);
                    let sd = colschema::splice_full(&m.schema, &cols, rest)
                        .map_err(|e| StorageError::Corrupt(format!("splice failed: {e}")))?;
                    let value = m.codec.to_stored(&sd).ok_or_else(|| {
                        StorageError::Corrupt("codec rejected reconstructed row".into())
                    })?;
                    out.push(Entry::put(key, value));
                }
                other => return Err(StorageError::Corrupt(format!("bad row kind {other}"))),
            }
        }
        Ok(out)
    }

    fn nblocks(&self) -> usize {
        match &self.layout {
            Layout::Row { pages } => pages.len(),
            Layout::Columnar(m) => m.groups.len(),
        }
    }

    /// First key of a block (page or row group).
    fn block_first_key(&self, idx: usize) -> &[u8] {
        match &self.layout {
            Layout::Row { pages } => &pages[idx].first_key,
            Layout::Columnar(m) => &m.groups[idx].first_key,
        }
    }

    fn load_block(&self, idx: usize) -> Result<Vec<Entry>> {
        self.load_block_bounded(idx, None, None)
    }

    fn load_block_bounded(
        &self,
        idx: usize,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<Entry>> {
        match &self.layout {
            Layout::Row { pages } => {
                let meta = &pages[idx];
                let page = self.read_span(idx as u32, meta.offset, meta.len as usize)?;
                Self::parse_page(&page)
            }
            Layout::Columnar(m) => self.reconstruct_group_bounded(m, idx, lo, hi),
        }
    }

    /// Index of the last block whose first key is <= `key` (candidate).
    fn locate_block(&self, key: &[u8]) -> Option<usize> {
        let found = match &self.layout {
            Layout::Row { pages } => pages.binary_search_by(|p| p.first_key.as_slice().cmp(key)),
            Layout::Columnar(m) => m.groups.binary_search_by(|g| g.first_key.as_slice().cmp(key)),
        };
        match found {
            Ok(i) => Some(i),
            Err(0) => None, // key below the first block's first key
            Err(i) => Some(i - 1),
        }
    }

    /// Point lookup; returns the entry (possibly antimatter) if present.
    pub fn get(&self, key: &[u8]) -> Result<Option<Entry>> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let Some(bidx) = self.locate_block(key) else {
            return Ok(None);
        };
        // Columnar groups reconstruct just the matching row — materializing
        // the whole group (a full splice + codec round trip per row) turns
        // every indexed lookup into a group scan.
        if let Layout::Columnar(m) = &self.layout {
            return self.get_in_group(m, bidx, key);
        }
        let entries = self.load_block(bidx)?;
        match entries.binary_search_by(|e| e.key.as_slice().cmp(key)) {
            Ok(i) => Ok(Some(entries[i].clone())),
            Err(_) => Ok(None),
        }
    }

    /// Byte range of row `n` in a presence-prefixed chunk (column or rest
    /// run), skipping earlier rows without materializing them.
    fn nth_presence_range(buf: &[u8], n: usize) -> Result<Option<(usize, usize)>> {
        let mut pos = 0usize;
        for i in 0..=n {
            let present = *buf
                .get(pos)
                .ok_or_else(|| StorageError::Corrupt("truncated column run".into()))?;
            pos += 1;
            if present == 0 {
                if i == n {
                    return Ok(None);
                }
                continue;
            }
            let len = read_varint(buf, &mut pos)? as usize;
            if pos + len > buf.len() {
                return Err(StorageError::Corrupt("column value spans past run".into()));
            }
            if i == n {
                return Ok(Some((pos, pos + len)));
            }
            pos += len;
        }
        unreachable!()
    }

    /// Byte range of spilled row `n` in a spill chunk.
    fn nth_spill_range(buf: &[u8], n: usize) -> Result<(usize, usize)> {
        let mut pos = 0usize;
        for i in 0..=n {
            let len = read_varint(buf, &mut pos)? as usize;
            if pos + len > buf.len() {
                return Err(StorageError::Corrupt("spill value spans past run".into()));
            }
            if i == n {
                return Ok((pos, pos + len));
            }
            pos += len;
        }
        unreachable!()
    }

    /// Point lookup inside one columnar row group: binary-search the key
    /// run (parsed as ranges, no per-key allocation), then splice exactly
    /// one row's column slices back through the codec.
    fn get_in_group(&self, m: &ColMeta, g: usize, key: &[u8]) -> Result<Option<Entry>> {
        let key_buf = self.read_chunk(m, g, 0)?;
        let nrows = m.groups[g].nrows as usize;
        // (key byte range, kind) per row, referencing `key_buf`.
        let mut rows = Vec::with_capacity(nrows);
        let mut pos = 0usize;
        for _ in 0..nrows {
            let klen = read_varint(&key_buf, &mut pos)? as usize;
            if pos + klen + 1 > key_buf.len() {
                return Err(StorageError::Corrupt("truncated key chunk".into()));
            }
            rows.push(((pos, pos + klen), key_buf[pos + klen]));
            pos += klen + 1;
        }
        let Ok(i) = rows.binary_search_by(|((a, b), _)| key_buf[*a..*b].cmp(key)) else {
            return Ok(None);
        };
        let kind = rows[i].1;
        match kind {
            KIND_ANTIMATTER => Ok(Some(Entry::tombstone(key.to_vec()))),
            KIND_SPILL => {
                let pi = rows[..i].iter().filter(|(_, k)| *k == KIND_SPILL).count();
                let spill_buf = self.read_chunk(m, g, 2 + m.schema.columns.len())?;
                let (a, b) = Self::nth_spill_range(&spill_buf, pi)?;
                Ok(Some(Entry::put(key.to_vec(), spill_buf[a..b].to_vec())))
            }
            KIND_SHREDDED => {
                let si = rows[..i].iter().filter(|(_, k)| *k == KIND_SHREDDED).count();
                let ncols = m.schema.columns.len();
                let mut col_bufs = Vec::with_capacity(ncols);
                for c in 0..ncols {
                    col_bufs.push(self.read_chunk(m, g, 1 + c)?);
                }
                let rest_buf = self.read_chunk(m, g, 1 + ncols)?;
                let mut cols: Vec<Option<&[u8]>> = Vec::with_capacity(ncols);
                for buf in &col_bufs {
                    cols.push(Self::nth_presence_range(buf, si)?.map(|(a, b)| &buf[a..b]));
                }
                let rest = Self::nth_presence_range(&rest_buf, si)?.map(|(a, b)| &rest_buf[a..b]);
                let sd = colschema::splice_full(&m.schema, &cols, rest)
                    .map_err(|e| StorageError::Corrupt(format!("splice failed: {e}")))?;
                let value = m.codec.to_stored(&sd).ok_or_else(|| {
                    StorageError::Corrupt("codec rejected reconstructed row".into())
                })?;
                Ok(Some(Entry::put(key.to_vec(), value)))
            }
            other => Err(StorageError::Corrupt(format!("bad row kind {other}"))),
        }
    }

    /// Iterate entries with keys in `[lo, hi)`; `None` bounds are open.
    pub fn range(self: &Arc<Self>, lo: Option<&[u8]>, hi: Option<&[u8]>) -> ComponentIter {
        let start_block = match lo {
            Some(lo) => self.locate_block(lo).unwrap_or(0),
            None => 0,
        };
        ComponentIter {
            comp: Arc::clone(self),
            block_idx: start_block,
            entries: Vec::new(),
            entry_idx: 0,
            lo: lo.map(|b| b.to_vec()),
            hi: hi.map(|b| b.to_vec()),
            primed: false,
            error: None,
        }
    }

    /// Late-materializing scan over a columnar component: reads the key run,
    /// only the projected (and filtered) column runs, and assembles each
    /// surviving row's requested fields into a self-describing record —
    /// skipping every other column's bytes entirely. Must only be called
    /// when [`Self::is_columnar`]; row components are scanned with
    /// [`Self::range`].
    pub fn project_range(
        self: &Arc<Self>,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        proj: &Projection,
    ) -> ProjectedIter {
        let Layout::Columnar(m) = &self.layout else {
            panic!("project_range on a row component");
        };
        // Resolve projected fields against the schema once.
        let cols: Vec<(String, Option<usize>)> =
            proj.fields.iter().map(|f| (f.clone(), m.schema.column_index(f))).collect();
        let need_rest = cols.iter().any(|(_, c)| c.is_none());
        let filter = proj.filter.clone().map(|f| {
            let src = m.schema.column_index(&f.field);
            (f, src)
        });
        // The set of column slots this scan will read.
        let mut read_cols: Vec<usize> = cols.iter().filter_map(|(_, c)| *c).collect();
        if let Some((_, Some(c))) = &filter {
            read_cols.push(*c);
        }
        read_cols.sort_unstable();
        read_cols.dedup();
        let start_block = match lo {
            Some(lo) => self.locate_block(lo).unwrap_or(0),
            None => 0,
        };
        ProjectedIter {
            comp: Arc::clone(self),
            cols,
            read_cols,
            need_rest,
            filter,
            group_idx: start_block,
            rows: Vec::new(),
            row_idx: 0,
            lo: lo.map(|b| b.to_vec()),
            hi: hi.map(|b| b.to_vec()),
            primed: false,
            error: None,
            scratch: Vec::new(),
        }
    }

    /// Delete the component's files and invalidate cached pages.
    pub fn destroy(&self) -> Result<()> {
        self.cache.invalidate_file(self.file_id);
        let _ = fs::remove_file(Self::marker_path(&self.path));
        fs::remove_file(&self.path)?;
        Ok(())
    }

    /// Remove any component data files in `dir` lacking a validity marker
    /// or failing structural validation (torn directory or footer from a
    /// partially-written file). Returns the paths of valid components,
    /// sorted by name. This is the crash-recovery garbage collection step
    /// from §4.4.
    pub fn scavenge_dir(dir: &Path) -> Result<Vec<PathBuf>> {
        let mut valid = Vec::new();
        if !dir.exists() {
            return Ok(valid);
        }
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("dat") {
                if Self::marker_path(&path).exists() && Self::validate(&path).is_ok() {
                    valid.push(path);
                } else {
                    let _ = fs::remove_file(Self::marker_path(&path));
                    let _ = fs::remove_file(&path);
                }
            }
        }
        valid.sort();
        Ok(valid)
    }
}

struct RowMeta {
    pages: Vec<PageMeta>,
    bloom: BloomFilter,
    entry_count: u64,
    min_seq: u64,
    max_seq: u64,
}

struct ColFileMeta {
    groups: Vec<GroupMeta>,
    schema: InferredSchema,
    bloom: BloomFilter,
    entry_count: u64,
    min_seq: u64,
    max_seq: u64,
}

/// Forward iterator over one component's entries in a key range. Works on
/// both layouts; columnar groups are fully reconstructed so callers (merge,
/// point scans) always see exact original row bytes.
pub struct ComponentIter {
    comp: Arc<DiskComponent>,
    block_idx: usize,
    entries: Vec<Entry>,
    entry_idx: usize,
    lo: Option<Vec<u8>>,
    hi: Option<Vec<u8>>,
    primed: bool,
    error: Option<StorageError>,
}

impl ComponentIter {
    /// Surface any I/O error hit during iteration.
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }

    fn load_block(&mut self) -> bool {
        while self.block_idx < self.comp.nblocks() {
            if let Some(hi) = &self.hi {
                // Blocks are key-ordered: once a block starts at/past the
                // upper bound there is nothing left to yield.
                if self.comp.block_first_key(self.block_idx) >= hi.as_slice() {
                    self.block_idx = self.comp.nblocks();
                    return false;
                }
            }
            match self.comp.load_block_bounded(
                self.block_idx,
                if self.primed { None } else { self.lo.as_deref() },
                self.hi.as_deref(),
            ) {
                Ok(entries) => {
                    self.block_idx += 1;
                    self.entries = entries;
                    self.entry_idx = 0;
                    if !self.primed {
                        self.primed = true;
                        if let Some(lo) = &self.lo {
                            self.entry_idx =
                                self.entries.partition_point(|e| e.key.as_slice() < lo.as_slice());
                        }
                    }
                    if self.entry_idx < self.entries.len() {
                        return true;
                    }
                }
                Err(e) => {
                    self.error = Some(e);
                    return false;
                }
            }
        }
        false
    }
}

impl Iterator for ComponentIter {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        loop {
            if self.entry_idx >= self.entries.len() && !self.load_block() {
                return None;
            }
            let e = self.entries[self.entry_idx].clone();
            self.entry_idx += 1;
            if let Some(hi) = &self.hi {
                if e.key.as_slice() >= hi.as_slice() {
                    // Past the upper bound: stop (and skip remaining blocks).
                    self.block_idx = self.comp.nblocks();
                    self.entries.clear();
                    return None;
                }
            }
            if let Some(lo) = &self.lo {
                if e.key.as_slice() < lo.as_slice() {
                    continue;
                }
            }
            return Some(e);
        }
    }
}

/// One row out of a late-materializing scan, before merge resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjEntry {
    pub key: Vec<u8>,
    pub kind: ProjKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProjKind {
    /// Tombstone: suppresses older versions of the key.
    Anti,
    /// A full stored row (spill rows, or rows from non-columnar sources);
    /// the consumer projects it itself.
    Row(Vec<u8>),
    /// The projected fields assembled into a self-describing record.
    Assembled(Vec<u8>),
    /// Rejected by the pushed-down column filter. Still carries its key so
    /// merge resolution can let it shadow older versions; dropped only
    /// after winning.
    Filtered,
}

/// Late-materializing iterator over one columnar component: yields every
/// key in range with its projected payload, reading only the needed column
/// runs through the buffer cache.
pub struct ProjectedIter {
    comp: Arc<DiskComponent>,
    /// Projected fields with their schema column index (None = from rest).
    cols: Vec<(String, Option<usize>)>,
    /// De-duplicated schema column slots this scan reads.
    read_cols: Vec<usize>,
    need_rest: bool,
    filter: Option<(crate::columnar::ColumnFilter, Option<usize>)>,
    group_idx: usize,
    rows: Vec<ProjEntry>,
    row_idx: usize,
    lo: Option<Vec<u8>>,
    hi: Option<Vec<u8>>,
    primed: bool,
    error: Option<StorageError>,
    scratch: Vec<u8>,
}

impl ProjectedIter {
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }

    fn load_group(&mut self) -> bool {
        while self.group_idx < self.comp.nblocks() {
            match self.materialize_group(self.group_idx) {
                Ok(rows) => {
                    self.group_idx += 1;
                    self.rows = rows;
                    self.row_idx = 0;
                    if !self.primed {
                        self.primed = true;
                        if let Some(lo) = &self.lo {
                            self.row_idx =
                                self.rows.partition_point(|r| r.key.as_slice() < lo.as_slice());
                        }
                    }
                    if self.row_idx < self.rows.len() {
                        return true;
                    }
                }
                Err(e) => {
                    self.error = Some(e);
                    return false;
                }
            }
        }
        false
    }

    fn materialize_group(&mut self, g: usize) -> Result<Vec<ProjEntry>> {
        let Layout::Columnar(m) = &self.comp.layout else { unreachable!() };
        let meta = &m.groups[g];
        let keys = DiskComponent::parse_key_chunk(&self.comp.read_chunk(m, g, 0)?, meta.nrows)?;
        let nshred = keys.iter().filter(|(_, k)| *k == KIND_SHREDDED).count();
        let nspill = keys.iter().filter(|(_, k)| *k == KIND_SPILL).count();
        let ncols = m.schema.columns.len();

        // Read only the projected/filtered column runs; account for every
        // run we got to skip.
        let mut col_data: Vec<Option<(Arc<Vec<u8>>, Vec<Option<(usize, usize)>>)>> =
            (0..ncols).map(|_| None).collect();
        for &c in &self.read_cols {
            let buf = self.comp.read_chunk(m, g, 1 + c)?;
            let ranges = DiskComponent::parse_presence_chunk(&buf, nshred)?;
            col_data[c] = Some((buf, ranges));
        }
        m.stats.columns_projected.add(self.read_cols.len() as u64);
        let skipped: u64 = (0..ncols)
            .filter(|c| !self.read_cols.contains(c))
            .map(|c| meta.chunks[1 + c].1 as u64)
            .sum();
        m.stats.bytes_skipped.add(skipped);

        let rest = if self.need_rest {
            let buf = self.comp.read_chunk(m, g, 1 + ncols)?;
            let ranges = DiskComponent::parse_presence_chunk(&buf, nshred)?;
            Some((buf, ranges))
        } else {
            None
        };
        let spill = if nspill > 0 {
            let buf = self.comp.read_chunk(m, g, 2 + ncols)?;
            let ranges = DiskComponent::parse_spill_chunk(&buf, nspill)?;
            Some((buf, ranges))
        } else {
            None
        };

        let mut out = Vec::with_capacity(keys.len());
        let (mut si, mut pi) = (0usize, 0usize);
        let mut parts: Vec<(&str, &[u8])> = Vec::with_capacity(self.cols.len());
        for (key, kind) in keys {
            match kind {
                KIND_ANTIMATTER => out.push(ProjEntry { key, kind: ProjKind::Anti }),
                KIND_SPILL => {
                    let (buf, ranges) = spill.as_ref().unwrap();
                    let (a, b) = ranges[pi];
                    pi += 1;
                    out.push(ProjEntry { key, kind: ProjKind::Row(buf[a..b].to_vec()) });
                }
                _ => {
                    let col_bytes = |c: usize, si: usize| -> Option<&[u8]> {
                        let (buf, ranges) = col_data[c].as_ref()?;
                        ranges[si].map(|(a, b)| &buf[a..b])
                    };
                    let rest_bytes: Option<&[u8]> =
                        rest.as_ref().and_then(|(buf, ranges)| ranges[si].map(|(a, b)| &buf[a..b]));
                    // Pushed-down filter: evaluate on the single column's
                    // bytes before assembling anything.
                    if let Some((f, src)) = &self.filter {
                        let fbytes = match src {
                            Some(c) => col_bytes(*c, si),
                            None => rest_bytes
                                .and_then(|r| adm_serde::encoded_record_field(r, &f.field)),
                        };
                        if f.rejects(fbytes, &mut self.scratch) {
                            si += 1;
                            out.push(ProjEntry { key, kind: ProjKind::Filtered });
                            continue;
                        }
                    }
                    parts.clear();
                    for (name, col) in &self.cols {
                        let bytes = match col {
                            Some(c) => col_bytes(*c, si),
                            None => {
                                rest_bytes.and_then(|r| adm_serde::encoded_record_field(r, name))
                            }
                        };
                        if let Some(b) = bytes {
                            parts.push((name.as_str(), b));
                        }
                    }
                    si += 1;
                    let rec = colschema::encode_record_from_parts(&parts);
                    out.push(ProjEntry { key, kind: ProjKind::Assembled(rec) });
                }
            }
        }
        Ok(out)
    }
}

impl Iterator for ProjectedIter {
    type Item = ProjEntry;

    fn next(&mut self) -> Option<ProjEntry> {
        loop {
            if self.row_idx >= self.rows.len() && !self.load_group() {
                return None;
            }
            let r = self.rows[self.row_idx].clone();
            self.row_idx += 1;
            if let Some(hi) = &self.hi {
                if r.key.as_slice() >= hi.as_slice() {
                    self.group_idx = self.comp.nblocks();
                    self.rows.clear();
                    return None;
                }
            }
            if let Some(lo) = &self.lo {
                if r.key.as_slice() < lo.as_slice() {
                    continue;
                }
            }
            return Some(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{CmpOp, ColumnFilter, SelfDescribingCodec};
    use asterix_adm::serde::encode;
    use asterix_adm::value::{Record, Value};
    use tempfile::TempDir;

    fn key(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    fn build_n(dir: &Path, n: u32) -> Arc<DiskComponent> {
        let cache = BufferCache::new(64);
        let entries = (0..n).map(|i| Entry::put(key(i * 2), vec![i as u8; 8]));
        DiskComponent::build(
            &dir.join("c_0_0.dat"),
            cache,
            &ComponentConfig { page_size: 256, bloom_fpp: 0.01 },
            0,
            0,
            entries,
            n as usize,
        )
        .unwrap()
    }

    #[test]
    fn build_get_roundtrip() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 1000);
        assert_eq!(c.entry_count(), 1000);
        for i in 0..1000u32 {
            let got = c.get(&key(i * 2)).unwrap().unwrap();
            assert_eq!(got.value, vec![i as u8; 8]);
            assert!(c.get(&key(i * 2 + 1)).unwrap().is_none());
        }
    }

    #[test]
    fn open_roundtrip() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 500);
        let path = c.path().to_path_buf();
        drop(c);
        let cache = BufferCache::new(64);
        let c2 = DiskComponent::open(&path, cache, None).unwrap();
        assert_eq!(c2.entry_count(), 500);
        assert!(c2.get(&key(10)).unwrap().is_some());
        assert!(c2.get(&key(11)).unwrap().is_none());
    }

    #[test]
    fn range_scans() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 100);
        let all: Vec<Entry> = c.range(None, None).collect();
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key));
        let mid: Vec<Entry> = c.range(Some(&key(10)), Some(&key(20))).collect();
        assert_eq!(mid.len(), 5); // keys 10,12,14,16,18
        assert_eq!(mid[0].key, key(10));
        let from_odd: Vec<Entry> = c.range(Some(&key(11)), Some(&key(15))).collect();
        assert_eq!(from_odd.len(), 2); // 12, 14
        let none: Vec<Entry> = c.range(Some(&key(500)), None).collect();
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn validity_marker_enforced() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 10);
        let path = c.path().to_path_buf();
        fs::remove_file(path.with_extension("valid")).unwrap();
        let cache = BufferCache::new(8);
        assert!(DiskComponent::open(&path, cache, None).is_err());
        // Scavenge removes the orphaned data file.
        let valid = DiskComponent::scavenge_dir(dir.path()).unwrap();
        assert!(valid.is_empty());
        assert!(!path.exists());
    }

    #[test]
    fn scavenge_keeps_valid() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 10);
        let valid = DiskComponent::scavenge_dir(dir.path()).unwrap();
        assert_eq!(valid, vec![c.path().to_path_buf()]);
    }

    #[test]
    fn antimatter_entries_survive_roundtrip() {
        let dir = TempDir::new().unwrap();
        let cache = BufferCache::new(8);
        let entries = vec![
            Entry::put(key(1), b"v1".to_vec()),
            Entry::tombstone(key(2)),
            Entry::put(key(3), b"v3".to_vec()),
        ];
        let c = DiskComponent::build(
            &dir.path().join("c_1_1.dat"),
            cache,
            &ComponentConfig::default(),
            1,
            1,
            entries,
            3,
        )
        .unwrap();
        let e = c.get(&key(2)).unwrap().unwrap();
        assert!(e.antimatter);
        let e = c.get(&key(3)).unwrap().unwrap();
        assert!(!e.antimatter);
    }

    #[test]
    fn destroy_removes_files() {
        let dir = TempDir::new().unwrap();
        let c = build_n(dir.path(), 10);
        let path = c.path().to_path_buf();
        c.destroy().unwrap();
        assert!(!path.exists());
        assert!(!path.with_extension("valid").exists());
    }

    // ------------------------------------------------------------------
    // Columnar layout
    // ------------------------------------------------------------------

    fn record_value(i: u32) -> Vec<u8> {
        let mut r = Record::new();
        r.set("id", Value::Int64(i as i64));
        r.set("name", Value::string(format!("user-{i:04}")));
        r.set("score", Value::Double(i as f64 / 7.0));
        if i % 5 == 0 {
            r.set("flag", Value::Boolean(true));
        }
        encode(&Value::record(r))
    }

    fn columnar_opts() -> ColumnarOptions {
        ColumnarOptions::new(Arc::new(SelfDescribingCodec))
    }

    fn build_columnar_n(dir: &Path, n: u32, opts: &ColumnarOptions) -> Arc<DiskComponent> {
        let cache = BufferCache::new(256);
        let entries: Vec<Entry> = (0..n)
            .map(|i| {
                if i % 17 == 3 {
                    Entry::tombstone(key(i))
                } else {
                    Entry::put(key(i), record_value(i))
                }
            })
            .collect();
        DiskComponent::build_columnar(
            &dir.join("c_0_0.dat"),
            cache,
            &ComponentConfig { page_size: 512, bloom_fpp: 0.01 },
            opts,
            0,
            0,
            &entries,
        )
        .unwrap()
        .expect("stable records should build columnar")
    }

    #[test]
    fn columnar_build_reconstructs_exact_rows() {
        let dir = TempDir::new().unwrap();
        let opts = columnar_opts();
        let c = build_columnar_n(dir.path(), 500, &opts);
        assert!(c.is_columnar());
        assert_eq!(c.entry_count(), 500);
        assert_eq!(opts.stats.components.get(), 1);
        let schema = c.schema().unwrap();
        assert!(schema.column_index("id").is_some());
        assert!(schema.column_index("name").is_some());
        for i in 0..500u32 {
            let got = c.get(&key(i)).unwrap().unwrap();
            if i % 17 == 3 {
                assert!(got.antimatter);
            } else {
                assert_eq!(got.value, record_value(i), "row {i} must reconstruct exactly");
            }
        }
        // Full range matches too, preserving order.
        let all: Vec<Entry> = c.range(None, None).collect();
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn columnar_open_roundtrip_requires_codec() {
        let dir = TempDir::new().unwrap();
        let opts = columnar_opts();
        let c = build_columnar_n(dir.path(), 100, &opts);
        let path = c.path().to_path_buf();
        drop(c);
        let cache = BufferCache::new(64);
        assert!(DiskComponent::open(&path, Arc::clone(&cache), None).is_err());
        let c2 = DiskComponent::open(&path, cache, Some(&opts)).unwrap();
        assert!(c2.is_columnar());
        assert_eq!(c2.get(&key(7)).unwrap().unwrap().value, record_value(7));
    }

    #[test]
    fn projected_scan_assembles_requested_fields_and_skips_bytes() {
        let dir = TempDir::new().unwrap();
        let opts = columnar_opts();
        let c = build_columnar_n(dir.path(), 300, &opts);
        let proj = Projection { fields: vec!["id".into(), "flag".into()], filter: None };
        let rows: Vec<ProjEntry> = c.project_range(None, None, &proj).collect();
        assert_eq!(rows.len(), 300);
        for (i, r) in rows.iter().enumerate() {
            let i = i as u32;
            if i % 17 == 3 {
                assert_eq!(r.kind, ProjKind::Anti);
                continue;
            }
            let ProjKind::Assembled(rec) = &r.kind else { panic!("expected assembled row") };
            let id = adm_serde::encoded_record_field(rec, "id").expect("id field");
            assert_eq!(adm_serde::decode(id).unwrap(), Value::Int64(i as i64));
            // "name" was not requested and must be absent from the output.
            assert!(adm_serde::encoded_record_field(rec, "name").is_none());
            let flag = adm_serde::encoded_record_field(rec, "flag");
            assert_eq!(flag.is_some(), i % 5 == 0);
        }
        // The name/score columns were never read.
        assert!(opts.stats.bytes_skipped.get() > 0);
        assert!(opts.stats.columns_projected.get() > 0);
    }

    #[test]
    fn projected_scan_filters_on_column_bytes() {
        let dir = TempDir::new().unwrap();
        let opts = columnar_opts();
        let c = build_columnar_n(dir.path(), 200, &opts);
        let mut filter_key = Vec::new();
        assert!(asterix_adm::ordkey::encoded_scalar_key_into(
            &encode(&Value::Int64(150)),
            &mut filter_key
        ));
        let proj = Projection {
            fields: vec!["id".into()],
            filter: Some(ColumnFilter { field: "id".into(), op: CmpOp::Ge, key: filter_key }),
        };
        let rows: Vec<ProjEntry> = c.project_range(None, None, &proj).collect();
        let assembled = rows.iter().filter(|r| matches!(r.kind, ProjKind::Assembled(_))).count();
        let filtered = rows.iter().filter(|r| r.kind == ProjKind::Filtered).count();
        let anti = rows.iter().filter(|r| r.kind == ProjKind::Anti).count();
        assert_eq!(rows.len(), 200, "every key is still yielded for merge resolution");
        let expected_live: Vec<u32> = (150..200).filter(|i| i % 17 != 3).collect();
        assert_eq!(assembled, expected_live.len());
        assert_eq!(anti, (0..200).filter(|i| i % 17 == 3).count());
        assert_eq!(filtered, 200 - assembled - anti);
    }

    #[test]
    fn unstable_data_falls_back_to_row_layout() {
        let dir = TempDir::new().unwrap();
        let opts = columnar_opts();
        let cache = BufferCache::new(64);
        // Values that aren't records at all: nothing to infer.
        let entries: Vec<Entry> =
            (0..50u32).map(|i| Entry::put(key(i), encode(&Value::Int64(i as i64)))).collect();
        let built = DiskComponent::build_columnar(
            &dir.path().join("c_0_0.dat"),
            cache,
            &ComponentConfig::default(),
            &opts,
            0,
            0,
            &entries,
        )
        .unwrap();
        assert!(built.is_none(), "schema-unstable data must not build columnar");
    }

    #[test]
    fn heterogeneous_rows_spill_and_reconstruct() {
        let dir = TempDir::new().unwrap();
        let opts = columnar_opts();
        let cache = BufferCache::new(64);
        let mk = |i: u32| -> Vec<u8> {
            if i % 10 == 7 {
                // Occasionally the "id" field is a string: this row spills.
                let mut r = Record::new();
                r.set("id", Value::string(format!("weird-{i}")));
                encode(&Value::record(r))
            } else {
                record_value(i)
            }
        };
        let entries: Vec<Entry> = (0..200u32).map(|i| Entry::put(key(i), mk(i))).collect();
        let c = DiskComponent::build_columnar(
            &dir.path().join("c_0_0.dat"),
            cache,
            &ComponentConfig { page_size: 512, bloom_fpp: 0.01 },
            &opts,
            0,
            0,
            &entries,
        )
        .unwrap()
        .expect("mostly-stable data still builds columnar");
        assert!(opts.stats.fallback_rows.get() > 0);
        for i in 0..200u32 {
            assert_eq!(c.get(&key(i)).unwrap().unwrap().value, mk(i));
        }
        // Projected scans hand spilled rows back whole.
        let proj = Projection { fields: vec!["id".into()], filter: None };
        let spills = c
            .project_range(None, None, &proj)
            .filter(|r| matches!(r.kind, ProjKind::Row(_)))
            .count();
        assert_eq!(spills, (0..200u32).filter(|i| i % 10 == 7).count());
    }

    #[test]
    fn scavenge_deletes_torn_columnar_component() {
        let dir = TempDir::new().unwrap();
        let opts = columnar_opts();
        let c = build_columnar_n(dir.path(), 300, &opts);
        let path = c.path().to_path_buf();
        drop(c);
        // Tear the file mid-footer: the validity marker survives but the
        // group directory can no longer be addressed.
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 40).unwrap();
        drop(f);
        assert!(path.with_extension("valid").exists());
        assert!(DiskComponent::validate(&path).is_err());
        let valid = DiskComponent::scavenge_dir(dir.path()).unwrap();
        assert!(valid.is_empty());
        assert!(!path.exists());
        assert!(!path.with_extension("valid").exists());
    }
}
