//! Columnar-component support types: the row codec bridging the stored
//! row encoding to the self-describing ADM encoding, build options and
//! knobs, projection descriptors for late-materialized scans, and the
//! `storage.columnar.*` observability counters.
//!
//! The storage layer stores opaque row bytes; shredding them into columns
//! requires translating to the self-describing record encoding that
//! [`asterix_adm::colschema`] understands. [`RowCodec`] is that bridge —
//! the engine above supplies one per dataset (typed ↔ self-describing),
//! and tests can use [`SelfDescribingCodec`] when rows already are the
//! self-describing encoding.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use asterix_adm::tuple::ValueRef;
use asterix_obs::{Counter, MetricsRegistry};

/// Bidirectional translation between the stored row encoding and the
/// self-describing ADM encoding. Both directions return `None` for rows
/// that cannot be translated — such rows ride the spill path verbatim.
///
/// The contract that makes columnar reads bit-exact: for every row the
/// builder shreds, `to_stored(splice(shred(to_self_describing(row)))) ==
/// row` is verified at build time, and rows failing it are spilled.
pub trait RowCodec: Send + Sync {
    fn to_self_describing(&self, stored: &[u8]) -> Option<Vec<u8>>;
    fn to_stored(&self, sd: &[u8]) -> Option<Vec<u8>>;
}

/// Identity codec for stores whose row format already is the
/// self-describing encoding (tests, schemaless byte stores).
#[derive(Debug, Default, Clone, Copy)]
pub struct SelfDescribingCodec;

impl RowCodec for SelfDescribingCodec {
    fn to_self_describing(&self, stored: &[u8]) -> Option<Vec<u8>> {
        Some(stored.to_vec())
    }

    fn to_stored(&self, sd: &[u8]) -> Option<Vec<u8>> {
        Some(sd.to_vec())
    }
}

/// Counters for the columnar path, registered under `storage.columnar.*`.
#[derive(Debug, Clone, Default)]
pub struct ColumnarStats {
    /// Columnar disk components built (flushes and merges).
    pub components: Counter,
    /// Column page runs actually read by projecting scans.
    pub columns_projected: Counter,
    /// Bytes of column runs a projecting scan did NOT have to read.
    pub bytes_skipped: Counter,
    /// Rows that fell back to the row-stored spill column at build time.
    pub fallback_rows: Counter,
}

impl ColumnarStats {
    pub fn register_into(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.register_counter(&format!("{prefix}.components"), &self.components);
        reg.register_counter(&format!("{prefix}.columns_projected"), &self.columns_projected);
        reg.register_counter(&format!("{prefix}.bytes_skipped"), &self.bytes_skipped);
        reg.register_counter(&format!("{prefix}.fallback_rows"), &self.fallback_rows);
    }
}

/// Per-tree columnar configuration, carried on `LsmConfig`.
#[derive(Clone)]
pub struct ColumnarOptions {
    /// Stored-row ↔ self-describing translation for this tree's values.
    pub codec: Arc<dyn RowCodec>,
    /// Build new components column-major when the data allows it. When
    /// `false` (the `disable_columnar` knob) no new columnar components
    /// are built and scans never project, but existing columnar
    /// components remain readable — the knob must not strand data written
    /// while it was on.
    pub enabled: bool,
    /// Minimum fraction of rows a field must appear in to earn a column.
    pub min_presence: f64,
    /// Minimum fraction of rows that must shred cleanly for a columnar
    /// build to go ahead; below it the component falls back to row format.
    pub min_shred_fraction: f64,
    /// Cap on inferred columns (highest presence wins).
    pub max_columns: usize,
    pub stats: Arc<ColumnarStats>,
}

impl ColumnarOptions {
    pub fn new(codec: Arc<dyn RowCodec>) -> Self {
        ColumnarOptions {
            codec,
            enabled: true,
            min_presence: 0.25,
            min_shred_fraction: 0.5,
            max_columns: 48,
            stats: Arc::new(ColumnarStats::default()),
        }
    }
}

impl fmt::Debug for ColumnarOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ColumnarOptions")
            .field("enabled", &self.enabled)
            .field("min_presence", &self.min_presence)
            .field("min_shred_fraction", &self.min_shred_fraction)
            .field("max_columns", &self.max_columns)
            .finish_non_exhaustive()
    }
}

/// Comparison operator for [`ColumnFilter`], mirroring the executor's
/// `CmpKind` so jobgen predicates translate one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn apply(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Neq => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A pushed-down `field <op> constant` predicate evaluated on one
/// column's bytes before any row assembly. `key` is the precomputed
/// `ordkey` encoding of the constant.
#[derive(Debug, Clone)]
pub struct ColumnFilter {
    pub field: String,
    pub op: CmpOp,
    pub key: Vec<u8>,
}

impl ColumnFilter {
    /// `true` when the row is DEFINITELY rejected by this filter: the
    /// field is absent or unknown (comparisons with MISSING/NULL are
    /// unknown, which a select drops), or its ordkey transcoding compares
    /// false against the constant. Indecisive cases — non-scalar values,
    /// numerics past the exact bound — keep the row; the select operator
    /// above re-evaluates every surviving row, so this can only be used
    /// under the predicate it was derived from.
    pub fn rejects(&self, field_sd: Option<&[u8]>, scratch: &mut Vec<u8>) -> bool {
        let Some(bytes) = field_sd else { return true };
        if ValueRef::new(bytes).is_unknown() {
            return true;
        }
        scratch.clear();
        if !asterix_adm::ordkey::encoded_scalar_key_into(bytes, scratch) {
            return false; // indecisive: let the select decide
        }
        !self.op.apply(scratch.as_slice().cmp(self.key.as_slice()))
    }
}

/// What a late-materializing scan should produce: the named fields, in
/// order, of each surviving row — assembled into a self-describing record
/// — plus an optional single-column pre-filter.
#[derive(Debug, Clone)]
pub struct Projection {
    pub fields: Vec<String>,
    pub filter: Option<ColumnFilter>,
}
