//! Bloom filters attached to LSM disk components.
//!
//! Each disk component carries a bloom filter over its keys so that point
//! lookups (the hot path of primary-key fetches after a secondary-index
//! search, Figure 6) can skip components that certainly do not contain the
//! key — the same role bloom filters play in AsterixDB's LSM B+-trees.

/// A fixed-size bloom filter with k derived hash functions.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: u64,
    k: u32,
}

fn hash64(data: &[u8], seed: u64) -> u64 {
    // FNV-1a with a seed mixed in; cheap and adequate for component filters.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche (from splitmix64).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Bits per key that hit a target false-positive rate with the optimal
/// hash count: `m/n = -ln(p) / (ln 2)²`. Targets are clamped to
/// `[1e-6, 0.5]` — beyond that the formula asks for less than one bit or
/// more than ~29 bits per key, neither of which a component filter wants.
pub fn bits_per_key(fpp: f64) -> f64 {
    -fpp.clamp(1e-6, 0.5).ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)
}

/// Optimal hash-function count for a bits-per-key budget: `k = b · ln 2`,
/// clamped to `[1, 16]` probes.
pub fn optimal_k(bits_per_key: f64) -> u32 {
    (bits_per_key * std::f64::consts::LN_2).round().clamp(1.0, 16.0) as u32
}

impl BloomFilter {
    /// Build a filter sized for `expected` keys at ~`fpp` false positives
    /// (bits and probe count both derived from the target via
    /// [`bits_per_key`] / [`optimal_k`]).
    pub fn with_capacity(expected: usize, fpp: f64) -> Self {
        let b = bits_per_key(fpp);
        let nbits = (b * expected.max(1) as f64).ceil().max(64.0) as u64;
        BloomFilter { bits: vec![0u64; nbits.div_ceil(64) as usize], nbits, k: optimal_k(b) }
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let h1 = hash64(key, 0x51ed_270b);
        let h2 = hash64(key, 0xb492_b66f) | 1;
        for i in 0..self.k {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.nbits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// May the filter contain `key`? False positives possible, negatives not.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let h1 = hash64(key, 0x51ed_270b);
        let h2 = hash64(key, 0xb492_b66f) | 1;
        for i in 0..self.k {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.nbits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serialize to bytes (for the component footer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.bits.len() * 8);
        out.extend_from_slice(&self.nbits.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&(self.bits.len() as u32).to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize from bytes.
    pub fn from_bytes(buf: &[u8]) -> Option<BloomFilter> {
        if buf.len() < 16 {
            return None;
        }
        let nbits = u64::from_le_bytes(buf[0..8].try_into().ok()?);
        let k = u32::from_le_bytes(buf[8..12].try_into().ok()?);
        let nwords = u32::from_le_bytes(buf[12..16].try_into().ok()?) as usize;
        if buf.len() != 16 + nwords * 8 || nbits == 0 || k == 0 {
            return None;
        }
        let mut bits = Vec::with_capacity(nwords);
        for i in 0..nwords {
            bits.push(u64::from_le_bytes(buf[16 + i * 8..24 + i * 8].try_into().ok()?));
        }
        Some(BloomFilter { bits, nbits, k })
    }

    /// Size of the serialized filter in bytes.
    pub fn byte_size(&self) -> usize {
        16 + self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        let keys: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000u32 {
            f.insert(&i.to_le_bytes());
        }
        let fp = (1000..11000u32).filter(|i| f.may_contain(&i.to_le_bytes())).count();
        // Expect ~1%; allow generous slack.
        assert!(fp < 500, "false positive count {fp} too high");
    }

    #[test]
    fn serde_roundtrip() {
        let mut f = BloomFilter::with_capacity(100, 0.05);
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes());
        }
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), f.byte_size());
        let g = BloomFilter::from_bytes(&bytes).unwrap();
        for i in 0..100u32 {
            assert!(g.may_contain(&i.to_le_bytes()));
        }
        assert!(BloomFilter::from_bytes(&bytes[..8]).is_none());
    }

    #[test]
    fn empty_filter_rejects() {
        let f = BloomFilter::with_capacity(10, 0.01);
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn sizing_follows_target() {
        // Tighter targets cost more bits and more probes.
        assert!(bits_per_key(0.001) > bits_per_key(0.01));
        assert!(optimal_k(bits_per_key(0.001)) > optimal_k(bits_per_key(0.01)));
        // ~9.6 bits/key and 7 probes at 1% — the textbook figures.
        assert!((bits_per_key(0.01) - 9.585).abs() < 0.01);
        assert_eq!(optimal_k(bits_per_key(0.01)), 7);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        /// Observed FPR stays within 2× the sizing target, at both small
        /// (1k) and large (100k) key counts. Members are i ∈ [0, n),
        /// probes i ∈ [n, n+50k) under an injective mix of `seed`, so no
        /// probe is a member and every hit is a genuine false positive.
        #[test]
        fn fpr_stays_within_twice_target(
            seed in any::<u64>(),
            fpp in prop_oneof![Just(0.05), Just(0.01), Just(0.002)],
        ) {
            for &n in &[1_000usize, 100_000] {
                let key = |i: u64| (seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes();
                let mut f = BloomFilter::with_capacity(n, fpp);
                for i in 0..n as u64 {
                    f.insert(&key(i));
                }
                let probes = 50_000u64;
                let fp =
                    (n as u64..n as u64 + probes).filter(|&i| f.may_contain(&key(i))).count();
                let observed = fp as f64 / probes as f64;
                prop_assert!(
                    observed <= 2.0 * fpp,
                    "n={n} target fpp={fpp} observed={observed}"
                );
            }
        }
    }
}
