//! Order-preserving key encoding for ADM values.
//!
//! B+-tree components store keys as byte strings compared with `memcmp`;
//! this module encodes (composite) ADM keys such that the byte order agrees
//! with [`Value::total_cmp`] for same-type keys, and with the cross-type
//! rank order otherwise.
//!
//! Numeric caveat (documented, deliberate): all numerics share one rank and
//! are encoded as a sortable `f64` followed by an exact `i64` tiebreak for
//! integers, so `int32 5` and `int64 5` encode identically while `int64 5`
//! and `double 5.0` are adjacent but distinct. Point lookups therefore
//! coerce the probe to the indexed field's declared type before encoding.
//!
//! The bit-flipping primitives and escape scheme are shared with the
//! runtime's comparison-only normalized keys in [`asterix_adm::ordkey`];
//! this module differs in keeping a width tag (keys must *decode* back to
//! their original numeric type) and in rejecting non-key types.

use asterix_adm::ordkey::{
    encode_terminated_bytes, sortable_f64, sortable_i32, sortable_i64, unsortable_f64,
    unsortable_i32, unsortable_i64, ESCAPE, ESCAPED_00,
};
use asterix_adm::value::{DurationValue, IntervalKind, IntervalValue};
use asterix_adm::{AdmError, Value};

use crate::error::{Result, StorageError};

const TERMINATOR: [u8; 2] = asterix_adm::ordkey::TERMINATOR;

/// Append the order-preserving encoding of `v` to `out`.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push(0),
        Value::Missing => out.push(1),
        Value::Boolean(b) => {
            out.push(2);
            out.push(u8::from(*b));
        }
        _ if v.is_numeric() => {
            out.push(3);
            let f = v.as_f64().unwrap();
            out.extend_from_slice(&sortable_f64(f).to_be_bytes());
            let tie = v.as_i64().unwrap_or(0);
            out.extend_from_slice(&sortable_i64(tie).to_be_bytes());
            // Width tag so decoding restores the original numeric type.
            out.push(match v {
                Value::Int8(_) => 0,
                Value::Int16(_) => 1,
                Value::Int32(_) => 2,
                Value::Int64(_) => 3,
                Value::Float(_) => 4,
                _ => 5,
            });
        }
        Value::String(s) => {
            out.push(4);
            encode_terminated_bytes(out, s.as_bytes());
        }
        Value::Date(d) => {
            out.push(5);
            out.extend_from_slice(&sortable_i32(*d).to_be_bytes());
        }
        Value::Time(t) => {
            out.push(6);
            out.extend_from_slice(&sortable_i32(*t).to_be_bytes());
        }
        Value::DateTime(t) => {
            out.push(7);
            out.extend_from_slice(&sortable_i64(*t).to_be_bytes());
        }
        Value::Duration(d) => {
            out.push(8);
            out.extend_from_slice(&sortable_i32(d.months).to_be_bytes());
            out.extend_from_slice(&sortable_i64(d.millis).to_be_bytes());
        }
        Value::YearMonthDuration(m) => {
            out.push(9);
            out.extend_from_slice(&sortable_i32(*m).to_be_bytes());
        }
        Value::DayTimeDuration(ms) => {
            out.push(10);
            out.extend_from_slice(&sortable_i64(*ms).to_be_bytes());
        }
        Value::Interval(iv) => {
            out.push(11);
            out.push(match iv.kind {
                IntervalKind::Date => 0,
                IntervalKind::Time => 1,
                IntervalKind::DateTime => 2,
            });
            out.extend_from_slice(&sortable_i64(iv.start).to_be_bytes());
            out.extend_from_slice(&sortable_i64(iv.end).to_be_bytes());
        }
        Value::Binary(b) => {
            out.push(17);
            encode_terminated_bytes(out, b);
        }
        Value::OrderedList(items) | Value::UnorderedList(items) => {
            out.push(if matches!(v, Value::OrderedList(_)) { 18 } else { 19 });
            for item in items.iter() {
                out.push(0x02); // element marker > terminator byte pair start
                encode_value(out, item)?;
            }
            out.extend_from_slice(&TERMINATOR);
        }
        other => {
            // Spatial values and records are not valid B+-tree keys; the
            // R-tree handles spatial keys.
            return Err(StorageError::Adm(AdmError::InvalidArgument(format!(
                "{} cannot be used as a B+-tree key",
                other.type_name()
            ))));
        }
    }
    Ok(())
}

/// Encode a composite key (one or more values).
pub fn encode_key(values: &[Value]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(16 * values.len());
    for v in values {
        encode_value(&mut out, v)?;
    }
    Ok(out)
}

/// Encode a single-value key.
pub fn encode_single(v: &Value) -> Result<Vec<u8>> {
    encode_key(std::slice::from_ref(v))
}

struct KeyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> KeyReader<'a> {
    fn u8(&mut self) -> Result<u8> {
        let b =
            *self.buf.get(self.pos).ok_or_else(|| StorageError::Corrupt("truncated key".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N]> {
        if self.pos + N > self.buf.len() {
            return Err(StorageError::Corrupt("truncated key".into()));
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        loop {
            let b = self.u8()?;
            if b == ESCAPE {
                let next = self.u8()?;
                match next {
                    x if x == ESCAPED_00 => out.push(ESCAPE),
                    0x01 => return Ok(out), // terminator
                    other => {
                        return Err(StorageError::Corrupt(format!(
                            "bad escape byte {other:#x} in key"
                        )))
                    }
                }
            } else {
                out.push(b);
            }
        }
    }
}

fn decode_one(r: &mut KeyReader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Missing,
        2 => Value::Boolean(r.u8()? != 0),
        3 => {
            let f = unsortable_f64(u64::from_be_bytes(r.take::<8>()?));
            let tie = unsortable_i64(u64::from_be_bytes(r.take::<8>()?));
            match r.u8()? {
                0 => Value::Int8(tie as i8),
                1 => Value::Int16(tie as i16),
                2 => Value::Int32(tie as i32),
                3 => Value::Int64(tie),
                4 => Value::Float(f as f32),
                _ => Value::Double(f),
            }
        }
        4 => {
            let bytes = r.bytes()?;
            Value::string(
                String::from_utf8(bytes)
                    .map_err(|_| StorageError::Corrupt("invalid utf8 in key".into()))?,
            )
        }
        5 => Value::Date(unsortable_i32(u32::from_be_bytes(r.take::<4>()?))),
        6 => Value::Time(unsortable_i32(u32::from_be_bytes(r.take::<4>()?))),
        7 => Value::DateTime(unsortable_i64(u64::from_be_bytes(r.take::<8>()?))),
        8 => Value::Duration(DurationValue {
            months: unsortable_i32(u32::from_be_bytes(r.take::<4>()?)),
            millis: unsortable_i64(u64::from_be_bytes(r.take::<8>()?)),
        }),
        9 => Value::YearMonthDuration(unsortable_i32(u32::from_be_bytes(r.take::<4>()?))),
        10 => Value::DayTimeDuration(unsortable_i64(u64::from_be_bytes(r.take::<8>()?))),
        11 => {
            let kind = match r.u8()? {
                0 => IntervalKind::Date,
                1 => IntervalKind::Time,
                _ => IntervalKind::DateTime,
            };
            Value::Interval(IntervalValue {
                kind,
                start: unsortable_i64(u64::from_be_bytes(r.take::<8>()?)),
                end: unsortable_i64(u64::from_be_bytes(r.take::<8>()?)),
            })
        }
        17 => Value::Binary(std::sync::Arc::from(r.bytes()?)),
        tag @ (18 | 19) => {
            let mut items = Vec::new();
            loop {
                match r.u8()? {
                    0x02 => items.push(decode_one(r)?),
                    0x00 => {
                        let n = r.u8()?;
                        if n != 0x01 {
                            return Err(StorageError::Corrupt("bad list terminator".into()));
                        }
                        break;
                    }
                    other => {
                        return Err(StorageError::Corrupt(format!("bad list marker {other:#x}")))
                    }
                }
            }
            if tag == 18 {
                Value::ordered_list(items)
            } else {
                Value::unordered_list(items)
            }
        }
        other => return Err(StorageError::Corrupt(format!("bad key tag {other}"))),
    })
}

/// Decode a composite key back into its values.
pub fn decode_key(buf: &[u8]) -> Result<Vec<Value>> {
    let mut r = KeyReader { buf, pos: 0 };
    let mut out = Vec::new();
    while r.pos < r.buf.len() {
        out.push(decode_one(&mut r)?);
    }
    Ok(out)
}

/// The smallest possible encoding ≥ every key starting with `prefix`'s
/// successor — used to build exclusive upper bounds for prefix scans.
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(&last) = out.last() {
        if last == 0xFF {
            out.pop();
        } else {
            *out.last_mut().unwrap() += 1;
            return Some(out);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::value::Point;

    fn enc(v: &Value) -> Vec<u8> {
        encode_single(v).unwrap()
    }

    #[test]
    fn ordering_matches_total_cmp_within_types() {
        let groups: Vec<Vec<Value>> = vec![
            vec![
                Value::Int64(i64::MIN),
                Value::Int64(-100),
                Value::Int64(-1),
                Value::Int64(0),
                Value::Int64(1),
                Value::Int64(42),
                Value::Int64(i64::MAX / 2),
            ],
            vec![
                Value::Double(f64::NEG_INFINITY),
                Value::Double(-1.5),
                Value::Double(-0.0),
                Value::Double(0.25),
                Value::Double(1e10),
                Value::Double(f64::INFINITY),
            ],
            vec![
                Value::string(""),
                Value::string("a"),
                Value::string("a\u{0}b"),
                Value::string("ab"),
                Value::string("b"),
                Value::string("ba"),
            ],
            vec![Value::Date(-10), Value::Date(0), Value::Date(100)],
            vec![Value::DateTime(-5), Value::DateTime(0), Value::DateTime(999)],
            vec![Value::Boolean(false), Value::Boolean(true)],
        ];
        for group in groups {
            for a in &group {
                for b in &group {
                    let ka = enc(a);
                    let kb = enc(b);
                    assert_eq!(ka.cmp(&kb), a.total_cmp(b), "byte order disagrees for {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn mixed_numerics_sort_correctly() {
        let vals = [
            Value::Int32(-5),
            Value::Double(-4.5),
            Value::Int64(0),
            Value::Double(0.5),
            Value::Int32(1),
            Value::Int64(1000),
        ];
        for w in vals.windows(2) {
            assert!(enc(&w[0]) < enc(&w[1]), "{} !< {}", w[0], w[1]);
        }
        // Same numeric value in different int widths encodes identically up
        // to the width byte, so lookups after coercion hit.
        let a = enc(&Value::Int32(7));
        let b = enc(&Value::Int64(7));
        assert_eq!(a[..a.len() - 1], b[..b.len() - 1]);
    }

    #[test]
    fn string_escaping_preserves_prefix_order() {
        // "a\0" sorts after "a" and before "b".
        let a = enc(&Value::string("a"));
        let a0 = enc(&Value::string("a\u{0}"));
        let b = enc(&Value::string("b"));
        assert!(a < a0, "a !< a\\0");
        assert!(a0 < b);
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let k1 = encode_key(&[Value::string("alice"), Value::Int64(1)]).unwrap();
        let k2 = encode_key(&[Value::string("alice"), Value::Int64(2)]).unwrap();
        let k3 = encode_key(&[Value::string("bob"), Value::Int64(0)]).unwrap();
        assert!(k1 < k2);
        assert!(k2 < k3);
    }

    #[test]
    fn roundtrip() {
        let keys = vec![
            vec![Value::Int32(5), Value::string("x")],
            vec![Value::DateTime(123456789)],
            vec![Value::string("hello\u{0}world")],
            vec![Value::Boolean(true), Value::Null],
            vec![Value::ordered_list(vec![Value::Int64(1), Value::string("a")])],
            vec![Value::Binary(std::sync::Arc::from(vec![0u8, 1, 255]))],
            vec![Value::Double(3.25), Value::Float(1.5)],
        ];
        for k in keys {
            let bytes = encode_key(&k).unwrap();
            let back = decode_key(&bytes).unwrap();
            assert_eq!(k.len(), back.len());
            for (a, b) in k.iter().zip(back.iter()) {
                assert_eq!(a.total_cmp(b), std::cmp::Ordering::Equal, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn spatial_rejected() {
        assert!(encode_single(&Value::Point(Point::new(1.0, 2.0))).is_err());
    }

    #[test]
    fn prefix_successor_bounds() {
        let p = vec![1, 2, 3];
        assert_eq!(prefix_successor(&p).unwrap(), vec![1, 2, 4]);
        let p = vec![1, 0xFF];
        assert_eq!(prefix_successor(&p).unwrap(), vec![2]);
        let p = vec![0xFF, 0xFF];
        assert_eq!(prefix_successor(&p), None);
    }

    #[test]
    fn date_key_ordering_across_sign() {
        assert!(enc(&Value::Date(-1)) < enc(&Value::Date(0)));
        assert!(enc(&Value::DateTime(-1)) < enc(&Value::DateTime(1)));
    }
}
