//! The LSM B+-tree: a typed wrapper over the LSM framework keyed by ADM
//! values through the order-preserving key codec.
//!
//! Two usage patterns, matching §2.2:
//! * **Primary index**: key = primary-key value(s), payload = the encoded
//!   record. Every Dataset is stored this way.
//! * **Secondary index**: key = (secondary-key value(s), primary-key
//!   value(s)), payload empty. Lookups and range scans return the primary
//!   keys, which are then sorted and used to probe the primary index
//!   (Figure 6's plan shape).

use std::ops::Bound;
use std::path::Path;
use std::sync::Arc;

use asterix_adm::Value;

use crate::cache::BufferCache;
use crate::error::Result;
use crate::keycodec::{decode_key, encode_key, prefix_successor};
use crate::lsm::{LsmConfig, LsmObserver, LsmTree};

/// A bound for a value-typed range scan.
#[derive(Debug, Clone)]
pub enum ValueBound {
    Unbounded,
    Included(Vec<Value>),
    Excluded(Vec<Value>),
}

impl ValueBound {
    pub fn included(v: Value) -> Self {
        ValueBound::Included(vec![v])
    }

    pub fn excluded(v: Value) -> Self {
        ValueBound::Excluded(vec![v])
    }
}

/// An LSM B+-tree over ADM keys.
pub struct LsmBTree {
    tree: LsmTree,
    /// Number of leading key fields that form the indexed (searchable) part;
    /// for secondary indexes the remaining fields are the primary key.
    key_arity: usize,
}

impl LsmBTree {
    /// Open (or create) a B+-tree at `dir`. `key_arity` is the number of
    /// searchable leading key fields.
    pub fn open(
        dir: &Path,
        key_arity: usize,
        cfg: LsmConfig,
        cache: Arc<BufferCache>,
        observer: Arc<dyn LsmObserver>,
    ) -> Result<LsmBTree> {
        Ok(LsmBTree { tree: LsmTree::open(dir, cfg, cache, observer)?, key_arity })
    }

    /// The underlying LSM tree (flush/merge/stat access).
    pub fn lsm(&self) -> &LsmTree {
        &self.tree
    }

    /// Insert `key → value`.
    pub fn insert(&self, key: &[Value], value: Vec<u8>) -> Result<()> {
        self.tree.insert(encode_key(key)?, value)
    }

    /// Delete by exact key.
    pub fn delete(&self, key: &[Value]) -> Result<()> {
        self.tree.delete(encode_key(key)?)
    }

    /// Exact-key point lookup.
    pub fn get(&self, key: &[Value]) -> Result<Option<Vec<u8>>> {
        self.tree.get(&encode_key(key)?)
    }

    fn encode_bound_lo(&self, b: &ValueBound) -> Result<Option<Vec<u8>>> {
        Ok(match b {
            ValueBound::Unbounded => None,
            ValueBound::Included(vs) => Some(encode_key(vs)?),
            ValueBound::Excluded(vs) => {
                // Lower-exclusive: skip every key equal to or prefixed by vs.
                let enc = encode_key(vs)?;
                prefix_successor(&enc)
            }
        })
    }

    fn encode_bound_hi(&self, b: &ValueBound) -> Result<Option<Vec<u8>>> {
        Ok(match b {
            ValueBound::Unbounded => None,
            ValueBound::Included(vs) => {
                // Upper-inclusive over a (possibly partial) key prefix: the
                // exclusive byte bound is the successor of the prefix.
                let enc = encode_key(vs)?;
                prefix_successor(&enc)
            }
            ValueBound::Excluded(vs) => Some(encode_key(vs)?),
        })
    }

    /// Range scan; yields `(decoded key values, payload)` in key order.
    /// Bounds apply to the leading (searchable) key fields, so a partial
    /// bound over a composite key behaves as a prefix range.
    pub fn range(&self, lo: &ValueBound, hi: &ValueBound) -> Result<Vec<(Vec<Value>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.range_with(lo, hi, |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Streaming range scan; callback returns `false` to stop early.
    pub fn range_with(
        &self,
        lo: &ValueBound,
        hi: &ValueBound,
        mut f: impl FnMut(&[Value], &[u8]) -> bool,
    ) -> Result<()> {
        let lo_b = self.encode_bound_lo(lo)?;
        let hi_b = self.encode_bound_hi(hi)?;
        // An unrepresentable upper bound (all-0xFF prefix) falls back to an
        // unbounded scan with a decoded-value check; in practice encoded
        // keys never begin with runs of 0xFF, so this path is theoretical.
        let mut err = None;
        self.tree.scan_with(lo_b.as_deref(), hi_b.as_deref(), |k, v| match decode_key(k) {
            Ok(vals) => f(&vals, v),
            Err(e) => {
                err = Some(e);
                false
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Exact-match scan over the searchable key prefix: for a secondary
    /// index this returns every `(full key, payload)` whose leading
    /// `key_arity` fields equal `probe` — i.e. all primary keys matching a
    /// secondary key.
    pub fn prefix_lookup(&self, probe: &[Value]) -> Result<Vec<Vec<Value>>> {
        let lo = ValueBound::Included(probe.to_vec());
        let hi = ValueBound::Included(probe.to_vec());
        let mut out = Vec::new();
        self.range_with(&lo, &hi, |k, _| {
            out.push(k.to_vec());
            true
        })?;
        Ok(out)
    }

    /// For a secondary-index entry key, split into (secondary part, primary
    /// part) per the declared arity.
    pub fn split_key<'a>(&self, full: &'a [Value]) -> (&'a [Value], &'a [Value]) {
        let n = self.key_arity.min(full.len());
        full.split_at(n)
    }

    /// Range scan returning raw encoded byte bounds (used by engine code
    /// that wants the native Bound API).
    pub fn raw_scan(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        let lo_v: Option<Vec<u8>> = match lo {
            Bound::Unbounded => None,
            Bound::Included(b) => Some(b.to_vec()),
            Bound::Excluded(b) => prefix_successor(b),
        };
        let hi_v: Option<Vec<u8>> = match hi {
            Bound::Unbounded => None,
            Bound::Included(b) => prefix_successor(b),
            Bound::Excluded(b) => Some(b.to_vec()),
        };
        self.tree.scan_with(lo_v.as_deref(), hi_v.as_deref(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsm::{MergePolicy, NullObserver};
    use tempfile::TempDir;

    fn open(dir: &Path, arity: usize) -> LsmBTree {
        LsmBTree::open(
            dir,
            arity,
            LsmConfig {
                mem_budget: 1 << 20,
                page_size: 512,
                bloom_fpp: 0.01,
                merge_policy: MergePolicy::NoMerge,
                max_frozen: 2,
                columnar: None,
            },
            BufferCache::new(128),
            Arc::new(NullObserver),
        )
        .unwrap()
    }

    #[test]
    fn primary_index_pattern() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), 1);
        for i in 0..100i64 {
            t.insert(&[Value::Int64(i)], format!("rec{i}").into_bytes()).unwrap();
        }
        t.lsm().flush().unwrap();
        assert_eq!(t.get(&[Value::Int64(42)]).unwrap(), Some(b"rec42".to_vec()));
        assert_eq!(t.get(&[Value::Int64(1000)]).unwrap(), None);
        let r = t
            .range(&ValueBound::included(Value::Int64(10)), &ValueBound::excluded(Value::Int64(15)))
            .unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].0, vec![Value::Int64(10)]);
        // Inclusive upper bound.
        let r = t
            .range(&ValueBound::included(Value::Int64(10)), &ValueBound::included(Value::Int64(15)))
            .unwrap();
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn secondary_index_pattern() {
        let dir = TempDir::new().unwrap();
        // Secondary key = (author-id), full key = (author-id, message-id).
        let t = open(dir.path(), 1);
        for mid in 0..60i64 {
            let author = mid % 3;
            t.insert(&[Value::Int64(author), Value::Int64(mid)], Vec::new()).unwrap();
        }
        let hits = t.prefix_lookup(&[Value::Int64(1)]).unwrap();
        assert_eq!(hits.len(), 20);
        for k in &hits {
            let (sk, pk) = t.split_key(k);
            assert_eq!(sk, &[Value::Int64(1)]);
            assert_eq!(pk.len(), 1);
            assert_eq!(pk[0].as_i64().unwrap() % 3, 1);
        }
    }

    #[test]
    fn datetime_range_scan_like_query2() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), 1);
        // Index on user-since datetime; entries (ts, user-id).
        for i in 0..1000i64 {
            t.insert(&[Value::DateTime(i * 1000), Value::Int64(i)], Vec::new()).unwrap();
        }
        t.lsm().flush().unwrap();
        let r = t
            .range(
                &ValueBound::included(Value::DateTime(100_000)),
                &ValueBound::included(Value::DateTime(110_000)),
            )
            .unwrap();
        assert_eq!(r.len(), 11);
    }

    #[test]
    fn delete_and_exclusive_lower() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), 1);
        for i in 0..10i64 {
            t.insert(&[Value::Int64(i)], vec![1]).unwrap();
        }
        t.delete(&[Value::Int64(5)]).unwrap();
        assert_eq!(t.get(&[Value::Int64(5)]).unwrap(), None);
        let r = t.range(&ValueBound::excluded(Value::Int64(3)), &ValueBound::Unbounded).unwrap();
        let keys: Vec<i64> = r.iter().map(|(k, _)| k[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![4, 6, 7, 8, 9]);
    }

    #[test]
    fn string_keys() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), 1);
        for name in ["alice", "bob", "carol", "dave"] {
            t.insert(&[Value::string(name)], name.as_bytes().to_vec()).unwrap();
        }
        let r = t
            .range(
                &ValueBound::included(Value::string("b")),
                &ValueBound::excluded(Value::string("d")),
            )
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].1, b"bob");
        assert_eq!(r[1].1, b"carol");
    }
}
