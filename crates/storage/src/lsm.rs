//! The LSM-ification framework (§4.3).
//!
//! [`LsmTree`] converts an in-place-update index discipline into a
//! deferred-update, append-only one: writes land in an in-memory component;
//! when its budget is exceeded the component is flushed to an immutable disk
//! component; disk components are periodically merged per a
//! [`MergePolicy`]. Deletes are antimatter entries. This harness backs the
//! LSM B+-tree directly and (through composite keys) the inverted indexes;
//! the R-tree has its own spatially-organized variant sharing the same
//! component lifecycle.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::component::{ComponentConfig, DiskComponent, Entry};
use crate::cache::BufferCache;
use crate::error::Result;

/// When and what to merge (§4.3 "subject to some merge policy").
#[derive(Debug, Clone)]
pub enum MergePolicy {
    /// Never merge — flushes accumulate (useful for tests and ablations).
    NoMerge,
    /// Keep at most `max` disk components; when exceeded, merge all of them
    /// into one (AsterixDB's "constant" policy).
    Constant { max: usize },
    /// AsterixDB's "prefix" policy: merge the longest prefix of (newest →
    /// oldest) components whose combined size is below
    /// `max_mergable_size` once more than `max_tolerance` such components
    /// accumulate.
    Prefix { max_mergable_size: u64, max_tolerance: usize },
}

impl Default for MergePolicy {
    fn default() -> Self {
        MergePolicy::Prefix { max_mergable_size: 64 << 20, max_tolerance: 4 }
    }
}

/// LSM tuning knobs.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// In-memory component budget in bytes before an automatic flush.
    pub mem_budget: usize,
    pub page_size: usize,
    pub bloom_fpp: f64,
    pub merge_policy: MergePolicy,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            mem_budget: 4 << 20,
            page_size: crate::cache::PAGE_SIZE,
            bloom_fpp: 0.01,
            merge_policy: MergePolicy::default(),
        }
    }
}

#[derive(Debug, Clone)]
struct MemEntry {
    antimatter: bool,
    value: Vec<u8>,
}

struct LsmState {
    mem: BTreeMap<Vec<u8>, MemEntry>,
    mem_bytes: usize,
    /// An immutable memory component currently being flushed; readers
    /// consult it between `mem` and `disk` so no window exists in which
    /// flushed-but-not-yet-installed data is invisible.
    flushing: Option<Arc<BTreeMap<Vec<u8>, MemEntry>>>,
    /// Disk components, newest first.
    disk: Vec<Arc<DiskComponent>>,
    next_seq: u64,
}

/// Lifecycle events surfaced to the transaction/recovery layer.
pub trait LsmObserver: Send + Sync {
    /// A flush produced `component_path` covering flush sequences up to and
    /// including `max_seq`.
    fn on_flush(&self, _component_path: &Path, _max_seq: u64) {}
    /// A merge replaced `inputs` with `output`.
    fn on_merge(&self, _inputs: &[PathBuf], _output: &Path) {}
}

/// No-op observer.
pub struct NullObserver;
impl LsmObserver for NullObserver {}

/// An LSM index over byte-string keys.
pub struct LsmTree {
    dir: PathBuf,
    cfg: LsmConfig,
    cache: Arc<BufferCache>,
    state: RwLock<LsmState>,
    /// Serializes whole flush operations.
    flush_lock: Mutex<()>,
    observer: Arc<dyn LsmObserver>,
}

impl LsmTree {
    /// Create or reopen an LSM tree rooted at `dir`. Invalid (crash-orphaned)
    /// components are garbage-collected; valid ones are reopened.
    pub fn open(
        dir: &Path,
        cfg: LsmConfig,
        cache: Arc<BufferCache>,
        observer: Arc<dyn LsmObserver>,
    ) -> Result<LsmTree> {
        std::fs::create_dir_all(dir)?;
        let valid = DiskComponent::scavenge_dir(dir)?;
        let mut disk: Vec<Arc<DiskComponent>> = Vec::with_capacity(valid.len());
        for path in valid {
            disk.push(DiskComponent::open(&path, Arc::clone(&cache))?);
        }
        // Newest first: components are named c_<min>_<max>.dat with
        // zero-padded sequence numbers, so path sort order is seq order.
        disk.sort_by_key(|c| std::cmp::Reverse(c.max_seq));
        let next_seq = disk.iter().map(|c| c.max_seq + 1).max().unwrap_or(0);
        Ok(LsmTree {
            dir: dir.to_path_buf(),
            cfg,
            cache,
            state: RwLock::new(LsmState {
                mem: BTreeMap::new(),
                mem_bytes: 0,
                flushing: None,
                disk,
                next_seq,
            }),
            flush_lock: Mutex::new(()),
            observer,
        })
    }

    /// Root directory of this index.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_overhead(key: &[u8], value: &[u8]) -> usize {
        key.len() + value.len() + 48
    }

    /// Insert or overwrite (upsert) a key. Automatically flushes when the
    /// memory budget is exceeded.
    pub fn insert(&self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        self.write(key, MemEntry { antimatter: false, value })
    }

    /// Delete a key by writing an antimatter entry.
    pub fn delete(&self, key: Vec<u8>) -> Result<()> {
        self.write(key, MemEntry { antimatter: true, value: Vec::new() })
    }

    fn write(&self, key: Vec<u8>, entry: MemEntry) -> Result<()> {
        let needs_flush = {
            let mut st = self.state.write();
            st.mem_bytes += Self::entry_overhead(&key, &entry.value);
            if let Some(old) = st.mem.insert(key, entry) {
                st.mem_bytes = st.mem_bytes.saturating_sub(old.value.len());
            }
            st.mem_bytes >= self.cfg.mem_budget
        };
        if needs_flush {
            self.flush()?;
        }
        Ok(())
    }

    /// Point lookup: memory first, then disk components newest → oldest,
    /// with bloom filters pruning component probes.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let st = self.state.read();
        if let Some(e) = st.mem.get(key) {
            return Ok(if e.antimatter { None } else { Some(e.value.clone()) });
        }
        if let Some(fl) = &st.flushing {
            if let Some(e) = fl.get(key) {
                return Ok(if e.antimatter { None } else { Some(e.value.clone()) });
            }
        }
        for comp in &st.disk {
            if let Some(e) = comp.get(key)? {
                return Ok(if e.antimatter { None } else { Some(e.value) });
            }
        }
        Ok(None)
    }

    /// Does the key exist (non-antimatter)?
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Merged range scan over `[lo, hi)`; resolves antimatter so only live
    /// entries are yielded, in ascending key order.
    pub fn scan(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan_with(lo, hi, |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Streaming variant of [`LsmTree::scan`]: the callback returns `false` to stop
    /// early (used by LIMIT evaluation).
    pub fn scan_with(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        let st = self.state.read();
        // Source 0 is the memory component (highest priority), then disk
        // components newest → oldest.
        let mem_range = st.mem.range::<[u8], _>((
            lo.map_or(Bound::Unbounded, Bound::Included),
            hi.map_or(Bound::Unbounded, Bound::Excluded),
        ));
        let mut mem_iter = mem_range.map(|(k, v)| Entry {
            key: k.clone(),
            antimatter: v.antimatter,
            value: v.value.clone(),
        });
        // The flushing component (if any) sits between memory and disk in
        // recency; its relevant range is materialized (bounded by the
        // memory budget).
        let flushing_entries: Vec<Entry> = match &st.flushing {
            Some(fl) => fl
                .range::<[u8], _>((
                    lo.map_or(Bound::Unbounded, Bound::Included),
                    hi.map_or(Bound::Unbounded, Bound::Excluded),
                ))
                .map(|(k, v)| Entry {
                    key: k.clone(),
                    antimatter: v.antimatter,
                    value: v.value.clone(),
                })
                .collect(),
            None => Vec::new(),
        };
        let mut flushing_iter = flushing_entries.into_iter();
        let mut disk_iters: Vec<crate::component::ComponentIter> =
            st.disk.iter().map(|c| c.range(lo, hi)).collect();
        // A heads array implementing a k-way merge by (key, priority):
        // source 0 is the memory component, source 1 the flushing
        // component, then disk newest → oldest.
        let mut heads: Vec<Option<Entry>> = Vec::with_capacity(2 + disk_iters.len());
        heads.push(mem_iter.next());
        heads.push(flushing_iter.next());
        for it in &mut disk_iters {
            heads.push(it.next());
        }
        loop {
            // Find the smallest key; among equals the lowest source index
            // (newest data) wins.
            let mut best: Option<(usize, &[u8])> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(e) = h {
                    match best {
                        None => best = Some((i, &e.key)),
                        Some((_, bk)) if e.key.as_slice() < bk => best = Some((i, &e.key)),
                        _ => {}
                    }
                }
            }
            let Some((winner, _)) = best else { break };
            let entry = heads[winner].take().unwrap();
            // Advance the winner and every source holding the same key
            // (older duplicates are shadowed and must be skipped).
            let mut advance = |i: usize, heads: &mut Vec<Option<Entry>>| {
                heads[i] = match i {
                    0 => mem_iter.next(),
                    1 => flushing_iter.next(),
                    _ => disk_iters[i - 2].next(),
                };
            };
            advance(winner, &mut heads);
            for i in 0..heads.len() {
                loop {
                    let same = matches!(&heads[i], Some(e) if e.key == entry.key);
                    if !same {
                        break;
                    }
                    advance(i, &mut heads);
                }
            }
            if !entry.antimatter && !f(&entry.key, &entry.value) {
                break;
            }
        }
        for mut it in disk_iters {
            if let Some(e) = it.take_error() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Count of live entries (scan-based; used by tests and stats).
    pub fn live_count(&self) -> Result<usize> {
        let mut n = 0;
        self.scan_with(None, None, |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// Force-flush the in-memory component to disk. No-op when empty.
    /// Readers see the data throughout: it moves memory → flushing
    /// component → installed disk component without a visibility gap.
    pub fn flush(&self) -> Result<Option<PathBuf>> {
        let _serialize = self.flush_lock.lock();
        let (snapshot, seq) = {
            let mut st = self.state.write();
            if st.mem.is_empty() {
                return Ok(None);
            }
            let mem = std::mem::take(&mut st.mem);
            st.mem_bytes = 0;
            let snapshot = Arc::new(mem);
            st.flushing = Some(Arc::clone(&snapshot));
            let seq = st.next_seq;
            st.next_seq += 1;
            (snapshot, seq)
        };
        let path = self.dir.join(format!("c_{seq:012}_{seq:012}.dat"));
        let n = snapshot.len();
        let comp = DiskComponent::build(
            &path,
            Arc::clone(&self.cache),
            &ComponentConfig { page_size: self.cfg.page_size, bloom_fpp: self.cfg.bloom_fpp },
            seq,
            seq,
            snapshot.iter().map(|(k, v)| Entry {
                key: k.clone(),
                antimatter: v.antimatter,
                value: v.value.clone(),
            }),
            n,
        )?;
        {
            let mut st = self.state.write();
            st.disk.insert(0, comp);
            st.flushing = None;
        }
        self.observer.on_flush(&path, seq);
        self.maybe_merge()?;
        Ok(Some(path))
    }

    /// Apply the merge policy; merges synchronously when triggered.
    pub fn maybe_merge(&self) -> Result<()> {
        let to_merge: Vec<Arc<DiskComponent>> = {
            let st = self.state.read();
            match &self.cfg.merge_policy {
                MergePolicy::NoMerge => Vec::new(),
                MergePolicy::Constant { max } => {
                    if st.disk.len() > *max {
                        st.disk.clone()
                    } else {
                        Vec::new()
                    }
                }
                MergePolicy::Prefix { max_mergable_size, max_tolerance } => {
                    // Longest prefix of newest components under the size cap.
                    let mut acc = 0u64;
                    let mut prefix = Vec::new();
                    for c in &st.disk {
                        if acc + c.file_len() > *max_mergable_size {
                            break;
                        }
                        acc += c.file_len();
                        prefix.push(Arc::clone(c));
                    }
                    if prefix.len() > *max_tolerance {
                        prefix
                    } else {
                        Vec::new()
                    }
                }
            }
        };
        if to_merge.len() < 2 {
            return Ok(());
        }
        self.merge_components(&to_merge)
    }

    /// Merge all current disk components into one (manual full merge).
    pub fn merge_all(&self) -> Result<()> {
        let comps = self.state.read().disk.clone();
        if comps.len() < 2 {
            return Ok(());
        }
        self.merge_components(&comps)
    }

    fn merge_components(&self, inputs: &[Arc<DiskComponent>]) -> Result<()> {
        let min_seq = inputs.iter().map(|c| c.min_seq).min().unwrap();
        let max_seq = inputs.iter().map(|c| c.max_seq).max().unwrap();
        // Whether the merge includes the oldest on-disk data; if so,
        // antimatter entries can be dropped entirely.
        let includes_oldest = {
            let st = self.state.read();
            st.disk.iter().map(|c| c.min_seq).min() == Some(min_seq)
        };
        // K-way merge, newest (lowest index in st.disk order) wins.
        let mut iters: Vec<_> = inputs.iter().map(|c| c.range(None, None)).collect();
        let mut heads: Vec<Option<Entry>> = iters.iter_mut().map(|i| i.next()).collect();
        let mut merged: Vec<Entry> = Vec::new();
        loop {
            let mut best: Option<(usize, &[u8], u64)> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(e) = h {
                    let seq = inputs[i].max_seq;
                    match best {
                        None => best = Some((i, &e.key, seq)),
                        Some((_, bk, bseq)) => {
                            if e.key.as_slice() < bk
                                || (e.key.as_slice() == bk && seq > bseq)
                            {
                                best = Some((i, &e.key, seq));
                            }
                        }
                    }
                }
            }
            let Some((winner, _, _)) = best else { break };
            let entry = heads[winner].take().unwrap();
            heads[winner] = iters[winner].next();
            for i in 0..heads.len() {
                loop {
                    let same = matches!(&heads[i], Some(e) if e.key == entry.key);
                    if !same {
                        break;
                    }
                    heads[i] = iters[i].next();
                }
            }
            if entry.antimatter && includes_oldest {
                continue; // fully compacted away
            }
            merged.push(entry);
        }
        for mut it in iters {
            if let Some(e) = it.take_error() {
                return Err(e);
            }
        }
        let out_path = self.dir.join(format!("c_{min_seq:012}_{max_seq:012}.dat"));
        let n = merged.len();
        let comp = DiskComponent::build(
            &out_path,
            Arc::clone(&self.cache),
            &ComponentConfig { page_size: self.cfg.page_size, bloom_fpp: self.cfg.bloom_fpp },
            min_seq,
            max_seq,
            merged,
            n,
        )?;
        // Atomically swap the component list, then destroy the inputs.
        let input_paths: Vec<PathBuf> =
            inputs.iter().map(|c| c.path().to_path_buf()).collect();
        {
            let mut st = self.state.write();
            st.disk.retain(|c| !input_paths.contains(&c.path().to_path_buf()));
            let pos = st.disk.partition_point(|c| c.max_seq > max_seq);
            st.disk.insert(pos, comp);
        }
        for c in inputs {
            c.destroy()?;
        }
        self.observer.on_merge(&input_paths, &out_path);
        Ok(())
    }

    /// Number of disk components (for tests/stats).
    pub fn disk_component_count(&self) -> usize {
        self.state.read().disk.len()
    }

    /// Total bytes across disk components plus the memory component —
    /// Table 2's storage-size metric.
    pub fn size_bytes(&self) -> u64 {
        let st = self.state.read();
        st.disk.iter().map(|c| c.file_len()).sum::<u64>() + st.mem_bytes as u64
    }

    /// In-memory component size in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.state.read().mem_bytes
    }

    /// Drop everything (dataset drop): removes the directory.
    pub fn destroy(self) -> Result<()> {
        let st = self.state.into_inner();
        drop(st);
        std::fs::remove_dir_all(&self.dir)?;
        Ok(())
    }

    /// Discard the in-memory component (crash simulation for recovery
    /// tests: memory is lost, disk components survive).
    pub fn simulate_crash_lose_memory(&self) {
        let mut st = self.state.write();
        st.mem.clear();
        st.mem_bytes = 0;
        st.flushing = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn open(dir: &Path, policy: MergePolicy, budget: usize) -> LsmTree {
        LsmTree::open(
            dir,
            LsmConfig {
                mem_budget: budget,
                page_size: 512,
                bloom_fpp: 0.01,
                merge_policy: policy,
            },
            BufferCache::new(256),
            Arc::new(NullObserver),
        )
        .unwrap()
    }

    fn k(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_delete_in_memory() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        t.insert(k(1), b"a".to_vec()).unwrap();
        t.insert(k(2), b"b".to_vec()).unwrap();
        assert_eq!(t.get(&k(1)).unwrap(), Some(b"a".to_vec()));
        t.delete(k(1)).unwrap();
        assert_eq!(t.get(&k(1)).unwrap(), None);
        assert_eq!(t.get(&k(2)).unwrap(), Some(b"b".to_vec()));
        assert_eq!(t.live_count().unwrap(), 1);
    }

    #[test]
    fn flush_and_read_back() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        for i in 0..100 {
            t.insert(k(i), vec![i as u8]).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.disk_component_count(), 1);
        assert_eq!(t.mem_bytes(), 0);
        for i in 0..100 {
            assert_eq!(t.get(&k(i)).unwrap(), Some(vec![i as u8]));
        }
    }

    #[test]
    fn newest_component_wins() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        t.insert(k(5), b"old".to_vec()).unwrap();
        t.flush().unwrap();
        t.insert(k(5), b"new".to_vec()).unwrap();
        t.flush().unwrap();
        assert_eq!(t.get(&k(5)).unwrap(), Some(b"new".to_vec()));
        // Delete shadows both.
        t.delete(k(5)).unwrap();
        t.flush().unwrap();
        assert_eq!(t.get(&k(5)).unwrap(), None);
        let all = t.scan(None, None).unwrap();
        assert!(all.is_empty());
    }

    #[test]
    fn scan_merges_components() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        for i in (0..50).step_by(2) {
            t.insert(k(i), b"even".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in (1..50).step_by(2) {
            t.insert(k(i), b"odd".to_vec()).unwrap();
        }
        // Half in memory, half on disk.
        let all = t.scan(None, None).unwrap();
        assert_eq!(all.len(), 50);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        let some = t.scan(Some(&k(10)), Some(&k(20))).unwrap();
        assert_eq!(some.len(), 10);
    }

    #[test]
    fn auto_flush_on_budget() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 2048);
        for i in 0..200 {
            t.insert(k(i), vec![0u8; 32]).unwrap();
        }
        assert!(t.disk_component_count() >= 2, "expected multiple auto-flushes");
        assert_eq!(t.live_count().unwrap(), 200);
    }

    #[test]
    fn constant_merge_policy_caps_components() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::Constant { max: 3 }, 1 << 20);
        for round in 0..8u32 {
            for i in 0..20 {
                t.insert(k(round * 100 + i), vec![round as u8]).unwrap();
            }
            t.flush().unwrap();
        }
        assert!(t.disk_component_count() <= 4, "got {}", t.disk_component_count());
        assert_eq!(t.live_count().unwrap(), 160);
    }

    #[test]
    fn merge_drops_tombstones_when_covering_oldest() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        for i in 0..10 {
            t.insert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 0..5 {
            t.delete(k(i)).unwrap();
        }
        t.flush().unwrap();
        t.merge_all().unwrap();
        assert_eq!(t.disk_component_count(), 1);
        assert_eq!(t.live_count().unwrap(), 5);
        // After a full merge, antimatter is gone: the single component holds
        // exactly the live entries.
        let st = t.state.read();
        assert_eq!(st.disk[0].entry_count(), 5);
    }

    #[test]
    fn reopen_recovers_disk_state() {
        let dir = TempDir::new().unwrap();
        {
            let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
            for i in 0..30 {
                t.insert(k(i), vec![1]).unwrap();
            }
            t.flush().unwrap();
            t.insert(k(100), vec![2]).unwrap(); // stays in memory, lost
            t.simulate_crash_lose_memory();
        }
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        assert_eq!(t.live_count().unwrap(), 30);
        assert_eq!(t.get(&k(100)).unwrap(), None);
        // New writes get fresh sequence numbers beyond recovered ones.
        t.insert(k(200), vec![3]).unwrap();
        t.flush().unwrap();
        assert_eq!(t.get(&k(200)).unwrap(), Some(vec![3]));
    }

    #[test]
    fn prefix_merge_policy_triggers() {
        let dir = TempDir::new().unwrap();
        let t = open(
            dir.path(),
            MergePolicy::Prefix { max_mergable_size: 1 << 20, max_tolerance: 2 },
            1 << 20,
        );
        for round in 0..5u32 {
            for i in 0..10 {
                t.insert(k(round * 100 + i), vec![0u8; 16]).unwrap();
            }
            t.flush().unwrap();
        }
        assert!(t.disk_component_count() <= 3, "got {}", t.disk_component_count());
        assert_eq!(t.live_count().unwrap(), 50);
    }

    #[test]
    fn early_exit_scan() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        for i in 0..100 {
            t.insert(k(i), vec![0]).unwrap();
        }
        let mut seen = 0;
        t.scan_with(None, None, |_, _| {
            seen += 1;
            seen < 10
        })
        .unwrap();
        assert_eq!(seen, 10);
    }
}
