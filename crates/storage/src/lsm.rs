//! The LSM-ification framework (§4.3).
//!
//! [`LsmTree`] converts an in-place-update index discipline into a
//! deferred-update, append-only one: writes land in an in-memory component;
//! when its budget is exceeded the component is **sealed** and handed to a
//! per-tree background maintenance thread that builds the immutable disk
//! component and applies the [`MergePolicy`] — the write path never waits
//! for flush or merge I/O (§4.2's non-stalling ingest). Readers consult the
//! mutable component, then sealed-but-unflushed components newest → oldest,
//! then disk components, so no visibility gap exists at any point of the
//! flush pipeline. Deletes are antimatter entries. This harness backs the
//! LSM B+-tree directly and (through composite keys) the inverted indexes;
//! the R-tree has its own spatially-organized variant sharing the same
//! component lifecycle.
//!
//! Background I/O failures are *deferred*: they surface as the error of the
//! next write, [`LsmTree::flush`], or [`LsmTree::close`] call, mirroring
//! how a real engine reports asynchronous flush failures.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asterix_obs::{log_event, now_us, Counter, Gauge, Histogram, MetricsRegistry, TraceContext};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::cache::BufferCache;
use crate::columnar::{ColumnarOptions, Projection};
use crate::component::{ComponentConfig, DiskComponent, Entry, ProjEntry, ProjKind};
use crate::error::{Result, StorageError};

/// When and what to merge (§4.3 "subject to some merge policy").
#[derive(Debug, Clone)]
pub enum MergePolicy {
    /// Never merge — flushes accumulate (useful for tests and ablations).
    NoMerge,
    /// Keep at most `max` disk components; when exceeded, merge all of them
    /// into one (AsterixDB's "constant" policy).
    Constant { max: usize },
    /// AsterixDB's "prefix" policy: merge the longest prefix of (newest →
    /// oldest) components whose combined size is below
    /// `max_mergable_size` once more than `max_tolerance` such components
    /// accumulate.
    Prefix { max_mergable_size: u64, max_tolerance: usize },
}

impl Default for MergePolicy {
    fn default() -> Self {
        MergePolicy::Prefix { max_mergable_size: 64 << 20, max_tolerance: 4 }
    }
}

/// LSM tuning knobs.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// In-memory component budget in bytes before an automatic flush.
    pub mem_budget: usize,
    pub page_size: usize,
    pub bloom_fpp: f64,
    pub merge_policy: MergePolicy,
    /// How many sealed in-memory components may queue for background
    /// flushing before writers block (AsterixDB keeps a small fixed pool of
    /// memory components per index). Bounds write-path memory to roughly
    /// `(1 + max_frozen) × mem_budget`.
    pub max_frozen: usize,
    /// Columnar storage for this tree's values: flushes and merges infer a
    /// schema from the sealed rows and build column-major components when
    /// the data is stable enough (row layout remains the fallback). `None`
    /// keeps the tree purely row-oriented. Note the `enabled` flag inside:
    /// a tree that ever built columnar components must keep supplying the
    /// codec here even when new builds are disabled, or existing
    /// components cannot be reopened.
    pub columnar: Option<ColumnarOptions>,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            mem_budget: 4 << 20,
            page_size: crate::cache::PAGE_SIZE,
            bloom_fpp: 0.01,
            merge_policy: MergePolicy::default(),
            max_frozen: 2,
            columnar: None,
        }
    }
}

#[derive(Debug, Clone)]
struct MemEntry {
    antimatter: bool,
    value: Vec<u8>,
}

/// A sealed in-memory component waiting for (or undergoing) its background
/// flush. Readers consult it between `mem` and `disk` so no window exists
/// in which sealed-but-not-yet-installed data is invisible.
struct FrozenComponent {
    seq: u64,
    /// Recovery watermark captured from [`LsmObserver::on_seal`] at seal
    /// time — it describes exactly the operations contained in `entries`,
    /// never ones that raced in after the seal.
    watermark: u64,
    bytes: usize,
    entries: Arc<BTreeMap<Vec<u8>, MemEntry>>,
}

struct LsmState {
    mem: BTreeMap<Vec<u8>, MemEntry>,
    mem_bytes: usize,
    /// Sealed components, oldest first (the maintenance thread flushes from
    /// the front; readers scan from the back).
    frozen: Vec<FrozenComponent>,
    /// Disk components, newest first.
    disk: Vec<Arc<DiskComponent>>,
    next_seq: u64,
}

/// Lifecycle events surfaced to the transaction/recovery layer.
pub trait LsmObserver: Send + Sync {
    /// Called synchronously on the writer's thread at the moment the
    /// mutable component is sealed, before any new write lands in the
    /// fresh component. Returns the recovery watermark (e.g. the last WAL
    /// LSN applied to this index) to associate with the eventual flush.
    /// Capturing it here — not when the flush completes — keeps the
    /// watermark consistent with the sealed contents under background
    /// flushing.
    fn on_seal(&self) -> u64 {
        0
    }
    /// A flush produced `component_path` covering flush sequences up to and
    /// including `max_seq`; `watermark` is the value [`LsmObserver::on_seal`]
    /// returned when the component was sealed.
    fn on_flush(&self, _component_path: &Path, _max_seq: u64, _watermark: u64) {}
    /// A merge replaced `inputs` with `output`.
    fn on_merge(&self, _inputs: &[PathBuf], _output: &Path) {}
}

/// No-op observer.
pub struct NullObserver;
impl LsmObserver for NullObserver {}

/// Per-tree maintenance metrics, updated by the background thread.
/// Cheap `Arc`-backed clones; adopt them into a [`MetricsRegistry`] with
/// [`LsmMetrics::register_into`].
#[derive(Clone, Debug, Default)]
pub struct LsmMetrics {
    /// Completed background flushes (disk components installed).
    pub flushes: Counter,
    /// Completed merges (policy-triggered or manual).
    pub merges: Counter,
    /// Flush durations (seal dequeue → component installed), microseconds.
    pub flush_us: Histogram,
    /// Merge durations, microseconds.
    pub merge_us: Histogram,
    /// Current number of disk components.
    pub components: Gauge,
}

impl LsmMetrics {
    /// Register every metric under `{prefix}.{flushes,merges,...}`.
    pub fn register_into(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.register_counter(&format!("{prefix}.flushes"), &self.flushes);
        reg.register_counter(&format!("{prefix}.merges"), &self.merges);
        reg.register_histogram(&format!("{prefix}.flush_us"), &self.flush_us);
        reg.register_histogram(&format!("{prefix}.merge_us"), &self.merge_us);
        reg.register_gauge(&format!("{prefix}.components"), &self.components);
    }
}

/// Work orders for the maintenance thread. Synchronous requests carry the
/// requester's trace context so their flush/merge spans land in the
/// triggering query's trace; background `Work` uses the tree's installed
/// default.
enum MaintMsg {
    /// Sealed components are queued; flush them (and merge per policy).
    Work,
    /// Flush everything queued, then ack with the last component path.
    Drain(Sender<Result<Option<PathBuf>>>, TraceContext),
    /// Flush everything queued, then merge all disk components.
    MergeAll(Sender<Result<()>>, TraceContext),
    /// Exit after a best-effort drain.
    Shutdown,
}

/// State shared between the tree handle and its maintenance thread.
struct LsmInner {
    dir: PathBuf,
    cfg: LsmConfig,
    cache: Arc<BufferCache>,
    state: RwLock<LsmState>,
    observer: Arc<dyn LsmObserver>,
    /// First unreported background I/O error; surfaced to the next caller.
    deferred: Mutex<Option<StorageError>>,
    /// Signals a change in the frozen queue (for writers blocked on
    /// `max_frozen`).
    frozen_cv: Condvar,
    frozen_lock: Mutex<()>,
    metrics: LsmMetrics,
    /// Default trace for background maintenance spans (installed via
    /// [`LsmTree::set_trace`]; disabled unless an embedder opts in).
    trace: Mutex<TraceContext>,
}

impl LsmInner {
    fn defer_error(&self, e: StorageError) {
        let mut d = self.deferred.lock();
        if d.is_none() {
            *d = Some(e);
        }
    }

    fn take_deferred(&self) -> Option<StorageError> {
        self.deferred.lock().take()
    }

    /// Trace to record maintenance spans into: the requester's (when it is
    /// an enabled synchronous request), else the tree's installed default.
    /// Either way the spans carry the maintenance thread's label.
    fn maint_trace(&self, req: &TraceContext) -> TraceContext {
        let base = if req.is_enabled() { req.clone() } else { self.trace.lock().clone() };
        base.with_label("lsm-maint")
    }

    fn notify_frozen(&self) {
        let _g = self.frozen_lock.lock();
        self.frozen_cv.notify_all();
    }

    /// Build one disk component from sorted entries, preferring the
    /// columnar layout when it is enabled and the data's schema is stable
    /// enough; otherwise (or when the columnar build declines) the row
    /// layout is used. Flushes and merges share this, which is what lets a
    /// merge re-infer across its inputs and promote row components to
    /// columnar.
    fn build_component(
        &self,
        path: &Path,
        min_seq: u64,
        max_seq: u64,
        entries: Vec<Entry>,
    ) -> Result<Arc<DiskComponent>> {
        let ccfg = ComponentConfig { page_size: self.cfg.page_size, bloom_fpp: self.cfg.bloom_fpp };
        if let Some(col) = &self.cfg.columnar {
            if col.enabled {
                if let Some(c) = DiskComponent::build_columnar(
                    path,
                    Arc::clone(&self.cache),
                    &ccfg,
                    col,
                    min_seq,
                    max_seq,
                    &entries,
                )? {
                    return Ok(c);
                }
            }
        }
        let n = entries.len();
        DiskComponent::build(path, Arc::clone(&self.cache), &ccfg, min_seq, max_seq, entries, n)
    }

    /// Block until the frozen queue has room (or a background error is
    /// pending, which the caller must surface instead of writing more).
    fn wait_for_frozen_capacity(&self, nudge: &Sender<MaintMsg>) -> Result<()> {
        let cap = self.cfg.max_frozen.max(1);
        let mut guard = self.frozen_lock.lock();
        loop {
            if self.state.read().frozen.len() < cap {
                return Ok(());
            }
            if let Some(e) = self.take_deferred() {
                return Err(e);
            }
            // Re-kick the worker in case an earlier error left the queue
            // stalled with no message in flight.
            let _ = nudge.send(MaintMsg::Work);
            self.frozen_cv.wait_for(&mut guard, Duration::from_millis(50));
        }
    }

    /// Flush every queued frozen component (oldest first), applying the
    /// merge policy after each install. Returns the path of the last
    /// component built.
    fn process_pending(self: &Arc<Self>, req: &TraceContext) -> Result<Option<PathBuf>> {
        let trace = self.maint_trace(req);
        let mut last = None;
        loop {
            let job = {
                let st = self.state.read();
                st.frozen.first().map(|f| (f.seq, f.watermark, Arc::clone(&f.entries)))
            };
            let Some((seq, watermark, entries)) = job else { break };
            let flush_started = Instant::now();
            let flush_start_us = now_us();
            let path = self.dir.join(format!("c_{seq:012}_{seq:012}.dat"));
            let n = entries.len();
            let comp = self.build_component(
                &path,
                seq,
                seq,
                entries
                    .iter()
                    .map(|(k, v)| Entry {
                        key: k.clone(),
                        antimatter: v.antimatter,
                        value: v.value.clone(),
                    })
                    .collect(),
            )?;
            let installed = {
                let mut st = self.state.write();
                // The snapshot may have been discarded while we built (crash
                // simulation); install only if it is still queued.
                match st.frozen.iter().position(|f| f.seq == seq) {
                    Some(pos) => {
                        st.frozen.remove(pos);
                        st.disk.insert(0, comp);
                        Some(st.disk.len())
                    }
                    None => None,
                }
            };
            self.notify_frozen();
            if let Some(ncomp) = installed {
                let took = flush_started.elapsed();
                self.metrics.flushes.inc();
                self.metrics.flush_us.record_duration(took);
                self.metrics.components.set(ncomp as i64);
                log_event(
                    "storage.lsm",
                    "flush",
                    &[
                        ("seq", seq.into()),
                        ("entries", n.into()),
                        ("duration_us", (took.as_micros() as u64).into()),
                        ("components", ncomp.into()),
                    ],
                );
                trace.record("lsm.flush", flush_start_us, took.as_micros() as u64);
                self.observer.on_flush(&path, seq, watermark);
                self.maybe_merge(&trace)?;
                last = Some(path);
            } else {
                let _ = std::fs::remove_file(&path);
            }
        }
        Ok(last)
    }

    /// Apply the merge policy; runs on the maintenance thread.
    fn maybe_merge(self: &Arc<Self>, trace: &TraceContext) -> Result<()> {
        let to_merge: Vec<Arc<DiskComponent>> = {
            let st = self.state.read();
            match &self.cfg.merge_policy {
                MergePolicy::NoMerge => Vec::new(),
                MergePolicy::Constant { max } => {
                    if st.disk.len() > *max {
                        st.disk.clone()
                    } else {
                        Vec::new()
                    }
                }
                MergePolicy::Prefix { max_mergable_size, max_tolerance } => {
                    // Longest prefix of newest components under the size cap.
                    let mut acc = 0u64;
                    let mut prefix = Vec::new();
                    for c in &st.disk {
                        if acc + c.file_len() > *max_mergable_size {
                            break;
                        }
                        acc += c.file_len();
                        prefix.push(Arc::clone(c));
                    }
                    if prefix.len() > *max_tolerance {
                        prefix
                    } else {
                        Vec::new()
                    }
                }
            }
        };
        if to_merge.len() < 2 {
            return Ok(());
        }
        self.merge_components(&to_merge, trace)
    }

    fn merge_components(
        self: &Arc<Self>,
        inputs: &[Arc<DiskComponent>],
        trace: &TraceContext,
    ) -> Result<()> {
        let merge_started = Instant::now();
        let merge_start_us = now_us();
        let min_seq = inputs.iter().map(|c| c.min_seq).min().unwrap();
        let max_seq = inputs.iter().map(|c| c.max_seq).max().unwrap();
        // Whether the merge includes the oldest on-disk data; if so,
        // antimatter entries can be dropped entirely.
        let includes_oldest = {
            let st = self.state.read();
            st.disk.iter().map(|c| c.min_seq).min() == Some(min_seq)
        };
        // K-way merge, newest (lowest index in st.disk order) wins.
        let mut iters: Vec<_> = inputs.iter().map(|c| c.range(None, None)).collect();
        let mut heads: Vec<Option<Entry>> = iters.iter_mut().map(|i| i.next()).collect();
        let mut merged: Vec<Entry> = Vec::new();
        loop {
            let mut best: Option<(usize, &[u8], u64)> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(e) = h {
                    let seq = inputs[i].max_seq;
                    match best {
                        None => best = Some((i, &e.key, seq)),
                        Some((_, bk, bseq)) => {
                            if e.key.as_slice() < bk || (e.key.as_slice() == bk && seq > bseq) {
                                best = Some((i, &e.key, seq));
                            }
                        }
                    }
                }
            }
            let Some((winner, _, _)) = best else { break };
            let entry = heads[winner].take().unwrap();
            heads[winner] = iters[winner].next();
            for i in 0..heads.len() {
                loop {
                    let same = matches!(&heads[i], Some(e) if e.key == entry.key);
                    if !same {
                        break;
                    }
                    heads[i] = iters[i].next();
                }
            }
            if entry.antimatter && includes_oldest {
                continue; // fully compacted away
            }
            merged.push(entry);
        }
        for mut it in iters {
            if let Some(e) = it.take_error() {
                return Err(e);
            }
        }
        let out_path = self.dir.join(format!("c_{min_seq:012}_{max_seq:012}.dat"));
        let n = merged.len();
        let comp = self.build_component(&out_path, min_seq, max_seq, merged)?;
        // Atomically swap the component list, then destroy the inputs.
        let input_paths: Vec<PathBuf> = inputs.iter().map(|c| c.path().to_path_buf()).collect();
        let ncomp = {
            let mut st = self.state.write();
            st.disk.retain(|c| !input_paths.iter().any(|p| p == c.path()));
            let pos = st.disk.partition_point(|c| c.max_seq > max_seq);
            st.disk.insert(pos, comp);
            st.disk.len()
        };
        for c in inputs {
            c.destroy()?;
        }
        let took = merge_started.elapsed();
        self.metrics.merges.inc();
        self.metrics.merge_us.record_duration(took);
        self.metrics.components.set(ncomp as i64);
        log_event(
            "storage.lsm",
            "merge",
            &[
                ("inputs", inputs.len().into()),
                ("entries", n.into()),
                ("duration_us", (took.as_micros() as u64).into()),
                ("components", ncomp.into()),
            ],
        );
        trace.record("lsm.merge", merge_start_us, took.as_micros() as u64);
        self.observer.on_merge(&input_paths, &out_path);
        Ok(())
    }
}

/// The maintenance thread: flushes sealed components and merges disk
/// components so the write path never blocks on I/O. All merges run here,
/// serializing them against flushes without any extra locking.
fn maintenance_loop(inner: Arc<LsmInner>, rx: Receiver<MaintMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            MaintMsg::Work => {
                if let Err(e) = inner.process_pending(&TraceContext::disabled()) {
                    inner.defer_error(e);
                    inner.notify_frozen();
                }
            }
            MaintMsg::Drain(ack, req) => {
                let res = inner.process_pending(&req);
                let res = match (res, inner.take_deferred()) {
                    (Err(e), _) => Err(e),
                    (Ok(_), Some(e)) => Err(e),
                    (Ok(p), None) => Ok(p),
                };
                let _ = ack.send(res);
            }
            MaintMsg::MergeAll(ack, req) => {
                let res = inner.process_pending(&req).and_then(|_| {
                    let comps = inner.state.read().disk.clone();
                    if comps.len() < 2 {
                        Ok(())
                    } else {
                        inner.merge_components(&comps, &inner.maint_trace(&req))
                    }
                });
                let _ = ack.send(res);
            }
            MaintMsg::Shutdown => {
                if let Err(e) = inner.process_pending(&TraceContext::disabled()) {
                    inner.defer_error(e);
                }
                break;
            }
        }
    }
    // Wake any writer still blocked on frozen capacity so it can observe
    // the dead worker instead of hanging.
    inner.notify_frozen();
}

/// One value out of [`LsmTree::scan_projected`].
#[derive(Debug)]
pub enum ScanValue<'a> {
    /// A full stored row (from memory, sealed components, row-layout
    /// components, or a columnar spill run): the caller projects it.
    Row(&'a [u8]),
    /// The projected fields already assembled into a self-describing
    /// record by the columnar read path.
    Assembled(&'a [u8]),
}

/// An LSM index over byte-string keys.
pub struct LsmTree {
    inner: Arc<LsmInner>,
    tx: Sender<MaintMsg>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl LsmTree {
    /// Create or reopen an LSM tree rooted at `dir`. Invalid (crash-orphaned)
    /// components are garbage-collected; valid ones are reopened. Spawns the
    /// tree's background maintenance thread.
    pub fn open(
        dir: &Path,
        cfg: LsmConfig,
        cache: Arc<BufferCache>,
        observer: Arc<dyn LsmObserver>,
    ) -> Result<LsmTree> {
        std::fs::create_dir_all(dir)?;
        let valid = DiskComponent::scavenge_dir(dir)?;
        let mut disk: Vec<Arc<DiskComponent>> = Vec::with_capacity(valid.len());
        for path in valid {
            disk.push(DiskComponent::open(&path, Arc::clone(&cache), cfg.columnar.as_ref())?);
        }
        // Newest first: components are named c_<min>_<max>.dat with
        // zero-padded sequence numbers, so path sort order is seq order.
        disk.sort_by_key(|c| std::cmp::Reverse(c.max_seq));
        let next_seq = disk.iter().map(|c| c.max_seq + 1).max().unwrap_or(0);
        let inner = Arc::new(LsmInner {
            dir: dir.to_path_buf(),
            cfg,
            cache,
            state: RwLock::new(LsmState {
                mem: BTreeMap::new(),
                mem_bytes: 0,
                frozen: Vec::new(),
                disk,
                next_seq,
            }),
            observer,
            deferred: Mutex::new(None),
            frozen_cv: Condvar::new(),
            frozen_lock: Mutex::new(()),
            metrics: LsmMetrics::default(),
            trace: Mutex::new(TraceContext::disabled()),
        });
        inner.metrics.components.set(inner.state.read().disk.len() as i64);
        let (tx, rx) = unbounded();
        let inner2 = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("lsm-maint".into())
            .spawn(move || maintenance_loop(inner2, rx))?;
        Ok(LsmTree { inner, tx, worker: Mutex::new(Some(worker)) })
    }

    /// Root directory of this index.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Install a default trace context for *background* maintenance spans
    /// (`lsm.flush` / `lsm.merge` on the `lsm-maint` label). Synchronous
    /// [`LsmTree::flush_traced`] / [`LsmTree::merge_all_traced`] requests
    /// carry their own context instead. Pass
    /// [`TraceContext::disabled`] to detach.
    pub fn set_trace(&self, trace: TraceContext) {
        *self.inner.trace.lock() = trace;
    }

    fn entry_overhead(key: &[u8], value: &[u8]) -> usize {
        key.len() + value.len() + 48
    }

    fn send(&self, msg: MaintMsg) -> Result<()> {
        self.tx
            .send(msg)
            .map_err(|_| StorageError::InvalidState("lsm maintenance thread terminated".into()))
    }

    /// Insert or overwrite (upsert) a key. When the memory budget trips,
    /// the mutable component is sealed and queued for background flushing —
    /// the call returns without waiting for any I/O (unless `max_frozen`
    /// seals are already queued, the write-path memory bound).
    pub fn insert(&self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        self.write(key, MemEntry { antimatter: false, value })
    }

    /// Delete a key by writing an antimatter entry.
    pub fn delete(&self, key: Vec<u8>) -> Result<()> {
        self.write(key, MemEntry { antimatter: true, value: Vec::new() })
    }

    fn write(&self, key: Vec<u8>, entry: MemEntry) -> Result<()> {
        // Background maintenance failures surface on the next write.
        if let Some(e) = self.inner.take_deferred() {
            return Err(e);
        }
        let needs_seal = {
            let mut st = self.inner.state.write();
            st.mem_bytes += Self::entry_overhead(&key, &entry.value);
            if let Some(old) = st.mem.insert(key, entry) {
                st.mem_bytes = st.mem_bytes.saturating_sub(old.value.len());
            }
            st.mem_bytes >= self.inner.cfg.mem_budget
        };
        if needs_seal {
            self.seal_and_enqueue()?;
        }
        Ok(())
    }

    /// Seal the mutable component and queue it for background flushing.
    fn seal_and_enqueue(&self) -> Result<()> {
        self.inner.wait_for_frozen_capacity(&self.tx)?;
        let sealed = {
            let mut st = self.inner.state.write();
            // A racing writer may have sealed already; only seal when the
            // budget is (still) exceeded.
            if st.mem.is_empty() || st.mem_bytes < self.inner.cfg.mem_budget {
                false
            } else {
                let watermark = self.inner.observer.on_seal();
                let mem = std::mem::take(&mut st.mem);
                let bytes = std::mem::replace(&mut st.mem_bytes, 0);
                let seq = st.next_seq;
                st.next_seq += 1;
                st.frozen.push(FrozenComponent { seq, watermark, bytes, entries: Arc::new(mem) });
                true
            }
        };
        if sealed {
            self.send(MaintMsg::Work)?;
        }
        Ok(())
    }

    /// Point lookup: mutable memory first, then sealed components newest →
    /// oldest, then disk components newest → oldest, with bloom filters
    /// pruning component probes.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let st = self.inner.state.read();
        if let Some(e) = st.mem.get(key) {
            return Ok(if e.antimatter { None } else { Some(e.value.clone()) });
        }
        for fr in st.frozen.iter().rev() {
            if let Some(e) = fr.entries.get(key) {
                return Ok(if e.antimatter { None } else { Some(e.value.clone()) });
            }
        }
        for comp in &st.disk {
            if let Some(e) = comp.get(key)? {
                return Ok(if e.antimatter { None } else { Some(e.value) });
            }
        }
        Ok(None)
    }

    /// Does the key exist (non-antimatter)?
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Merged range scan over `[lo, hi)`; resolves antimatter so only live
    /// entries are yielded, in ascending key order.
    pub fn scan(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan_with(lo, hi, |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Streaming variant of [`LsmTree::scan`]: the callback returns `false` to stop
    /// early (used by LIMIT evaluation).
    pub fn scan_with(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        let st = self.inner.state.read();
        let bounds = (
            lo.map_or(Bound::Unbounded, Bound::Included),
            hi.map_or(Bound::Unbounded, Bound::Excluded),
        );
        // Source 0 is the mutable memory component (highest priority), then
        // sealed components newest → oldest, then disk newest → oldest.
        let mem_range = st.mem.range::<[u8], _>(bounds);
        let mut mem_iter = mem_range.map(|(k, v)| Entry {
            key: k.clone(),
            antimatter: v.antimatter,
            value: v.value.clone(),
        });
        // Sealed components' relevant ranges are materialized (bounded by
        // max_frozen × mem_budget).
        let mut frozen_iters: Vec<std::vec::IntoIter<Entry>> = st
            .frozen
            .iter()
            .rev()
            .map(|fr| {
                fr.entries
                    .range::<[u8], _>(bounds)
                    .map(|(k, v)| Entry {
                        key: k.clone(),
                        antimatter: v.antimatter,
                        value: v.value.clone(),
                    })
                    .collect::<Vec<Entry>>()
                    .into_iter()
            })
            .collect();
        let nf = frozen_iters.len();
        let mut disk_iters: Vec<crate::component::ComponentIter> =
            st.disk.iter().map(|c| c.range(lo, hi)).collect();
        // A heads array implementing a k-way merge by (key, priority):
        // lower source index = newer data.
        let mut heads: Vec<Option<Entry>> = Vec::with_capacity(1 + nf + disk_iters.len());
        heads.push(mem_iter.next());
        for it in &mut frozen_iters {
            heads.push(it.next());
        }
        for it in &mut disk_iters {
            heads.push(it.next());
        }
        loop {
            // Find the smallest key; among equals the lowest source index
            // (newest data) wins.
            let mut best: Option<(usize, &[u8])> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(e) = h {
                    match best {
                        None => best = Some((i, &e.key)),
                        Some((_, bk)) if e.key.as_slice() < bk => best = Some((i, &e.key)),
                        _ => {}
                    }
                }
            }
            let Some((winner, _)) = best else { break };
            let entry = heads[winner].take().unwrap();
            // Advance the winner and every source holding the same key
            // (older duplicates are shadowed and must be skipped).
            let mut advance = |i: usize, heads: &mut Vec<Option<Entry>>| {
                heads[i] = if i == 0 {
                    mem_iter.next()
                } else if i <= nf {
                    frozen_iters[i - 1].next()
                } else {
                    disk_iters[i - 1 - nf].next()
                };
            };
            advance(winner, &mut heads);
            for i in 0..heads.len() {
                loop {
                    let same = matches!(&heads[i], Some(e) if e.key == entry.key);
                    if !same {
                        break;
                    }
                    advance(i, &mut heads);
                }
            }
            if !entry.antimatter && !f(&entry.key, &entry.value) {
                break;
            }
        }
        for mut it in disk_iters {
            if let Some(e) = it.take_error() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Late-materializing merged scan over `[lo, hi)`: columnar disk
    /// components read only the projected columns' page runs and hand back
    /// already-assembled records ([`ScanValue::Assembled`]); every other
    /// source (memory, sealed components, row components, spilled rows)
    /// yields full stored rows ([`ScanValue::Row`]) for the caller to
    /// project itself. Antimatter is resolved exactly as in
    /// [`LsmTree::scan_with`] — a newer filtered or deleted version still
    /// shadows older versions of its key. The optional column filter in
    /// `proj` only ever drops rows that are *definitely* rejected by the
    /// predicate it was derived from; the caller must still apply the full
    /// predicate to what comes through.
    pub fn scan_projected(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        proj: &Projection,
        mut f: impl FnMut(&[u8], ScanValue<'_>) -> bool,
    ) -> Result<()> {
        enum DiskSrc {
            Plain(crate::component::ComponentIter),
            Proj(crate::component::ProjectedIter),
        }
        impl DiskSrc {
            fn next(&mut self) -> Option<ProjEntry> {
                match self {
                    DiskSrc::Plain(it) => it.next().map(|e| ProjEntry {
                        key: e.key,
                        kind: if e.antimatter { ProjKind::Anti } else { ProjKind::Row(e.value) },
                    }),
                    DiskSrc::Proj(it) => it.next(),
                }
            }
            fn take_error(&mut self) -> Option<StorageError> {
                match self {
                    DiskSrc::Plain(it) => it.take_error(),
                    DiskSrc::Proj(it) => it.take_error(),
                }
            }
        }
        let st = self.inner.state.read();
        let bounds = (
            lo.map_or(Bound::Unbounded, Bound::Included),
            hi.map_or(Bound::Unbounded, Bound::Excluded),
        );
        let to_proj = |k: &Vec<u8>, v: &MemEntry| ProjEntry {
            key: k.clone(),
            kind: if v.antimatter { ProjKind::Anti } else { ProjKind::Row(v.value.clone()) },
        };
        let mem_range = st.mem.range::<[u8], _>(bounds);
        let mut mem_iter = mem_range.map(|(k, v)| to_proj(k, v));
        let mut frozen_iters: Vec<std::vec::IntoIter<ProjEntry>> = st
            .frozen
            .iter()
            .rev()
            .map(|fr| {
                fr.entries
                    .range::<[u8], _>(bounds)
                    .map(|(k, v)| to_proj(k, v))
                    .collect::<Vec<ProjEntry>>()
                    .into_iter()
            })
            .collect();
        let nf = frozen_iters.len();
        let mut disk_iters: Vec<DiskSrc> = st
            .disk
            .iter()
            .map(|c| {
                if c.is_columnar() {
                    DiskSrc::Proj(c.project_range(lo, hi, proj))
                } else {
                    DiskSrc::Plain(c.range(lo, hi))
                }
            })
            .collect();
        let mut heads: Vec<Option<ProjEntry>> = Vec::with_capacity(1 + nf + disk_iters.len());
        heads.push(mem_iter.next());
        for it in &mut frozen_iters {
            heads.push(it.next());
        }
        for it in &mut disk_iters {
            heads.push(it.next());
        }
        loop {
            let mut best: Option<(usize, &[u8])> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some(e) = h {
                    match best {
                        None => best = Some((i, &e.key)),
                        Some((_, bk)) if e.key.as_slice() < bk => best = Some((i, &e.key)),
                        _ => {}
                    }
                }
            }
            let Some((winner, _)) = best else { break };
            let entry = heads[winner].take().unwrap();
            let mut advance = |i: usize, heads: &mut Vec<Option<ProjEntry>>| {
                heads[i] = if i == 0 {
                    mem_iter.next()
                } else if i <= nf {
                    frozen_iters[i - 1].next()
                } else {
                    disk_iters[i - 1 - nf].next()
                };
            };
            advance(winner, &mut heads);
            for i in 0..heads.len() {
                loop {
                    let same = matches!(&heads[i], Some(e) if e.key == entry.key);
                    if !same {
                        break;
                    }
                    advance(i, &mut heads);
                }
            }
            let keep_going = match &entry.kind {
                ProjKind::Anti | ProjKind::Filtered => true,
                ProjKind::Row(v) => f(&entry.key, ScanValue::Row(v)),
                ProjKind::Assembled(v) => f(&entry.key, ScanValue::Assembled(v)),
            };
            if !keep_going {
                break;
            }
        }
        for mut it in disk_iters {
            if let Some(e) = it.take_error() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// How many of the tree's disk components are columnar (tests and
    /// migration observability).
    pub fn columnar_component_count(&self) -> usize {
        self.inner.state.read().disk.iter().filter(|c| c.is_columnar()).count()
    }

    /// Count of live entries (scan-based; used by tests and stats).
    pub fn live_count(&self) -> Result<usize> {
        let mut n = 0;
        self.scan_with(None, None, |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// Force-flush: seal the in-memory component (if non-empty) and wait
    /// for the maintenance thread to drain every queued seal to disk.
    /// Returns the path of the last component written, `None` when there
    /// was nothing to flush. Surfaces any deferred background error.
    /// Readers see the data throughout: it moves memory → sealed
    /// component → installed disk component without a visibility gap.
    pub fn flush(&self) -> Result<Option<PathBuf>> {
        self.flush_traced(&TraceContext::disabled())
    }

    /// [`LsmTree::flush`] with the caller's trace context: the resulting
    /// `lsm.flush` spans are recorded into `trace` (still labelled
    /// `lsm-maint`), attributing synchronous flush latency to the
    /// triggering query.
    pub fn flush_traced(&self, trace: &TraceContext) -> Result<Option<PathBuf>> {
        {
            let mut st = self.inner.state.write();
            if !st.mem.is_empty() {
                let watermark = self.inner.observer.on_seal();
                let mem = std::mem::take(&mut st.mem);
                let bytes = std::mem::replace(&mut st.mem_bytes, 0);
                let seq = st.next_seq;
                st.next_seq += 1;
                st.frozen.push(FrozenComponent { seq, watermark, bytes, entries: Arc::new(mem) });
            }
        }
        let (ack_tx, ack_rx) = bounded(1);
        self.send(MaintMsg::Drain(ack_tx, trace.clone()))?;
        ack_rx.recv().unwrap_or_else(|_| {
            Err(StorageError::InvalidState("lsm maintenance thread terminated".into()))
        })
    }

    /// Merge all current disk components into one (manual full merge),
    /// after draining any pending flushes. Runs on the maintenance thread
    /// (like policy-triggered merges) but blocks the caller until done.
    pub fn merge_all(&self) -> Result<()> {
        self.merge_all_traced(&TraceContext::disabled())
    }

    /// [`LsmTree::merge_all`] with the caller's trace context (see
    /// [`LsmTree::flush_traced`]).
    pub fn merge_all_traced(&self, trace: &TraceContext) -> Result<()> {
        let (ack_tx, ack_rx) = bounded(1);
        self.send(MaintMsg::MergeAll(ack_tx, trace.clone()))?;
        ack_rx.recv().unwrap_or_else(|_| {
            Err(StorageError::InvalidState("lsm maintenance thread terminated".into()))
        })
    }

    /// Drain pending background work, surface any deferred I/O error, and
    /// stop the maintenance thread. Reads keep working afterwards; writes
    /// that need maintenance will fail. Idempotent.
    pub fn close(&self) -> Result<()> {
        let (ack_tx, ack_rx) = bounded(1);
        let drained = match self.tx.send(MaintMsg::Drain(ack_tx, TraceContext::disabled())) {
            Ok(()) => ack_rx.recv().unwrap_or(Ok(None)),
            // Worker already gone: nothing pending except a possible
            // deferred error, handled below.
            Err(_) => Ok(None),
        };
        self.shutdown_worker();
        drained?;
        match self.inner.take_deferred() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn shutdown_worker(&self) {
        let _ = self.tx.send(MaintMsg::Shutdown);
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }

    /// Number of disk components (for tests/stats).
    pub fn disk_component_count(&self) -> usize {
        self.inner.state.read().disk.len()
    }

    /// Maintenance metrics (flush/merge counts and durations, component
    /// gauge). The returned handle stays live — clones share the counters.
    pub fn metrics(&self) -> &LsmMetrics {
        &self.inner.metrics
    }

    /// Total bytes across disk components plus the in-memory (mutable and
    /// sealed) components — Table 2's storage-size metric.
    pub fn size_bytes(&self) -> u64 {
        let st = self.inner.state.read();
        st.disk.iter().map(|c| c.file_len()).sum::<u64>()
            + st.mem_bytes as u64
            + st.frozen.iter().map(|f| f.bytes as u64).sum::<u64>()
    }

    /// Mutable in-memory component size in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.inner.state.read().mem_bytes
    }

    /// Drop everything (dataset drop): removes the directory.
    pub fn destroy(self) -> Result<()> {
        {
            // Discard pending seals — their data is about to be deleted.
            let mut st = self.inner.state.write();
            st.mem.clear();
            st.mem_bytes = 0;
            st.frozen.clear();
        }
        self.shutdown_worker();
        // Destroy components first so their cached pages are invalidated.
        let disk = std::mem::take(&mut self.inner.state.write().disk);
        for c in disk {
            let _ = c.destroy();
        }
        std::fs::remove_dir_all(&self.inner.dir)?;
        Ok(())
    }

    /// Discard the in-memory component (crash simulation for recovery
    /// tests: memory — mutable and sealed-but-unflushed — is lost, disk
    /// components survive).
    pub fn simulate_crash_lose_memory(&self) {
        {
            let mut st = self.inner.state.write();
            st.mem.clear();
            st.mem_bytes = 0;
            st.frozen.clear();
        }
        self.inner.notify_frozen();
    }
}

impl Drop for LsmTree {
    fn drop(&mut self) {
        // Best-effort drain (Shutdown processes the queue) so auto-sealed
        // data reaches disk; errors are unreportable here.
        self.shutdown_worker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn open(dir: &Path, policy: MergePolicy, budget: usize) -> LsmTree {
        LsmTree::open(
            dir,
            LsmConfig {
                mem_budget: budget,
                page_size: 512,
                bloom_fpp: 0.01,
                merge_policy: policy,
                max_frozen: 2,
                columnar: None,
            },
            BufferCache::new(256),
            Arc::new(NullObserver),
        )
        .unwrap()
    }

    fn k(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_delete_in_memory() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        t.insert(k(1), b"a".to_vec()).unwrap();
        t.insert(k(2), b"b".to_vec()).unwrap();
        assert_eq!(t.get(&k(1)).unwrap(), Some(b"a".to_vec()));
        t.delete(k(1)).unwrap();
        assert_eq!(t.get(&k(1)).unwrap(), None);
        assert_eq!(t.get(&k(2)).unwrap(), Some(b"b".to_vec()));
        assert_eq!(t.live_count().unwrap(), 1);
    }

    #[test]
    fn traced_flush_and_merge_record_spans() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        let trace = TraceContext::new_trace(64);
        for i in 0..10 {
            t.insert(k(i), vec![b'x'; 100]).unwrap();
        }
        t.flush_traced(&trace).unwrap();
        for i in 10..20 {
            t.insert(k(i), vec![b'x'; 100]).unwrap();
        }
        t.flush_traced(&trace).unwrap();
        t.merge_all_traced(&trace).unwrap();
        let evs = trace.sink().unwrap().events();
        let flushes = evs.iter().filter(|e| e.name == "lsm.flush").count();
        let merges = evs.iter().filter(|e| e.name == "lsm.merge").count();
        assert_eq!(flushes, 2, "{evs:#?}");
        assert_eq!(merges, 1, "{evs:#?}");
        assert!(evs.iter().all(|e| e.label == "lsm-maint"));
        // Untraced maintenance records nothing new into this trace.
        t.insert(k(99), b"y".to_vec()).unwrap();
        t.flush().unwrap();
        assert_eq!(trace.sink().unwrap().len(), 3);
    }

    #[test]
    fn flush_and_read_back() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        for i in 0..100 {
            t.insert(k(i), vec![i as u8]).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.disk_component_count(), 1);
        assert_eq!(t.mem_bytes(), 0);
        for i in 0..100 {
            assert_eq!(t.get(&k(i)).unwrap(), Some(vec![i as u8]));
        }
    }

    #[test]
    fn newest_component_wins() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        t.insert(k(5), b"old".to_vec()).unwrap();
        t.flush().unwrap();
        t.insert(k(5), b"new".to_vec()).unwrap();
        t.flush().unwrap();
        assert_eq!(t.get(&k(5)).unwrap(), Some(b"new".to_vec()));
        // Delete shadows both.
        t.delete(k(5)).unwrap();
        t.flush().unwrap();
        assert_eq!(t.get(&k(5)).unwrap(), None);
        let all = t.scan(None, None).unwrap();
        assert!(all.is_empty());
    }

    #[test]
    fn scan_merges_components() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        for i in (0..50).step_by(2) {
            t.insert(k(i), b"even".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in (1..50).step_by(2) {
            t.insert(k(i), b"odd".to_vec()).unwrap();
        }
        // Half in memory, half on disk.
        let all = t.scan(None, None).unwrap();
        assert_eq!(all.len(), 50);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        let some = t.scan(Some(&k(10)), Some(&k(20))).unwrap();
        assert_eq!(some.len(), 10);
    }

    #[test]
    fn auto_flush_on_budget() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 2048);
        for i in 0..200 {
            t.insert(k(i), vec![0u8; 32]).unwrap();
        }
        // Everything stays visible while background flushes are in flight.
        assert_eq!(t.live_count().unwrap(), 200);
        t.flush().unwrap(); // drain pending background work
        assert!(t.disk_component_count() >= 2, "expected multiple auto-flushes");
        assert_eq!(t.live_count().unwrap(), 200);
    }

    #[test]
    fn constant_merge_policy_caps_components() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::Constant { max: 3 }, 1 << 20);
        for round in 0..8u32 {
            for i in 0..20 {
                t.insert(k(round * 100 + i), vec![round as u8]).unwrap();
            }
            t.flush().unwrap();
        }
        assert!(t.disk_component_count() <= 4, "got {}", t.disk_component_count());
        assert_eq!(t.live_count().unwrap(), 160);
    }

    #[test]
    fn merge_drops_tombstones_when_covering_oldest() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        for i in 0..10 {
            t.insert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 0..5 {
            t.delete(k(i)).unwrap();
        }
        t.flush().unwrap();
        t.merge_all().unwrap();
        assert_eq!(t.disk_component_count(), 1);
        assert_eq!(t.live_count().unwrap(), 5);
        // After a full merge, antimatter is gone: the single component holds
        // exactly the live entries.
        let st = t.inner.state.read();
        assert_eq!(st.disk[0].entry_count(), 5);
    }

    #[test]
    fn reopen_recovers_disk_state() {
        let dir = TempDir::new().unwrap();
        {
            let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
            for i in 0..30 {
                t.insert(k(i), vec![1]).unwrap();
            }
            t.flush().unwrap();
            t.insert(k(100), vec![2]).unwrap(); // stays in memory, lost
            t.simulate_crash_lose_memory();
        }
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        assert_eq!(t.live_count().unwrap(), 30);
        assert_eq!(t.get(&k(100)).unwrap(), None);
        // New writes get fresh sequence numbers beyond recovered ones.
        t.insert(k(200), vec![3]).unwrap();
        t.flush().unwrap();
        assert_eq!(t.get(&k(200)).unwrap(), Some(vec![3]));
    }

    #[test]
    fn prefix_merge_policy_triggers() {
        let dir = TempDir::new().unwrap();
        let t = open(
            dir.path(),
            MergePolicy::Prefix { max_mergable_size: 1 << 20, max_tolerance: 2 },
            1 << 20,
        );
        for round in 0..5u32 {
            for i in 0..10 {
                t.insert(k(round * 100 + i), vec![0u8; 16]).unwrap();
            }
            t.flush().unwrap();
        }
        assert!(t.disk_component_count() <= 3, "got {}", t.disk_component_count());
        assert_eq!(t.live_count().unwrap(), 50);
    }

    #[test]
    fn early_exit_scan() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        for i in 0..100 {
            t.insert(k(i), vec![0]).unwrap();
        }
        let mut seen = 0;
        t.scan_with(None, None, |_, _| {
            seen += 1;
            seen < 10
        })
        .unwrap();
        assert_eq!(seen, 10);
    }

    /// Observer whose `on_flush` blocks until released — stands in for slow
    /// flush I/O so tests can prove the write path does not wait for it.
    struct GateObserver {
        entered: Sender<()>,
        release: Receiver<()>,
    }

    impl LsmObserver for GateObserver {
        fn on_flush(&self, _p: &Path, _s: u64, _w: u64) {
            let _ = self.entered.send(());
            // First call blocks until released; once the release sender is
            // dropped, later flushes pass straight through.
            let _ = self.release.recv_timeout(Duration::from_secs(10));
        }
    }

    #[test]
    fn inserts_do_not_stall_on_flush_io() {
        let dir = TempDir::new().unwrap();
        let (entered_tx, entered_rx) = unbounded();
        let (release_tx, release_rx) = unbounded();
        let t = LsmTree::open(
            dir.path(),
            LsmConfig {
                mem_budget: 2048,
                page_size: 512,
                bloom_fpp: 0.01,
                merge_policy: MergePolicy::NoMerge,
                max_frozen: 2,
                columnar: None,
            },
            BufferCache::new(256),
            Arc::new(GateObserver { entered: entered_tx, release: release_rx }),
        )
        .unwrap();

        // ~84 bytes/entry: 60 inserts trip the 2048-byte budget twice.
        for i in 0..60u32 {
            t.insert(k(i), vec![0u8; 32]).unwrap();
        }
        // The background flush is now stuck in its (gated) completion path.
        entered_rx.recv_timeout(Duration::from_secs(10)).expect("background flush never started");

        // The paper's point (§4.2): ingest keeps landing while flush I/O is
        // incomplete. These inserts must return without waiting for the
        // gated flush (they stay under one budget, so no max_frozen block).
        let before = std::time::Instant::now();
        for i in 1000..1020u32 {
            t.insert(k(i), vec![0u8; 32]).unwrap();
        }
        assert!(before.elapsed() < Duration::from_secs(5), "inserts stalled behind flush I/O");

        // Everything is visible even though flushes are still in flight.
        assert_eq!(t.live_count().unwrap(), 80);

        // Release the gate, drain, and verify durability.
        release_tx.send(()).unwrap();
        drop(release_tx);
        t.flush().unwrap();
        assert!(t.disk_component_count() >= 2);
        assert_eq!(t.live_count().unwrap(), 80);
        for i in 0..60u32 {
            assert_eq!(t.get(&k(i)).unwrap(), Some(vec![0u8; 32]));
        }
        t.close().unwrap();
    }

    #[test]
    fn maintenance_metrics_record_flushes_and_merges() {
        let dir = TempDir::new().unwrap();
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        for round in 0..3u32 {
            for i in 0..20 {
                t.insert(k(round * 100 + i), vec![round as u8]).unwrap();
            }
            t.flush().unwrap();
        }
        let m = t.metrics();
        assert_eq!(m.flushes.get(), 3, "one background flush per seal");
        assert_eq!(m.flush_us.count(), 3);
        assert!(m.flush_us.sum() > 0, "flush durations must be nonzero");
        assert_eq!(m.merges.get(), 0);
        assert_eq!(
            m.components.get(),
            t.disk_component_count() as i64,
            "component gauge tracks on-disk components"
        );

        t.merge_all().unwrap();
        assert_eq!(m.merges.get(), 1);
        assert_eq!(m.merge_us.count(), 1);
        assert!(m.merge_us.sum() > 0, "merge duration must be nonzero");
        assert_eq!(t.disk_component_count(), 1);
        assert_eq!(m.components.get(), 1);

        // Registered views read the same live counters.
        let reg = MetricsRegistry::new();
        m.register_into(&reg, "lsm.ds");
        match reg.get("lsm.ds.flushes") {
            Some(asterix_obs::Metric::Counter(c)) => assert_eq!(c.get(), 3),
            other => panic!("wrong metric: {other:?}"),
        }
    }

    #[test]
    fn reopen_seeds_component_gauge() {
        let dir = TempDir::new().unwrap();
        {
            let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
            for i in 0..10 {
                t.insert(k(i), vec![1]).unwrap();
            }
            t.flush().unwrap();
        }
        let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
        assert_eq!(t.metrics().components.get(), t.disk_component_count() as i64);
        assert_eq!(t.metrics().flushes.get(), 0, "counters start fresh on reopen");
    }

    #[test]
    fn seal_watermark_captured_at_seal_time() {
        use std::sync::atomic::{AtomicU64, Ordering};

        // The watermark delivered to on_flush must be the on_seal value of
        // the sealed component, even when on_seal advances afterwards.
        struct WatermarkProbe {
            next: AtomicU64,
            flushed: Mutex<Vec<u64>>,
        }
        impl LsmObserver for WatermarkProbe {
            fn on_seal(&self) -> u64 {
                self.next.load(Ordering::SeqCst)
            }
            fn on_flush(&self, _p: &Path, _s: u64, watermark: u64) {
                self.flushed.lock().push(watermark);
            }
        }

        let dir = TempDir::new().unwrap();
        let probe =
            Arc::new(WatermarkProbe { next: AtomicU64::new(7), flushed: Mutex::new(Vec::new()) });
        let t = LsmTree::open(
            dir.path(),
            LsmConfig { merge_policy: MergePolicy::NoMerge, ..Default::default() },
            BufferCache::new(256),
            Arc::clone(&probe) as Arc<dyn LsmObserver>,
        )
        .unwrap();
        t.insert(k(1), b"a".to_vec()).unwrap();
        t.flush().unwrap(); // seals at watermark 7
        probe.next.store(42, Ordering::SeqCst);
        t.insert(k(2), b"b".to_vec()).unwrap();
        t.flush().unwrap(); // seals at watermark 42
        assert_eq!(*probe.flushed.lock(), vec![7, 42]);
    }

    // ---- columnar components through the LSM lifecycle ----

    use crate::columnar::{ColumnarOptions, Projection, SelfDescribingCodec};
    use asterix_adm::serde::encode;
    use asterix_adm::value::{Record, Value};

    fn columnar_cfg(enabled: bool) -> LsmConfig {
        let mut col = ColumnarOptions::new(Arc::new(SelfDescribingCodec));
        col.enabled = enabled;
        LsmConfig {
            mem_budget: 1 << 20,
            page_size: 512,
            bloom_fpp: 0.01,
            merge_policy: MergePolicy::NoMerge,
            max_frozen: 2,
            columnar: Some(col),
        }
    }

    fn row(i: u32) -> Vec<u8> {
        let mut r = Record::new();
        r.set("id", Value::Int64(i as i64));
        r.set("name", Value::string(format!("user-{i:04}")));
        r.set("score", Value::Double(i as f64 / 3.0));
        encode(&Value::record(r))
    }

    #[test]
    fn columnar_flush_merge_and_exact_reads() {
        let dir = TempDir::new().unwrap();
        let t = LsmTree::open(
            dir.path(),
            columnar_cfg(true),
            BufferCache::new(256),
            Arc::new(NullObserver),
        )
        .unwrap();
        for i in 0..150u32 {
            t.insert(k(i), row(i)).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.columnar_component_count(), 1);
        for i in 150..300u32 {
            t.insert(k(i), row(i)).unwrap();
        }
        t.delete(k(42)).unwrap();
        t.flush().unwrap();
        t.merge_all().unwrap();
        // The merged output re-infers a schema and stays columnar.
        assert_eq!(t.columnar_component_count(), 1);
        for i in 0..300u32 {
            let got = t.get(&k(i)).unwrap();
            if i == 42 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(row(i)), "row {i} must read back byte-identical");
            }
        }
        assert_eq!(t.scan(None, None).unwrap().len(), 299);
    }

    #[test]
    fn disabled_knob_builds_row_components_but_reads_columnar_ones() {
        let dir = TempDir::new().unwrap();
        // First incarnation: columnar on; writes one columnar component.
        {
            let t = LsmTree::open(
                dir.path(),
                columnar_cfg(true),
                BufferCache::new(256),
                Arc::new(NullObserver),
            )
            .unwrap();
            for i in 0..80u32 {
                t.insert(k(i), row(i)).unwrap();
            }
            t.flush().unwrap();
            assert_eq!(t.columnar_component_count(), 1);
        }
        // Second incarnation: knob off. The existing columnar component
        // must stay readable; new flushes come out row-major.
        let t = LsmTree::open(
            dir.path(),
            columnar_cfg(false),
            BufferCache::new(256),
            Arc::new(NullObserver),
        )
        .unwrap();
        assert_eq!(t.columnar_component_count(), 1);
        for i in 80..160u32 {
            t.insert(k(i), row(i)).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.columnar_component_count(), 1, "knob off must not build columnar");
        for i in 0..160u32 {
            assert_eq!(t.get(&k(i)).unwrap(), Some(row(i)));
        }
    }

    #[test]
    fn projected_scan_over_mixed_tree_matches_full_scan() {
        let dir = TempDir::new().unwrap();
        // Row component (columnar: None), then columnar component, then
        // mem entries: scan_projected must merge all three planes.
        {
            let t = open(dir.path(), MergePolicy::NoMerge, 1 << 20);
            for i in 0..60u32 {
                t.insert(k(i), row(i)).unwrap();
            }
            t.flush().unwrap();
        }
        let t = LsmTree::open(
            dir.path(),
            columnar_cfg(true),
            BufferCache::new(256),
            Arc::new(NullObserver),
        )
        .unwrap();
        for i in 60..120u32 {
            t.insert(k(i), row(i)).unwrap();
        }
        t.delete(k(7)).unwrap();
        t.insert(k(30), row(999)).unwrap(); // newer version shadows row component
        t.flush().unwrap();
        assert_eq!(t.columnar_component_count(), 1);
        for i in 120..140u32 {
            t.insert(k(i), row(i)).unwrap(); // stays in memory
        }

        let full = t.scan(None, None).unwrap();
        let proj = Projection { fields: vec!["name".into()], filter: None };
        enum ScanValue2 {
            Row(Vec<u8>),
            Assembled(Vec<u8>),
        }
        let mut projected: Vec<(Vec<u8>, ScanValue2)> = Vec::new();
        t.scan_projected(None, None, &proj, |key, v| {
            let owned = match v {
                ScanValue::Row(b) => ScanValue2::Row(b.to_vec()),
                ScanValue::Assembled(b) => ScanValue2::Assembled(b.to_vec()),
            };
            projected.push((key.to_vec(), owned));
            true
        })
        .unwrap();
        assert_eq!(
            projected.iter().map(|(key, _)| key.clone()).collect::<Vec<_>>(),
            full.iter().map(|(key, _)| key.clone()).collect::<Vec<_>>()
        );
        let mut assembled = 0;
        for ((key, got), (_, full_row)) in projected.iter().zip(full.iter()) {
            match got {
                // Rows from the row component / memory come back whole.
                ScanValue2::Row(b) => assert_eq!(b, full_row, "key {key:?}"),
                // Columnar rows come back as just the projected field.
                ScanValue2::Assembled(b) => {
                    assembled += 1;
                    let i = u32::from_be_bytes(key[..4].try_into().unwrap());
                    let n = if i == 30 { 999 } else { i };
                    let mut r = Record::new();
                    r.set("name", Value::string(format!("user-{n:04}")));
                    assert_eq!(b, &encode(&Value::record(r)), "key {key:?}");
                }
            }
        }
        assert!(assembled >= 60, "columnar component rows must late-materialize");
    }
}
