//! Storage-layer error type.

use std::fmt;

/// Errors raised by the LSM storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// On-disk bytes failed to decode.
    Corrupt(String),
    /// Data-model error surfaced through storage (key codec etc.).
    Adm(asterix_adm::AdmError),
    /// Misuse of the storage API (e.g. operating on a dropped index).
    InvalidState(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StorageError::Adm(e) => write!(f, "{e}"),
            StorageError::InvalidState(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Adm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<asterix_adm::AdmError> for StorageError {
    fn from(e: asterix_adm::AdmError) -> Self {
        StorageError::Adm(e)
    }
}

/// Convenience alias for the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
