//! The LSM R-tree: a spatial secondary index over ADM values (§2.2's
//! `create index ... type rtree`, used for `sender-location` queries).
//!
//! Entries are `(MBR, primary-key)` pairs. The in-memory component is a
//! plain vector; disk components are STR-packed (Sort-Tile-Recursive)
//! immutable trees: leaf blocks of entries with their bounding rectangles,
//! and an in-memory directory of block MBRs built at open. Deletes are
//! antimatter entries identified by the `(MBR, primary-key)` pair; search
//! resolves components newest → oldest, exactly like the LSM B+-tree.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use asterix_adm::value::Rectangle;
use asterix_adm::Value;
use parking_lot::RwLock;

use crate::cache::{next_file_id, BufferCache};
use crate::error::{Result, StorageError};
use crate::keycodec::{decode_key, encode_key};

const MAGIC: u64 = 0x4153_5458_5254_5231; // "ASTXRTR1"
const LEAF_BLOCK_SIZE: usize = 64;

/// One R-tree entry: rectangle, antimatter flag, encoded primary key.
#[derive(Debug, Clone, PartialEq)]
pub struct RtEntry {
    pub mbr: Rectangle,
    pub antimatter: bool,
    pub pk: Vec<u8>,
}

impl RtEntry {
    fn identity(&self) -> (u64, u64, u64, u64, &[u8]) {
        (
            self.mbr.low.x.to_bits(),
            self.mbr.low.y.to_bits(),
            self.mbr.high.x.to_bits(),
            self.mbr.high.y.to_bits(),
            &self.pk,
        )
    }
}

fn rect_union(a: &Rectangle, b: &Rectangle) -> Rectangle {
    Rectangle {
        low: asterix_adm::value::Point::new(a.low.x.min(b.low.x), a.low.y.min(b.low.y)),
        high: asterix_adm::value::Point::new(a.high.x.max(b.high.x), a.high.y.max(b.high.y)),
    }
}

struct BlockMeta {
    mbr: Rectangle,
    offset: u64,
    len: u32,
}

/// An immutable STR-packed disk component.
struct RtDiskComponent {
    path: PathBuf,
    file_id: u64,
    cache: Arc<BufferCache>,
    blocks: Vec<BlockMeta>,
    entry_count: u64,
    file_len: u64,
    seq: u64,
}

fn write_rect(out: &mut Vec<u8>, r: &Rectangle) {
    out.extend_from_slice(&r.low.x.to_le_bytes());
    out.extend_from_slice(&r.low.y.to_le_bytes());
    out.extend_from_slice(&r.high.x.to_le_bytes());
    out.extend_from_slice(&r.high.y.to_le_bytes());
}

fn read_rect(buf: &[u8], pos: &mut usize) -> Result<Rectangle> {
    if *pos + 32 > buf.len() {
        return Err(StorageError::Corrupt("truncated rectangle".into()));
    }
    let f = |o: usize| f64::from_le_bytes(buf[*pos + o..*pos + o + 8].try_into().unwrap());
    let r = Rectangle {
        low: asterix_adm::value::Point::new(f(0), f(8)),
        high: asterix_adm::value::Point::new(f(16), f(24)),
    };
    *pos += 32;
    Ok(r)
}

impl RtDiskComponent {
    fn marker(path: &Path) -> PathBuf {
        path.with_extension("valid")
    }

    /// STR bulk-load: sort by x-center into vertical slabs, sort each slab
    /// by y-center, pack runs of `LEAF_BLOCK_SIZE` into blocks.
    fn build(
        path: &Path,
        cache: Arc<BufferCache>,
        seq: u64,
        mut entries: Vec<RtEntry>,
    ) -> Result<Arc<RtDiskComponent>> {
        let n = entries.len();
        let nblocks = n.div_ceil(LEAF_BLOCK_SIZE).max(1);
        let nslabs = (nblocks as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(nslabs.max(1)).max(1);
        entries.sort_by(|a, b| {
            let ax = a.mbr.low.x + a.mbr.high.x;
            let bx = b.mbr.low.x + b.mbr.high.x;
            ax.partial_cmp(&bx).unwrap_or(std::cmp::Ordering::Equal)
        });
        for slab in entries.chunks_mut(slab_size) {
            slab.sort_by(|a, b| {
                let ay = a.mbr.low.y + a.mbr.high.y;
                let by = b.mbr.low.y + b.mbr.high.y;
                ay.partial_cmp(&by).unwrap_or(std::cmp::Ordering::Equal)
            });
        }

        let mut file = File::create(path)?;
        let mut blocks = Vec::new();
        let mut offset = 0u64;
        for chunk in entries.chunks(LEAF_BLOCK_SIZE) {
            let mut buf = Vec::with_capacity(chunk.len() * 48);
            buf.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            let mut mbr: Option<Rectangle> = None;
            for e in chunk {
                write_rect(&mut buf, &e.mbr);
                buf.push(u8::from(e.antimatter));
                buf.extend_from_slice(&(e.pk.len() as u32).to_le_bytes());
                buf.extend_from_slice(&e.pk);
                mbr = Some(match mbr {
                    None => e.mbr,
                    Some(m) => rect_union(&m, &e.mbr),
                });
            }
            file.write_all(&buf)?;
            blocks.push(BlockMeta {
                mbr: mbr.unwrap_or(Rectangle {
                    low: asterix_adm::value::Point::new(0.0, 0.0),
                    high: asterix_adm::value::Point::new(0.0, 0.0),
                }),
                offset,
                len: buf.len() as u32,
            });
            offset += buf.len() as u64;
        }

        // Directory: block MBRs + offsets.
        let dir_offset = offset;
        let mut dir = Vec::new();
        dir.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
        for b in &blocks {
            write_rect(&mut dir, &b.mbr);
            dir.extend_from_slice(&b.offset.to_le_bytes());
            dir.extend_from_slice(&b.len.to_le_bytes());
        }
        file.write_all(&dir)?;

        let mut footer = Vec::with_capacity(32);
        footer.extend_from_slice(&dir_offset.to_le_bytes());
        footer.extend_from_slice(&(n as u64).to_le_bytes());
        footer.extend_from_slice(&seq.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        file.write_all(&footer)?;
        file.sync_all()?;
        File::create(Self::marker(path))?.sync_all()?;

        let file_len = dir_offset + dir.len() as u64 + 32;
        Ok(Arc::new(RtDiskComponent {
            path: path.to_path_buf(),
            file_id: next_file_id(),
            cache,
            blocks,
            entry_count: n as u64,
            file_len,
            seq,
        }))
    }

    fn open(path: &Path, cache: Arc<BufferCache>) -> Result<Arc<RtDiskComponent>> {
        if !Self::marker(path).exists() {
            return Err(StorageError::InvalidState(format!(
                "r-tree component {} has no validity marker",
                path.display()
            )));
        }
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < 32 {
            return Err(StorageError::Corrupt("r-tree component too small".into()));
        }
        let mut footer = [0u8; 32];
        file.seek(SeekFrom::End(-32))?;
        file.read_exact(&mut footer)?;
        if u64::from_le_bytes(footer[24..32].try_into().unwrap()) != MAGIC {
            return Err(StorageError::Corrupt("bad r-tree magic".into()));
        }
        let dir_offset = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let entry_count = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let seq = u64::from_le_bytes(footer[16..24].try_into().unwrap());
        let dir_len = (file_len - 32 - dir_offset) as usize;
        let mut dir = vec![0u8; dir_len];
        file.seek(SeekFrom::Start(dir_offset))?;
        file.read_exact(&mut dir)?;
        let mut pos = 0usize;
        if dir.len() < 4 {
            return Err(StorageError::Corrupt("truncated r-tree directory".into()));
        }
        let nblocks = u32::from_le_bytes(dir[0..4].try_into().unwrap()) as usize;
        pos += 4;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            let mbr = read_rect(&dir, &mut pos)?;
            if pos + 12 > dir.len() {
                return Err(StorageError::Corrupt("truncated r-tree directory".into()));
            }
            let offset = u64::from_le_bytes(dir[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let len = u32::from_le_bytes(dir[pos..pos + 4].try_into().unwrap());
            pos += 4;
            blocks.push(BlockMeta { mbr, offset, len });
        }
        Ok(Arc::new(RtDiskComponent {
            path: path.to_path_buf(),
            file_id: next_file_id(),
            cache,
            blocks,
            entry_count,
            file_len,
            seq,
        }))
    }

    fn read_block(&self, idx: usize) -> Result<Vec<RtEntry>> {
        let meta = &self.blocks[idx];
        let (offset, len, path) = (meta.offset, meta.len as usize, self.path.clone());
        let buf = self.cache.get_or_load((self.file_id, idx as u32), move || {
            let mut f = File::open(&path)?;
            f.seek(SeekFrom::Start(offset))?;
            let mut b = vec![0u8; len];
            f.read_exact(&mut b)?;
            Ok::<_, StorageError>(b)
        })?;
        let mut pos = 0usize;
        if buf.len() < 4 {
            return Err(StorageError::Corrupt("truncated r-tree block".into()));
        }
        let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        pos += 4;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mbr = read_rect(&buf, &mut pos)?;
            let anti = *buf
                .get(pos)
                .ok_or_else(|| StorageError::Corrupt("truncated r-tree entry".into()))?
                != 0;
            pos += 1;
            if pos + 4 > buf.len() {
                return Err(StorageError::Corrupt("truncated r-tree entry".into()));
            }
            let pklen = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if pos + pklen > buf.len() {
                return Err(StorageError::Corrupt("truncated r-tree pk".into()));
            }
            let pk = buf[pos..pos + pklen].to_vec();
            pos += pklen;
            out.push(RtEntry { mbr, antimatter: anti, pk });
        }
        Ok(out)
    }

    fn search(&self, query: &Rectangle, out: &mut Vec<RtEntry>) -> Result<()> {
        for (i, b) in self.blocks.iter().enumerate() {
            if b.mbr.intersects(query) {
                for e in self.read_block(i)? {
                    if e.mbr.intersects(query) {
                        out.push(e);
                    }
                }
            }
        }
        Ok(())
    }

    fn all_entries(&self) -> Result<Vec<RtEntry>> {
        let mut out = Vec::with_capacity(self.entry_count as usize);
        for i in 0..self.blocks.len() {
            out.extend(self.read_block(i)?);
        }
        Ok(out)
    }

    fn destroy(&self) -> Result<()> {
        self.cache.invalidate_file(self.file_id);
        let _ = std::fs::remove_file(Self::marker(&self.path));
        std::fs::remove_file(&self.path)?;
        Ok(())
    }
}

struct RtState {
    mem: Vec<RtEntry>,
    mem_bytes: usize,
    disk: Vec<Arc<RtDiskComponent>>, // newest first
    next_seq: u64,
}

/// An LSM-ified R-tree.
pub struct LsmRTree {
    dir: PathBuf,
    cache: Arc<BufferCache>,
    mem_budget: usize,
    state: RwLock<RtState>,
}

impl LsmRTree {
    /// Open (or create) an LSM R-tree at `dir`, scavenging invalid
    /// components left by crashes.
    pub fn open(dir: &Path, mem_budget: usize, cache: Arc<BufferCache>) -> Result<LsmRTree> {
        std::fs::create_dir_all(dir)?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let p = entry?.path();
            if p.extension().and_then(|e| e.to_str()) == Some("dat") {
                if RtDiskComponent::marker(&p).exists() {
                    paths.push(p);
                } else {
                    let _ = std::fs::remove_file(&p);
                }
            }
        }
        paths.sort();
        let mut disk = Vec::with_capacity(paths.len());
        for p in paths {
            disk.push(RtDiskComponent::open(&p, Arc::clone(&cache))?);
        }
        disk.sort_by_key(|c| std::cmp::Reverse(c.seq));
        let next_seq = disk.iter().map(|c| c.seq + 1).max().unwrap_or(0);
        Ok(LsmRTree {
            dir: dir.to_path_buf(),
            cache,
            mem_budget: mem_budget.max(1024),
            state: RwLock::new(RtState { mem: Vec::new(), mem_bytes: 0, disk, next_seq }),
        })
    }

    /// Insert an entry for `mbr` pointing at primary key `pk`.
    pub fn insert(&self, mbr: Rectangle, pk: &[Value]) -> Result<()> {
        self.write(RtEntry { mbr, antimatter: false, pk: encode_key(pk)? })
    }

    /// Delete the entry `(mbr, pk)` (antimatter).
    pub fn delete(&self, mbr: Rectangle, pk: &[Value]) -> Result<()> {
        self.write(RtEntry { mbr, antimatter: true, pk: encode_key(pk)? })
    }

    fn write(&self, e: RtEntry) -> Result<()> {
        let needs_flush = {
            let mut st = self.state.write();
            st.mem_bytes += 48 + e.pk.len();
            st.mem.push(e);
            st.mem_bytes >= self.mem_budget
        };
        if needs_flush {
            self.flush()?;
        }
        Ok(())
    }

    /// Spatial search: all live primary keys whose MBR intersects `query`.
    pub fn search(&self, query: &Rectangle) -> Result<Vec<Vec<Value>>> {
        let st = self.state.read();
        // Collect matches in recency order: memory (newest last inserted —
        // scan in reverse), then disk newest → oldest. The first occurrence
        // of an identity decides liveness.
        let mut seen: std::collections::HashSet<(u64, u64, u64, u64, Vec<u8>)> =
            std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut consider = |e: &RtEntry, out: &mut Vec<Vec<Value>>| -> Result<()> {
            let id = e.identity();
            let key = (id.0, id.1, id.2, id.3, id.4.to_vec());
            if seen.insert(key) && !e.antimatter {
                out.push(decode_key(&e.pk)?);
            }
            Ok(())
        };
        for e in st.mem.iter().rev() {
            if e.mbr.intersects(query) {
                consider(e, &mut out)?;
            }
        }
        let mut hits = Vec::new();
        for comp in &st.disk {
            hits.clear();
            comp.search(query, &mut hits)?;
            for e in &hits {
                consider(e, &mut out)?;
            }
        }
        Ok(out)
    }

    /// Flush the memory component into an STR-packed disk component.
    pub fn flush(&self) -> Result<()> {
        let (entries, seq) = {
            let mut st = self.state.write();
            if st.mem.is_empty() {
                return Ok(());
            }
            let entries = std::mem::take(&mut st.mem);
            st.mem_bytes = 0;
            let seq = st.next_seq;
            st.next_seq += 1;
            (entries, seq)
        };
        // Within one memory component, later writes shadow earlier ones with
        // the same identity; dedup keeping the newest.
        let mut dedup: Vec<RtEntry> = Vec::with_capacity(entries.len());
        let mut seen = std::collections::HashSet::new();
        for e in entries.into_iter().rev() {
            let id = e.identity();
            let key = (id.0, id.1, id.2, id.3, id.4.to_vec());
            if seen.insert(key) {
                dedup.push(e);
            }
        }
        let path = self.dir.join(format!("c_{seq:012}.dat"));
        let comp = RtDiskComponent::build(&path, Arc::clone(&self.cache), seq, dedup)?;
        self.state.write().disk.insert(0, comp);
        Ok(())
    }

    /// Merge every disk component into one, dropping antimatter.
    pub fn merge_all(&self) -> Result<()> {
        let comps = self.state.read().disk.clone();
        if comps.len() < 2 {
            return Ok(());
        }
        let max_seq = comps.iter().map(|c| c.seq).max().unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut live = Vec::new();
        for comp in &comps {
            // comps is newest → oldest; first identity wins.
            for e in comp.all_entries()? {
                let id = e.identity();
                let key = (id.0, id.1, id.2, id.3, id.4.to_vec());
                if seen.insert(key) && !e.antimatter {
                    live.push(e);
                }
            }
        }
        let path = self.dir.join(format!("c_{max_seq:012}m.dat"));
        let merged = RtDiskComponent::build(&path, Arc::clone(&self.cache), max_seq, live)?;
        {
            let mut st = self.state.write();
            let merged_paths: Vec<PathBuf> = comps.iter().map(|c| c.path.clone()).collect();
            st.disk.retain(|c| !merged_paths.contains(&c.path));
            st.disk.push(merged);
            st.disk.sort_by_key(|c| std::cmp::Reverse(c.seq));
        }
        for c in &comps {
            c.destroy()?;
        }
        Ok(())
    }

    /// Number of disk components.
    pub fn disk_component_count(&self) -> usize {
        self.state.read().disk.len()
    }

    /// Total size (Table 2 accounting).
    pub fn size_bytes(&self) -> u64 {
        let st = self.state.read();
        st.disk.iter().map(|c| c.file_len).sum::<u64>() + st.mem_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::value::Point;
    use tempfile::TempDir;

    fn pt_rect(x: f64, y: f64) -> Rectangle {
        Rectangle::new(Point::new(x, y), Point::new(x, y))
    }

    fn query(x0: f64, y0: f64, x1: f64, y1: f64) -> Rectangle {
        Rectangle::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn insert_search_memory() {
        let dir = TempDir::new().unwrap();
        let t = LsmRTree::open(dir.path(), 1 << 20, BufferCache::new(64)).unwrap();
        for i in 0..100 {
            t.insert(pt_rect(i as f64, i as f64), &[Value::Int64(i)]).unwrap();
        }
        let hits = t.search(&query(10.0, 10.0, 20.0, 20.0)).unwrap();
        assert_eq!(hits.len(), 11);
    }

    #[test]
    fn flush_and_search_disk() {
        let dir = TempDir::new().unwrap();
        let t = LsmRTree::open(dir.path(), 1 << 20, BufferCache::new(64)).unwrap();
        for i in 0..500 {
            let (x, y) = ((i % 50) as f64, (i / 50) as f64);
            t.insert(pt_rect(x, y), &[Value::Int64(i)]).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.disk_component_count(), 1);
        let hits = t.search(&query(0.0, 0.0, 4.0, 4.0)).unwrap();
        assert_eq!(hits.len(), 25);
        // Reopen from disk.
        drop(t);
        let t2 = LsmRTree::open(dir.path(), 1 << 20, BufferCache::new(64)).unwrap();
        let hits = t2.search(&query(0.0, 0.0, 4.0, 4.0)).unwrap();
        assert_eq!(hits.len(), 25);
    }

    #[test]
    fn antimatter_shadows_older_components() {
        let dir = TempDir::new().unwrap();
        let t = LsmRTree::open(dir.path(), 1 << 20, BufferCache::new(64)).unwrap();
        t.insert(pt_rect(1.0, 1.0), &[Value::Int64(7)]).unwrap();
        t.flush().unwrap();
        t.delete(pt_rect(1.0, 1.0), &[Value::Int64(7)]).unwrap();
        let hits = t.search(&query(0.0, 0.0, 2.0, 2.0)).unwrap();
        assert!(hits.is_empty());
        t.flush().unwrap();
        let hits = t.search(&query(0.0, 0.0, 2.0, 2.0)).unwrap();
        assert!(hits.is_empty());
        // Merge compacts the tombstone away.
        t.merge_all().unwrap();
        assert_eq!(t.disk_component_count(), 1);
        let hits = t.search(&query(0.0, 0.0, 2.0, 2.0)).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn str_packing_clusters_blocks() {
        let dir = TempDir::new().unwrap();
        let t = LsmRTree::open(dir.path(), 8 << 20, BufferCache::new(1024)).unwrap();
        // A 100x100 grid of points.
        let mut i = 0i64;
        for x in 0..100 {
            for y in 0..100 {
                t.insert(pt_rect(x as f64, y as f64), &[Value::Int64(i)]).unwrap();
                i += 1;
            }
        }
        t.flush().unwrap();
        // A small window should hit a small fraction of blocks; verify the
        // result is exactly right.
        let hits = t.search(&query(10.0, 10.0, 12.0, 12.0)).unwrap();
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn mixed_shapes() {
        let dir = TempDir::new().unwrap();
        let t = LsmRTree::open(dir.path(), 1 << 20, BufferCache::new(64)).unwrap();
        t.insert(query(0.0, 0.0, 5.0, 5.0), &[Value::Int64(1)]).unwrap();
        t.insert(query(10.0, 10.0, 15.0, 15.0), &[Value::Int64(2)]).unwrap();
        let hits = t.search(&query(4.0, 4.0, 11.0, 11.0)).unwrap();
        assert_eq!(hits.len(), 2);
        let hits = t.search(&query(6.0, 6.0, 9.0, 9.0)).unwrap();
        assert_eq!(hits.len(), 0);
    }
}
