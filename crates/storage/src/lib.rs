//! # asterix-storage — LSM-based storage and indexing
//!
//! The storage layer of the AsterixDB reproduction (paper §4.3): a generic
//! LSM-ification framework (in-memory component, immutable bloom-filtered
//! disk components, flush/merge with pluggable merge policies, antimatter
//! deletes, validity-marker shadowing), an order-preserving key codec for
//! ADM values, and three concrete index structures on top of it — the LSM
//! B+-tree, the LSM R-tree, and LSM inverted (keyword / n-gram) indexes —
//! all sharing one buffer cache.

pub mod bloom;
pub mod btree;
pub mod cache;
pub mod columnar;
pub mod component;
pub mod error;
pub mod inverted;
pub mod keycodec;
pub mod lsm;
pub mod rtree;

pub use cache::BufferCache;
pub use columnar::{
    CmpOp, ColumnFilter, ColumnarOptions, ColumnarStats, Projection, RowCodec, SelfDescribingCodec,
};
pub use component::{DiskComponent, Entry, ProjEntry, ProjKind};
pub use error::{Result, StorageError};
pub use lsm::{LsmConfig, LsmMetrics, LsmObserver, LsmTree, MergePolicy, NullObserver, ScanValue};
