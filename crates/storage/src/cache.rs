//! A shared buffer cache for disk-component pages.
//!
//! Disk components read their data in fixed-size pages through this cache;
//! it bounds memory and avoids re-reading hot pages (e.g. the root of the
//! page index, or frequently probed leaf pages). Eviction is CLOCK —
//! simpler than LRU under a lock and good enough for a scan+probe mix.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Default page size for disk components (4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Cache key: a component-unique file id plus the page index in that file.
pub type PageKey = (u64, u32);

struct Slot {
    key: PageKey,
    data: Arc<Vec<u8>>,
    referenced: bool,
}

struct CacheInner {
    map: HashMap<PageKey, usize>,
    slots: Vec<Option<Slot>>,
    hand: usize,
}

/// A fixed-capacity page cache shared by every LSM index on a node.
pub struct BufferCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferCache {
    /// Create a cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(8);
        Arc::new(BufferCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::with_capacity(capacity),
                slots: (0..capacity).map(|_| None).collect(),
                hand: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Look up a page; on miss, `load` is invoked to fetch it and the result
    /// is cached.
    pub fn get_or_load<E>(
        &self,
        key: PageKey,
        load: impl FnOnce() -> std::result::Result<Vec<u8>, E>,
    ) -> std::result::Result<Arc<Vec<u8>>, E> {
        {
            let mut inner = self.inner.lock();
            if let Some(&slot_idx) = inner.map.get(&key) {
                if let Some(slot) = inner.slots[slot_idx].as_mut() {
                    slot.referenced = true;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(&slot.data));
                }
            }
        }
        // Load outside the lock; a racing thread may load the same page —
        // harmless (last writer wins, both Arcs are valid).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(load()?);
        let mut inner = self.inner.lock();
        let idx = Self::evict_slot(&mut inner, self.capacity);
        if let Some(old) = inner.slots[idx].take() {
            inner.map.remove(&old.key);
        }
        inner.map.insert(key, idx);
        inner.slots[idx] = Some(Slot { key, data: Arc::clone(&data), referenced: true });
        Ok(data)
    }

    fn evict_slot(inner: &mut CacheInner, capacity: usize) -> usize {
        // CLOCK sweep: clear reference bits until an unreferenced slot (or
        // an empty one) is found.
        for _ in 0..capacity * 2 {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % capacity;
            match inner.slots[idx].as_mut() {
                None => return idx,
                Some(slot) if !slot.referenced => return idx,
                Some(slot) => slot.referenced = false,
            }
        }
        inner.hand
    }

    /// Drop all pages belonging to a file (component deletion after merge).
    pub fn invalidate_file(&self, file_id: u64) {
        let mut inner = self.inner.lock();
        let keys: Vec<PageKey> =
            inner.map.keys().filter(|(f, _)| *f == file_id).copied().collect();
        for k in keys {
            if let Some(idx) = inner.map.remove(&k) {
                inner.slots[idx] = None;
            }
        }
    }

    /// (hits, misses) counters — used by cache-behaviour tests and stats.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

/// Generator of unique file ids for cache keying.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique file id.
pub fn next_file_id() -> u64 {
    NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_load() {
        let cache = BufferCache::new(16);
        let loads = std::cell::Cell::new(0);
        for _ in 0..3 {
            let page = cache
                .get_or_load::<()>((1, 0), || {
                    loads.set(loads.get() + 1);
                    Ok(vec![7u8; 10])
                })
                .unwrap();
            assert_eq!(page[0], 7);
        }
        assert_eq!(loads.get(), 1);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn eviction_under_pressure() {
        let cache = BufferCache::new(8);
        for i in 0..64u32 {
            cache.get_or_load::<()>((1, i), || Ok(vec![i as u8])).unwrap();
        }
        // Cache holds at most 8 pages; re-reading an early page must reload.
        let mut reloaded = false;
        cache
            .get_or_load::<()>((1, 0), || {
                reloaded = true;
                Ok(vec![0])
            })
            .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn invalidation() {
        let cache = BufferCache::new(8);
        cache.get_or_load::<()>((5, 0), || Ok(vec![1])).unwrap();
        cache.invalidate_file(5);
        let mut reloaded = false;
        cache
            .get_or_load::<()>((5, 0), || {
                reloaded = true;
                Ok(vec![2])
            })
            .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn load_errors_propagate() {
        let cache = BufferCache::new(8);
        let r = cache.get_or_load::<String>((9, 9), || Err("boom".to_string()));
        assert_eq!(r.unwrap_err(), "boom");
    }
}
