//! A shared buffer cache for disk-component pages.
//!
//! Disk components read their data in fixed-size pages through this cache;
//! it bounds memory and avoids re-reading hot pages (e.g. the root of the
//! page index, or frequently probed leaf pages). Eviction is CLOCK —
//! simpler than LRU under a lock and good enough for a scan+probe mix.
//!
//! The cache is **lock-striped**: pages are spread across N shards by a
//! hash of their [`PageKey`], each shard guarded by its own mutex with its
//! own CLOCK hand. Concurrent partition scans that previously serialized
//! on one global lock now mostly touch distinct shards. Hit/miss counters
//! are kept **per shard** (obs [`Counter`]s, so they can be registered in
//! a [`MetricsRegistry`]) and aggregated on read.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use asterix_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;

/// Default page size for disk components (4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Cache key: a component-unique file id plus the page index in that file.
pub type PageKey = (u64, u32);

/// Default shard count for [`BufferCache::new`]; small caches collapse to
/// fewer shards so every shard keeps a useful number of slots.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Minimum slots per shard — below this, striping hurts hit rates more
/// than the lock contention it saves.
const MIN_SLOTS_PER_SHARD: usize = 8;

struct Slot {
    key: PageKey,
    data: Arc<Vec<u8>>,
    referenced: bool,
}

struct CacheShard {
    map: HashMap<PageKey, usize>,
    slots: Vec<Option<Slot>>,
    hand: usize,
}

impl CacheShard {
    fn new(capacity: usize) -> CacheShard {
        CacheShard {
            map: HashMap::with_capacity(capacity),
            slots: (0..capacity).map(|_| None).collect(),
            hand: 0,
        }
    }

    fn evict_slot(&mut self) -> usize {
        let capacity = self.slots.len();
        // CLOCK sweep: clear reference bits until an unreferenced slot (or
        // an empty one) is found.
        for _ in 0..capacity * 2 {
            let idx = self.hand;
            self.hand = (self.hand + 1) % capacity;
            match self.slots[idx].as_mut() {
                None => return idx,
                Some(slot) if !slot.referenced => return idx,
                Some(slot) => slot.referenced = false,
            }
        }
        self.hand
    }
}

/// Per-shard hit/miss counters, cheap to clone into a metrics registry.
#[derive(Debug, Default)]
struct ShardCounters {
    hits: Counter,
    misses: Counter,
}

/// A fixed-capacity page cache shared by every LSM index on a node.
pub struct BufferCache {
    shards: Vec<Mutex<CacheShard>>,
    counters: Vec<ShardCounters>,
}

impl BufferCache {
    /// Create a cache holding at most (about) `capacity` pages, with the
    /// default shard count.
    pub fn new(capacity: usize) -> Arc<Self> {
        BufferCache::with_shards(capacity, DEFAULT_CACHE_SHARDS)
    }

    /// Create a cache with an explicit shard count. The shard count is
    /// clamped so each shard keeps at least [`MIN_SLOTS_PER_SHARD`] slots:
    /// a capacity-8 cache is one shard regardless of the request, so small
    /// configurations keep the exact eviction behaviour of a single CLOCK.
    pub fn with_shards(capacity: usize, shards: usize) -> Arc<Self> {
        let capacity = capacity.max(MIN_SLOTS_PER_SHARD);
        let nshards = shards.max(1).min(capacity / MIN_SLOTS_PER_SHARD).max(1);
        let per_shard = capacity / nshards;
        Arc::new(BufferCache {
            shards: (0..nshards).map(|_| Mutex::new(CacheShard::new(per_shard))).collect(),
            counters: (0..nshards).map(|_| ShardCounters::default()).collect(),
        })
    }

    fn shard_of(&self, key: &PageKey) -> usize {
        // FNV-1a over the key bytes; independent of HashMap's hasher.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.0.to_le_bytes().into_iter().chain(key.1.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Look up a page; on miss, `load` is invoked to fetch it and the result
    /// is cached.
    pub fn get_or_load<E>(
        &self,
        key: PageKey,
        load: impl FnOnce() -> std::result::Result<Vec<u8>, E>,
    ) -> std::result::Result<Arc<Vec<u8>>, E> {
        let shard_idx = self.shard_of(&key);
        let shard = &self.shards[shard_idx];
        {
            let mut inner = shard.lock();
            if let Some(&slot_idx) = inner.map.get(&key) {
                if let Some(slot) = inner.slots[slot_idx].as_mut() {
                    slot.referenced = true;
                    self.counters[shard_idx].hits.inc();
                    return Ok(Arc::clone(&slot.data));
                }
            }
        }
        // Load outside the lock; a racing thread may load the same page —
        // harmless (last writer wins, both Arcs are valid).
        self.counters[shard_idx].misses.inc();
        let data = Arc::new(load()?);
        let mut inner = shard.lock();
        let idx = inner.evict_slot();
        if let Some(old) = inner.slots[idx].take() {
            inner.map.remove(&old.key);
        }
        inner.map.insert(key, idx);
        inner.slots[idx] = Some(Slot { key, data: Arc::clone(&data), referenced: true });
        Ok(data)
    }

    /// Drop all pages belonging to a file (component deletion after merge).
    pub fn invalidate_file(&self, file_id: u64) {
        for shard in &self.shards {
            let mut inner = shard.lock();
            let keys: Vec<PageKey> =
                inner.map.keys().filter(|(f, _)| *f == file_id).copied().collect();
            for k in keys {
                if let Some(idx) = inner.map.remove(&k) {
                    inner.slots[idx] = None;
                }
            }
        }
    }

    /// Number of lock stripes in use.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// (hits, misses) counters aggregated over every shard — used by
    /// cache-behaviour tests and stats.
    pub fn stats(&self) -> (u64, u64) {
        self.counters.iter().fold((0, 0), |(h, m), c| (h + c.hits.get(), m + c.misses.get()))
    }

    /// Per-shard (hits, misses) readings, in shard order.
    pub fn per_shard_stats(&self) -> Vec<(u64, u64)> {
        self.counters.iter().map(|c| (c.hits.get(), c.misses.get())).collect()
    }

    /// Register every shard's hit/miss counters under
    /// `{prefix}.shard{N}.{hits,misses}`.
    pub fn register_into(&self, reg: &MetricsRegistry, prefix: &str) {
        for (i, c) in self.counters.iter().enumerate() {
            reg.register_counter(&format!("{prefix}.shard{i}.hits"), &c.hits);
            reg.register_counter(&format!("{prefix}.shard{i}.misses"), &c.misses);
        }
    }

    /// Fraction of lookups served from memory, 0.0 when the cache is cold.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.stats();
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Generator of unique file ids for cache keying.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique file id.
pub fn next_file_id() -> u64 {
    NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_load() {
        let cache = BufferCache::new(16);
        let loads = std::cell::Cell::new(0);
        for _ in 0..3 {
            let page = cache
                .get_or_load::<()>((1, 0), || {
                    loads.set(loads.get() + 1);
                    Ok(vec![7u8; 10])
                })
                .unwrap();
            assert_eq!(page[0], 7);
        }
        assert_eq!(loads.get(), 1);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn eviction_under_pressure() {
        let cache = BufferCache::new(8);
        for i in 0..64u32 {
            cache.get_or_load::<()>((1, i), || Ok(vec![i as u8])).unwrap();
        }
        // Cache holds at most 8 pages; re-reading an early page must reload.
        let mut reloaded = false;
        cache
            .get_or_load::<()>((1, 0), || {
                reloaded = true;
                Ok(vec![0])
            })
            .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn invalidation() {
        let cache = BufferCache::new(8);
        cache.get_or_load::<()>((5, 0), || Ok(vec![1])).unwrap();
        cache.invalidate_file(5);
        let mut reloaded = false;
        cache
            .get_or_load::<()>((5, 0), || {
                reloaded = true;
                Ok(vec![2])
            })
            .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn load_errors_propagate() {
        let cache = BufferCache::new(8);
        let r = cache.get_or_load::<String>((9, 9), || Err("boom".to_string()));
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn small_caches_collapse_to_one_shard() {
        assert_eq!(BufferCache::with_shards(8, 8).shard_count(), 1);
        assert_eq!(BufferCache::with_shards(64, 8).shard_count(), 8);
        assert_eq!(BufferCache::with_shards(32, 8).shard_count(), 4);
        assert_eq!(BufferCache::with_shards(4096, 8).shard_count(), 8);
    }

    #[test]
    fn per_shard_stats_sum_to_aggregate_and_register() {
        let cache = BufferCache::with_shards(64, 4);
        for i in 0..32u32 {
            cache.get_or_load::<()>((1, i), || Ok(vec![0])).unwrap();
        }
        for i in 0..32u32 {
            cache.get_or_load::<()>((1, i), || Ok(vec![0])).unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (32, 32));
        let shards = cache.per_shard_stats();
        assert_eq!(shards.len(), cache.shard_count());
        assert_eq!(shards.iter().map(|(h, _)| h).sum::<u64>(), hits);
        assert_eq!(shards.iter().map(|(_, m)| m).sum::<u64>(), misses);

        let reg = MetricsRegistry::default();
        cache.register_into(&reg, "cache.node0");
        assert_eq!(reg.names().len(), 2 * cache.shard_count());
        // The registered counters are live views of the shard counters.
        cache.get_or_load::<()>((1, 0), || Ok(vec![0])).unwrap();
        let total: u64 = reg
            .snapshot()
            .into_iter()
            .map(|(_, v)| match v {
                asterix_obs::MetricValue::Counter(n) => n,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 65);
    }

    #[test]
    fn sharded_cache_serves_concurrent_readers() {
        let cache = BufferCache::with_shards(256, 8);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for round in 0..3 {
                    for i in 0..32u32 {
                        let page =
                            cache.get_or_load::<()>((t, i), || Ok(vec![(i % 251) as u8])).unwrap();
                        assert_eq!(page[0], (i % 251) as u8, "round {round}");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        // 4 threads × 3 rounds × 32 pages = 384 lookups; at most one load
        // per distinct page (no eviction pressure at 256 slots), modulo
        // benign double-loads from the race outside the lock.
        assert_eq!(hits + misses, 384);
        assert!(hits >= 4 * 2 * 32, "re-reads should hit: {hits} hits / {misses} misses");
        assert!(cache.hit_rate() > 0.5);
    }
}
