//! Printing ADM values in ADM text syntax (and plain JSON).
//!
//! ADM text is a superset of JSON: temporal and spatial values are printed
//! with constructor syntax (`datetime("...")`, `point("x,y")`) and bags are
//! printed with double braces.

use std::fmt;

use crate::value::{temporal_literal, Value};

/// Write `v` in ADM text syntax to any formatter; used by `Display`.
pub fn write_value(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    let mut out = String::new();
    to_adm_string_into(&mut out, v);
    f.write_str(&out)
}

/// Render a value as ADM text.
pub fn to_adm_string(v: &Value) -> String {
    let mut out = String::new();
    to_adm_string_into(&mut out, v);
    out
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1.0e15 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn to_adm_string_into(out: &mut String, v: &Value) {
    if let Some((ctor, body)) = temporal_literal(v) {
        out.push_str(ctor);
        out.push_str("(\"");
        out.push_str(&body);
        out.push_str("\")");
        return;
    }
    match v {
        Value::Missing => out.push_str("missing"),
        Value::Null => out.push_str("null"),
        Value::Boolean(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int8(i) => out.push_str(&format!("{i}i8")),
        Value::Int16(i) => out.push_str(&format!("{i}i16")),
        Value::Int32(i) => out.push_str(&i.to_string()),
        Value::Int64(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            push_f64(out, *x as f64);
            out.push('f');
        }
        Value::Double(x) => push_f64(out, *x),
        Value::String(s) => push_escaped(out, s),
        Value::Interval(iv) => {
            use crate::temporal::{format_date, format_datetime, format_time};
            use crate::value::IntervalKind;
            let (s, e) = match iv.kind {
                IntervalKind::Date => (format_date(iv.start as i32), format_date(iv.end as i32)),
                IntervalKind::Time => (format_time(iv.start as i32), format_time(iv.end as i32)),
                IntervalKind::DateTime => (format_datetime(iv.start), format_datetime(iv.end)),
            };
            out.push_str(&format!("interval(\"{s}, {e}\")"));
        }
        Value::Point(p) => out.push_str(&format!("point(\"{},{}\")", p.x, p.y)),
        Value::Line(l) => {
            out.push_str(&format!("line(\"{},{} {},{}\")", l.a.x, l.a.y, l.b.x, l.b.y))
        }
        Value::Rectangle(r) => out
            .push_str(&format!("rectangle(\"{},{} {},{}\")", r.low.x, r.low.y, r.high.x, r.high.y)),
        Value::Circle(c) => {
            out.push_str(&format!("circle(\"{},{} {}\")", c.center.x, c.center.y, c.radius))
        }
        Value::Polygon(ps) => {
            out.push_str("polygon(\"");
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("{},{}", p.x, p.y));
            }
            out.push_str("\")");
        }
        Value::Binary(b) => {
            out.push_str("hex(\"");
            for byte in b.iter() {
                out.push_str(&format!("{byte:02x}"));
            }
            out.push_str("\")");
        }
        Value::Duration(_)
        | Value::YearMonthDuration(_)
        | Value::DayTimeDuration(_)
        | Value::Date(_)
        | Value::Time(_)
        | Value::DateTime(_) => unreachable!("handled above"),
        Value::Record(r) => {
            out.push_str("{ ");
            for (i, (name, val)) in r.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_escaped(out, name);
                out.push_str(": ");
                to_adm_string_into(out, val);
            }
            out.push_str(" }");
        }
        Value::OrderedList(items) => {
            out.push_str("[ ");
            for (i, val) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                to_adm_string_into(out, val);
            }
            out.push_str(" ]");
        }
        Value::UnorderedList(items) => {
            out.push_str("{{ ");
            for (i, val) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                to_adm_string_into(out, val);
            }
            out.push_str(" }}");
        }
    }
}

/// Render a value as plain JSON, downgrading ADM extensions: temporal values
/// become ISO strings, bags become arrays, missing becomes null. This is the
/// "data output format" path that the behavioral-analysis pilot motivated.
pub fn to_json_string(v: &Value) -> String {
    let mut out = String::new();
    to_json_into(&mut out, v);
    out
}

fn to_json_into(out: &mut String, v: &Value) {
    use crate::temporal::{format_date, format_datetime, format_duration, format_time};
    match v {
        Value::Missing | Value::Null => out.push_str("null"),
        Value::Boolean(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int8(i) => out.push_str(&i.to_string()),
        Value::Int16(i) => out.push_str(&i.to_string()),
        Value::Int32(i) => out.push_str(&i.to_string()),
        Value::Int64(i) => out.push_str(&i.to_string()),
        Value::Float(x) => out.push_str(&format!("{x}")),
        Value::Double(x) => out.push_str(&format!("{x}")),
        Value::String(s) => push_escaped(out, s),
        Value::Date(d) => push_escaped(out, &format_date(*d)),
        Value::Time(t) => push_escaped(out, &format_time(*t)),
        Value::DateTime(t) => push_escaped(out, &format_datetime(*t)),
        Value::Duration(d) => push_escaped(out, &format_duration(d.months, d.millis)),
        Value::YearMonthDuration(m) => push_escaped(out, &format_duration(*m, 0)),
        Value::DayTimeDuration(ms) => push_escaped(out, &format_duration(0, *ms)),
        Value::Interval(_)
        | Value::Point(_)
        | Value::Line(_)
        | Value::Rectangle(_)
        | Value::Circle(_)
        | Value::Polygon(_)
        | Value::Binary(_) => push_escaped(out, &to_adm_string(v)),
        Value::Record(r) => {
            out.push('{');
            for (i, (name, val)) in r.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(out, name);
                out.push(':');
                to_json_into(out, val);
            }
            out.push('}');
        }
        Value::OrderedList(items) | Value::UnorderedList(items) => {
            out.push('[');
            for (i, val) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                to_json_into(out, val);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Point, Record};

    #[test]
    fn adm_text_shapes() {
        let v = Value::record(Record::from_fields([
            ("id", Value::Int32(1)),
            ("tags", Value::unordered_list(vec![Value::string("a"), Value::string("b")])),
            ("loc", Value::Point(Point::new(1.5, -2.0))),
        ]));
        let s = to_adm_string(&v);
        assert!(s.contains("{{ \"a\", \"b\" }}"), "{s}");
        assert!(s.contains("point(\"1.5,-2\")"), "{s}");
    }

    #[test]
    fn string_escaping() {
        let v = Value::string("a\"b\\c\nd");
        assert_eq!(to_adm_string(&v), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_downgrade() {
        let v = Value::record(Record::from_fields([
            ("when", Value::DateTime(0)),
            ("bag", Value::unordered_list(vec![Value::Int32(1)])),
            ("gone", Value::Missing),
        ]));
        let s = to_json_string(&v);
        assert_eq!(s, "{\"when\":\"1970-01-01T00:00:00\",\"bag\":[1],\"gone\":null}");
    }
}
