//! Spatial builtins from Table 1: `spatial-distance`, `spatial-area`,
//! `spatial-intersect`, and `spatial-cell`, over points, lines, rectangles,
//! circles, and polygons.

use crate::error::{AdmError, Result};
use crate::value::{Line, Point, Rectangle, Value};

/// `spatial-distance(a, b)` — Euclidean distance between two points.
pub fn spatial_distance(a: &Value, b: &Value) -> Result<f64> {
    match (a, b) {
        (Value::Point(p), Value::Point(q)) => Ok(p.distance(q)),
        _ => Err(AdmError::InvalidArgument(format!(
            "spatial-distance expects points, got {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

/// `spatial-area(g)` — area of a rectangle, circle, or simple polygon.
pub fn spatial_area(g: &Value) -> Result<f64> {
    match g {
        Value::Rectangle(r) => Ok(r.area()),
        Value::Circle(c) => Ok(std::f64::consts::PI * c.radius * c.radius),
        Value::Polygon(ps) => Ok(polygon_area(ps)),
        _ => Err(AdmError::InvalidArgument(format!(
            "spatial-area expects rectangle/circle/polygon, got {}",
            g.type_name()
        ))),
    }
}

/// Shoelace formula for a simple polygon.
pub fn polygon_area(ps: &[Point]) -> f64 {
    if ps.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..ps.len() {
        let j = (i + 1) % ps.len();
        acc += ps[i].x * ps[j].y - ps[j].x * ps[i].y;
    }
    acc.abs() / 2.0
}

/// The minimum bounding rectangle of any spatial value — the key primitive
/// behind the R-tree index on `sender-location`.
pub fn mbr(g: &Value) -> Result<Rectangle> {
    match g {
        Value::Point(p) => Ok(Rectangle::new(*p, *p)),
        Value::Line(l) => Ok(Rectangle::new(
            Point::new(l.a.x.min(l.b.x), l.a.y.min(l.b.y)),
            Point::new(l.a.x.max(l.b.x), l.a.y.max(l.b.y)),
        )),
        Value::Rectangle(r) => Ok(*r),
        Value::Circle(c) => Ok(Rectangle::new(
            Point::new(c.center.x - c.radius, c.center.y - c.radius),
            Point::new(c.center.x + c.radius, c.center.y + c.radius),
        )),
        Value::Polygon(ps) => {
            let mut lo = Point::new(f64::INFINITY, f64::INFINITY);
            let mut hi = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
            for p in ps.iter() {
                lo.x = lo.x.min(p.x);
                lo.y = lo.y.min(p.y);
                hi.x = hi.x.max(p.x);
                hi.y = hi.y.max(p.y);
            }
            Ok(Rectangle::new(lo, hi))
        }
        _ => Err(AdmError::InvalidArgument(format!(
            "expected a spatial value, got {}",
            g.type_name()
        ))),
    }
}

fn point_in_polygon(p: &Point, ps: &[Point]) -> bool {
    // Ray casting.
    let mut inside = false;
    let mut j = ps.len() - 1;
    for i in 0..ps.len() {
        let (a, b) = (&ps[i], &ps[j]);
        if (a.y > p.y) != (b.y > p.y) {
            let x_at = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
            if p.x < x_at {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

fn seg_distance_to_point(l: &Line, p: &Point) -> f64 {
    let (dx, dy) = (l.b.x - l.a.x, l.b.y - l.a.y);
    let len2 = dx * dx + dy * dy;
    if len2 == 0.0 {
        return l.a.distance(p);
    }
    let t = (((p.x - l.a.x) * dx + (p.y - l.a.y) * dy) / len2).clamp(0.0, 1.0);
    Point::new(l.a.x + t * dx, l.a.y + t * dy).distance(p)
}

fn segments_intersect(l1: &Line, l2: &Line) -> bool {
    fn orient(a: &Point, b: &Point, c: &Point) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }
    fn on_segment(a: &Point, b: &Point, c: &Point) -> bool {
        c.x >= a.x.min(b.x) && c.x <= a.x.max(b.x) && c.y >= a.y.min(b.y) && c.y <= a.y.max(b.y)
    }
    let d1 = orient(&l2.a, &l2.b, &l1.a);
    let d2 = orient(&l2.a, &l2.b, &l1.b);
    let d3 = orient(&l1.a, &l1.b, &l2.a);
    let d4 = orient(&l1.a, &l1.b, &l2.b);
    if ((d1 > 0.0) != (d2 > 0.0) || d1 == 0.0 || d2 == 0.0)
        && ((d3 > 0.0) != (d4 > 0.0) || d3 == 0.0 || d4 == 0.0)
    {
        if d1 == 0.0
            && !on_segment(&l2.a, &l2.b, &l1.a)
            && d2 == 0.0
            && !on_segment(&l2.a, &l2.b, &l1.b)
        {
            return false;
        }
        return (d1 > 0.0) != (d2 > 0.0) && (d3 > 0.0) != (d4 > 0.0)
            || (d1 == 0.0 && on_segment(&l2.a, &l2.b, &l1.a))
            || (d2 == 0.0 && on_segment(&l2.a, &l2.b, &l1.b))
            || (d3 == 0.0 && on_segment(&l1.a, &l1.b, &l2.a))
            || (d4 == 0.0 && on_segment(&l1.a, &l1.b, &l2.b));
    }
    false
}

/// `spatial-intersect(a, b)` — geometric intersection test across the
/// supported shape pairs.
pub fn spatial_intersect(a: &Value, b: &Value) -> Result<bool> {
    use Value::*;
    Ok(match (a, b) {
        (Point(p), Point(q)) => p == q,
        (Point(p), Rectangle(r)) | (Rectangle(r), Point(p)) => r.contains_point(p),
        (Point(p), Circle(c)) | (Circle(c), Point(p)) => c.center.distance(p) <= c.radius,
        (Point(p), Polygon(ps)) | (Polygon(ps), Point(p)) => point_in_polygon(p, ps),
        (Point(p), Line(l)) | (Line(l), Point(p)) => seg_distance_to_point(l, p) < 1e-9,
        (Rectangle(r), Rectangle(s)) => r.intersects(s),
        (Circle(c), Circle(d)) => c.center.distance(&d.center) <= c.radius + d.radius,
        (Circle(c), Rectangle(r)) | (Rectangle(r), Circle(c)) => {
            let nx = c.center.x.clamp(r.low.x, r.high.x);
            let ny = c.center.y.clamp(r.low.y, r.high.y);
            c.center.distance(&crate::value::Point::new(nx, ny)) <= c.radius
        }
        (Line(l), Line(m)) => segments_intersect(l, m),
        (Line(l), Rectangle(r)) | (Rectangle(r), Line(l)) => {
            r.contains_point(&l.a)
                || r.contains_point(&l.b)
                || rect_edges(r).iter().any(|e| segments_intersect(l, e))
        }
        (Line(l), Circle(c)) | (Circle(c), Line(l)) => {
            seg_distance_to_point(l, &c.center) <= c.radius
        }
        (Polygon(ps), Rectangle(r)) | (Rectangle(r), Polygon(ps)) => {
            ps.iter().any(|p| r.contains_point(p))
                || point_in_polygon(&r.low, ps)
                || poly_edges(ps)
                    .iter()
                    .any(|e| rect_edges(r).iter().any(|f| segments_intersect(e, f)))
        }
        (Polygon(ps), Polygon(qs)) => {
            ps.iter().any(|p| point_in_polygon(p, qs))
                || qs.iter().any(|q| point_in_polygon(q, ps))
                || poly_edges(ps)
                    .iter()
                    .any(|e| poly_edges(qs).iter().any(|f| segments_intersect(e, f)))
        }
        (Polygon(ps), Circle(c)) | (Circle(c), Polygon(ps)) => {
            point_in_polygon(&c.center, ps)
                || poly_edges(ps).iter().any(|e| seg_distance_to_point(e, &c.center) <= c.radius)
        }
        (Polygon(ps), Line(l)) | (Line(l), Polygon(ps)) => {
            point_in_polygon(&l.a, ps)
                || point_in_polygon(&l.b, ps)
                || poly_edges(ps).iter().any(|e| segments_intersect(e, l))
        }
        _ => {
            return Err(AdmError::InvalidArgument(format!(
                "spatial-intersect over {} and {}",
                a.type_name(),
                b.type_name()
            )))
        }
    })
}

fn rect_edges(r: &Rectangle) -> [Line; 4] {
    let (lo, hi) = (r.low, r.high);
    let bl = lo;
    let br = Point::new(hi.x, lo.y);
    let tr = hi;
    let tl = Point::new(lo.x, hi.y);
    [Line { a: bl, b: br }, Line { a: br, b: tr }, Line { a: tr, b: tl }, Line { a: tl, b: bl }]
}

fn poly_edges(ps: &[Point]) -> Vec<Line> {
    (0..ps.len()).map(|i| Line { a: ps[i], b: ps[(i + 1) % ps.len()] }).collect()
}

/// `spatial-cell(p, origin, x-size, y-size)` — the grid cell (as a
/// rectangle) containing point `p` in a grid anchored at `origin`, used for
/// grouped spatial aggregation (the tweet-analytics pilot in §5.2).
pub fn spatial_cell(p: &Value, origin: &Value, xs: f64, ys: f64) -> Result<Rectangle> {
    let (p, o) = match (p, origin) {
        (Value::Point(p), Value::Point(o)) => (p, o),
        _ => {
            return Err(AdmError::InvalidArgument(format!(
                "spatial-cell expects points, got {} and {}",
                p.type_name(),
                origin.type_name()
            )))
        }
    };
    if xs <= 0.0 || ys <= 0.0 {
        return Err(AdmError::InvalidArgument("spatial-cell sizes must be positive".into()));
    }
    let cx = ((p.x - o.x) / xs).floor();
    let cy = ((p.y - o.y) / ys).floor();
    Ok(Rectangle::new(
        Point::new(o.x + cx * xs, o.y + cy * ys),
        Point::new(o.x + (cx + 1.0) * xs, o.y + (cy + 1.0) * ys),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Circle;
    use std::sync::Arc;

    fn pt(x: f64, y: f64) -> Value {
        Value::Point(Point::new(x, y))
    }

    #[test]
    fn distance_and_area() {
        assert_eq!(spatial_distance(&pt(0.0, 0.0), &pt(3.0, 4.0)).unwrap(), 5.0);
        assert!(spatial_distance(&pt(0.0, 0.0), &Value::Int32(1)).is_err());
        let r = Value::Rectangle(Rectangle::new(Point::new(0.0, 0.0), Point::new(2.0, 3.0)));
        assert_eq!(spatial_area(&r).unwrap(), 6.0);
        let c = Value::Circle(Circle { center: Point::new(0.0, 0.0), radius: 1.0 });
        assert!((spatial_area(&c).unwrap() - std::f64::consts::PI).abs() < 1e-12);
        let square = Value::Polygon(Arc::from(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]));
        assert_eq!(spatial_area(&square).unwrap(), 1.0);
    }

    #[test]
    fn intersections() {
        let r = Value::Rectangle(Rectangle::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)));
        assert!(spatial_intersect(&pt(1.0, 1.0), &r).unwrap());
        assert!(!spatial_intersect(&pt(3.0, 1.0), &r).unwrap());
        let c = Value::Circle(Circle { center: Point::new(5.0, 5.0), radius: 1.0 });
        assert!(!spatial_intersect(&c, &r).unwrap());
        let c2 = Value::Circle(Circle { center: Point::new(2.5, 2.0), radius: 1.0 });
        assert!(spatial_intersect(&c2, &r).unwrap());
        let l = Value::Line(Line { a: Point::new(-1.0, 1.0), b: Point::new(3.0, 1.0) });
        assert!(spatial_intersect(&l, &r).unwrap());
        let tri = Value::Polygon(Arc::from(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ]));
        assert!(spatial_intersect(&pt(1.0, 1.0), &tri).unwrap());
        assert!(!spatial_intersect(&pt(3.9, 3.9), &tri).unwrap());
        assert!(spatial_intersect(&tri, &r).unwrap());
    }

    #[test]
    fn mbrs() {
        let l = Value::Line(Line { a: Point::new(2.0, -1.0), b: Point::new(0.0, 3.0) });
        let m = mbr(&l).unwrap();
        assert_eq!(m.low, Point::new(0.0, -1.0));
        assert_eq!(m.high, Point::new(2.0, 3.0));
        let c = Value::Circle(Circle { center: Point::new(1.0, 1.0), radius: 2.0 });
        let m = mbr(&c).unwrap();
        assert_eq!(m.low, Point::new(-1.0, -1.0));
    }

    #[test]
    fn cells() {
        let cell = spatial_cell(&pt(5.5, -0.5), &pt(0.0, 0.0), 2.0, 2.0).unwrap();
        assert_eq!(cell.low, Point::new(4.0, -2.0));
        assert_eq!(cell.high, Point::new(6.0, 0.0));
        assert!(spatial_cell(&pt(0.0, 0.0), &pt(0.0, 0.0), 0.0, 1.0).is_err());
    }
}
