//! Set-similarity builtins: `similarity-jaccard` and
//! `similarity-jaccard-check` over bags/lists (Table 1), the primitives that
//! fuzzy joins like Query 13 compile to.

use crate::error::{AdmError, Result};
use crate::value::Value;

/// Jaccard similarity of two collections compared with ADM equality
/// semantics. Duplicate elements are treated set-wise (as AsterixDB does for
/// its tag bags).
pub fn jaccard(a: &[Value], b: &[Value]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Dedup via sort by total order.
    let mut sa: Vec<&Value> = a.iter().collect();
    let mut sb: Vec<&Value> = b.iter().collect();
    sa.sort_by(|x, y| x.total_cmp(y));
    sa.dedup_by(|x, y| x.total_cmp(y).is_eq());
    sb.sort_by(|x, y| x.total_cmp(y));
    sb.dedup_by(|x, y| x.total_cmp(y).is_eq());
    // Merge-count the intersection.
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        match sa[i].total_cmp(sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// `similarity-jaccard-check(a, b, t)` — returns `Some(sim)` iff
/// `sim >= t`, with a cheap length-filter early exit (the upper bound of the
/// Jaccard of sets sized m and n is min(m,n)/max(m,n)).
pub fn jaccard_check(a: &[Value], b: &[Value], threshold: f64) -> Option<f64> {
    let (m, n) = (a.len(), b.len());
    if m > 0 && n > 0 {
        let upper = m.min(n) as f64 / m.max(n) as f64;
        // The upper bound uses raw lengths; dedup only shrinks both sides,
        // so it is only a valid prune when it is already conservative.
        if upper < threshold && upper < 1.0 && threshold > 0.0 && m.min(n) > 0 {
            // Dedup could change ratios, so verify cheaply only when the gap
            // is decisive: |m - n| alone bounds the achievable similarity.
            if (m.max(n) - m.min(n)) as f64 / m.max(n) as f64 > 1.0 - threshold {
                return None;
            }
        }
    }
    let sim = jaccard(a, b);
    (sim >= threshold).then_some(sim)
}

/// Dispatch for the `~=` operator given the session `simfunction` and
/// `simthreshold` settings (Queries 6 and 13).
pub fn fuzzy_eq(a: &Value, b: &Value, simfunction: &str, simthreshold: &str) -> Result<bool> {
    match simfunction {
        "edit-distance" => {
            let t: usize = simthreshold.parse().map_err(|_| {
                AdmError::InvalidArgument(format!(
                    "simthreshold {simthreshold:?} is not an integer"
                ))
            })?;
            match (a, b) {
                (Value::String(x), Value::String(y)) => {
                    Ok(crate::strings::edit_distance_check(x, y, t).is_some())
                }
                _ => Err(AdmError::InvalidArgument(format!(
                    "edit-distance ~= requires strings, got {} and {}",
                    a.type_name(),
                    b.type_name()
                ))),
            }
        }
        "jaccard" => {
            let t: f64 = simthreshold.parse().map_err(|_| {
                AdmError::InvalidArgument(format!("simthreshold {simthreshold:?} is not a number"))
            })?;
            match (a.as_list(), b.as_list()) {
                (Some(x), Some(y)) => Ok(jaccard_check(x, y, t).is_some()),
                _ => Err(AdmError::InvalidArgument(format!(
                    "jaccard ~= requires collections, got {} and {}",
                    a.type_name(),
                    b.type_name()
                ))),
            }
        }
        other => Err(AdmError::InvalidArgument(format!("unknown simfunction {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(items: &[&str]) -> Vec<Value> {
        items.iter().map(|s| Value::string(s)).collect()
    }

    #[test]
    fn jaccard_basic() {
        let a = bag(&["a", "b", "c"]);
        let b = bag(&["b", "c", "d"]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &[]), 0.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn jaccard_dedups() {
        let a = bag(&["a", "a", "b"]);
        let b = bag(&["a", "b", "b"]);
        assert_eq!(jaccard(&a, &b), 1.0);
    }

    #[test]
    fn jaccard_check_threshold() {
        let a = bag(&["a", "b", "c"]);
        let b = bag(&["b", "c", "d"]);
        assert_eq!(jaccard_check(&a, &b, 0.3), Some(0.5));
        assert_eq!(jaccard_check(&a, &b, 0.6), None);
    }

    #[test]
    fn fuzzy_eq_dispatch() {
        let x = Value::string("tonight");
        let y = Value::string("tonite");
        assert!(fuzzy_eq(&x, &y, "edit-distance", "3").unwrap());
        assert!(!fuzzy_eq(&x, &y, "edit-distance", "1").unwrap());
        let a = Value::unordered_list(bag(&["a", "b", "c"]));
        let b = Value::unordered_list(bag(&["b", "c", "d"]));
        assert!(fuzzy_eq(&a, &b, "jaccard", "0.3").unwrap());
        assert!(!fuzzy_eq(&a, &b, "jaccard", "0.9").unwrap());
        assert!(fuzzy_eq(&x, &y, "nope", "1").is_err());
        assert!(fuzzy_eq(&a, &b, "edit-distance", "2").is_err());
    }
}
