//! Parser for ADM text syntax — the instance syntax used by `insert into
//! dataset`, `load`, and feed payloads with `("format"="adm")`.
//!
//! ADM text is JSON extended with:
//! * constructor literals: `datetime("2010-08-15T08:10:00")`, `date("...")`,
//!   `time("...")`, `duration("P30D")`, `point("x,y")`, `line`, `rectangle`,
//!   `circle`, `polygon`, `hex("...")`, `int8/16/32/64(...)`;
//! * bags (unordered lists) written `{{ v, ... }}`;
//! * `missing` as a literal.

use std::sync::Arc;

use crate::error::{AdmError, Result};
use crate::temporal::{parse_date, parse_datetime, parse_duration, parse_time};
use crate::value::{Circle, DurationValue, Line, Point, Record, Rectangle, Value};

/// Parse a single ADM value from text, requiring the whole input be consumed.
pub fn parse_value(input: &str) -> Result<Value> {
    let mut p = Parser::new(input);
    let v = p.parse_value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(AdmError::Parse(format!(
            "trailing input at offset {}: {:?}",
            p.pos,
            p.rest_snippet()
        )));
    }
    Ok(v)
}

/// Parse a sequence of whitespace/comma/newline-separated ADM values, e.g. a
/// load file with one instance per line.
pub fn parse_many(input: &str) -> Result<Vec<Value>> {
    let mut p = Parser::new(input);
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            break;
        }
        out.push(p.parse_value()?);
        p.skip_ws();
        if p.peek() == Some(',') {
            p.bump();
        }
    }
    Ok(out)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, bytes: input.as_bytes(), pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn rest_snippet(&self) -> &str {
        let rest = &self.input[self.pos..];
        &rest[..rest.len().min(24)]
    }

    fn expect(&mut self, c: char) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(AdmError::Parse(format!(
                "expected {c:?} at offset {}, found {:?}",
                self.pos,
                self.rest_snippet()
            )))
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(AdmError::Parse("unexpected end of input".into())),
            Some('{') => {
                // `{{` opens a bag; `{` opens a record.
                if self.input[self.pos..].starts_with("{{") {
                    self.parse_bag()
                } else {
                    self.parse_record()
                }
            }
            Some('[') => self.parse_list(),
            Some('"') => Ok(Value::String(Arc::from(self.parse_string()?.as_str()))),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) if c.is_ascii_alphabetic() => self.parse_word(),
            Some(c) => {
                Err(AdmError::Parse(format!("unexpected character {c:?} at offset {}", self.pos)))
            }
        }
    }

    fn parse_record(&mut self) -> Result<Value> {
        self.expect('{')?;
        let mut rec = Record::new();
        if self.eat('}') {
            return Ok(Value::record(rec));
        }
        loop {
            self.skip_ws();
            let name = self.parse_string()?;
            self.expect(':')?;
            let value = self.parse_value()?;
            rec.push_unchecked(name, value);
            if self.eat(',') {
                continue;
            }
            self.expect('}')?;
            break;
        }
        Ok(Value::record(rec))
    }

    fn parse_bag(&mut self) -> Result<Value> {
        self.expect('{')?;
        self.expect('{')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat_str("}}") {
            return Ok(Value::unordered_list(items));
        }
        loop {
            items.push(self.parse_value()?);
            if self.eat(',') {
                continue;
            }
            self.skip_ws();
            if self.eat_str("}}") {
                break;
            }
            return Err(AdmError::Parse(format!(
                "expected '}}}}' or ',' in bag at offset {}",
                self.pos
            )));
        }
        Ok(Value::unordered_list(items))
    }

    fn parse_list(&mut self) -> Result<Value> {
        self.expect('[')?;
        let mut items = Vec::new();
        if self.eat(']') {
            return Ok(Value::ordered_list(items));
        }
        loop {
            items.push(self.parse_value()?);
            if self.eat(',') {
                continue;
            }
            self.expect(']')?;
            break;
        }
        Ok(Value::ordered_list(items))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.skip_ws();
        if self.peek() != Some('"') {
            return Err(AdmError::Parse(format!(
                "expected string at offset {}, found {:?}",
                self.pos,
                self.rest_snippet()
            )));
        }
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(AdmError::Parse("unterminated string".into())),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self
                                .bump()
                                .ok_or_else(|| AdmError::Parse("truncated \\u escape".into()))?;
                            code = code * 16
                                + c.to_digit(16).ok_or_else(|| {
                                    AdmError::Parse(format!("bad hex digit {c:?}"))
                                })?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(AdmError::Parse(format!("bad escape {other:?}")));
                    }
                },
                Some(c) => out.push(c),
            }
        }
        Ok(out)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    self.bump();
                }
                '.' | 'e' | 'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some('+') | Some('-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        // Optional type suffixes: i8/i16/i32/i64, f, d.
        if self.eat_str("i8") {
            let v: i64 = text.parse().map_err(|_| bad_num(text))?;
            return crate::value::coerce_int(&Value::Int64(v), "int8");
        }
        if self.eat_str("i16") {
            let v: i64 = text.parse().map_err(|_| bad_num(text))?;
            return crate::value::coerce_int(&Value::Int64(v), "int16");
        }
        if self.eat_str("i32") {
            let v: i64 = text.parse().map_err(|_| bad_num(text))?;
            return crate::value::coerce_int(&Value::Int64(v), "int32");
        }
        if self.eat_str("i64") {
            let v: i64 = text.parse().map_err(|_| bad_num(text))?;
            return Ok(Value::Int64(v));
        }
        if self.eat_str("f") {
            let v: f32 = text.parse().map_err(|_| bad_num(text))?;
            return Ok(Value::Float(v));
        }
        if self.eat_str("d") {
            let v: f64 = text.parse().map_err(|_| bad_num(text))?;
            return Ok(Value::Double(v));
        }
        if is_float {
            let v: f64 = text.parse().map_err(|_| bad_num(text))?;
            Ok(Value::Double(v))
        } else {
            let v: i64 = text.parse().map_err(|_| bad_num(text))?;
            Ok(Value::Int64(v))
        }
    }

    fn parse_word(&mut self) -> Result<Value> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let word = &self.input[start..self.pos];
        match word {
            "true" => return Ok(Value::Boolean(true)),
            "false" => return Ok(Value::Boolean(false)),
            "null" => return Ok(Value::Null),
            "missing" => return Ok(Value::Missing),
            _ => {}
        }
        // Constructor syntax: word("...") — or numeric ctor word(number).
        self.skip_ws();
        if self.peek() != Some('(') {
            return Err(AdmError::Parse(format!("unknown literal {word:?}")));
        }
        self.bump();
        self.skip_ws();
        let arg = if self.peek() == Some('"') {
            CtorArg::Str(self.parse_string()?)
        } else {
            match self.parse_number()? {
                v @ (Value::Int64(_) | Value::Int32(_) | Value::Int16(_) | Value::Int8(_)) => {
                    CtorArg::Int(v.as_i64().unwrap())
                }
                v => CtorArg::Num(v.as_f64().unwrap()),
            }
        };
        self.expect(')')?;
        construct(word, arg)
    }
}

enum CtorArg {
    Str(String),
    Int(i64),
    Num(f64),
}

fn bad_num(t: &str) -> AdmError {
    AdmError::Parse(format!("invalid number {t:?}"))
}

fn parse_point_body(s: &str) -> Result<Point> {
    let (x, y) =
        s.split_once(',').ok_or_else(|| AdmError::Parse(format!("invalid point body {s:?}")))?;
    Ok(Point::new(
        x.trim().parse().map_err(|_| bad_num(x))?,
        y.trim().parse().map_err(|_| bad_num(y))?,
    ))
}

/// Apply an ADM constructor by name — shared with the AQL function library,
/// which exposes the same constructors (`datetime("...")` in Query 2 etc.).
pub fn construct_from_str(ctor: &str, body: &str) -> Result<Value> {
    construct(ctor, CtorArg::Str(body.to_string()))
}

fn construct(ctor: &str, arg: CtorArg) -> Result<Value> {
    match (ctor, arg) {
        ("date", CtorArg::Str(s)) => Ok(Value::Date(parse_date(&s)?)),
        ("time", CtorArg::Str(s)) => Ok(Value::Time(parse_time(&s)?)),
        ("datetime", CtorArg::Str(s)) => Ok(Value::DateTime(parse_datetime(&s)?)),
        ("duration", CtorArg::Str(s)) => {
            let (months, millis) = parse_duration(&s)?;
            Ok(Value::Duration(DurationValue { months, millis }))
        }
        ("year-month-duration", CtorArg::Str(s)) => {
            let (months, millis) = parse_duration(&s)?;
            if millis != 0 {
                return Err(AdmError::Parse(
                    "year-month-duration cannot contain a day/time part".into(),
                ));
            }
            Ok(Value::YearMonthDuration(months))
        }
        ("day-time-duration", CtorArg::Str(s)) => {
            let (months, millis) = parse_duration(&s)?;
            if months != 0 {
                return Err(AdmError::Parse(
                    "day-time-duration cannot contain a year/month part".into(),
                ));
            }
            Ok(Value::DayTimeDuration(millis))
        }
        ("point", CtorArg::Str(s)) => Ok(Value::Point(parse_point_body(&s)?)),
        ("line", CtorArg::Str(s)) => {
            let (a, b) = s
                .split_once(' ')
                .ok_or_else(|| AdmError::Parse(format!("invalid line body {s:?}")))?;
            Ok(Value::Line(Line { a: parse_point_body(a)?, b: parse_point_body(b)? }))
        }
        ("rectangle", CtorArg::Str(s)) => {
            let (a, b) = s
                .split_once(' ')
                .ok_or_else(|| AdmError::Parse(format!("invalid rectangle body {s:?}")))?;
            Ok(Value::Rectangle(Rectangle {
                low: parse_point_body(a)?,
                high: parse_point_body(b)?,
            }))
        }
        ("circle", CtorArg::Str(s)) => {
            let (c, r) = s
                .rsplit_once(' ')
                .ok_or_else(|| AdmError::Parse(format!("invalid circle body {s:?}")))?;
            Ok(Value::Circle(Circle {
                center: parse_point_body(c)?,
                radius: r.trim().parse().map_err(|_| bad_num(r))?,
            }))
        }
        ("polygon", CtorArg::Str(s)) => {
            let pts: Result<Vec<Point>> = s.split_whitespace().map(parse_point_body).collect();
            let pts = pts?;
            if pts.len() < 3 {
                return Err(AdmError::Parse("polygon needs at least 3 points".into()));
            }
            Ok(Value::Polygon(Arc::from(pts)))
        }
        ("hex", CtorArg::Str(s)) => {
            let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
            if !s.len().is_multiple_of(2) {
                return Err(AdmError::Parse("hex literal with odd length".into()));
            }
            let bytes: Result<Vec<u8>> = (0..s.len())
                .step_by(2)
                .map(|i| {
                    u8::from_str_radix(&s[i..i + 2], 16)
                        .map_err(|_| AdmError::Parse(format!("bad hex byte {:?}", &s[i..i + 2])))
                })
                .collect();
            Ok(Value::Binary(Arc::from(bytes?)))
        }
        ("int8", CtorArg::Int(i)) => crate::value::coerce_int(&Value::Int64(i), "int8"),
        ("int16", CtorArg::Int(i)) => crate::value::coerce_int(&Value::Int64(i), "int16"),
        ("int32", CtorArg::Int(i)) => crate::value::coerce_int(&Value::Int64(i), "int32"),
        ("int64", CtorArg::Int(i)) => Ok(Value::Int64(i)),
        ("int8", CtorArg::Str(s)) => {
            crate::value::coerce_int(&Value::Int64(parse_i64(&s)?), "int8")
        }
        ("int16", CtorArg::Str(s)) => {
            crate::value::coerce_int(&Value::Int64(parse_i64(&s)?), "int16")
        }
        ("int32", CtorArg::Str(s)) => {
            crate::value::coerce_int(&Value::Int64(parse_i64(&s)?), "int32")
        }
        ("int64", CtorArg::Str(s)) => Ok(Value::Int64(parse_i64(&s)?)),
        ("float", CtorArg::Num(n)) => Ok(Value::Float(n as f32)),
        ("float", CtorArg::Int(i)) => Ok(Value::Float(i as f32)),
        ("float", CtorArg::Str(s)) => Ok(Value::Float(s.trim().parse().map_err(|_| bad_num(&s))?)),
        ("double", CtorArg::Num(n)) => Ok(Value::Double(n)),
        ("double", CtorArg::Int(i)) => Ok(Value::Double(i as f64)),
        ("double", CtorArg::Str(s)) => {
            Ok(Value::Double(s.trim().parse().map_err(|_| bad_num(&s))?))
        }
        ("string", CtorArg::Str(s)) => Ok(Value::string(s)),
        ("boolean", CtorArg::Str(s)) => match s.trim() {
            "true" => Ok(Value::Boolean(true)),
            "false" => Ok(Value::Boolean(false)),
            other => Err(AdmError::Parse(format!("invalid boolean {other:?}"))),
        },
        (other, _) => Err(AdmError::Parse(format!("unknown constructor {other:?}"))),
    }
}

fn parse_i64(s: &str) -> Result<i64> {
    s.trim().parse().map_err(|_| bad_num(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::to_adm_string;

    #[test]
    fn parses_update1_record() {
        // The record from Update 1 in the paper, verbatim.
        let text = r#"{
            "id":11,
            "alias":"John",
            "name":"JohnDoe",
            "address":{
                "street":"789 Jane St",
                "city":"San Harry",
                "zip":"98767",
                "state":"CA",
                "country":"USA"
            },
            "user-since":datetime("2010-08-15T08:10:00"),
            "friend-ids":{{ 5, 9, 11 }},
            "employment":[{
                "organization-name":"Kongreen",
                "start-date":date("2012-06-05")
            }]
        }"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.field("id"), Value::Int64(11));
        assert_eq!(v.field("address").field("zip"), Value::string("98767"));
        let friends = v.field("friend-ids");
        assert_eq!(friends.as_list().unwrap().len(), 3);
        assert!(matches!(v.field("user-since"), Value::DateTime(_)));
        let emp = v.field("employment");
        assert!(matches!(emp.as_list().unwrap()[0].field("start-date"), Value::Date(_)));
    }

    #[test]
    fn roundtrip_through_print() {
        let cases = [
            r#"{ "a": 1, "b": [ 1.5, true, null ] }"#,
            r#"{{ "x", "y" }}"#,
            r#"point("3,4")"#,
            r#"datetime("2014-02-20T00:00:00")"#,
            r#"duration("P30D")"#,
            r#"[ { "n": { "m": missing } } ]"#,
            r#"interval("2014-01-01T00:00:00, 2014-04-01T00:00:00")"#,
        ];
        for case in cases {
            // Not all cases parse as intervals; skip the interval literal
            // (it is print-only) and check the rest roundtrip.
            if case.starts_with("interval") {
                continue;
            }
            let v = parse_value(case).unwrap();
            let printed = to_adm_string(&v);
            let v2 = parse_value(&printed).unwrap();
            assert_eq!(v.total_cmp(&v2), std::cmp::Ordering::Equal, "{case} -> {printed}");
        }
    }

    #[test]
    fn numbers_and_suffixes() {
        assert_eq!(parse_value("42").unwrap(), Value::Int64(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int64(-7));
        assert_eq!(parse_value("3.5").unwrap(), Value::Double(3.5));
        assert_eq!(parse_value("1e3").unwrap(), Value::Double(1000.0));
        assert_eq!(parse_value("5i8").unwrap(), Value::Int8(5));
        assert_eq!(parse_value("5i32").unwrap(), Value::Int32(5));
        assert_eq!(parse_value("2.5f").unwrap(), Value::Float(2.5));
        assert_eq!(parse_value("int32(9)").unwrap(), Value::Int32(9));
    }

    #[test]
    fn spatial_ctors() {
        let v = parse_value(r#"rectangle("0,0 2,3")"#).unwrap();
        match v {
            Value::Rectangle(r) => {
                assert_eq!(r.low, Point::new(0.0, 0.0));
                assert_eq!(r.high, Point::new(2.0, 3.0));
            }
            other => panic!("expected rectangle, got {other:?}"),
        }
        let v = parse_value(r#"polygon("0,0 1,0 1,1 0,1")"#).unwrap();
        assert!(matches!(v, Value::Polygon(ref p) if p.len() == 4));
        assert!(parse_value(r#"polygon("0,0 1,0")"#).is_err());
        let v = parse_value(r#"circle("1,1 2.5")"#).unwrap();
        assert!(matches!(v, Value::Circle(c) if c.radius == 2.5));
    }

    #[test]
    fn parse_many_instances() {
        let text = "{ \"a\": 1 }\n{ \"a\": 2 }\n{ \"a\": 3 }";
        let vs = parse_many(text).unwrap();
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[2].field("a"), Value::Int64(3));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{ \"a\": }").is_err());
        assert!(parse_value("{ \"a\": 1 ").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("bogus").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("hex(\"abc\")").is_err());
        assert!(parse_value("date(\"2011-02-29\")").is_err());
    }

    #[test]
    fn binary_hex() {
        let v = parse_value("hex(\"DEADbeef\")").unwrap();
        assert_eq!(v, Value::Binary(Arc::from(vec![0xde, 0xad, 0xbe, 0xef])));
    }
}
