//! # asterix-adm — the Asterix Data Model
//!
//! The data-model layer of the AsterixDB reproduction (paper Section 2):
//! ADM values (a superset of JSON with rich primitive types and bags), the
//! open/closed Datatype system, text parsing/printing, two binary formats
//! (self-describing and schema-aware), and the builtin function library
//! (string, temporal, spatial, and similarity functions from Table 1).

pub mod colschema;
pub mod error;
pub mod functions;
pub mod ordkey;
pub mod parse;
pub mod print;
pub mod serde;
pub mod similarity;
pub mod spatial;
pub mod strings;
pub mod temporal;
pub mod tuple;
pub mod types;
pub mod value;

pub use error::{AdmError, Result};
pub use tuple::{
    concat_tuples_into, decode_tuple, encode_tuple, encode_tuple_from_encoded, encode_tuple_into,
    TupleRef, ValueRef,
};
pub use types::{Datatype, FieldType, PrimitiveType, RecordType, RecordTypeBuilder, TypeRegistry};
pub use value::{Record, Value};
