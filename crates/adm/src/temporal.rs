//! Temporal primitives: civil-date conversion, ISO-8601 parsing/formatting,
//! datetime arithmetic, interval binning, and Allen's interval relations
//! (Table 1 of the paper).
//!
//! Dates are days since 1970-01-01; times are milliseconds since midnight;
//! datetimes are milliseconds since the Unix epoch. No external time crate is
//! used; the civil-date algorithms are the standard Howard Hinnant
//! days-from-civil formulas.

use crate::error::{AdmError, Result};
use crate::value::{DurationValue, IntervalKind, IntervalValue, Value};

pub const MILLIS_PER_SECOND: i64 = 1_000;
pub const MILLIS_PER_MINUTE: i64 = 60 * MILLIS_PER_SECOND;
pub const MILLIS_PER_HOUR: i64 = 60 * MILLIS_PER_MINUTE;
pub const MILLIS_PER_DAY: i64 = 24 * MILLIS_PER_HOUR;

/// Convert a civil date to days since the Unix epoch.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // March=0 .. February=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Convert days since the Unix epoch back to a civil (year, month, day).
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// True for leap years in the proleptic Gregorian calendar.
pub fn is_leap_year(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Days in a given month.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn parse_fixed_u32(s: &str, what: &str) -> Result<u32> {
    s.parse::<u32>().map_err(|_| AdmError::Parse(format!("invalid {what} component: {s:?}")))
}

/// Parse `YYYY-MM-DD` (with optional leading `-` on the year) into epoch days.
pub fn parse_date(s: &str) -> Result<i32> {
    let (neg, rest) = match s.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, s),
    };
    let parts: Vec<&str> = rest.split('-').collect();
    if parts.len() != 3 {
        return Err(AdmError::Parse(format!("invalid date {s:?}")));
    }
    let mut y = parse_fixed_u32(parts[0], "year")? as i32;
    if neg {
        y = -y;
    }
    let m = parse_fixed_u32(parts[1], "month")?;
    let d = parse_fixed_u32(parts[2], "day")?;
    if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return Err(AdmError::Parse(format!("invalid date {s:?}")));
    }
    Ok(days_from_civil(y, m, d) as i32)
}

/// Parse `hh:mm:ss[.fff][Z|±hh:mm]` into milliseconds since midnight (UTC).
pub fn parse_time(s: &str) -> Result<i32> {
    let (body, offset_millis) = split_timezone(s)?;
    let parts: Vec<&str> = body.split(':').collect();
    if parts.len() != 3 {
        return Err(AdmError::Parse(format!("invalid time {s:?}")));
    }
    let h = parse_fixed_u32(parts[0], "hour")?;
    let mi = parse_fixed_u32(parts[1], "minute")?;
    let (sec_str, milli) = match parts[2].split_once('.') {
        Some((sec, frac)) => {
            let mut f = frac.to_string();
            while f.len() < 3 {
                f.push('0');
            }
            (sec, parse_fixed_u32(&f[..3], "millisecond")?)
        }
        None => (parts[2], 0),
    };
    let sec = parse_fixed_u32(sec_str, "second")?;
    if h > 23 || mi > 59 || sec > 59 {
        return Err(AdmError::Parse(format!("invalid time {s:?}")));
    }
    let millis = (h as i64) * MILLIS_PER_HOUR
        + (mi as i64) * MILLIS_PER_MINUTE
        + (sec as i64) * MILLIS_PER_SECOND
        + milli as i64
        - offset_millis;
    Ok(millis.rem_euclid(MILLIS_PER_DAY) as i32)
}

/// Split trailing timezone designator, returning (body, offset in millis).
fn split_timezone(s: &str) -> Result<(&str, i64)> {
    if let Some(body) = s.strip_suffix('Z') {
        return Ok((body, 0));
    }
    // Search for +hh:mm / -hhmm / +hh after the time part. A '-' can only be
    // a timezone if it appears after a ':' (so date separators don't match).
    if let Some(colon) = s.find(':') {
        let tail = &s[colon..];
        for (i, c) in tail.char_indices() {
            if c == '+' || c == '-' {
                let idx = colon + i;
                let tz = &s[idx + 1..];
                let digits: String = tz.chars().filter(|c| c.is_ascii_digit()).collect();
                if digits.len() < 2 {
                    break;
                }
                let h: i64 = digits[..2]
                    .parse()
                    .map_err(|_| AdmError::Parse(format!("invalid timezone offset in {s:?}")))?;
                let m: i64 = if digits.len() >= 4 { digits[2..4].parse().unwrap_or(0) } else { 0 };
                let sign = if c == '-' { -1 } else { 1 };
                return Ok((&s[..idx], sign * (h * MILLIS_PER_HOUR + m * MILLIS_PER_MINUTE)));
            }
        }
    }
    Ok((s, 0))
}

/// Parse `YYYY-MM-DDThh:mm:ss[.fff][Z|±hh:mm]` into epoch milliseconds.
pub fn parse_datetime(s: &str) -> Result<i64> {
    let (date_part, time_part) = s
        .split_once('T')
        .ok_or_else(|| AdmError::Parse(format!("invalid datetime {s:?} (missing 'T')")))?;
    let days = parse_date(date_part)? as i64;
    let (body, offset) = split_timezone(time_part)?;
    // Parse the time body *without* timezone wrap so we can apply the offset
    // to the full datetime rather than modulo one day.
    let t = parse_time(body)? as i64;
    Ok(days * MILLIS_PER_DAY + t - offset)
}

/// Parse an ISO-8601 duration `PnYnMnDTnHnMnS` into (months, millis).
pub fn parse_duration(s: &str) -> Result<(i32, i64)> {
    let (neg, rest) = match s.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, s),
    };
    let rest = rest
        .strip_prefix('P')
        .ok_or_else(|| AdmError::Parse(format!("invalid duration {s:?} (missing 'P')")))?;
    let mut months: i64 = 0;
    let mut millis: i64 = 0;
    let mut in_time = false;
    let mut num = String::new();
    for c in rest.chars() {
        match c {
            'T' => in_time = true,
            '0'..='9' | '.' => num.push(c),
            'Y' | 'M' | 'D' | 'H' | 'S' | 'W' => {
                let n: f64 =
                    num.parse().map_err(|_| AdmError::Parse(format!("invalid duration {s:?}")))?;
                num.clear();
                match (c, in_time) {
                    ('Y', false) => months += (n as i64) * 12,
                    ('M', false) => months += n as i64,
                    ('W', false) => millis += (n * 7.0 * MILLIS_PER_DAY as f64) as i64,
                    ('D', false) => millis += (n * MILLIS_PER_DAY as f64) as i64,
                    ('H', true) => millis += (n * MILLIS_PER_HOUR as f64) as i64,
                    ('M', true) => millis += (n * MILLIS_PER_MINUTE as f64) as i64,
                    ('S', true) => millis += (n * MILLIS_PER_SECOND as f64) as i64,
                    _ => return Err(AdmError::Parse(format!("invalid duration {s:?}"))),
                }
            }
            _ => return Err(AdmError::Parse(format!("invalid duration {s:?}"))),
        }
    }
    if !num.is_empty() {
        return Err(AdmError::Parse(format!("invalid duration {s:?} (trailing number)")));
    }
    let sign = if neg { -1 } else { 1 };
    Ok((sign * months as i32, sign as i64 * millis))
}

/// Format epoch days as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Format millis-since-midnight as `hh:mm:ss.fffZ` (millis omitted if zero).
pub fn format_time(millis: i32) -> String {
    let t = millis as i64;
    let h = t / MILLIS_PER_HOUR;
    let mi = (t % MILLIS_PER_HOUR) / MILLIS_PER_MINUTE;
    let s = (t % MILLIS_PER_MINUTE) / MILLIS_PER_SECOND;
    let ms = t % MILLIS_PER_SECOND;
    if ms == 0 {
        format!("{h:02}:{mi:02}:{s:02}")
    } else {
        format!("{h:02}:{mi:02}:{s:02}.{ms:03}")
    }
}

/// Format epoch millis as `YYYY-MM-DDThh:mm:ss[.fff]`.
pub fn format_datetime(millis: i64) -> String {
    let days = millis.div_euclid(MILLIS_PER_DAY);
    let tod = millis.rem_euclid(MILLIS_PER_DAY);
    format!("{}T{}", format_date(days as i32), format_time(tod as i32))
}

/// Format (months, millis) as an ISO-8601 duration string.
pub fn format_duration(months: i32, millis: i64) -> String {
    if months == 0 && millis == 0 {
        return "PT0S".to_string();
    }
    let neg = months < 0 || millis < 0;
    let months = months.unsigned_abs();
    let millis = millis.unsigned_abs();
    let mut out = String::new();
    if neg {
        out.push('-');
    }
    out.push('P');
    let y = months / 12;
    let mo = months % 12;
    if y > 0 {
        out.push_str(&format!("{y}Y"));
    }
    if mo > 0 {
        out.push_str(&format!("{mo}M"));
    }
    let d = millis / MILLIS_PER_DAY as u64;
    let rem = millis % MILLIS_PER_DAY as u64;
    if d > 0 {
        out.push_str(&format!("{d}D"));
    }
    if rem > 0 {
        out.push('T');
        let h = rem / MILLIS_PER_HOUR as u64;
        let mi = (rem % MILLIS_PER_HOUR as u64) / MILLIS_PER_MINUTE as u64;
        let s = (rem % MILLIS_PER_MINUTE as u64) / MILLIS_PER_SECOND as u64;
        let ms = rem % MILLIS_PER_SECOND as u64;
        if h > 0 {
            out.push_str(&format!("{h}H"));
        }
        if mi > 0 {
            out.push_str(&format!("{mi}M"));
        }
        if s > 0 || ms > 0 {
            if ms > 0 {
                out.push_str(&format!("{s}.{ms:03}S"));
            } else {
                out.push_str(&format!("{s}S"));
            }
        }
    }
    out
}

/// Add a duration to a datetime, handling the month part via civil-date
/// arithmetic (`subtract-datetime`-style functions in Table 1 build on this).
pub fn datetime_add_duration(millis: i64, dur: &DurationValue) -> i64 {
    let mut result = millis;
    if dur.months != 0 {
        let days = result.div_euclid(MILLIS_PER_DAY);
        let tod = result.rem_euclid(MILLIS_PER_DAY);
        let (y, m, d) = civil_from_days(days);
        let total_months = (y as i64) * 12 + (m as i64 - 1) + dur.months as i64;
        let ny = total_months.div_euclid(12) as i32;
        let nm = (total_months.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm));
        result = days_from_civil(ny, nm, nd) * MILLIS_PER_DAY + tod;
    }
    result + dur.millis
}

/// Add a duration to a date (epoch days); time parts truncate to whole days.
pub fn date_add_duration(days: i32, dur: &DurationValue) -> i32 {
    let dt = (days as i64) * MILLIS_PER_DAY;
    let r = datetime_add_duration(dt, dur);
    r.div_euclid(MILLIS_PER_DAY) as i32
}

/// The difference between two datetimes as a day-time duration in millis.
pub fn datetime_subtract(a: i64, b: i64) -> i64 {
    a - b
}

/// `interval-bin(v, anchor, bin)`: the interval containing `v` in the
/// partitioning of the time line into `bin`-sized chunks anchored at
/// `anchor`. Used for the temporal binning / windowed aggregation the
/// behavioral-analysis pilot asked for (Section 5.2).
pub fn interval_bin(
    value: i64,
    kind: IntervalKind,
    anchor: i64,
    bin: &DurationValue,
) -> Result<IntervalValue> {
    if bin.months != 0 && bin.millis != 0 {
        return Err(AdmError::InvalidArgument(
            "interval-bin requires a pure year-month or pure day-time duration".into(),
        ));
    }
    if bin.months != 0 {
        // Bin by months on the civil calendar.
        let day_scale = match kind {
            IntervalKind::Date => 1,
            IntervalKind::DateTime => MILLIS_PER_DAY,
            IntervalKind::Time => {
                return Err(AdmError::InvalidArgument(
                    "cannot bin a time value by a year-month duration".into(),
                ))
            }
        };
        let (vdays, adays) = if kind == IntervalKind::Date {
            (value, anchor)
        } else {
            (value.div_euclid(MILLIS_PER_DAY), anchor.div_euclid(MILLIS_PER_DAY))
        };
        let (vy, vm, _) = civil_from_days(vdays);
        let (ay, am, _) = civil_from_days(adays);
        let vmonths = (vy as i64) * 12 + vm as i64 - 1;
        let amonths = (ay as i64) * 12 + am as i64 - 1;
        let bin_months = bin.months as i64;
        let idx = (vmonths - amonths).div_euclid(bin_months);
        let start_months = amonths + idx * bin_months;
        let end_months = start_months + bin_months;
        let to_point = |months: i64| -> i64 {
            let y = months.div_euclid(12) as i32;
            let m = (months.rem_euclid(12) + 1) as u32;
            days_from_civil(y, m, 1) * day_scale
        };
        Ok(IntervalValue { kind, start: to_point(start_months), end: to_point(end_months) })
    } else {
        if bin.millis == 0 {
            return Err(AdmError::InvalidArgument("interval-bin with zero-length bin".into()));
        }
        let scale = match kind {
            IntervalKind::Date => {
                if bin.millis % MILLIS_PER_DAY != 0 {
                    return Err(AdmError::InvalidArgument(
                        "date values can only be binned by whole days".into(),
                    ));
                }
                bin.millis / MILLIS_PER_DAY
            }
            _ => bin.millis,
        };
        let idx = (value - anchor).div_euclid(scale);
        Ok(IntervalValue { kind, start: anchor + idx * scale, end: anchor + (idx + 1) * scale })
    }
}

/// Allen's thirteen interval relations (Table 1 lists them as builtins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllenRelation {
    Before,
    After,
    Meets,
    MetBy,
    Overlaps,
    OverlappedBy,
    Starts,
    StartedBy,
    During,
    Covers,
    Finishes,
    FinishedBy,
    Equals,
}

/// Compute which Allen relation holds between intervals `a` and `b`.
pub fn allen_relation(a: &IntervalValue, b: &IntervalValue) -> AllenRelation {
    use std::cmp::Ordering::*;
    use AllenRelation::*;
    match (a.start.cmp(&b.start), a.end.cmp(&b.end)) {
        (Equal, Equal) => Equals,
        (Equal, Less) => Starts,
        (Equal, Greater) => StartedBy,
        (Greater, Equal) => Finishes,
        (Less, Equal) => FinishedBy,
        (Less, Less) => {
            if a.end < b.start {
                Before
            } else if a.end == b.start {
                Meets
            } else {
                Overlaps
            }
        }
        (Greater, Greater) => {
            if a.start > b.end {
                After
            } else if a.start == b.end {
                MetBy
            } else {
                OverlappedBy
            }
        }
        (Less, Greater) => Covers,
        (Greater, Less) => During,
    }
}

/// Check a specific Allen relation by name (`interval-before(a, b)` etc.).
pub fn check_allen(name: &str, a: &IntervalValue, b: &IntervalValue) -> Result<bool> {
    use AllenRelation::*;
    let rel = allen_relation(a, b);
    let want = match name {
        "interval-before" => Before,
        "interval-after" => After,
        "interval-meets" => Meets,
        "interval-met-by" => MetBy,
        "interval-overlaps" => Overlaps,
        "interval-overlapped-by" => OverlappedBy,
        "interval-starts" => Starts,
        "interval-started-by" => StartedBy,
        "interval-during" => During,
        "interval-covers" => Covers,
        "interval-finishes" => Finishes,
        "interval-finished-by" => FinishedBy,
        "interval-equals" => Equals,
        _ => return Err(AdmError::UnknownFunction(name.to_string())),
    };
    Ok(rel == want)
}

/// `adjust-datetime-for-timezone(dt, "+05:30")` — shift and reformat.
pub fn adjust_for_timezone(millis: i64, tz: &str) -> Result<i64> {
    let (sign, rest) = match tz.chars().next() {
        Some('+') => (1i64, &tz[1..]),
        Some('-') => (-1i64, &tz[1..]),
        _ => return Err(AdmError::Parse(format!("invalid timezone {tz:?}"))),
    };
    let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.len() < 4 {
        return Err(AdmError::Parse(format!("invalid timezone {tz:?}")));
    }
    let h: i64 = digits[..2].parse().unwrap();
    let m: i64 = digits[2..4].parse().unwrap();
    Ok(millis + sign * (h * MILLIS_PER_HOUR + m * MILLIS_PER_MINUTE))
}

/// Interval accessor helpers used by builtin functions.
pub fn interval_value(kind: IntervalKind, start: &Value, end: &Value) -> Result<IntervalValue> {
    let pick = |v: &Value| -> Result<i64> {
        match (kind, v) {
            (IntervalKind::Date, Value::Date(d)) => Ok(*d as i64),
            (IntervalKind::Time, Value::Time(t)) => Ok(*t as i64),
            (IntervalKind::DateTime, Value::DateTime(t)) => Ok(*t),
            _ => Err(AdmError::InvalidArgument(format!(
                "interval endpoint has wrong type {}",
                v.type_name()
            ))),
        }
    };
    let (s, e) = (pick(start)?, pick(end)?);
    if s > e {
        return Err(AdmError::InvalidArgument("interval start after end".into()));
    }
    Ok(IntervalValue { kind, start: s, end: e })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (2000, 2, 29), (2014, 7, 2), (1969, 12, 31), (1, 1, 1)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn parse_and_format_date() {
        let d = parse_date("2012-06-05").unwrap();
        assert_eq!(format_date(d), "2012-06-05");
        assert!(parse_date("2012-13-01").is_err());
        assert!(parse_date("2011-02-29").is_err());
        assert!(parse_date("2012-02-29").is_ok());
    }

    #[test]
    fn parse_and_format_datetime() {
        let t = parse_datetime("2010-07-22T00:00:00").unwrap();
        assert_eq!(format_datetime(t), "2010-07-22T00:00:00");
        let t2 = parse_datetime("2013-12-22T12:13:32-0800").unwrap();
        // -08:00 means 20:13:32 UTC.
        assert_eq!(format_datetime(t2), "2013-12-22T20:13:32");
        let t3 = parse_datetime("2013-12-22T12:13:32.500Z").unwrap();
        assert_eq!(format_datetime(t3), "2013-12-22T12:13:32.500");
    }

    #[test]
    fn parse_time_variants() {
        assert_eq!(parse_time("00:00:00").unwrap(), 0);
        assert_eq!(
            parse_time("01:02:03").unwrap() as i64,
            MILLIS_PER_HOUR + 2 * MILLIS_PER_MINUTE + 3 * MILLIS_PER_SECOND
        );
        assert!(parse_time("25:00:00").is_err());
    }

    #[test]
    fn duration_roundtrip() {
        let (m, ms) = parse_duration("P30D").unwrap();
        assert_eq!((m, ms), (0, 30 * MILLIS_PER_DAY));
        let (m, ms) = parse_duration("P1Y2M3DT4H5M6.007S").unwrap();
        assert_eq!(m, 14);
        assert_eq!(ms, 3 * MILLIS_PER_DAY + 4 * MILLIS_PER_HOUR + 5 * MILLIS_PER_MINUTE + 6007);
        assert_eq!(format_duration(14, ms), "P1Y2M3DT4H5M6.007S");
        let (m, ms) = parse_duration("-P1M").unwrap();
        assert_eq!((m, ms), (-1, 0));
    }

    #[test]
    fn month_arithmetic_clamps_day() {
        // Jan 31 + 1 month = Feb 28 (non-leap).
        let jan31 = days_from_civil(2013, 1, 31) * MILLIS_PER_DAY;
        let r = datetime_add_duration(jan31, &DurationValue { months: 1, millis: 0 });
        assert_eq!(format_datetime(r), "2013-02-28T00:00:00");
    }

    #[test]
    fn interval_bin_daytime() {
        // Bin datetimes into 1-hour buckets anchored at epoch.
        let v = parse_datetime("2014-01-01T10:30:00").unwrap();
        let b = interval_bin(
            v,
            IntervalKind::DateTime,
            0,
            &DurationValue { months: 0, millis: MILLIS_PER_HOUR },
        )
        .unwrap();
        assert_eq!(format_datetime(b.start), "2014-01-01T10:00:00");
        assert_eq!(format_datetime(b.end), "2014-01-01T11:00:00");
    }

    #[test]
    fn interval_bin_yearmonth() {
        let v = parse_datetime("2014-05-15T10:30:00").unwrap();
        let b = interval_bin(v, IntervalKind::DateTime, 0, &DurationValue { months: 3, millis: 0 })
            .unwrap();
        assert_eq!(format_datetime(b.start), "2014-04-01T00:00:00");
        assert_eq!(format_datetime(b.end), "2014-07-01T00:00:00");
    }

    #[test]
    fn allen_relations() {
        let iv = |s, e| IntervalValue { kind: IntervalKind::DateTime, start: s, end: e };
        assert_eq!(allen_relation(&iv(0, 5), &iv(10, 20)), AllenRelation::Before);
        assert_eq!(allen_relation(&iv(0, 10), &iv(10, 20)), AllenRelation::Meets);
        assert_eq!(allen_relation(&iv(0, 15), &iv(10, 20)), AllenRelation::Overlaps);
        assert_eq!(allen_relation(&iv(10, 15), &iv(10, 20)), AllenRelation::Starts);
        assert_eq!(allen_relation(&iv(12, 15), &iv(10, 20)), AllenRelation::During);
        assert_eq!(allen_relation(&iv(12, 20), &iv(10, 20)), AllenRelation::Finishes);
        assert_eq!(allen_relation(&iv(10, 20), &iv(10, 20)), AllenRelation::Equals);
        assert_eq!(allen_relation(&iv(5, 25), &iv(10, 20)), AllenRelation::Covers);
        assert_eq!(allen_relation(&iv(25, 30), &iv(10, 20)), AllenRelation::After);
        assert_eq!(allen_relation(&iv(20, 30), &iv(10, 20)), AllenRelation::MetBy);
        assert_eq!(allen_relation(&iv(15, 30), &iv(10, 20)), AllenRelation::OverlappedBy);
        assert_eq!(allen_relation(&iv(10, 30), &iv(10, 20)), AllenRelation::StartedBy);
        assert_eq!(allen_relation(&iv(5, 20), &iv(10, 20)), AllenRelation::FinishedBy);
        assert!(check_allen("interval-before", &iv(0, 5), &iv(10, 20)).unwrap());
        assert!(!check_allen("interval-after", &iv(0, 5), &iv(10, 20)).unwrap());
    }

    #[test]
    fn timezone_adjust() {
        let t = parse_datetime("2014-01-01T00:00:00").unwrap();
        let adj = adjust_for_timezone(t, "+05:30").unwrap();
        assert_eq!(format_datetime(adj), "2014-01-01T05:30:00");
    }
}
