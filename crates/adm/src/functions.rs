//! The builtin scalar function library (Table 1 and Section 3).
//!
//! Functions are evaluated by name against already-computed argument values.
//! The runtime's expression evaluator dispatches here for everything that is
//! not a core operator (field access, comparison, boolean connectives).
//!
//! Unknown-value semantics: unless documented otherwise, a `null` or
//! `missing` argument makes the result `null` (SQL-style propagation), which
//! matches AQL's handling of missing information.

use crate::error::{AdmError, Result};
use crate::parse::construct_from_str;
use crate::similarity::{jaccard, jaccard_check};
use crate::spatial;
use crate::strings;
use crate::temporal::{self, MILLIS_PER_DAY};
use crate::value::{DurationValue, IntervalKind, IntervalValue, Record, Value};

/// Evaluation context: the statement clock and the fuzzy-matching session
/// parameters set by `set simfunction` / `set simthreshold` (Query 6).
#[derive(Debug, Clone)]
pub struct FunctionContext {
    /// `current-datetime()` source, fixed per statement for determinism.
    pub now_millis: i64,
    pub simfunction: String,
    pub simthreshold: String,
}

impl Default for FunctionContext {
    fn default() -> Self {
        FunctionContext {
            now_millis: 0,
            simfunction: "jaccard".to_string(),
            simthreshold: "0.5".to_string(),
        }
    }
}

fn arity(name: &str, args: &[Value], n: usize) -> Result<()> {
    if args.len() != n {
        Err(AdmError::InvalidArgument(format!(
            "{name} expects {n} argument(s), got {}",
            args.len()
        )))
    } else {
        Ok(())
    }
}

fn str_arg<'a>(name: &str, v: &'a Value) -> Result<&'a str> {
    v.as_str().ok_or_else(|| {
        AdmError::InvalidArgument(format!("{name} expects a string, got {}", v.type_name()))
    })
}

fn num_arg(name: &str, v: &Value) -> Result<f64> {
    v.as_f64().ok_or_else(|| {
        AdmError::InvalidArgument(format!("{name} expects a number, got {}", v.type_name()))
    })
}

fn int_arg(name: &str, v: &Value) -> Result<i64> {
    v.as_i64().ok_or_else(|| {
        AdmError::InvalidArgument(format!("{name} expects an integer, got {}", v.type_name()))
    })
}

fn list_arg<'a>(name: &str, v: &'a Value) -> Result<&'a [Value]> {
    v.as_list().ok_or_else(|| {
        AdmError::InvalidArgument(format!("{name} expects a collection, got {}", v.type_name()))
    })
}

fn duration_arg(name: &str, v: &Value) -> Result<DurationValue> {
    match v {
        Value::Duration(d) => Ok(*d),
        Value::YearMonthDuration(m) => Ok(DurationValue { months: *m, millis: 0 }),
        Value::DayTimeDuration(ms) => Ok(DurationValue { months: 0, millis: *ms }),
        other => Err(AdmError::InvalidArgument(format!(
            "{name} expects a duration, got {}",
            other.type_name()
        ))),
    }
}

/// Functions whose semantics *inspect* unknowns rather than propagate them.
fn handles_unknowns(name: &str) -> bool {
    matches!(
        name,
        "is-null"
            | "is-missing"
            | "is-unknown"
            | "not"
            | "if-missing"
            | "if-null"
            | "if-missing-or-null"
            | "count"
            | "sql-count"
            | "sql-sum"
            | "sql-min"
            | "sql-max"
            | "sql-avg"
            | "deep-equal"
    )
}

/// Evaluate a builtin function by name.
pub fn eval(name: &str, args: &[Value], ctx: &FunctionContext) -> Result<Value> {
    // Default unknown propagation.
    if !handles_unknowns(name) {
        if args.iter().any(|a| a.is_null()) {
            return Ok(Value::Null);
        }
        if args.iter().any(|a| a.is_missing()) {
            return Ok(Value::Missing);
        }
    }
    match name {
        // -- unknown handling ------------------------------------------------
        "is-null" => {
            // Legacy AQL (the paper's language) predates MISSING: an absent
            // field evaluates as null, so is-null is true for both unknowns
            // (Query 7 relies on this for the optional end-date).
            arity(name, args, 1)?;
            Ok(Value::Boolean(args[0].is_unknown()))
        }
        "is-missing" => {
            arity(name, args, 1)?;
            Ok(Value::Boolean(args[0].is_missing()))
        }
        "is-unknown" => {
            arity(name, args, 1)?;
            Ok(Value::Boolean(args[0].is_unknown()))
        }
        "if-missing" => {
            arity(name, args, 2)?;
            Ok(if args[0].is_missing() { args[1].clone() } else { args[0].clone() })
        }
        "if-null" => {
            arity(name, args, 2)?;
            Ok(if args[0].is_null() { args[1].clone() } else { args[0].clone() })
        }
        "if-missing-or-null" => {
            arity(name, args, 2)?;
            Ok(if args[0].is_unknown() { args[1].clone() } else { args[0].clone() })
        }
        "not" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::Boolean(b) => Ok(Value::Boolean(!b)),
                v if v.is_unknown() => Ok(Value::Null),
                other => Err(AdmError::InvalidArgument(format!(
                    "not() expects boolean, got {}",
                    other.type_name()
                ))),
            }
        }
        "deep-equal" => {
            arity(name, args, 2)?;
            Ok(Value::Boolean(args[0].total_cmp(&args[1]).is_eq()))
        }

        // -- string functions -------------------------------------------------
        "contains" => {
            arity(name, args, 2)?;
            Ok(Value::Boolean(strings::contains(
                str_arg(name, &args[0])?,
                str_arg(name, &args[1])?,
            )))
        }
        "like" => {
            arity(name, args, 2)?;
            Ok(Value::Boolean(strings::like(str_arg(name, &args[0])?, str_arg(name, &args[1])?)))
        }
        "matches" => {
            arity(name, args, 2)?;
            Ok(Value::Boolean(strings::matches(
                str_arg(name, &args[0])?,
                str_arg(name, &args[1])?,
            )?))
        }
        "replace" => {
            arity(name, args, 3)?;
            Ok(Value::string(strings::replace(
                str_arg(name, &args[0])?,
                str_arg(name, &args[1])?,
                str_arg(name, &args[2])?,
            )?))
        }
        "word-tokens" => {
            arity(name, args, 1)?;
            let toks = strings::word_tokens(str_arg(name, &args[0])?);
            Ok(Value::ordered_list(toks.into_iter().map(Value::from).collect()))
        }
        "gram-tokens" => {
            arity(name, args, 2)?;
            let k = int_arg(name, &args[1])? as usize;
            let toks = strings::gram_tokens(str_arg(name, &args[0])?, k);
            Ok(Value::ordered_list(toks.into_iter().map(Value::from).collect()))
        }
        "string-length" => {
            arity(name, args, 1)?;
            Ok(Value::Int64(str_arg(name, &args[0])?.chars().count() as i64))
        }
        "lowercase" => {
            arity(name, args, 1)?;
            Ok(Value::string(str_arg(name, &args[0])?.to_lowercase()))
        }
        "uppercase" => {
            arity(name, args, 1)?;
            Ok(Value::string(str_arg(name, &args[0])?.to_uppercase()))
        }
        "trim" => {
            arity(name, args, 1)?;
            Ok(Value::string(str_arg(name, &args[0])?.trim()))
        }
        "starts-with" => {
            arity(name, args, 2)?;
            Ok(Value::Boolean(str_arg(name, &args[0])?.starts_with(str_arg(name, &args[1])?)))
        }
        "ends-with" => {
            arity(name, args, 2)?;
            Ok(Value::Boolean(str_arg(name, &args[0])?.ends_with(str_arg(name, &args[1])?)))
        }
        "substring" => {
            // substring(s, start[, len]) — 1-based start as in AQL.
            if args.len() < 2 || args.len() > 3 {
                return Err(AdmError::InvalidArgument("substring expects 2 or 3 arguments".into()));
            }
            let s = str_arg(name, &args[0])?;
            let start = (int_arg(name, &args[1])? - 1).max(0) as usize;
            let chars: Vec<char> = s.chars().collect();
            let end = if args.len() == 3 {
                (start + int_arg(name, &args[2])?.max(0) as usize).min(chars.len())
            } else {
                chars.len()
            };
            if start >= chars.len() {
                return Ok(Value::string(""));
            }
            Ok(Value::string(chars[start..end].iter().collect::<String>()))
        }
        "string-concat" => {
            arity(name, args, 1)?;
            let items = list_arg(name, &args[0])?;
            let mut out = String::new();
            for v in items {
                out.push_str(str_arg(name, v)?);
            }
            Ok(Value::string(out))
        }
        "string-join" => {
            arity(name, args, 2)?;
            let items = list_arg(name, &args[0])?;
            let sep = str_arg(name, &args[1])?;
            let parts: Result<Vec<&str>> = items.iter().map(|v| str_arg(name, v)).collect();
            Ok(Value::string(parts?.join(sep)))
        }
        "codepoint-to-string" => {
            arity(name, args, 1)?;
            let items = list_arg(name, &args[0])?;
            let mut out = String::new();
            for v in items {
                let cp = int_arg(name, v)? as u32;
                out.push(
                    char::from_u32(cp).ok_or_else(|| {
                        AdmError::InvalidArgument(format!("invalid codepoint {cp}"))
                    })?,
                );
            }
            Ok(Value::string(out))
        }

        // -- edit distance / similarity ---------------------------------------
        "edit-distance" => {
            arity(name, args, 2)?;
            Ok(Value::Int64(strings::edit_distance(
                str_arg(name, &args[0])?,
                str_arg(name, &args[1])?,
            ) as i64))
        }
        "edit-distance-check" => {
            arity(name, args, 3)?;
            let t = int_arg(name, &args[2])?.max(0) as usize;
            match strings::edit_distance_check(
                str_arg(name, &args[0])?,
                str_arg(name, &args[1])?,
                t,
            ) {
                Some(d) => {
                    Ok(Value::ordered_list(vec![Value::Boolean(true), Value::Int64(d as i64)]))
                }
                None => {
                    Ok(Value::ordered_list(vec![Value::Boolean(false), Value::Int64(t as i64 + 1)]))
                }
            }
        }
        "edit-distance-ok" => {
            // Boolean form of edit-distance-check, used by the compiled
            // lowering of `~=` under edit-distance semantics.
            arity(name, args, 3)?;
            let t = int_arg(name, &args[2])?.max(0) as usize;
            Ok(Value::Boolean(
                strings::edit_distance_check(str_arg(name, &args[0])?, str_arg(name, &args[1])?, t)
                    .is_some(),
            ))
        }
        "edit-distance-contains" => {
            arity(name, args, 3)?;
            let t = int_arg(name, &args[2])?.max(0) as usize;
            Ok(Value::Boolean(strings::edit_distance_contains(
                str_arg(name, &args[0])?,
                str_arg(name, &args[1])?,
                t,
            )))
        }
        "similarity-jaccard" => {
            arity(name, args, 2)?;
            Ok(Value::Double(jaccard(list_arg(name, &args[0])?, list_arg(name, &args[1])?)))
        }
        "similarity-jaccard-check" => {
            arity(name, args, 3)?;
            let t = num_arg(name, &args[2])?;
            match jaccard_check(list_arg(name, &args[0])?, list_arg(name, &args[1])?, t) {
                Some(sim) => {
                    Ok(Value::ordered_list(vec![Value::Boolean(true), Value::Double(sim)]))
                }
                None => Ok(Value::ordered_list(vec![Value::Boolean(false), Value::Double(0.0)])),
            }
        }
        "fuzzy-eq" => {
            arity(name, args, 2)?;
            Ok(Value::Boolean(crate::similarity::fuzzy_eq(
                &args[0],
                &args[1],
                &ctx.simfunction,
                &ctx.simthreshold,
            )?))
        }

        // -- temporal functions ------------------------------------------------
        "current-datetime" => {
            arity(name, args, 0)?;
            Ok(Value::DateTime(ctx.now_millis))
        }
        "current-date" => {
            arity(name, args, 0)?;
            Ok(Value::Date(ctx.now_millis.div_euclid(MILLIS_PER_DAY) as i32))
        }
        "current-time" => {
            arity(name, args, 0)?;
            Ok(Value::Time(ctx.now_millis.rem_euclid(MILLIS_PER_DAY) as i32))
        }
        "date"
        | "time"
        | "datetime"
        | "duration"
        | "year-month-duration"
        | "day-time-duration"
        | "point"
        | "line"
        | "rectangle"
        | "circle"
        | "polygon"
        | "hex" => {
            arity(name, args, 1)?;
            // Constructor applied to a string (e.g. `datetime($log.time)`,
            // Query 12); applied to a same-typed value it is the identity.
            match &args[0] {
                Value::String(s) => construct_from_str(name, s),
                other if other.type_name() == name => Ok(other.clone()),
                other => Err(AdmError::InvalidArgument(format!(
                    "{name}() cannot be applied to {}",
                    other.type_name()
                ))),
            }
        }
        "int8" | "int16" | "int32" | "int64" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::String(s) => construct_from_str(name, s),
                v if v.as_i64().is_some() => {
                    crate::value::coerce_int(v, &format!("int{}", &name[3..]))
                }
                other => Err(AdmError::InvalidArgument(format!(
                    "{name}() cannot be applied to {}",
                    other.type_name()
                ))),
            }
        }
        "double" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::String(s) => construct_from_str(name, s),
                v if v.is_numeric() => Ok(Value::Double(v.as_f64().unwrap())),
                other => Err(AdmError::InvalidArgument(format!(
                    "double() cannot be applied to {}",
                    other.type_name()
                ))),
            }
        }
        "string" => {
            arity(name, args, 1)?;
            Ok(Value::string(crate::print::to_adm_string(&args[0]).trim_matches('"')))
        }
        "subtract-datetime" => {
            arity(name, args, 2)?;
            match (&args[0], &args[1]) {
                (Value::DateTime(a), Value::DateTime(b)) => Ok(Value::DayTimeDuration(a - b)),
                _ => Err(AdmError::InvalidArgument("subtract-datetime expects datetimes".into())),
            }
        }
        "subtract-date" => {
            arity(name, args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Date(a), Value::Date(b)) => {
                    Ok(Value::DayTimeDuration((*a as i64 - *b as i64) * MILLIS_PER_DAY))
                }
                _ => Err(AdmError::InvalidArgument("subtract-date expects dates".into())),
            }
        }
        "subtract-time" => {
            arity(name, args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Time(a), Value::Time(b)) => {
                    Ok(Value::DayTimeDuration(*a as i64 - *b as i64))
                }
                _ => Err(AdmError::InvalidArgument("subtract-time expects times".into())),
            }
        }
        "adjust-datetime-for-timezone" => {
            arity(name, args, 2)?;
            match &args[0] {
                Value::DateTime(t) => Ok(Value::DateTime(temporal::adjust_for_timezone(
                    *t,
                    str_arg(name, &args[1])?,
                )?)),
                _ => Err(AdmError::InvalidArgument("expects a datetime".into())),
            }
        }
        "adjust-time-for-timezone" => {
            arity(name, args, 2)?;
            match &args[0] {
                Value::Time(t) => {
                    let adj = temporal::adjust_for_timezone(*t as i64, str_arg(name, &args[1])?)?;
                    Ok(Value::Time(adj.rem_euclid(MILLIS_PER_DAY) as i32))
                }
                _ => Err(AdmError::InvalidArgument("expects a time".into())),
            }
        }
        "interval-start-from-date" => {
            arity(name, args, 2)?;
            let d = match &args[0] {
                Value::Date(d) => *d as i64,
                Value::String(s) => temporal::parse_date(s)? as i64,
                _ => return Err(AdmError::InvalidArgument("expects a date".into())),
            };
            let dur = duration_arg(name, &args[1])?;
            let end = temporal::date_add_duration(d as i32, &dur) as i64;
            Ok(Value::Interval(IntervalValue { kind: IntervalKind::Date, start: d, end }))
        }
        "interval-start-from-time" => {
            arity(name, args, 2)?;
            let t = match &args[0] {
                Value::Time(t) => *t as i64,
                Value::String(s) => temporal::parse_time(s)? as i64,
                _ => return Err(AdmError::InvalidArgument("expects a time".into())),
            };
            let dur = duration_arg(name, &args[1])?;
            if dur.months != 0 {
                return Err(AdmError::InvalidArgument(
                    "time intervals need a day-time duration".into(),
                ));
            }
            Ok(Value::Interval(IntervalValue {
                kind: IntervalKind::Time,
                start: t,
                end: t + dur.millis,
            }))
        }
        "interval-start-from-datetime" => {
            arity(name, args, 2)?;
            let t = match &args[0] {
                Value::DateTime(t) => *t,
                Value::String(s) => temporal::parse_datetime(s)?,
                _ => return Err(AdmError::InvalidArgument("expects a datetime".into())),
            };
            let dur = duration_arg(name, &args[1])?;
            let end = temporal::datetime_add_duration(t, &dur);
            Ok(Value::Interval(IntervalValue { kind: IntervalKind::DateTime, start: t, end }))
        }
        "interval-bin" => {
            arity(name, args, 3)?;
            let (val, kind) = match &args[0] {
                Value::Date(d) => (*d as i64, IntervalKind::Date),
                Value::Time(t) => (*t as i64, IntervalKind::Time),
                Value::DateTime(t) => (*t, IntervalKind::DateTime),
                other => {
                    return Err(AdmError::InvalidArgument(format!(
                        "interval-bin expects a temporal value, got {}",
                        other.type_name()
                    )))
                }
            };
            let anchor = match (&args[1], kind) {
                (Value::Date(d), IntervalKind::Date) => *d as i64,
                (Value::Date(d), IntervalKind::DateTime) => *d as i64 * MILLIS_PER_DAY,
                (Value::Time(t), IntervalKind::Time) => *t as i64,
                (Value::DateTime(t), IntervalKind::DateTime) => *t,
                _ => {
                    return Err(AdmError::InvalidArgument(
                        "interval-bin anchor type mismatch".into(),
                    ))
                }
            };
            let dur = duration_arg(name, &args[2])?;
            Ok(Value::Interval(temporal::interval_bin(val, kind, anchor, &dur)?))
        }
        "get-interval-start" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::Interval(iv) => Ok(interval_endpoint(iv, iv.start)),
                _ => Err(AdmError::InvalidArgument("expects an interval".into())),
            }
        }
        "get-interval-end" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::Interval(iv) => Ok(interval_endpoint(iv, iv.end)),
                _ => Err(AdmError::InvalidArgument("expects an interval".into())),
            }
        }
        n if n.starts_with("interval-") => {
            arity(name, args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Interval(a), Value::Interval(b)) => {
                    Ok(Value::Boolean(temporal::check_allen(n, a, b)?))
                }
                _ => Err(AdmError::InvalidArgument(format!("{n} expects two intervals"))),
            }
        }
        "year" | "month" | "day" | "hour" | "minute" | "second" => {
            arity(name, args, 1)?;
            temporal_component(name, &args[0])
        }

        // -- spatial functions --------------------------------------------------
        "spatial-distance" => {
            arity(name, args, 2)?;
            Ok(Value::Double(spatial::spatial_distance(&args[0], &args[1])?))
        }
        "spatial-area" => {
            arity(name, args, 1)?;
            Ok(Value::Double(spatial::spatial_area(&args[0])?))
        }
        "spatial-intersect" => {
            arity(name, args, 2)?;
            Ok(Value::Boolean(spatial::spatial_intersect(&args[0], &args[1])?))
        }
        "spatial-cell" => {
            arity(name, args, 4)?;
            let r = spatial::spatial_cell(
                &args[0],
                &args[1],
                num_arg(name, &args[2])?,
                num_arg(name, &args[3])?,
            )?;
            Ok(Value::Rectangle(r))
        }
        "create-circle" => {
            arity(name, args, 2)?;
            match &args[0] {
                Value::Point(p) => Ok(Value::Circle(crate::value::Circle {
                    center: *p,
                    radius: num_arg(name, &args[1])?,
                })),
                _ => Err(AdmError::InvalidArgument("create-circle expects a point".into())),
            }
        }
        "create-rectangle" => {
            arity(name, args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Point(a), Value::Point(b)) => {
                    Ok(Value::Rectangle(crate::value::Rectangle {
                        low: crate::value::Point::new(a.x.min(b.x), a.y.min(b.y)),
                        high: crate::value::Point::new(a.x.max(b.x), a.y.max(b.y)),
                    }))
                }
                _ => Err(AdmError::InvalidArgument("create-rectangle expects two points".into())),
            }
        }
        "create-point" => {
            arity(name, args, 2)?;
            Ok(Value::Point(crate::value::Point::new(
                num_arg(name, &args[0])?,
                num_arg(name, &args[1])?,
            )))
        }
        "get-x" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::Point(p) => Ok(Value::Double(p.x)),
                _ => Err(AdmError::InvalidArgument("get-x expects a point".into())),
            }
        }
        "get-y" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::Point(p) => Ok(Value::Double(p.y)),
                _ => Err(AdmError::InvalidArgument("get-y expects a point".into())),
            }
        }

        // -- numeric ---------------------------------------------------------
        "abs" => {
            arity(name, args, 1)?;
            match &args[0] {
                v if v.as_i64().is_some() => Ok(Value::Int64(v.as_i64().unwrap().abs())),
                v if v.is_numeric() => Ok(Value::Double(v.as_f64().unwrap().abs())),
                other => Err(AdmError::InvalidArgument(format!(
                    "abs expects a number, got {}",
                    other.type_name()
                ))),
            }
        }
        "round" => {
            arity(name, args, 1)?;
            Ok(Value::Double(num_arg(name, &args[0])?.round()))
        }
        "floor" => {
            arity(name, args, 1)?;
            Ok(Value::Double(num_arg(name, &args[0])?.floor()))
        }
        "ceiling" => {
            arity(name, args, 1)?;
            Ok(Value::Double(num_arg(name, &args[0])?.ceil()))
        }
        "sqrt" => {
            arity(name, args, 1)?;
            Ok(Value::Double(num_arg(name, &args[0])?.sqrt()))
        }

        // -- collections ------------------------------------------------------
        "len" => {
            arity(name, args, 1)?;
            Ok(Value::Int64(list_arg(name, &args[0])?.len() as i64))
        }
        "get-item" => {
            arity(name, args, 2)?;
            let items = list_arg(name, &args[0])?;
            let i = int_arg(name, &args[1])?;
            if i < 0 || i as usize >= items.len() {
                Ok(Value::Missing)
            } else {
                Ok(items[i as usize].clone())
            }
        }
        "range" => {
            arity(name, args, 2)?;
            let lo = int_arg(name, &args[0])?;
            let hi = int_arg(name, &args[1])?;
            Ok(Value::ordered_list((lo..=hi).map(Value::Int64).collect()))
        }

        // -- aggregates over collection values (AQL allows avg(<list>)) ------
        "count" => {
            // AQL count: the cardinality of the collection (nulls count;
            // missing items do not exist).
            arity(name, args, 1)?;
            match &args[0] {
                v if v.is_unknown() => Ok(Value::Int64(0)),
                v => Ok(Value::Int64(
                    list_arg(name, v)?.iter().filter(|x| !x.is_missing()).count() as i64,
                )),
            }
        }
        "sql-count" => {
            // SQL count: unknowns are skipped.
            arity(name, args, 1)?;
            match &args[0] {
                v if v.is_unknown() => Ok(Value::Int64(0)),
                v => Ok(Value::Int64(
                    list_arg(name, v)?.iter().filter(|x| !x.is_unknown()).count() as i64,
                )),
            }
        }
        "sum" | "min" | "max" | "avg" => scalar_aggregate(name, &args[0], false),
        "sql-sum" | "sql-min" | "sql-max" | "sql-avg" => {
            scalar_aggregate(&name[4..], &args[0], true)
        }

        other => Err(AdmError::UnknownFunction(other.to_string())),
    }
}

fn interval_endpoint(iv: &IntervalValue, v: i64) -> Value {
    match iv.kind {
        IntervalKind::Date => Value::Date(v as i32),
        IntervalKind::Time => Value::Time(v as i32),
        IntervalKind::DateTime => Value::DateTime(v),
    }
}

fn temporal_component(name: &str, v: &Value) -> Result<Value> {
    let (days, millis_of_day) = match v {
        Value::Date(d) => (*d as i64, 0),
        Value::DateTime(t) => (t.div_euclid(MILLIS_PER_DAY), t.rem_euclid(MILLIS_PER_DAY)),
        Value::Time(t) => (0, *t as i64),
        other => {
            return Err(AdmError::InvalidArgument(format!(
                "{name} expects a temporal value, got {}",
                other.type_name()
            )))
        }
    };
    let (y, mo, d) = temporal::civil_from_days(days);
    Ok(Value::Int64(match name {
        "year" => y as i64,
        "month" => mo as i64,
        "day" => d as i64,
        "hour" => millis_of_day / temporal::MILLIS_PER_HOUR,
        "minute" => (millis_of_day % temporal::MILLIS_PER_HOUR) / temporal::MILLIS_PER_MINUTE,
        "second" => (millis_of_day % temporal::MILLIS_PER_MINUTE) / temporal::MILLIS_PER_SECOND,
        _ => unreachable!(),
    }))
}

/// Aggregates over a materialized collection.
///
/// AQL semantics (`sum`/`min`/`max`/`avg`): any `null` element makes the
/// result `null` ("proper" semantics per Section 3). SQL semantics
/// (`sql-*`): unknowns are skipped, empty input yields `null`.
fn scalar_aggregate(op: &str, input: &Value, sql: bool) -> Result<Value> {
    if input.is_unknown() {
        return Ok(Value::Null);
    }
    let items = list_arg(op, input)?;
    let mut vals: Vec<&Value> = Vec::with_capacity(items.len());
    for v in items {
        if v.is_unknown() {
            if sql {
                continue;
            }
            return Ok(Value::Null);
        }
        vals.push(v);
    }
    if vals.is_empty() {
        return Ok(Value::Null);
    }
    match op {
        "min" => Ok(vals
            .iter()
            .fold(vals[0], |acc, v| if v.total_cmp(acc).is_lt() { v } else { acc })
            .clone()),
        "max" => Ok(vals
            .iter()
            .fold(vals[0], |acc, v| if v.total_cmp(acc).is_gt() { v } else { acc })
            .clone()),
        "sum" => {
            if vals.iter().all(|v| v.as_i64().is_some()) {
                let mut acc: i64 = 0;
                for v in &vals {
                    acc = acc
                        .checked_add(v.as_i64().unwrap())
                        .ok_or_else(|| AdmError::Arithmetic("integer overflow in sum".into()))?;
                }
                Ok(Value::Int64(acc))
            } else {
                let mut acc = 0.0;
                for v in &vals {
                    acc += v.as_f64().ok_or_else(|| {
                        AdmError::InvalidArgument(format!("sum over non-numeric {}", v.type_name()))
                    })?;
                }
                Ok(Value::Double(acc))
            }
        }
        "avg" => {
            let mut acc = 0.0;
            for v in &vals {
                acc += v.as_f64().ok_or_else(|| {
                    AdmError::InvalidArgument(format!("avg over non-numeric {}", v.type_name()))
                })?;
            }
            Ok(Value::Double(acc / vals.len() as f64))
        }
        other => Err(AdmError::UnknownFunction(other.to_string())),
    }
}

// ---------------------------------------------------------------------------
// Arithmetic with numeric promotion and temporal rules
// ---------------------------------------------------------------------------

/// Binary arithmetic used by AQL `+ - * / %` (Section 3, e.g. Query 12's
/// `$end - duration("P30D")`). Unknowns propagate as null/missing.
pub fn arith(op: char, a: &Value, b: &Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    if a.is_missing() || b.is_missing() {
        return Ok(Value::Missing);
    }
    // Temporal rules first.
    match (op, a, b) {
        ('+', Value::DateTime(t), d) | ('+', d, Value::DateTime(t))
            if duration_arg("+", d).is_ok() =>
        {
            return Ok(Value::DateTime(temporal::datetime_add_duration(
                *t,
                &duration_arg("+", d)?,
            )));
        }
        ('-', Value::DateTime(t), d) if duration_arg("-", d).is_ok() => {
            let dur = duration_arg("-", d)?;
            let neg = DurationValue { months: -dur.months, millis: -dur.millis };
            return Ok(Value::DateTime(temporal::datetime_add_duration(*t, &neg)));
        }
        ('+', Value::Date(t), d) | ('+', d, Value::Date(t)) if duration_arg("+", d).is_ok() => {
            return Ok(Value::Date(temporal::date_add_duration(*t, &duration_arg("+", d)?)));
        }
        ('-', Value::Date(t), d) if duration_arg("-", d).is_ok() => {
            let dur = duration_arg("-", d)?;
            let neg = DurationValue { months: -dur.months, millis: -dur.millis };
            return Ok(Value::Date(temporal::date_add_duration(*t, &neg)));
        }
        ('-', Value::DateTime(x), Value::DateTime(y)) => {
            return Ok(Value::DayTimeDuration(x - y));
        }
        ('-', Value::Date(x), Value::Date(y)) => {
            return Ok(Value::DayTimeDuration((*x as i64 - *y as i64) * MILLIS_PER_DAY));
        }
        ('-', Value::Time(x), Value::Time(y)) => {
            return Ok(Value::DayTimeDuration(*x as i64 - *y as i64));
        }
        ('+', x, y) if duration_arg("+", x).is_ok() && duration_arg("+", y).is_ok() => {
            let (dx, dy) = (duration_arg("+", x)?, duration_arg("+", y)?);
            return Ok(Value::Duration(DurationValue {
                months: dx.months + dy.months,
                millis: dx.millis + dy.millis,
            }));
        }
        _ => {}
    }
    // Numeric rules.
    let (x, y) = match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(AdmError::InvalidArgument(format!(
                "cannot apply '{op}' to {} and {}",
                a.type_name(),
                b.type_name()
            )))
        }
    };
    let both_int = a.as_i64().is_some() && b.as_i64().is_some();
    if both_int {
        let (ia, ib) = (a.as_i64().unwrap(), b.as_i64().unwrap());
        let out = match op {
            '+' => ia.checked_add(ib),
            '-' => ia.checked_sub(ib),
            '*' => ia.checked_mul(ib),
            '/' => {
                if ib == 0 {
                    return Err(AdmError::Arithmetic("division by zero".into()));
                }
                // Integer division stays integral when exact, else double —
                // matching AQL's numeric promotion behavior.
                if ia % ib == 0 {
                    ia.checked_div(ib)
                } else {
                    return Ok(Value::Double(x / y));
                }
            }
            '%' => {
                if ib == 0 {
                    return Err(AdmError::Arithmetic("modulo by zero".into()));
                }
                ia.checked_rem(ib)
            }
            _ => return Err(AdmError::InvalidArgument(format!("unknown operator '{op}'"))),
        };
        return out
            .map(Value::Int64)
            .ok_or_else(|| AdmError::Arithmetic(format!("integer overflow in '{op}'")));
    }
    Ok(Value::Double(match op {
        '+' => x + y,
        '-' => x - y,
        '*' => x * y,
        '/' => {
            if y == 0.0 {
                return Err(AdmError::Arithmetic("division by zero".into()));
            }
            x / y
        }
        '%' => x % y,
        _ => return Err(AdmError::InvalidArgument(format!("unknown operator '{op}'"))),
    }))
}

/// Unary negation.
pub fn neg(v: &Value) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Missing => Ok(Value::Missing),
        _ if v.as_i64().is_some() => Ok(Value::Int64(-v.as_i64().unwrap())),
        _ if v.is_numeric() => Ok(Value::Double(-v.as_f64().unwrap())),
        Value::Duration(d) => {
            Ok(Value::Duration(DurationValue { months: -d.months, millis: -d.millis }))
        }
        other => Err(AdmError::InvalidArgument(format!("cannot negate {}", other.type_name()))),
    }
}

/// Construct a record value (used by the `return { ... }` record
/// constructor in translated plans). Missing-valued fields are omitted, as
/// in AQL record construction.
pub fn build_record(fields: Vec<(String, Value)>) -> Value {
    let mut rec = Record::with_capacity(fields.len());
    for (name, v) in fields {
        if !v.is_missing() {
            rec.push_unchecked(name, v);
        }
    }
    Value::record(rec)
}

/// Flatten helper used by list constructors.
pub fn build_list(items: Vec<Value>, ordered: bool) -> Value {
    if ordered {
        Value::ordered_list(items)
    } else {
        Value::unordered_list(items)
    }
}

/// All builtin names, used by the AQL translator to distinguish builtin
/// calls from user-defined functions.
pub fn is_builtin(name: &str) -> bool {
    const NAMES: &[&str] = &[
        "is-null",
        "is-missing",
        "is-unknown",
        "if-missing",
        "if-null",
        "if-missing-or-null",
        "not",
        "deep-equal",
        "contains",
        "like",
        "matches",
        "replace",
        "word-tokens",
        "gram-tokens",
        "string-length",
        "lowercase",
        "uppercase",
        "trim",
        "starts-with",
        "ends-with",
        "substring",
        "string-concat",
        "string-join",
        "codepoint-to-string",
        "edit-distance",
        "edit-distance-check",
        "edit-distance-ok",
        "edit-distance-contains",
        "similarity-jaccard",
        "similarity-jaccard-check",
        "fuzzy-eq",
        "current-datetime",
        "current-date",
        "current-time",
        "date",
        "time",
        "datetime",
        "duration",
        "year-month-duration",
        "day-time-duration",
        "point",
        "line",
        "rectangle",
        "circle",
        "polygon",
        "hex",
        "int8",
        "int16",
        "int32",
        "int64",
        "double",
        "string",
        "subtract-datetime",
        "subtract-date",
        "subtract-time",
        "adjust-datetime-for-timezone",
        "adjust-time-for-timezone",
        "interval-start-from-date",
        "interval-start-from-time",
        "interval-start-from-datetime",
        "interval-bin",
        "get-interval-start",
        "get-interval-end",
        "year",
        "month",
        "day",
        "hour",
        "minute",
        "second",
        "spatial-distance",
        "spatial-area",
        "spatial-intersect",
        "spatial-cell",
        "create-point",
        "create-circle",
        "create-rectangle",
        "get-x",
        "get-y",
        "abs",
        "round",
        "floor",
        "ceiling",
        "sqrt",
        "len",
        "get-item",
        "range",
        "count",
        "sum",
        "min",
        "max",
        "avg",
        "sql-count",
        "sql-sum",
        "sql-min",
        "sql-max",
        "sql-avg",
    ];
    NAMES.contains(&name) || name.starts_with("interval-")
}

/// Whether a function name is an aggregate (affects how the translator
/// treats calls over grouped variables).
pub fn is_aggregate(name: &str) -> bool {
    matches!(
        name,
        "count"
            | "sum"
            | "min"
            | "max"
            | "avg"
            | "sql-count"
            | "sql-sum"
            | "sql-min"
            | "sql-max"
            | "sql-avg"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FunctionContext {
        FunctionContext {
            now_millis: 1_000_000,
            simfunction: "edit-distance".into(),
            simthreshold: "3".into(),
        }
    }

    fn call(name: &str, args: &[Value]) -> Value {
        eval(name, args, &ctx()).unwrap()
    }

    #[test]
    fn unknown_propagation() {
        assert_eq!(call("string-length", &[Value::Null]), Value::Null);
        assert_eq!(call("string-length", &[Value::Missing]), Value::Missing);
        assert_eq!(call("is-null", &[Value::Null]), Value::Boolean(true));
        assert_eq!(call("is-missing", &[Value::Missing]), Value::Boolean(true));
        assert_eq!(call("is-null", &[Value::Missing]), Value::Boolean(true));
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            call("contains", &[Value::string("hello"), Value::string("ell")]),
            Value::Boolean(true)
        );
        assert_eq!(call("string-length", &[Value::string("héllo")]), Value::Int64(5));
        assert_eq!(
            call("substring", &[Value::string("hello"), Value::Int64(2), Value::Int64(3)]),
            Value::string("ell")
        );
        assert_eq!(call("uppercase", &[Value::string("ab")]), Value::string("AB"));
        let toks = call("word-tokens", &[Value::string("See you tonight!")]);
        assert_eq!(toks.as_list().unwrap().len(), 3);
    }

    #[test]
    fn aggregate_null_semantics() {
        // AQL avg: null poisons; SQL avg: null skipped.
        let with_null = Value::ordered_list(vec![Value::Int64(2), Value::Null, Value::Int64(4)]);
        assert_eq!(call("avg", &[with_null.clone()]), Value::Null);
        assert_eq!(call("sql-avg", &[with_null.clone()]), Value::Double(3.0));
        assert_eq!(call("count", &[with_null.clone()]), Value::Int64(3));
        assert_eq!(call("sum", &[with_null.clone()]), Value::Null);
        assert_eq!(call("sql-sum", &[with_null]), Value::Int64(6));
        let empty = Value::ordered_list(vec![]);
        assert_eq!(call("avg", &[empty.clone()]), Value::Null);
        assert_eq!(call("count", &[empty]), Value::Int64(0));
    }

    #[test]
    fn min_max() {
        let l = Value::ordered_list(vec![Value::Int64(3), Value::Int64(1), Value::Int64(2)]);
        assert_eq!(call("min", &[l.clone()]), Value::Int64(1));
        assert_eq!(call("max", &[l]), Value::Int64(3));
    }

    #[test]
    fn constructors_and_current() {
        assert!(matches!(
            call("datetime", &[Value::string("2014-01-01T00:00:00")]),
            Value::DateTime(_)
        ));
        assert_eq!(call("current-datetime", &[]), Value::DateTime(1_000_000));
        assert_eq!(call("int32", &[Value::Int64(9)]), Value::Int32(9));
    }

    #[test]
    fn temporal_arith() {
        let dt = call("datetime", &[Value::string("2014-01-31T00:00:00")]);
        let dur = call("duration", &[Value::string("P30D")]);
        let sum = arith('+', &dt, &dur).unwrap();
        assert_eq!(crate::print::to_adm_string(&sum), "datetime(\"2014-03-02T00:00:00\")");
        let diff = arith('-', &sum, &dt).unwrap();
        assert_eq!(diff, Value::DayTimeDuration(30 * MILLIS_PER_DAY));
    }

    #[test]
    fn numeric_arith() {
        assert_eq!(arith('+', &Value::Int32(2), &Value::Int32(3)).unwrap(), Value::Int64(5));
        assert_eq!(arith('/', &Value::Int32(6), &Value::Int32(3)).unwrap(), Value::Int64(2));
        assert_eq!(arith('/', &Value::Int32(7), &Value::Int32(2)).unwrap(), Value::Double(3.5));
        assert!(arith('/', &Value::Int32(1), &Value::Int32(0)).is_err());
        assert_eq!(arith('+', &Value::Null, &Value::Int32(1)).unwrap(), Value::Null);
        assert_eq!(arith('*', &Value::Double(1.5), &Value::Int32(2)).unwrap(), Value::Double(3.0));
        assert!(arith('+', &Value::Int64(i64::MAX), &Value::Int64(1)).is_err());
    }

    #[test]
    fn fuzzy_eq_uses_ctx() {
        let r = call("fuzzy-eq", &[Value::string("tonight"), Value::string("tonite")]);
        assert_eq!(r, Value::Boolean(true));
    }

    #[test]
    fn edit_distance_check_shape() {
        let r = call(
            "edit-distance-check",
            &[Value::string("abc"), Value::string("abd"), Value::Int64(1)],
        );
        assert_eq!(r, Value::ordered_list(vec![Value::Boolean(true), Value::Int64(1)]));
    }

    #[test]
    fn interval_functions() {
        let iv = call(
            "interval-start-from-datetime",
            &[Value::string("2014-01-01T00:00:00"), call("duration", &[Value::string("P1D")])],
        );
        let start = call("get-interval-start", &[iv.clone()]);
        assert!(matches!(start, Value::DateTime(_)));
        let iv2 = call(
            "interval-start-from-datetime",
            &[Value::string("2014-01-01T12:00:00"), call("duration", &[Value::string("P1D")])],
        );
        assert_eq!(call("interval-overlaps", &[iv, iv2]), Value::Boolean(true));
    }

    #[test]
    fn temporal_components() {
        let dt = call("datetime", &[Value::string("2014-07-02T13:45:59")]);
        assert_eq!(call("year", &[dt.clone()]), Value::Int64(2014));
        assert_eq!(call("month", &[dt.clone()]), Value::Int64(7));
        assert_eq!(call("day", &[dt.clone()]), Value::Int64(2));
        assert_eq!(call("hour", &[dt.clone()]), Value::Int64(13));
        assert_eq!(call("minute", &[dt.clone()]), Value::Int64(45));
        assert_eq!(call("second", &[dt]), Value::Int64(59));
    }

    #[test]
    fn unknown_function_errors() {
        assert!(matches!(eval("no-such-fn", &[], &ctx()), Err(AdmError::UnknownFunction(_))));
    }

    #[test]
    fn record_builder_drops_missing() {
        let v = build_record(vec![("a".into(), Value::Int64(1)), ("b".into(), Value::Missing)]);
        assert_eq!(v.as_record().unwrap().len(), 1);
    }
}
