//! Order-preserving *comparison keys* for ADM values.
//!
//! Encodes any `Value` into a byte string whose `memcmp` order agrees with
//! [`Value::total_cmp`] — the normalized-key technique Hyracks uses so that
//! sort, merge, and group/join key equality run directly over bytes. The
//! same bit-flipping primitives back `storage::keycodec`'s B+-tree key
//! format (which additionally needs to *decode* keys and therefore keeps a
//! width tag); this encoding is comparison-only and canonical:
//!
//! * all numerics share one rank and encode as a canonicalized sortable
//!   `f64` plus an exact integer tiebreak, so `int32 5`, `int64 5` and
//!   `double 5.0` produce *identical* bytes (they compare equal);
//! * `-0.0` folds into `0.0` and every NaN into the canonical quiet NaN,
//!   matching `total_cmp`'s equality classes;
//! * records encode their fields sorted by name, matching the
//!   order-insensitive record comparison.
//!
//! Caveat (shared with `total_cmp` itself, which is non-transitive there):
//! integers with magnitude ≥ 9.0e15 lose their exact tiebreak against
//! floating-point neighbours, so an `int64`/`double` pair that far out may
//! compare equal by bytes while `total_cmp` distinguishes them, and vice
//! versa. Key comparisons inside the engine restrict themselves to the
//! exact range, as do the property tests.

use std::cmp::Ordering;

use crate::value::Value;

/// Escape byte for embedded zero bytes in variable-length runs.
pub const ESCAPE: u8 = 0x00;
/// What an escaped `0x00` is rewritten to.
pub const ESCAPED_00: u8 = 0xFF;
/// Terminates a variable-length run; sorts below any escaped content.
pub const TERMINATOR: [u8; 2] = [0x00, 0x01];
/// Marks one more element in a list/record run; sorts above `TERMINATOR`.
pub const ELEMENT_MARKER: u8 = 0x02;

/// Map an `f64` to a `u64` whose unsigned big-endian order matches the
/// numeric order (negative values complement, positives flip the sign bit).
pub fn sortable_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & 0x8000_0000_0000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000_0000_0000
    }
}

/// Inverse of [`sortable_f64`].
pub fn unsortable_f64(bits: u64) -> f64 {
    let raw = if bits & 0x8000_0000_0000_0000 != 0 { bits ^ 0x8000_0000_0000_0000 } else { !bits };
    f64::from_bits(raw)
}

/// Map an `i64` to a `u64` preserving order (flip the sign bit).
pub fn sortable_i64(v: i64) -> u64 {
    (v as u64) ^ 0x8000_0000_0000_0000
}

/// Inverse of [`sortable_i64`].
pub fn unsortable_i64(bits: u64) -> i64 {
    (bits ^ 0x8000_0000_0000_0000) as i64
}

/// Map an `i32` to a `u32` preserving order.
pub fn sortable_i32(v: i32) -> u32 {
    (v as u32) ^ 0x8000_0000
}

/// Inverse of [`sortable_i32`].
pub fn unsortable_i32(bits: u32) -> i32 {
    (bits ^ 0x8000_0000) as i32
}

/// Append `bytes` with `0x00` escaped and a terminator, preserving
/// lexicographic order across the embedded run.
pub fn encode_terminated_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        if b == ESCAPE {
            out.push(ESCAPE);
            out.push(ESCAPED_00);
        } else {
            out.push(b);
        }
    }
    out.extend_from_slice(&TERMINATOR);
}

/// Fold `-0.0` to `0.0` and any NaN to the canonical quiet NaN so that
/// `total_cmp`-equal doubles map to identical bit patterns.
fn canon_f64(v: f64) -> f64 {
    if v.is_nan() {
        f64::NAN
    } else if v == 0.0 {
        0.0
    } else {
        v
    }
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&sortable_f64(canon_f64(v)).to_be_bytes());
}

/// The exact integer tiebreak behind the `f64` rank: the integer value for
/// integer-typed numerics, the integral double when it is exactly
/// representable, and 0 beyond the exact range (see the module caveat).
fn numeric_tie(v: &Value) -> i64 {
    if let Some(i) = v.as_i64() {
        return i;
    }
    let d = v.as_f64().unwrap_or(0.0);
    if d.fract() == 0.0 && d.abs() < 9.0e15 {
        d as i64
    } else {
        0
    }
}

/// Append the comparison key of `v` to `out`. Total: every `Value` variant
/// encodes, in `type_rank` order.
pub fn encode_value_into(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Missing => out.push(1),
        Value::Boolean(b) => {
            out.push(2);
            out.push(u8::from(*b));
        }
        _ if v.is_numeric() => {
            out.push(3);
            push_f64(out, v.as_f64().unwrap());
            out.extend_from_slice(&sortable_i64(numeric_tie(v)).to_be_bytes());
        }
        Value::String(s) => {
            out.push(4);
            encode_terminated_bytes(out, s.as_bytes());
        }
        Value::Date(d) => {
            out.push(5);
            out.extend_from_slice(&sortable_i32(*d).to_be_bytes());
        }
        Value::Time(t) => {
            out.push(6);
            out.extend_from_slice(&sortable_i32(*t).to_be_bytes());
        }
        Value::DateTime(t) => {
            out.push(7);
            out.extend_from_slice(&sortable_i64(*t).to_be_bytes());
        }
        Value::Duration(d) => {
            out.push(8);
            out.extend_from_slice(&sortable_i32(d.months).to_be_bytes());
            out.extend_from_slice(&sortable_i64(d.millis).to_be_bytes());
        }
        Value::YearMonthDuration(m) => {
            out.push(9);
            out.extend_from_slice(&sortable_i32(*m).to_be_bytes());
        }
        Value::DayTimeDuration(ms) => {
            out.push(10);
            out.extend_from_slice(&sortable_i64(*ms).to_be_bytes());
        }
        Value::Interval(iv) => {
            // total_cmp orders intervals by (start, end) only; the kind
            // does not participate, so it is omitted here.
            out.push(11);
            out.extend_from_slice(&sortable_i64(iv.start).to_be_bytes());
            out.extend_from_slice(&sortable_i64(iv.end).to_be_bytes());
        }
        Value::Point(p) => {
            out.push(12);
            push_f64(out, p.x);
            push_f64(out, p.y);
        }
        Value::Line(l) => {
            out.push(13);
            push_f64(out, l.a.x);
            push_f64(out, l.a.y);
            push_f64(out, l.b.x);
            push_f64(out, l.b.y);
        }
        Value::Rectangle(r) => {
            out.push(14);
            push_f64(out, r.low.x);
            push_f64(out, r.low.y);
            push_f64(out, r.high.x);
            push_f64(out, r.high.y);
        }
        Value::Circle(c) => {
            out.push(15);
            push_f64(out, c.center.x);
            push_f64(out, c.center.y);
            push_f64(out, c.radius);
        }
        Value::Polygon(ps) => {
            out.push(16);
            for p in ps.iter() {
                out.push(ELEMENT_MARKER);
                push_f64(out, p.x);
                push_f64(out, p.y);
            }
            out.extend_from_slice(&TERMINATOR);
        }
        Value::Binary(b) => {
            out.push(17);
            encode_terminated_bytes(out, b);
        }
        Value::OrderedList(items) => {
            out.push(18);
            for item in items.iter() {
                out.push(ELEMENT_MARKER);
                encode_value_into(out, item);
            }
            out.extend_from_slice(&TERMINATOR);
        }
        Value::UnorderedList(items) => {
            out.push(19);
            for item in items.iter() {
                out.push(ELEMENT_MARKER);
                encode_value_into(out, item);
            }
            out.extend_from_slice(&TERMINATOR);
        }
        Value::Record(r) => {
            // total_cmp compares records by sorted field name, then value.
            out.push(20);
            let mut fields: Vec<_> = r.fields().iter().collect();
            fields.sort_by(|a, b| a.name.cmp(&b.name));
            for f in fields {
                out.push(ELEMENT_MARKER);
                encode_terminated_bytes(out, f.name.as_bytes());
                encode_value_into(out, &f.value);
            }
            out.extend_from_slice(&TERMINATOR);
        }
        // is_numeric() covered every remaining variant above.
        _ => unreachable!("non-numeric value fell through ordkey encoding"),
    }
}

/// The comparison key of a single value.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_value_into(&mut out, v);
    out
}

/// The comparison key of a composite key (concatenation is order-correct
/// because each value's encoding is self-delimiting and prefix-free).
pub fn encode_values(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * values.len());
    for v in values {
        encode_value_into(&mut out, v);
    }
    out
}

/// Compare two values through their comparison keys (test/assert helper;
/// hot paths cache the encoded keys instead).
pub fn cmp_values(a: &Value, b: &Value) -> Ordering {
    encode_value(a).cmp(&encode_value(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Circle, DurationValue, IntervalValue, Line, Point, Record, Rectangle};

    fn specimens() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Missing,
            Value::Boolean(false),
            Value::Boolean(true),
            Value::Int8(-5),
            Value::Int16(300),
            Value::Int32(-70_000),
            Value::Int64(1 << 40),
            Value::Int64(0),
            Value::Float(2.5),
            Value::Double(-0.0),
            Value::Double(2.5),
            Value::Double(f64::INFINITY),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(f64::NAN),
            Value::string(""),
            Value::string("a"),
            Value::string("a\u{0}b"),
            Value::string("ab"),
            Value::Date(-3),
            Value::Time(7),
            Value::DateTime(1234567),
            Value::Duration(DurationValue { months: 2, millis: -5 }),
            Value::YearMonthDuration(-1),
            Value::DayTimeDuration(99),
            Value::Interval(IntervalValue {
                kind: crate::value::IntervalKind::Date,
                start: 1,
                end: 5,
            }),
            Value::Point(Point::new(1.0, 2.0)),
            Value::Line(Line { a: Point::new(0.0, 0.0), b: Point::new(1.0, 1.0) }),
            Value::Rectangle(Rectangle::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0))),
            Value::Circle(Circle { center: Point::new(1.0, 1.0), radius: 3.0 }),
            Value::Polygon(std::sync::Arc::from(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)])),
            Value::Binary(std::sync::Arc::from(vec![0u8, 1, 255])),
            Value::ordered_list(vec![Value::Int64(1), Value::string("x")]),
            Value::ordered_list(vec![Value::Int64(1)]),
            Value::unordered_list(vec![Value::Int64(2)]),
            Value::record(Record::from_fields([("b", Value::Int64(2)), ("a", Value::string("v"))])),
            Value::record(Record::from_fields([("a", Value::string("v"))])),
        ]
    }

    #[test]
    fn byte_order_agrees_with_total_cmp_across_all_variants() {
        let vals = specimens();
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    cmp_values(a, b),
                    a.total_cmp(b),
                    "ordkey order disagrees with total_cmp for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn equal_numerics_encode_identically() {
        let fives = [
            Value::Int8(5),
            Value::Int16(5),
            Value::Int32(5),
            Value::Int64(5),
            Value::Float(5.0),
            Value::Double(5.0),
        ];
        let k = encode_value(&fives[0]);
        for v in &fives[1..] {
            assert_eq!(encode_value(v), k, "{v} key differs from int8 5");
        }
        // Zero classes: -0.0, 0.0 and integer 0 all collapse.
        assert_eq!(encode_value(&Value::Double(-0.0)), encode_value(&Value::Int64(0)));
        // NaN is a single equality class sorting above +inf.
        assert_eq!(encode_value(&Value::Double(f64::NAN)), encode_value(&Value::Float(f32::NAN)));
        assert!(
            encode_value(&Value::Double(f64::NAN)) > encode_value(&Value::Double(f64::INFINITY))
        );
    }

    #[test]
    fn record_keys_are_field_order_insensitive() {
        let a =
            Value::record(Record::from_fields([("x", Value::Int64(1)), ("y", Value::string("s"))]));
        let b =
            Value::record(Record::from_fields([("y", Value::string("s")), ("x", Value::Int64(1))]));
        assert_eq!(encode_value(&a), encode_value(&b));
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let k1 = encode_values(&[Value::string("alice"), Value::Int64(1)]);
        let k2 = encode_values(&[Value::string("alice"), Value::Int64(2)]);
        let k3 = encode_values(&[Value::string("bob"), Value::Int64(0)]);
        assert!(k1 < k2);
        assert!(k2 < k3);
    }

    #[test]
    fn integer_tiebreak_distinguishes_beyond_f64_precision() {
        let a = Value::Int64(1 << 53);
        let b = Value::Int64((1 << 53) + 1);
        assert_eq!(cmp_values(&a, &b), a.total_cmp(&b));
        assert_eq!(cmp_values(&a, &b), Ordering::Less);
    }
}
