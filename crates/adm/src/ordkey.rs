//! Order-preserving *comparison keys* for ADM values.
//!
//! Encodes any `Value` into a byte string whose `memcmp` order agrees with
//! [`Value::total_cmp`] — the normalized-key technique Hyracks uses so that
//! sort, merge, and group/join key equality run directly over bytes. The
//! same bit-flipping primitives back `storage::keycodec`'s B+-tree key
//! format (which additionally needs to *decode* keys and therefore keeps a
//! width tag); this encoding is comparison-only and canonical:
//!
//! * all numerics share one rank and encode as a canonicalized sortable
//!   `f64` plus an exact integer tiebreak, so `int32 5`, `int64 5` and
//!   `double 5.0` produce *identical* bytes (they compare equal);
//! * `-0.0` folds into `0.0` and every NaN into the canonical quiet NaN,
//!   matching `total_cmp`'s equality classes;
//! * records encode their fields sorted by name, matching the
//!   order-insensitive record comparison.
//!
//! Caveat (shared with `total_cmp` itself, which is non-transitive there):
//! integers with magnitude ≥ 9.0e15 lose their exact tiebreak against
//! floating-point neighbours, so an `int64`/`double` pair that far out may
//! compare equal by bytes while `total_cmp` distinguishes them, and vice
//! versa. Key comparisons inside the engine restrict themselves to the
//! exact range, as do the property tests.

use std::cmp::Ordering;

use crate::serde as wire;
use crate::value::Value;

/// Escape byte for embedded zero bytes in variable-length runs.
pub const ESCAPE: u8 = 0x00;
/// What an escaped `0x00` is rewritten to.
pub const ESCAPED_00: u8 = 0xFF;
/// Terminates a variable-length run; sorts below any escaped content.
pub const TERMINATOR: [u8; 2] = [0x00, 0x01];
/// Marks one more element in a list/record run; sorts above `TERMINATOR`.
pub const ELEMENT_MARKER: u8 = 0x02;

/// Map an `f64` to a `u64` whose unsigned big-endian order matches the
/// numeric order (negative values complement, positives flip the sign bit).
pub fn sortable_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & 0x8000_0000_0000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000_0000_0000
    }
}

/// Inverse of [`sortable_f64`].
pub fn unsortable_f64(bits: u64) -> f64 {
    let raw = if bits & 0x8000_0000_0000_0000 != 0 { bits ^ 0x8000_0000_0000_0000 } else { !bits };
    f64::from_bits(raw)
}

/// Map an `i64` to a `u64` preserving order (flip the sign bit).
pub fn sortable_i64(v: i64) -> u64 {
    (v as u64) ^ 0x8000_0000_0000_0000
}

/// Inverse of [`sortable_i64`].
pub fn unsortable_i64(bits: u64) -> i64 {
    (bits ^ 0x8000_0000_0000_0000) as i64
}

/// Map an `i32` to a `u32` preserving order.
pub fn sortable_i32(v: i32) -> u32 {
    (v as u32) ^ 0x8000_0000
}

/// Inverse of [`sortable_i32`].
pub fn unsortable_i32(bits: u32) -> i32 {
    (bits ^ 0x8000_0000) as i32
}

/// Append `bytes` with `0x00` escaped and a terminator, preserving
/// lexicographic order across the embedded run.
pub fn encode_terminated_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        if b == ESCAPE {
            out.push(ESCAPE);
            out.push(ESCAPED_00);
        } else {
            out.push(b);
        }
    }
    out.extend_from_slice(&TERMINATOR);
}

/// Fold `-0.0` to `0.0` and any NaN to the canonical quiet NaN so that
/// `total_cmp`-equal doubles map to identical bit patterns.
fn canon_f64(v: f64) -> f64 {
    if v.is_nan() {
        f64::NAN
    } else if v == 0.0 {
        0.0
    } else {
        v
    }
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&sortable_f64(canon_f64(v)).to_be_bytes());
}

/// The exact integer tiebreak behind the `f64` rank: the integer value for
/// integer-typed numerics, the integral double when it is exactly
/// representable, and 0 beyond the exact range (see the module caveat).
fn numeric_tie(v: &Value) -> i64 {
    if let Some(i) = v.as_i64() {
        return i;
    }
    let d = v.as_f64().unwrap_or(0.0);
    if d.fract() == 0.0 && d.abs() < 9.0e15 {
        d as i64
    } else {
        0
    }
}

/// Append the comparison key of `v` to `out`. Total: every `Value` variant
/// encodes, in `type_rank` order.
pub fn encode_value_into(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Missing => out.push(1),
        Value::Boolean(b) => {
            out.push(2);
            out.push(u8::from(*b));
        }
        _ if v.is_numeric() => {
            out.push(3);
            push_f64(out, v.as_f64().unwrap());
            out.extend_from_slice(&sortable_i64(numeric_tie(v)).to_be_bytes());
        }
        Value::String(s) => {
            out.push(4);
            encode_terminated_bytes(out, s.as_bytes());
        }
        Value::Date(d) => {
            out.push(5);
            out.extend_from_slice(&sortable_i32(*d).to_be_bytes());
        }
        Value::Time(t) => {
            out.push(6);
            out.extend_from_slice(&sortable_i32(*t).to_be_bytes());
        }
        Value::DateTime(t) => {
            out.push(7);
            out.extend_from_slice(&sortable_i64(*t).to_be_bytes());
        }
        Value::Duration(d) => {
            out.push(8);
            out.extend_from_slice(&sortable_i32(d.months).to_be_bytes());
            out.extend_from_slice(&sortable_i64(d.millis).to_be_bytes());
        }
        Value::YearMonthDuration(m) => {
            out.push(9);
            out.extend_from_slice(&sortable_i32(*m).to_be_bytes());
        }
        Value::DayTimeDuration(ms) => {
            out.push(10);
            out.extend_from_slice(&sortable_i64(*ms).to_be_bytes());
        }
        Value::Interval(iv) => {
            // total_cmp orders intervals by (start, end) only; the kind
            // does not participate, so it is omitted here.
            out.push(11);
            out.extend_from_slice(&sortable_i64(iv.start).to_be_bytes());
            out.extend_from_slice(&sortable_i64(iv.end).to_be_bytes());
        }
        Value::Point(p) => {
            out.push(12);
            push_f64(out, p.x);
            push_f64(out, p.y);
        }
        Value::Line(l) => {
            out.push(13);
            push_f64(out, l.a.x);
            push_f64(out, l.a.y);
            push_f64(out, l.b.x);
            push_f64(out, l.b.y);
        }
        Value::Rectangle(r) => {
            out.push(14);
            push_f64(out, r.low.x);
            push_f64(out, r.low.y);
            push_f64(out, r.high.x);
            push_f64(out, r.high.y);
        }
        Value::Circle(c) => {
            out.push(15);
            push_f64(out, c.center.x);
            push_f64(out, c.center.y);
            push_f64(out, c.radius);
        }
        Value::Polygon(ps) => {
            out.push(16);
            for p in ps.iter() {
                out.push(ELEMENT_MARKER);
                push_f64(out, p.x);
                push_f64(out, p.y);
            }
            out.extend_from_slice(&TERMINATOR);
        }
        Value::Binary(b) => {
            out.push(17);
            encode_terminated_bytes(out, b);
        }
        Value::OrderedList(items) => {
            out.push(18);
            for item in items.iter() {
                out.push(ELEMENT_MARKER);
                encode_value_into(out, item);
            }
            out.extend_from_slice(&TERMINATOR);
        }
        Value::UnorderedList(items) => {
            out.push(19);
            for item in items.iter() {
                out.push(ELEMENT_MARKER);
                encode_value_into(out, item);
            }
            out.extend_from_slice(&TERMINATOR);
        }
        Value::Record(r) => {
            // total_cmp compares records by sorted field name, then value.
            out.push(20);
            let mut fields: Vec<_> = r.fields().iter().collect();
            fields.sort_by(|a, b| a.name.cmp(&b.name));
            for f in fields {
                out.push(ELEMENT_MARKER);
                encode_terminated_bytes(out, f.name.as_bytes());
                encode_value_into(out, &f.value);
            }
            out.extend_from_slice(&TERMINATOR);
        }
        // is_numeric() covered every remaining variant above.
        _ => unreachable!("non-numeric value fell through ordkey encoding"),
    }
}

/// The comparison key of a single value.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_value_into(&mut out, v);
    out
}

/// The comparison key of a composite key (concatenation is order-correct
/// because each value's encoding is self-delimiting and prefix-free).
pub fn encode_values(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * values.len());
    for v in values {
        encode_value_into(&mut out, v);
    }
    out
}

/// Compare two values through their comparison keys (test/assert helper;
/// hot paths cache the encoded keys instead).
pub fn cmp_values(a: &Value, b: &Value) -> Ordering {
    encode_value(a).cmp(&encode_value(b))
}

/// Largest numeric magnitude (exclusive) at which the integer tiebreak is
/// exact; beyond it doubles collapse their tiebreak to 0 (module caveat).
pub const NUMERIC_EXACT_BOUND: f64 = 9.0e15;

/// Transcode one *self-describing encoded* scalar (a [`crate::serde`]
/// field, as sliced by `TupleRef::field_bytes`) straight into its
/// comparison key, appending to `out` — no `Value` is materialized. This
/// is the vectorized select's memcmp fast path: the resulting bytes are
/// exactly `encode_value_into` of the decoded field, so comparing them
/// against a precomputed constant key decides `field <op> C` byte-wise.
///
/// Returns `false` (leaving `out` untouched) when the fast path must not
/// decide: non-scalar or unknown fields, corrupt bytes, and numerics at or
/// beyond [`NUMERIC_EXACT_BOUND`] where byte order and `total_cmp` can
/// disagree (callers fall back to decoded evaluation).
pub fn encoded_scalar_key_into(field: &[u8], out: &mut Vec<u8>) -> bool {
    let Some((&tag, p)) = field.split_first() else { return false };
    let fixed = |p: &[u8], n: usize| -> Option<[u8; 8]> {
        let mut b = [0u8; 8];
        b[..n].copy_from_slice(p.get(..n)?);
        Some(b)
    };
    match tag {
        wire::T_FALSE | wire::T_TRUE => {
            out.push(2);
            out.push(u8::from(tag == wire::T_TRUE));
            true
        }
        wire::T_INT8 | wire::T_INT16 | wire::T_INT32 | wire::T_INT64 => {
            let i = match tag {
                wire::T_INT8 => match p.first() {
                    Some(&b) => b as i8 as i64,
                    None => return false,
                },
                wire::T_INT16 => match fixed(p, 2) {
                    Some(b) => i16::from_le_bytes([b[0], b[1]]) as i64,
                    None => return false,
                },
                wire::T_INT32 => match fixed(p, 4) {
                    Some(b) => i32::from_le_bytes([b[0], b[1], b[2], b[3]]) as i64,
                    None => return false,
                },
                _ => match fixed(p, 8) {
                    Some(b) => i64::from_le_bytes(b),
                    None => return false,
                },
            };
            if (i as f64).abs() >= NUMERIC_EXACT_BOUND {
                return false;
            }
            out.push(3);
            push_f64(out, i as f64);
            out.extend_from_slice(&sortable_i64(i).to_be_bytes());
            true
        }
        wire::T_FLOAT | wire::T_DOUBLE => {
            let d = if tag == wire::T_FLOAT {
                match fixed(p, 4) {
                    Some(b) => f32::from_le_bytes([b[0], b[1], b[2], b[3]]) as f64,
                    None => return false,
                }
            } else {
                match fixed(p, 8) {
                    Some(b) => f64::from_le_bytes(b),
                    None => return false,
                }
            };
            // NaN fails this comparison too, falling back conservatively
            // even though its canonical key would be exact.
            if !(d.abs() < NUMERIC_EXACT_BOUND) {
                return false;
            }
            out.push(3);
            push_f64(out, d);
            let tie = if d.fract() == 0.0 { d as i64 } else { 0 };
            out.extend_from_slice(&sortable_i64(tie).to_be_bytes());
            true
        }
        wire::T_STRING => {
            let Some((len, consumed)) = wire::read_varint(p) else { return false };
            let Some(end) = consumed.checked_add(len as usize) else { return false };
            let Some(bytes) = p.get(consumed..end) else { return false };
            out.push(4);
            encode_terminated_bytes(out, bytes);
            true
        }
        wire::T_DATE | wire::T_TIME => {
            let Some(b) = fixed(p, 4) else { return false };
            out.push(if tag == wire::T_DATE { 5 } else { 6 });
            let v = i32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            out.extend_from_slice(&sortable_i32(v).to_be_bytes());
            true
        }
        wire::T_DATETIME => {
            let Some(b) = fixed(p, 8) else { return false };
            out.push(7);
            out.extend_from_slice(&sortable_i64(i64::from_le_bytes(b)).to_be_bytes());
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Circle, DurationValue, IntervalValue, Line, Point, Record, Rectangle};

    fn specimens() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Missing,
            Value::Boolean(false),
            Value::Boolean(true),
            Value::Int8(-5),
            Value::Int16(300),
            Value::Int32(-70_000),
            Value::Int64(1 << 40),
            Value::Int64(0),
            Value::Float(2.5),
            Value::Double(-0.0),
            Value::Double(2.5),
            Value::Double(f64::INFINITY),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(f64::NAN),
            Value::string(""),
            Value::string("a"),
            Value::string("a\u{0}b"),
            Value::string("ab"),
            Value::Date(-3),
            Value::Time(7),
            Value::DateTime(1234567),
            Value::Duration(DurationValue { months: 2, millis: -5 }),
            Value::YearMonthDuration(-1),
            Value::DayTimeDuration(99),
            Value::Interval(IntervalValue {
                kind: crate::value::IntervalKind::Date,
                start: 1,
                end: 5,
            }),
            Value::Point(Point::new(1.0, 2.0)),
            Value::Line(Line { a: Point::new(0.0, 0.0), b: Point::new(1.0, 1.0) }),
            Value::Rectangle(Rectangle::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0))),
            Value::Circle(Circle { center: Point::new(1.0, 1.0), radius: 3.0 }),
            Value::Polygon(std::sync::Arc::from(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)])),
            Value::Binary(std::sync::Arc::from(vec![0u8, 1, 255])),
            Value::ordered_list(vec![Value::Int64(1), Value::string("x")]),
            Value::ordered_list(vec![Value::Int64(1)]),
            Value::unordered_list(vec![Value::Int64(2)]),
            Value::record(Record::from_fields([("b", Value::Int64(2)), ("a", Value::string("v"))])),
            Value::record(Record::from_fields([("a", Value::string("v"))])),
        ]
    }

    #[test]
    fn byte_order_agrees_with_total_cmp_across_all_variants() {
        let vals = specimens();
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    cmp_values(a, b),
                    a.total_cmp(b),
                    "ordkey order disagrees with total_cmp for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn equal_numerics_encode_identically() {
        let fives = [
            Value::Int8(5),
            Value::Int16(5),
            Value::Int32(5),
            Value::Int64(5),
            Value::Float(5.0),
            Value::Double(5.0),
        ];
        let k = encode_value(&fives[0]);
        for v in &fives[1..] {
            assert_eq!(encode_value(v), k, "{v} key differs from int8 5");
        }
        // Zero classes: -0.0, 0.0 and integer 0 all collapse.
        assert_eq!(encode_value(&Value::Double(-0.0)), encode_value(&Value::Int64(0)));
        // NaN is a single equality class sorting above +inf.
        assert_eq!(encode_value(&Value::Double(f64::NAN)), encode_value(&Value::Float(f32::NAN)));
        assert!(
            encode_value(&Value::Double(f64::NAN)) > encode_value(&Value::Double(f64::INFINITY))
        );
    }

    #[test]
    fn record_keys_are_field_order_insensitive() {
        let a =
            Value::record(Record::from_fields([("x", Value::Int64(1)), ("y", Value::string("s"))]));
        let b =
            Value::record(Record::from_fields([("y", Value::string("s")), ("x", Value::Int64(1))]));
        assert_eq!(encode_value(&a), encode_value(&b));
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let k1 = encode_values(&[Value::string("alice"), Value::Int64(1)]);
        let k2 = encode_values(&[Value::string("alice"), Value::Int64(2)]);
        let k3 = encode_values(&[Value::string("bob"), Value::Int64(0)]);
        assert!(k1 < k2);
        assert!(k2 < k3);
    }

    #[test]
    fn integer_tiebreak_distinguishes_beyond_f64_precision() {
        let a = Value::Int64(1 << 53);
        let b = Value::Int64((1 << 53) + 1);
        assert_eq!(cmp_values(&a, &b), a.total_cmp(&b));
        assert_eq!(cmp_values(&a, &b), Ordering::Less);
    }

    #[test]
    fn encoded_scalar_key_matches_value_key_for_scalars() {
        let scalars = [
            Value::Boolean(false),
            Value::Boolean(true),
            Value::Int8(-5),
            Value::Int16(300),
            Value::Int32(-70_000),
            Value::Int64(1 << 40),
            Value::Int64(0),
            Value::Float(2.5),
            Value::Double(-0.0),
            Value::Double(2.5),
            Value::Double(-123456.0),
            Value::string(""),
            Value::string("a\u{0}b"),
            Value::string("hello"),
            Value::Date(-3),
            Value::Time(7),
            Value::DateTime(1234567),
        ];
        for v in &scalars {
            let enc = crate::serde::encode(v);
            let mut key = Vec::new();
            assert!(encoded_scalar_key_into(&enc, &mut key), "fast path refused {v}");
            assert_eq!(key, encode_value(v), "transcoded key differs for {v}");
        }
    }

    #[test]
    fn encoded_scalar_key_refuses_unsupported_and_inexact() {
        let refused = [
            Value::Missing,
            Value::Null,
            Value::Double(f64::NAN),
            Value::Double(f64::INFINITY),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(9.0e15),
            Value::Double(-9.0e15),
            Value::Int64(9_000_000_000_000_000),
            Value::Int64(-9_000_000_000_000_000),
            Value::YearMonthDuration(1),
            Value::ordered_list(vec![Value::Int64(1)]),
            Value::record(Record::from_fields([("a", Value::Int64(1))])),
        ];
        for v in &refused {
            let enc = crate::serde::encode(v);
            let mut key = Vec::new();
            assert!(!encoded_scalar_key_into(&enc, &mut key), "fast path accepted {v}");
            assert!(key.is_empty(), "refusal left bytes behind for {v}");
        }
        // Corrupt / truncated fields fail closed.
        assert!(!encoded_scalar_key_into(&[], &mut Vec::new()));
        assert!(!encoded_scalar_key_into(&[crate::serde::T_INT64, 1, 2], &mut Vec::new()));
    }

    /// Pins the documented numeric-collapse boundary at its exact edge:
    /// strictly inside |v| < 9.0e15 the integer tiebreak is exact and byte
    /// order matches `total_cmp`; at exactly |v| = 9.0e15 a double's
    /// tiebreak collapses to 0 while an int64's stays exact, so the
    /// int64/double pair with identical f64 value diverges from
    /// `total_cmp`'s Equal.
    #[test]
    fn numeric_collapse_boundary_at_9e15() {
        // 9.0e15 exactly, f64-exact.
        const EDGE: i64 = 9_000_000_000_000_000;
        // One below the edge: int64 and double agree bit-for-bit.
        let below_i = Value::Int64(EDGE - 1);
        let below_d = Value::Double((EDGE - 1) as f64);
        assert_eq!(encode_value(&below_i), encode_value(&below_d));
        assert_eq!(cmp_values(&below_i, &below_d), below_i.total_cmp(&below_d));
        // At the edge: the double's tiebreak collapses to 0, the int64's
        // does not — bytes now order Greater while total_cmp says Equal.
        let at_i = Value::Int64(EDGE);
        let at_d = Value::Double(EDGE as f64);
        assert_eq!(at_i.total_cmp(&at_d), Ordering::Equal);
        assert_eq!(cmp_values(&at_i, &at_d), Ordering::Greater);
        // Mirrored on the negative side: the int64 tiebreak sorts below 0.
        let neg_i = Value::Int64(-EDGE);
        let neg_d = Value::Double(-(EDGE as f64));
        assert_eq!(neg_i.total_cmp(&neg_d), Ordering::Equal);
        assert_eq!(cmp_values(&neg_i, &neg_d), Ordering::Less);
        // And one below the negative edge agreement holds again.
        let nb_i = Value::Int64(-(EDGE - 1));
        let nb_d = Value::Double(-((EDGE - 1) as f64));
        assert_eq!(encode_value(&nb_i), encode_value(&nb_d));
        // Ordering among same-type values stays correct across the edge.
        assert_eq!(cmp_values(&Value::Int64(EDGE - 1), &Value::Int64(EDGE)), Ordering::Less);
        assert_eq!(
            cmp_values(&Value::Double((EDGE - 1) as f64), &Value::Double(EDGE as f64)),
            Ordering::Less
        );
    }
}
