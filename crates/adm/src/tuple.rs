//! Offset-prefixed tuple codec and zero-copy accessors.
//!
//! Hyracks moves *serialized* tuples between operators inside fixed-size
//! byte frames; comparators, hashers and partitioners work directly on the
//! bytes (Section 4.1). This module defines the wire format of one tuple
//! and the borrowed views over it:
//!
//! ```text
//! [u16 field_count n][u32 end_0][u32 end_1]...[u32 end_{n-1}][field bytes]
//! ```
//!
//! `end_i` is the exclusive end offset of field `i` *relative to the start
//! of the field-bytes region*, so field `i` occupies
//! `data[end_{i-1}..end_i]` (with `end_{-1} = 0`). Each field is one
//! self-describing [`crate::serde`] value. The offset prefix makes any
//! field addressable in O(1) without decoding its neighbours:
//! [`TupleRef`] slices a field, [`ValueRef`] decodes it lazily.

use std::cmp::Ordering;

use crate::error::{AdmError, Result};
use crate::serde;
use crate::value::Value;

/// Size of the per-tuple field-count header.
pub const TUPLE_HEADER: usize = 2;

/// Encoding of a lone MISSING value — what an out-of-range field access
/// yields, mirroring `Tuple::get(i) == None` semantics.
const MISSING_BYTES: [u8; 1] = [serde::T_MISSING];

/// Append the offset-prefixed encoding of `fields` to `out`.
pub fn encode_tuple_into(out: &mut Vec<u8>, fields: &[Value]) {
    let n = fields.len();
    debug_assert!(n <= u16::MAX as usize, "tuple arity {n} exceeds u16");
    out.extend_from_slice(&(n as u16).to_le_bytes());
    let ends_pos = out.len();
    out.resize(ends_pos + 4 * n, 0);
    let data_start = out.len();
    for (i, v) in fields.iter().enumerate() {
        serde::encode_append(out, v);
        let end = (out.len() - data_start) as u32;
        out[ends_pos + 4 * i..ends_pos + 4 * i + 4].copy_from_slice(&end.to_le_bytes());
    }
}

/// Append a one-column tuple whose single field is already encoded —
/// the columnar scan's late-materialization path, where the record bytes
/// were assembled from column runs without a `Value` detour.
pub fn encode_tuple_from_encoded(out: &mut Vec<u8>, value_bytes: &[u8]) {
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&(value_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(value_bytes);
}

/// Encode a tuple into a fresh buffer.
pub fn encode_tuple(fields: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(TUPLE_HEADER + 12 * fields.len());
    encode_tuple_into(&mut out, fields);
    out
}

/// Byte-level tuple concatenation: the row `a ++ b` without decoding a
/// single field (the hash-join output path). Field bytes are copied
/// verbatim; only the header and offset prefix are rebuilt.
pub fn concat_tuples_into(out: &mut Vec<u8>, a: &TupleRef<'_>, b: &TupleRef<'_>) {
    let n = a.field_count() + b.field_count();
    debug_assert!(n <= u16::MAX as usize, "tuple arity {n} exceeds u16");
    out.extend_from_slice(&(n as u16).to_le_bytes());
    let shift = a.data.len() as u32;
    for i in 0..a.field_count() {
        out.extend_from_slice(&(a.end(i) as u32).to_le_bytes());
    }
    for i in 0..b.field_count() {
        out.extend_from_slice(&(b.end(i) as u32 + shift).to_le_bytes());
    }
    out.extend_from_slice(a.data);
    out.extend_from_slice(b.data);
}

/// A borrowed, validated view over one encoded tuple.
#[derive(Clone, Copy)]
pub struct TupleRef<'a> {
    /// The `u32` end-offset prefix, one entry per field.
    ends: &'a [u8],
    /// The concatenated field encodings.
    data: &'a [u8],
}

impl<'a> TupleRef<'a> {
    /// Validate the header and offsets of `buf` and return a view.
    pub fn new(buf: &'a [u8]) -> Result<TupleRef<'a>> {
        if buf.len() < TUPLE_HEADER {
            return Err(AdmError::Corrupt("tuple shorter than its header".into()));
        }
        let n = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        let data_start = TUPLE_HEADER + 4 * n;
        if buf.len() < data_start {
            return Err(AdmError::Corrupt(format!(
                "tuple of arity {n} truncated at {} bytes",
                buf.len()
            )));
        }
        let t = TupleRef { ends: &buf[TUPLE_HEADER..data_start], data: &buf[data_start..] };
        let mut prev = 0usize;
        for i in 0..n {
            let end = t.end(i);
            if end < prev || end > t.data.len() {
                return Err(AdmError::Corrupt(format!("field {i} end offset {end} out of order")));
            }
            prev = end;
        }
        if prev != t.data.len() {
            return Err(AdmError::Corrupt(format!(
                "{} trailing bytes after last field",
                t.data.len() - prev
            )));
        }
        Ok(t)
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.ends.len() / 4
    }

    fn end(&self, i: usize) -> usize {
        u32::from_le_bytes(self.ends[4 * i..4 * i + 4].try_into().unwrap()) as usize
    }

    /// The encoded bytes of field `i`; the MISSING encoding when `i` is out
    /// of range (matching `Vec<Value>::get` returning `None`).
    pub fn field_bytes(&self, i: usize) -> &'a [u8] {
        if i >= self.field_count() {
            return &MISSING_BYTES;
        }
        let start = if i == 0 { 0 } else { self.end(i - 1) };
        &self.data[start..self.end(i)]
    }

    /// Lazy single-field view.
    pub fn field(&self, i: usize) -> ValueRef<'a> {
        ValueRef(self.field_bytes(i))
    }

    /// Decode field `i` into an owned `Value` (MISSING when out of range).
    pub fn field_value(&self, i: usize) -> Result<Value> {
        self.field(i).to_value()
    }

    /// Decode the whole tuple.
    pub fn decode(&self) -> Result<Vec<Value>> {
        let n = self.field_count();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.field_value(i)?);
        }
        Ok(out)
    }
}

/// A lazily-decoded view over one encoded field.
///
/// Scalar accessors parse just the tag and payload they need; `to_value`
/// materializes the full `Value` for staged-migration call sites.
#[derive(Clone, Copy)]
pub struct ValueRef<'a>(&'a [u8]);

impl<'a> ValueRef<'a> {
    /// View over a standalone encoded value.
    pub fn new(bytes: &'a [u8]) -> ValueRef<'a> {
        ValueRef(bytes)
    }

    /// The raw encoded bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.0
    }

    /// The self-describing type tag (MISSING for an empty slice).
    pub fn tag(&self) -> u8 {
        self.0.first().copied().unwrap_or(serde::T_MISSING)
    }

    pub fn is_missing(&self) -> bool {
        self.tag() == serde::T_MISSING
    }

    pub fn is_null(&self) -> bool {
        self.tag() == serde::T_NULL
    }

    /// Null or missing, without decoding.
    pub fn is_unknown(&self) -> bool {
        self.tag() <= serde::T_NULL
    }

    /// Integer fast path, mirroring `Value::as_i64`.
    pub fn as_i64(&self) -> Option<i64> {
        let p = self.0.get(1..).unwrap_or(&[]);
        match self.tag() {
            serde::T_INT8 => Some(*p.first()? as i8 as i64),
            serde::T_INT16 => Some(i16::from_le_bytes(p.get(..2)?.try_into().unwrap()) as i64),
            serde::T_INT32 => Some(i32::from_le_bytes(p.get(..4)?.try_into().unwrap()) as i64),
            serde::T_INT64 => Some(i64::from_le_bytes(p.get(..8)?.try_into().unwrap())),
            _ => None,
        }
    }

    /// Numeric fast path, mirroring `Value::as_f64`.
    pub fn as_f64(&self) -> Option<f64> {
        let p = self.0.get(1..).unwrap_or(&[]);
        match self.tag() {
            serde::T_FLOAT => Some(f32::from_le_bytes(p.get(..4)?.try_into().unwrap()) as f64),
            serde::T_DOUBLE => Some(f64::from_le_bytes(p.get(..8)?.try_into().unwrap())),
            _ => self.as_i64().map(|v| v as f64),
        }
    }

    /// Zero-copy string access, mirroring `Value::as_str`.
    pub fn as_str(&self) -> Option<&'a str> {
        if self.tag() != serde::T_STRING {
            return None;
        }
        let (len, consumed) = read_varint(&self.0[1..])?;
        let start = 1 + consumed;
        let bytes = self.0.get(start..start + len as usize)?;
        std::str::from_utf8(bytes).ok()
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self.tag() {
            serde::T_FALSE => Some(false),
            serde::T_TRUE => Some(true),
            _ => None,
        }
    }

    /// Decode into an owned `Value`.
    pub fn to_value(&self) -> Result<Value> {
        serde::decode(self.0)
    }

    /// `self.to_value()?.stable_hash()` computed over the encoded bytes,
    /// bit-identical to `Value::stable_hash` (see
    /// [`serde::stable_hash_encoded`]). Corrupt bytes fall back to hashing
    /// the raw slice so routing stays total.
    pub fn stable_hash(&self) -> u64 {
        serde::stable_hash_encoded(self.0).unwrap_or_else(|_| {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut h = DefaultHasher::new();
            self.0.hash(&mut h);
            h.finish()
        })
    }

    /// Total order over two encoded values, via the canonical comparison
    /// key: agrees with `Value::total_cmp` (see `crate::ordkey` caveats).
    pub fn total_cmp(&self, other: &ValueRef<'_>) -> Result<Ordering> {
        let a = self.to_value()?;
        let b = other.to_value()?;
        Ok(a.total_cmp(&b))
    }
}

fn read_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0;
    for (i, &byte) in buf.iter().enumerate() {
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
    None
}

/// Convenience: decode a standalone encoded tuple.
pub fn decode_tuple(buf: &[u8]) -> Result<Vec<Value>> {
    TupleRef::new(buf)?.decode()
}

/// Append computed values to an encoded tuple at the byte level: the row
/// `t ++ vals` without decoding any of `t`'s fields (the fused Assign
/// path). `t`'s field bytes are copied verbatim; only the header and
/// offset prefix are rebuilt, and the new values are encoded in place.
pub fn append_values_into(out: &mut Vec<u8>, t: &TupleRef<'_>, vals: &[Value]) {
    let n = t.field_count() + vals.len();
    debug_assert!(n <= u16::MAX as usize, "tuple arity {n} exceeds u16");
    out.extend_from_slice(&(n as u16).to_le_bytes());
    for i in 0..t.field_count() {
        out.extend_from_slice(&(t.end(i) as u32).to_le_bytes());
    }
    let ends_pos = out.len();
    out.resize(ends_pos + 4 * vals.len(), 0);
    let data_start = out.len();
    out.extend_from_slice(t.data);
    for (i, v) in vals.iter().enumerate() {
        serde::encode_append(out, v);
        let end = (out.len() - data_start) as u32;
        out[ends_pos + 4 * i..ends_pos + 4 * i + 4].copy_from_slice(&end.to_le_bytes());
    }
}

/// Project a subset of fields at the byte level: re-slices the kept
/// fields' encodings into a fresh tuple without decoding them.
pub fn project_tuple_into(out: &mut Vec<u8>, t: &TupleRef<'_>, fields: &[usize]) {
    let n = fields.len();
    debug_assert!(n <= u16::MAX as usize);
    out.extend_from_slice(&(n as u16).to_le_bytes());
    let ends_pos = out.len();
    out.resize(ends_pos + 4 * n, 0);
    let data_start = out.len();
    for (i, &f) in fields.iter().enumerate() {
        out.extend_from_slice(t.field_bytes(f));
        let end = (out.len() - data_start) as u32;
        out[ends_pos + 4 * i..ends_pos + 4 * i + 4].copy_from_slice(&end.to_le_bytes());
    }
}

impl std::fmt::Debug for TupleRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.decode() {
            Ok(vals) => write!(f, "TupleRef{vals:?}"),
            Err(_) => write!(f, "TupleRef<corrupt {} bytes>", self.data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Point, Record};

    fn sample_tuple() -> Vec<Value> {
        vec![
            Value::Int64(42),
            Value::string("hello"),
            Value::Missing,
            Value::Null,
            Value::record(Record::from_fields([
                ("a", Value::Int32(1)),
                ("b", Value::ordered_list(vec![Value::Double(2.5), Value::Boolean(true)])),
            ])),
            Value::Point(Point::new(1.0, -2.0)),
        ]
    }

    #[test]
    fn roundtrip_and_field_access() {
        let t = sample_tuple();
        let bytes = encode_tuple(&t);
        let r = TupleRef::new(&bytes).unwrap();
        assert_eq!(r.field_count(), t.len());
        assert_eq!(r.decode().unwrap(), t);
        assert_eq!(r.field(0).as_i64(), Some(42));
        assert_eq!(r.field(1).as_str(), Some("hello"));
        assert!(r.field(2).is_missing());
        assert!(r.field(3).is_null());
        assert!(r.field(3).is_unknown());
        assert!(!r.field(0).is_unknown());
        // Out-of-range access behaves like a missing field.
        assert!(r.field(99).is_missing());
        assert_eq!(r.field_value(99).unwrap(), Value::Missing);
    }

    #[test]
    fn empty_tuple() {
        let bytes = encode_tuple(&[]);
        let r = TupleRef::new(&bytes).unwrap();
        assert_eq!(r.field_count(), 0);
        assert_eq!(r.decode().unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn concat_matches_value_level_concat() {
        let a = vec![Value::Int64(1), Value::string("x")];
        let b = vec![Value::Double(2.5), Value::Null, Value::string("y")];
        let (ea, eb) = (encode_tuple(&a), encode_tuple(&b));
        let mut out = Vec::new();
        concat_tuples_into(&mut out, &TupleRef::new(&ea).unwrap(), &TupleRef::new(&eb).unwrap());
        let mut joined = a.clone();
        joined.extend(b.iter().cloned());
        assert_eq!(out, encode_tuple(&joined));
    }

    #[test]
    fn append_values_matches_value_level_append() {
        let t = sample_tuple();
        let bytes = encode_tuple(&t);
        let vals = vec![Value::Int64(7), Value::string("computed"), Value::Missing];
        let mut out = Vec::new();
        append_values_into(&mut out, &TupleRef::new(&bytes).unwrap(), &vals);
        let mut joined = t.clone();
        joined.extend(vals.iter().cloned());
        assert_eq!(out, encode_tuple(&joined));
        // Appending nothing is an exact copy.
        let mut copy = Vec::new();
        append_values_into(&mut copy, &TupleRef::new(&bytes).unwrap(), &[]);
        assert_eq!(copy, bytes);
    }

    #[test]
    fn project_reslices_fields() {
        let t = sample_tuple();
        let bytes = encode_tuple(&t);
        let r = TupleRef::new(&bytes).unwrap();
        let mut out = Vec::new();
        project_tuple_into(&mut out, &r, &[1, 0, 9]);
        let projected = decode_tuple(&out).unwrap();
        assert_eq!(projected, vec![t[1].clone(), t[0].clone(), Value::Missing]);
    }

    #[test]
    fn stable_hash_matches_value_hash() {
        for v in sample_tuple() {
            let enc = crate::serde::encode(&v);
            assert_eq!(
                ValueRef::new(&enc).stable_hash(),
                v.stable_hash(),
                "byte-level hash differs for {v}"
            );
        }
    }

    #[test]
    fn corrupt_tuples_rejected() {
        assert!(TupleRef::new(&[]).is_err());
        assert!(TupleRef::new(&[5, 0]).is_err()); // arity 5, no offsets
        let mut bytes = encode_tuple(&sample_tuple());
        bytes.pop();
        assert!(TupleRef::new(&bytes).is_err());
    }
}
