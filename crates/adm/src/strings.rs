//! String builtins from Table 1: `contains`, `like`, `matches`, `replace`,
//! `word-tokens`, `edit-distance` (+ `-check`, `-contains`), and the n-gram
//! tokenizer used by `ngram(k)` indexes and fuzzy string search.

use crate::error::{AdmError, Result};

/// `contains(s, sub)` — substring test.
pub fn contains(s: &str, sub: &str) -> bool {
    s.contains(sub)
}

/// SQL `LIKE` with `%` (any run) and `_` (any single char); `\` escapes.
pub fn like(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try to match the remainder at every suffix of s.
                (0..=s.len()).any(|i| rec(&s[i..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some('\\') if p.len() > 1 => !s.is_empty() && s[0] == p[1] && rec(&s[1..], &p[2..]),
            Some(&c) => !s.is_empty() && s[0] == c && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

// ---------------------------------------------------------------------------
// A small backtracking regex engine for `matches(s, re)` / `replace`.
// Supports: literals, `.`, `*`, `+`, `?`, alternation `|`, groups `(...)`,
// character classes `[a-z]` / `[^...]`, anchors `^` `$`, and escapes `\d`
// `\w` `\s` (plus their negations).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Node {
    Char(char),
    AnyChar,
    Class { neg: bool, ranges: Vec<(char, char)> },
    Start,
    End,
    Group(Box<Node>),
    Concat(Vec<Node>),
    Alt(Vec<Node>),
    Star(Box<Node>),
    Plus(Box<Node>),
    Opt(Box<Node>),
}

struct ReParser<'a> {
    chars: Vec<char>,
    pos: usize,
    _src: &'a str,
}

impl<'a> ReParser<'a> {
    fn new(src: &'a str) -> Self {
        ReParser { chars: src.chars().collect(), pos: 0, _src: src }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_alt(&mut self) -> Result<Node> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 { branches.pop().unwrap() } else { Node::Alt(branches) })
    }

    fn parse_concat(&mut self) -> Result<Node> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(if items.len() == 1 { items.pop().unwrap() } else { Node::Concat(items) })
    }

    fn parse_repeat(&mut self) -> Result<Node> {
        let atom = self.parse_atom()?;
        Ok(match self.peek() {
            Some('*') => {
                self.bump();
                Node::Star(Box::new(atom))
            }
            Some('+') => {
                self.bump();
                Node::Plus(Box::new(atom))
            }
            Some('?') => {
                self.bump();
                Node::Opt(Box::new(atom))
            }
            _ => atom,
        })
    }

    fn parse_atom(&mut self) -> Result<Node> {
        match self.bump() {
            None => Err(AdmError::Parse("regex: unexpected end".into())),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(AdmError::Parse("regex: unclosed group".into()));
                }
                Ok(Node::Group(Box::new(inner)))
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::AnyChar),
            Some('^') => Ok(Node::Start),
            Some('$') => Ok(Node::End),
            Some('\\') => {
                let c = self
                    .bump()
                    .ok_or_else(|| AdmError::Parse("regex: dangling backslash".into()))?;
                Ok(match c {
                    'd' => Node::Class { neg: false, ranges: vec![('0', '9')] },
                    'D' => Node::Class { neg: true, ranges: vec![('0', '9')] },
                    'w' => Node::Class {
                        neg: false,
                        ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                    },
                    'W' => Node::Class {
                        neg: true,
                        ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                    },
                    's' => Node::Class {
                        neg: false,
                        ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                    },
                    'S' => Node::Class {
                        neg: true,
                        ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                    },
                    other => Node::Char(other),
                })
            }
            Some(')') => Err(AdmError::Parse("regex: unmatched ')'".into())),
            Some('*') | Some('+') | Some('?') => {
                Err(AdmError::Parse("regex: repetition without target".into()))
            }
            Some(c) => Ok(Node::Char(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Node> {
        let neg = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let c = match self.bump() {
                None => return Err(AdmError::Parse("regex: unclosed class".into())),
                Some(']') => break,
                Some('\\') => self
                    .bump()
                    .ok_or_else(|| AdmError::Parse("regex: dangling backslash".into()))?,
                Some(c) => c,
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi =
                    self.bump().ok_or_else(|| AdmError::Parse("regex: unclosed range".into()))?;
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        Ok(Node::Class { neg, ranges })
    }
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    root: Node,
}

impl Regex {
    /// Compile a pattern. Errors mirror `AdmError::Parse`.
    pub fn compile(pattern: &str) -> Result<Regex> {
        let mut p = ReParser::new(pattern);
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(AdmError::Parse(format!(
                "regex: trailing input at {} in {pattern:?}",
                p.pos
            )));
        }
        Ok(Regex { root })
    }

    /// Unanchored search: does the pattern match anywhere in `s`?
    pub fn is_match(&self, s: &str) -> bool {
        self.find(s).is_some()
    }

    /// Find the leftmost match, returning char-index `(start, end)`.
    pub fn find(&self, s: &str) -> Option<(usize, usize)> {
        let chars: Vec<char> = s.chars().collect();
        for start in 0..=chars.len() {
            if let Some(end) = match_here(&self.root, &chars, start, start == 0) {
                return Some((start, end));
            }
        }
        None
    }

    /// Replace every non-overlapping match with `rep`.
    pub fn replace_all(&self, s: &str, rep: &str) -> String {
        let chars: Vec<char> = s.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i <= chars.len() {
            if let Some(end) = match_here(&self.root, &chars, i, i == 0) {
                if end > i {
                    out.push_str(rep);
                    i = end;
                    continue;
                } else {
                    // Empty match: emit replacement, advance one char.
                    out.push_str(rep);
                    if i < chars.len() {
                        out.push(chars[i]);
                    }
                    i += 1;
                    continue;
                }
            }
            if i < chars.len() {
                out.push(chars[i]);
            }
            i += 1;
        }
        out
    }
}

/// Try to match `node` at position `pos`; returns the end position on
/// success. `at_start` is true when pos 0 counts as line start.
fn match_here(node: &Node, s: &[char], pos: usize, at_start: bool) -> Option<usize> {
    match node {
        Node::Char(c) => (pos < s.len() && s[pos] == *c).then_some(pos + 1),
        Node::AnyChar => (pos < s.len()).then_some(pos + 1),
        Node::Class { neg, ranges } => {
            if pos >= s.len() {
                return None;
            }
            let c = s[pos];
            let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
            (inside != *neg).then_some(pos + 1)
        }
        Node::Start => (pos == 0).then_some(pos),
        Node::End => (pos == s.len()).then_some(pos),
        Node::Group(inner) => match_here(inner, s, pos, at_start),
        Node::Concat(items) => {
            fn seq(items: &[Node], s: &[char], pos: usize, at_start: bool) -> Option<usize> {
                match items.split_first() {
                    None => Some(pos),
                    Some((head, tail)) => {
                        // Backtracking: enumerate all end positions of head.
                        for end in match_all(head, s, pos, at_start) {
                            if let Some(fin) = seq(tail, s, end, at_start) {
                                return Some(fin);
                            }
                        }
                        None
                    }
                }
            }
            seq(items, s, pos, at_start)
        }
        Node::Alt(branches) => branches.iter().find_map(|b| match_here(b, s, pos, at_start)),
        Node::Star(inner) => {
            // Greedy: longest repetition first, backtrack to shorter.
            let ends = repeat_ends(inner, s, pos, at_start, 0);
            ends.into_iter().next_back().or(Some(pos))
        }
        Node::Plus(inner) => {
            let ends = repeat_ends(inner, s, pos, at_start, 1);
            ends.into_iter().next_back()
        }
        Node::Opt(inner) => match_here(inner, s, pos, at_start).or(Some(pos)),
    }
}

/// All possible end positions for matching `node` once at `pos` — needed for
/// correct backtracking through concatenations.
fn match_all(node: &Node, s: &[char], pos: usize, at_start: bool) -> Vec<usize> {
    match node {
        Node::Star(inner) => {
            let mut ends = repeat_ends(inner, s, pos, at_start, 0);
            ends.push(pos);
            ends.sort_unstable();
            ends.dedup();
            ends.reverse(); // greedy first
            ends
        }
        Node::Plus(inner) => {
            let mut ends = repeat_ends(inner, s, pos, at_start, 1);
            ends.sort_unstable();
            ends.dedup();
            ends.reverse();
            ends
        }
        Node::Opt(inner) => {
            let mut ends = Vec::new();
            if let Some(e) = match_here(inner, s, pos, at_start) {
                ends.push(e);
            }
            if !ends.contains(&pos) {
                ends.push(pos);
            }
            ends
        }
        Node::Alt(branches) => {
            let mut ends: Vec<usize> =
                branches.iter().filter_map(|b| match_here(b, s, pos, at_start)).collect();
            ends.dedup();
            ends
        }
        Node::Group(inner) => match_all(inner, s, pos, at_start),
        other => match_here(other, s, pos, at_start).into_iter().collect(),
    }
}

fn repeat_ends(inner: &Node, s: &[char], pos: usize, at_start: bool, min: usize) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut frontier = vec![pos];
    let mut count = 0;
    loop {
        let mut next = Vec::new();
        for &p in &frontier {
            if let Some(e) = match_here(inner, s, p, at_start) {
                if e > p && !next.contains(&e) {
                    next.push(e);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        count += 1;
        if count >= min {
            ends.extend(next.iter().copied());
        }
        frontier = next;
        if count > s.len() + 1 {
            break; // safety net
        }
    }
    ends.sort_unstable();
    ends.dedup();
    ends
}

/// `matches(s, pattern)` — unanchored regex match.
pub fn matches(s: &str, pattern: &str) -> Result<bool> {
    Ok(Regex::compile(pattern)?.is_match(s))
}

/// `replace(s, pattern, replacement)` — regex replace-all.
pub fn replace(s: &str, pattern: &str, rep: &str) -> Result<String> {
    Ok(Regex::compile(pattern)?.replace_all(s, rep))
}

/// `word-tokens(s)` — lowercase alphanumeric word tokens, as used by the
/// keyword index and Query 6.
pub fn word_tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// `gram-tokens(s, k)` — the k-gram tokens of `s` (lowercased, padded with
/// `#` sentinels as in the AsterixDB gram tokenizer), used by `ngram(k)`
/// indexes for fuzzy string matching.
pub fn gram_tokens(s: &str, k: usize) -> Vec<String> {
    if k == 0 {
        return Vec::new();
    }
    let lowered: String = s.to_lowercase();
    let mut padded: Vec<char> = Vec::with_capacity(lowered.chars().count() + 2 * (k - 1));
    padded.extend(std::iter::repeat_n('#', k - 1));
    padded.extend(lowered.chars());
    padded.extend(std::iter::repeat_n('#', k - 1));
    if padded.len() < k {
        return Vec::new();
    }
    padded.windows(k).map(|w| w.iter().collect()).collect()
}

/// Levenshtein edit distance.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// `edit-distance-check(a, b, t)` — banded edit distance with early exit;
/// returns `Some(d)` if `d <= t`, else `None`. This is the primitive the
/// fuzzy `~=` operator compiles to when `simfunction` is `edit-distance`.
pub fn edit_distance_check(a: &str, b: &str, threshold: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > threshold {
        return None;
    }
    if a.is_empty() || b.is_empty() {
        let d = a.len().max(b.len());
        return (d <= threshold).then_some(d);
    }
    let inf = usize::MAX / 2;
    let mut prev = vec![inf; b.len() + 1];
    let mut cur = vec![inf; b.len() + 1];
    for (j, p) in prev.iter_mut().enumerate().take(threshold.min(b.len()) + 1) {
        *p = j;
    }
    for i in 1..=a.len() {
        let lo = i.saturating_sub(threshold).max(1);
        let hi = (i + threshold).min(b.len());
        cur.fill(inf);
        if i <= threshold {
            cur[0] = i;
        }
        if lo > hi {
            return None;
        }
        let mut row_min = cur[0];
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j - 1] + cost).min(prev[j] + 1).min(cur[j - 1] + 1);
            row_min = row_min.min(cur[j]);
        }
        if row_min > threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[b.len()] <= threshold).then_some(prev[b.len()])
}

/// `edit-distance-contains(s, pattern, t)` — true if some substring of `s`
/// is within edit distance `t` of `pattern` (approximate substring match).
pub fn edit_distance_contains(s: &str, pattern: &str, threshold: usize) -> bool {
    // Classic Sellers algorithm: dp over pattern rows with free start in s.
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    if p.is_empty() {
        return true;
    }
    let mut prev: Vec<usize> = (0..=p.len()).collect();
    if prev[p.len()] <= threshold {
        return true;
    }
    let mut cur = vec![0usize; p.len() + 1];
    for &tc in &t {
        cur[0] = 0; // free start anywhere in s
        for (j, &pc) in p.iter().enumerate() {
            let cost = usize::from(tc != pc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        if cur[p.len()] <= threshold {
            return true;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_patterns() {
        assert!(like("hello", "hello"));
        assert!(like("hello", "h%o"));
        assert!(like("hello", "%ell%"));
        assert!(like("hello", "_ello"));
        assert!(!like("hello", "_llo"));
        assert!(like("100%", "100\\%"));
        assert!(!like("1000", "100\\%"));
        assert!(like("", "%"));
        assert!(!like("", "_"));
    }

    #[test]
    fn regex_basics() {
        assert!(matches("tonight", "ton.ght").unwrap());
        assert!(matches("abcccd", "abc+d").unwrap());
        assert!(!matches("abd", "abc+d").unwrap());
        assert!(matches("abd", "abc*d").unwrap());
        assert!(matches("color", "colou?r").unwrap());
        assert!(matches("colour", "colou?r").unwrap());
        assert!(matches("cat", "^(cat|dog)$").unwrap());
        assert!(matches("dog", "^(cat|dog)$").unwrap());
        assert!(!matches("cow", "^(cat|dog)$").unwrap());
        assert!(matches("a1b", "[a-z]\\d[a-z]").unwrap());
        assert!(matches("x9", "\\w\\d$").unwrap());
        assert!(!matches("x9z", "^\\w\\d$").unwrap());
        assert!(matches("GET /list", "^GET .*$").unwrap());
        assert!(matches("abc", "[^xyz]+$").unwrap());
        assert!(Regex::compile("a(b").is_err());
        assert!(Regex::compile("*a").is_err());
    }

    #[test]
    fn regex_backtracking_through_concat() {
        // a*a requires the star to give back one 'a'.
        assert!(matches("aaa", "^a*a$").unwrap());
        assert!(matches("ab", "^(a|ab)b?$").unwrap());
        assert!(matches("xaaay", "a+y").unwrap());
    }

    #[test]
    fn regex_replace() {
        assert_eq!(replace("a1b2c3", "\\d", "#").unwrap(), "a#b#c#");
        assert_eq!(replace("hello world", "o", "0").unwrap(), "hell0 w0rld");
        assert_eq!(replace("aaa", "a+", "X").unwrap(), "X");
    }

    #[test]
    fn tokenizers() {
        assert_eq!(
            word_tokens("Hello, World! it's 2014"),
            vec!["hello", "world", "it", "s", "2014"]
        );
        assert_eq!(gram_tokens("ab", 2), vec!["#a", "ab", "b#"]);
        assert_eq!(gram_tokens("a", 3), vec!["##a", "#a#", "a##"]);
        assert!(gram_tokens("", 0).is_empty());
    }

    #[test]
    fn edit_distances() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
        assert_eq!(edit_distance("tonight", "tonite"), 3);
        assert_eq!(edit_distance_check("tonight", "tonite", 3), Some(3));
        assert_eq!(edit_distance_check("tonight", "tomorrow", 3), None);
        assert_eq!(edit_distance_check("abc", "abc", 0), Some(0));
        assert!(edit_distance_contains("see you tonite!", "tonight", 2));
        assert!(!edit_distance_contains("see you later", "tonight", 2));
    }

    #[test]
    fn edit_distance_check_agrees_with_full() {
        let words = ["", "a", "ab", "abc", "abd", "xabc", "hello", "help", "yelp"];
        for a in words {
            for b in words {
                let d = edit_distance(a, b);
                for t in 0..5 {
                    let got = edit_distance_check(a, b, t);
                    if d <= t {
                        assert_eq!(got, Some(d), "{a} {b} t={t}");
                    } else {
                        assert_eq!(got, None, "{a} {b} t={t}");
                    }
                }
            }
        }
    }
}
