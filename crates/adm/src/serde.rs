//! Binary (de)serialization of ADM values.
//!
//! Two physical formats, mirroring the storage trade-off in Section 2.1 and
//! measured by Table 2:
//!
//! * **Self-describing** — every value carries a type tag; record instances
//!   carry their field names. This is what *open* (undeclared) content costs
//!   on disk (the "KeyOnly" configuration).
//! * **Schema-aware** — values are written against a [`Datatype`]: declared
//!   record fields are encoded positionally with a null/missing bitmap and
//!   **no field names** (they live in the metadata instead); any extra open
//!   fields fall back to the self-describing encoding (the "Schema"
//!   configuration).

use std::sync::Arc;

use crate::error::{AdmError, Result};
use crate::types::{Datatype, PrimitiveType, RecordType, TypeRegistry};
use crate::value::{
    Circle, DurationValue, IntervalKind, IntervalValue, Line, Point, Record, Rectangle, Value,
};

// Type tags for the self-describing format.
pub(crate) const T_MISSING: u8 = 0;
pub(crate) const T_NULL: u8 = 1;
pub(crate) const T_FALSE: u8 = 2;
pub(crate) const T_TRUE: u8 = 3;
pub(crate) const T_INT8: u8 = 4;
pub(crate) const T_INT16: u8 = 5;
pub(crate) const T_INT32: u8 = 6;
pub(crate) const T_INT64: u8 = 7;
pub(crate) const T_FLOAT: u8 = 8;
pub(crate) const T_DOUBLE: u8 = 9;
pub(crate) const T_STRING: u8 = 10;
pub(crate) const T_DATE: u8 = 11;
pub(crate) const T_TIME: u8 = 12;
pub(crate) const T_DATETIME: u8 = 13;
pub(crate) const T_DURATION: u8 = 14;
pub(crate) const T_YM_DURATION: u8 = 15;
pub(crate) const T_DT_DURATION: u8 = 16;
pub(crate) const T_INTERVAL: u8 = 17;
pub(crate) const T_POINT: u8 = 18;
pub(crate) const T_LINE: u8 = 19;
pub(crate) const T_RECTANGLE: u8 = 20;
pub(crate) const T_CIRCLE: u8 = 21;
pub(crate) const T_POLYGON: u8 = 22;
pub(crate) const T_BINARY: u8 = 23;
pub(crate) const T_RECORD: u8 = 24;
pub(crate) const T_ORDERED_LIST: u8 = 25;
pub(crate) const T_UNORDERED_LIST: u8 = 26;

/// Encoder buffer helpers.
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Unsigned LEB128 varint — keeps small lengths at one byte.
    fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn point(&mut self, p: &Point) {
        self.f64(p.x);
        self.f64(p.y);
    }
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

/// Decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.remaining() < n {
            Err(AdmError::Corrupt(format!(
                "need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn i32(&mut self) -> Result<i32> {
        self.need(4)?;
        let v = i32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    fn i64(&mut self) -> Result<i64> {
        self.need(8)?;
        let v = i64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn f32(&mut self) -> Result<f32> {
        self.need(4)?;
        let v = f32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64> {
        self.need(8)?;
        let v = f64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let byte = self.u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift >= 64 {
                return Err(AdmError::Corrupt("varint overflow".into()));
            }
        }
        Ok(v)
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.varint()? as usize;
        self.need(n)?;
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| AdmError::Corrupt("invalid utf8 in string".into()))
    }

    fn point(&mut self) -> Result<Point> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }
}

// ---------------------------------------------------------------------------
// Self-describing format
// ---------------------------------------------------------------------------

/// Serialize a value in the self-describing format.
pub fn encode(v: &Value) -> Vec<u8> {
    let mut w = Writer::new();
    encode_into(&mut w, v);
    w.into_bytes()
}

/// Append the self-describing encoding of `v` to an existing buffer
/// without an intermediate allocation (the tuple codec's building block).
pub fn encode_append(out: &mut Vec<u8>, v: &Value) {
    let mut w = Writer { buf: std::mem::take(out) };
    encode_into(&mut w, v);
    *out = w.into_bytes();
}

fn encode_into(w: &mut Writer, v: &Value) {
    match v {
        Value::Missing => w.u8(T_MISSING),
        Value::Null => w.u8(T_NULL),
        Value::Boolean(false) => w.u8(T_FALSE),
        Value::Boolean(true) => w.u8(T_TRUE),
        Value::Int8(i) => {
            w.u8(T_INT8);
            w.u8(*i as u8);
        }
        Value::Int16(i) => {
            w.u8(T_INT16);
            w.buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Int32(i) => {
            w.u8(T_INT32);
            w.i32(*i);
        }
        Value::Int64(i) => {
            w.u8(T_INT64);
            w.i64(*i);
        }
        Value::Float(x) => {
            w.u8(T_FLOAT);
            w.f32(*x);
        }
        Value::Double(x) => {
            w.u8(T_DOUBLE);
            w.f64(*x);
        }
        Value::String(s) => {
            w.u8(T_STRING);
            w.str(s);
        }
        Value::Date(d) => {
            w.u8(T_DATE);
            w.i32(*d);
        }
        Value::Time(t) => {
            w.u8(T_TIME);
            w.i32(*t);
        }
        Value::DateTime(t) => {
            w.u8(T_DATETIME);
            w.i64(*t);
        }
        Value::Duration(d) => {
            w.u8(T_DURATION);
            w.i32(d.months);
            w.i64(d.millis);
        }
        Value::YearMonthDuration(m) => {
            w.u8(T_YM_DURATION);
            w.i32(*m);
        }
        Value::DayTimeDuration(ms) => {
            w.u8(T_DT_DURATION);
            w.i64(*ms);
        }
        Value::Interval(iv) => {
            w.u8(T_INTERVAL);
            w.u8(match iv.kind {
                IntervalKind::Date => 0,
                IntervalKind::Time => 1,
                IntervalKind::DateTime => 2,
            });
            w.i64(iv.start);
            w.i64(iv.end);
        }
        Value::Point(p) => {
            w.u8(T_POINT);
            w.point(p);
        }
        Value::Line(l) => {
            w.u8(T_LINE);
            w.point(&l.a);
            w.point(&l.b);
        }
        Value::Rectangle(r) => {
            w.u8(T_RECTANGLE);
            w.point(&r.low);
            w.point(&r.high);
        }
        Value::Circle(c) => {
            w.u8(T_CIRCLE);
            w.point(&c.center);
            w.f64(c.radius);
        }
        Value::Polygon(ps) => {
            w.u8(T_POLYGON);
            w.varint(ps.len() as u64);
            for p in ps.iter() {
                w.point(p);
            }
        }
        Value::Binary(b) => {
            w.u8(T_BINARY);
            w.bytes(b);
        }
        Value::Record(r) => {
            w.u8(T_RECORD);
            w.varint(r.len() as u64);
            for (name, val) in r.iter() {
                w.str(name);
                encode_into(w, val);
            }
        }
        Value::OrderedList(items) => {
            w.u8(T_ORDERED_LIST);
            w.varint(items.len() as u64);
            for v in items.iter() {
                encode_into(w, v);
            }
        }
        Value::UnorderedList(items) => {
            w.u8(T_UNORDERED_LIST);
            w.varint(items.len() as u64);
            for v in items.iter() {
                encode_into(w, v);
            }
        }
    }
}

/// Deserialize a self-describing value, requiring full consumption.
pub fn decode(buf: &[u8]) -> Result<Value> {
    let mut r = Reader::new(buf);
    let v = decode_from(&mut r)?;
    if r.remaining() != 0 {
        return Err(AdmError::Corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(v)
}

fn decode_from(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        T_MISSING => Value::Missing,
        T_NULL => Value::Null,
        T_FALSE => Value::Boolean(false),
        T_TRUE => Value::Boolean(true),
        T_INT8 => Value::Int8(r.u8()? as i8),
        T_INT16 => {
            r.need(2)?;
            let v = i16::from_le_bytes(r.buf[r.pos..r.pos + 2].try_into().unwrap());
            r.pos += 2;
            Value::Int16(v)
        }
        T_INT32 => Value::Int32(r.i32()?),
        T_INT64 => Value::Int64(r.i64()?),
        T_FLOAT => Value::Float(r.f32()?),
        T_DOUBLE => Value::Double(r.f64()?),
        T_STRING => Value::string(r.str()?),
        T_DATE => Value::Date(r.i32()?),
        T_TIME => Value::Time(r.i32()?),
        T_DATETIME => Value::DateTime(r.i64()?),
        T_DURATION => Value::Duration(DurationValue { months: r.i32()?, millis: r.i64()? }),
        T_YM_DURATION => Value::YearMonthDuration(r.i32()?),
        T_DT_DURATION => Value::DayTimeDuration(r.i64()?),
        T_INTERVAL => {
            let kind = match r.u8()? {
                0 => IntervalKind::Date,
                1 => IntervalKind::Time,
                2 => IntervalKind::DateTime,
                other => return Err(AdmError::Corrupt(format!("bad interval kind {other}"))),
            };
            Value::Interval(IntervalValue { kind, start: r.i64()?, end: r.i64()? })
        }
        T_POINT => Value::Point(r.point()?),
        T_LINE => Value::Line(Line { a: r.point()?, b: r.point()? }),
        T_RECTANGLE => Value::Rectangle(Rectangle { low: r.point()?, high: r.point()? }),
        T_CIRCLE => Value::Circle(Circle { center: r.point()?, radius: r.f64()? }),
        T_POLYGON => {
            let n = r.varint()? as usize;
            let mut ps = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ps.push(r.point()?);
            }
            Value::Polygon(Arc::from(ps))
        }
        T_BINARY => Value::Binary(Arc::from(r.bytes()?)),
        T_RECORD => {
            let n = r.varint()? as usize;
            let mut rec = Record::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let name = r.str()?.to_string();
                let val = decode_from(r)?;
                rec.push_unchecked(name, val);
            }
            Value::record(rec)
        }
        T_ORDERED_LIST => {
            let n = r.varint()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_from(r)?);
            }
            Value::ordered_list(items)
        }
        T_UNORDERED_LIST => {
            let n = r.varint()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_from(r)?);
            }
            Value::unordered_list(items)
        }
        other => return Err(AdmError::Corrupt(format!("unknown type tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Structural navigation over encoded bytes
// ---------------------------------------------------------------------------

/// Read one LEB128 varint from the front of `buf`, returning the value and
/// the number of bytes consumed (shared with `ordkey`'s byte transcoder).
pub(crate) fn read_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0;
    for (i, &byte) in buf.iter().enumerate() {
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
    None
}

/// Skip one self-describing value, consuming it from the reader without
/// materializing anything — the building block for addressing a record
/// field inside an encoded value.
fn skip_from(r: &mut Reader<'_>) -> Result<()> {
    let skip = |r: &mut Reader<'_>, n: usize| {
        r.need(n)?;
        r.pos += n;
        Ok(())
    };
    match r.u8()? {
        T_MISSING | T_NULL | T_FALSE | T_TRUE => Ok(()),
        T_INT8 => skip(r, 1),
        T_INT16 => skip(r, 2),
        T_INT32 | T_FLOAT | T_DATE | T_TIME | T_YM_DURATION => skip(r, 4),
        T_INT64 | T_DOUBLE | T_DATETIME | T_DT_DURATION => skip(r, 8),
        T_DURATION => skip(r, 12),
        T_INTERVAL => skip(r, 17),
        T_POINT => skip(r, 16),
        T_LINE | T_RECTANGLE => skip(r, 32),
        T_CIRCLE => skip(r, 24),
        T_POLYGON => {
            let n = r.varint()? as usize;
            skip(r, n.checked_mul(16).ok_or_else(|| AdmError::Corrupt("polygon len".into()))?)
        }
        T_STRING | T_BINARY => {
            r.bytes()?;
            Ok(())
        }
        T_RECORD => {
            let n = r.varint()? as usize;
            for _ in 0..n {
                r.bytes()?; // field name
                skip_from(r)?;
            }
            Ok(())
        }
        T_ORDERED_LIST | T_UNORDERED_LIST => {
            let n = r.varint()? as usize;
            for _ in 0..n {
                skip_from(r)?;
            }
            Ok(())
        }
        other => Err(AdmError::Corrupt(format!("unknown type tag {other}"))),
    }
}

/// Zero-copy record field access over an encoded value: the encoded bytes
/// of field `name` when `buf` encodes a record containing it, else `None`
/// (non-records and absent fields — the missing-propagating `$x.field`
/// contract). Walks the record's field directory once without decoding any
/// value.
pub fn encoded_record_field<'a>(buf: &'a [u8], name: &str) -> Option<&'a [u8]> {
    let mut r = Reader::new(buf);
    if r.u8().ok()? != T_RECORD {
        return None;
    }
    let n = r.varint().ok()? as usize;
    for _ in 0..n {
        let fname = r.str().ok()?;
        let start = r.pos;
        skip_from(&mut r).ok()?;
        if fname == name {
            return Some(&buf[start..r.pos]);
        }
    }
    None
}

/// Walk the fields of an encoded record without decoding, invoking `f`
/// with each `(name, encoded value bytes)` pair in stored order. Returns
/// `Ok(false)` when `buf` does not encode a record (the schema-inference
/// caller's spill signal), `Err` on corrupt bytes. `f` returning `false`
/// stops the walk early.
pub fn for_each_record_field<'a>(
    buf: &'a [u8],
    f: &mut dyn FnMut(&'a str, &'a [u8]) -> bool,
) -> Result<bool> {
    let mut r = Reader::new(buf);
    if r.u8()? != T_RECORD {
        return Ok(false);
    }
    let n = r.varint()? as usize;
    for _ in 0..n {
        let fname = r.str()?;
        let start = r.pos;
        skip_from(&mut r)?;
        if !f(fname, &buf[start..r.pos]) {
            break;
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Hashing over encoded bytes
// ---------------------------------------------------------------------------

/// Hash one self-describing encoded value, consuming it from the reader.
///
/// Feeds the hasher the exact same statement sequence as
/// `Value::hash_into`, so `stable_hash_encoded(encode(v)) ==
/// v.stable_hash()` bit-for-bit — strings and binaries are hashed straight
/// from the borrowed bytes without materializing a `Value`.
fn hash_encoded_from(r: &mut Reader<'_>, h: &mut impl std::hash::Hasher) -> Result<()> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    match r.u8()? {
        T_MISSING => 0u8.hash(h),
        T_NULL => 1u8.hash(h),
        T_FALSE => {
            2u8.hash(h);
            false.hash(h);
        }
        T_TRUE => {
            2u8.hash(h);
            true.hash(h);
        }
        tag @ (T_INT8 | T_INT16 | T_INT32 | T_INT64 | T_FLOAT | T_DOUBLE) => {
            3u8.hash(h);
            let d: f64 = match tag {
                T_INT8 => (r.u8()? as i8) as f64,
                T_INT16 => {
                    r.need(2)?;
                    let v = i16::from_le_bytes(r.buf[r.pos..r.pos + 2].try_into().unwrap());
                    r.pos += 2;
                    v as f64
                }
                T_INT32 => r.i32()? as f64,
                T_INT64 => r.i64()? as f64,
                T_FLOAT => r.f32()? as f64,
                _ => r.f64()?,
            };
            if d.fract() == 0.0 && d.abs() < 9.0e15 {
                (d as i64).hash(h);
            } else {
                d.to_bits().hash(h);
            }
        }
        T_STRING => {
            4u8.hash(h);
            r.str()?.hash(h);
        }
        T_DATE => {
            5u8.hash(h);
            r.i32()?.hash(h);
        }
        T_TIME => {
            6u8.hash(h);
            r.i32()?.hash(h);
        }
        T_DATETIME => {
            7u8.hash(h);
            r.i64()?.hash(h);
        }
        T_DURATION => {
            8u8.hash(h);
            DurationValue { months: r.i32()?, millis: r.i64()? }.hash(h);
        }
        T_YM_DURATION => {
            9u8.hash(h);
            r.i32()?.hash(h);
        }
        T_DT_DURATION => {
            10u8.hash(h);
            r.i64()?.hash(h);
        }
        T_INTERVAL => {
            let kind = match r.u8()? {
                0 => IntervalKind::Date,
                1 => IntervalKind::Time,
                2 => IntervalKind::DateTime,
                other => return Err(AdmError::Corrupt(format!("bad interval kind {other}"))),
            };
            11u8.hash(h);
            IntervalValue { kind, start: r.i64()?, end: r.i64()? }.hash(h);
        }
        T_POINT => {
            12u8.hash(h);
            r.f64()?.to_bits().hash(h);
            r.f64()?.to_bits().hash(h);
        }
        T_LINE => {
            13u8.hash(h);
            for _ in 0..4 {
                r.f64()?.to_bits().hash(h);
            }
        }
        T_RECTANGLE => {
            14u8.hash(h);
            for _ in 0..4 {
                r.f64()?.to_bits().hash(h);
            }
        }
        T_CIRCLE => {
            15u8.hash(h);
            for _ in 0..3 {
                r.f64()?.to_bits().hash(h);
            }
        }
        T_POLYGON => {
            16u8.hash(h);
            let n = r.varint()? as usize;
            for _ in 0..n {
                r.f64()?.to_bits().hash(h);
                r.f64()?.to_bits().hash(h);
            }
        }
        T_BINARY => {
            17u8.hash(h);
            r.bytes()?.hash(h);
        }
        T_ORDERED_LIST => {
            18u8.hash(h);
            let n = r.varint()? as usize;
            for _ in 0..n {
                hash_encoded_from(r, h)?;
            }
        }
        T_UNORDERED_LIST => {
            // Order-insensitive: xor of element hashes, as in hash_into.
            19u8.hash(h);
            let n = r.varint()? as usize;
            let mut acc: u64 = 0;
            for _ in 0..n {
                let mut eh = DefaultHasher::new();
                hash_encoded_from(r, &mut eh)?;
                acc ^= eh.finish();
            }
            acc.hash(h);
        }
        T_RECORD => {
            20u8.hash(h);
            let n = r.varint()? as usize;
            let mut acc: u64 = 0;
            for _ in 0..n {
                let mut fh = DefaultHasher::new();
                r.str()?.hash(&mut fh);
                hash_encoded_from(r, &mut fh)?;
                acc ^= fh.finish();
            }
            acc.hash(h);
        }
        other => return Err(AdmError::Corrupt(format!("unknown type tag {other}"))),
    }
    Ok(())
}

/// `decode(buf)?.stable_hash()` computed directly over the encoded bytes,
/// requiring full consumption. Bit-identical to `Value::stable_hash`.
pub fn stable_hash_encoded(buf: &[u8]) -> Result<u64> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;
    let mut r = Reader::new(buf);
    let mut h = DefaultHasher::new();
    hash_encoded_from(&mut r, &mut h)?;
    if r.remaining() != 0 {
        return Err(AdmError::Corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(h.finish())
}

// ---------------------------------------------------------------------------
// Schema-aware format
// ---------------------------------------------------------------------------

/// Serialize `v` against a Datatype: declared fields are positional (names
/// omitted), open content is self-describing. `reg` resolves named types.
pub fn encode_typed(reg: &TypeRegistry, v: &Value, ty: &Datatype) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    encode_typed_into(reg, &mut w, v, ty)?;
    Ok(w.into_bytes())
}

fn encode_typed_into(reg: &TypeRegistry, w: &mut Writer, v: &Value, ty: &Datatype) -> Result<()> {
    let ty = reg.resolve(ty)?;
    match &ty {
        Datatype::Primitive(PrimitiveType::Any) | Datatype::Named(_) => {
            encode_into(w, v);
            Ok(())
        }
        Datatype::Primitive(_) => {
            // Primitive payloads are written with their tag: a tag byte is
            // cheap and keeps decoding uniform; the big win of the typed
            // format is dropping record field names.
            encode_into(w, v);
            Ok(())
        }
        Datatype::OrderedList(elem) => match v {
            Value::OrderedList(items) => {
                w.u8(T_ORDERED_LIST);
                w.varint(items.len() as u64);
                for item in items.iter() {
                    encode_typed_into(reg, w, item, elem)?;
                }
                Ok(())
            }
            other => {
                encode_into(w, other);
                Ok(())
            }
        },
        Datatype::UnorderedList(elem) => match v {
            Value::UnorderedList(items) => {
                w.u8(T_UNORDERED_LIST);
                w.varint(items.len() as u64);
                for item in items.iter() {
                    encode_typed_into(reg, w, item, elem)?;
                }
                Ok(())
            }
            other => {
                encode_into(w, other);
                Ok(())
            }
        },
        Datatype::Record(rt) => match v {
            Value::Record(rec) => encode_typed_record(reg, w, rec, rt),
            other => {
                encode_into(w, other);
                Ok(())
            }
        },
    }
}

fn encode_typed_record(
    reg: &TypeRegistry,
    w: &mut Writer,
    rec: &Record,
    rt: &RecordType,
) -> Result<()> {
    w.u8(T_RECORD);
    // Presence bitmap for declared fields: 0 = present, 1 = missing, 2 = null
    // packed 2 bits per field.
    let nbits = rt.fields.len();
    let mut bitmap = vec![0u8; nbits.div_ceil(4)];
    for (i, f) in rt.fields.iter().enumerate() {
        let code: u8 = match rec.get(&f.name) {
            None | Some(Value::Missing) => 1,
            Some(Value::Null) => 2,
            Some(_) => 0,
        };
        bitmap[i / 4] |= code << ((i % 4) * 2);
    }
    w.bytes(&bitmap);
    for f in &rt.fields {
        match rec.get(&f.name) {
            None | Some(Value::Missing) | Some(Value::Null) => {}
            Some(v) => encode_typed_into(reg, w, v, &f.ty)?,
        }
    }
    // Open fields (not declared) are self-describing with names.
    let open: Vec<(&str, &Value)> =
        rec.iter().filter(|(name, _)| rt.field(name).is_none()).collect();
    w.varint(open.len() as u64);
    for (name, v) in open {
        w.str(name);
        encode_into(w, v);
    }
    Ok(())
}

/// Deserialize a schema-aware value against the Datatype it was written with.
pub fn decode_typed(reg: &TypeRegistry, buf: &[u8], ty: &Datatype) -> Result<Value> {
    let mut r = Reader::new(buf);
    let v = decode_typed_from(reg, &mut r, ty)?;
    if r.remaining() != 0 {
        return Err(AdmError::Corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(v)
}

fn decode_typed_from(reg: &TypeRegistry, r: &mut Reader<'_>, ty: &Datatype) -> Result<Value> {
    let ty = reg.resolve(ty)?;
    match &ty {
        Datatype::Primitive(_) | Datatype::Named(_) => decode_from(r),
        Datatype::OrderedList(elem) => {
            let tag = r.u8()?;
            if tag != T_ORDERED_LIST {
                // Value was not list-shaped at write time; re-read untyped.
                r.pos -= 1;
                return decode_from(r);
            }
            let n = r.varint()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_typed_from(reg, r, elem)?);
            }
            Ok(Value::ordered_list(items))
        }
        Datatype::UnorderedList(elem) => {
            let tag = r.u8()?;
            if tag != T_UNORDERED_LIST {
                r.pos -= 1;
                return decode_from(r);
            }
            let n = r.varint()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_typed_from(reg, r, elem)?);
            }
            Ok(Value::unordered_list(items))
        }
        Datatype::Record(rt) => {
            let tag = r.u8()?;
            if tag != T_RECORD {
                r.pos -= 1;
                return decode_from(r);
            }
            let bitmap = r.bytes()?.to_vec();
            let mut rec = Record::with_capacity(rt.fields.len());
            for (i, f) in rt.fields.iter().enumerate() {
                let code = (bitmap.get(i / 4).copied().unwrap_or(0) >> ((i % 4) * 2)) & 0b11;
                match code {
                    1 => {} // missing: omit
                    2 => rec.push_unchecked(&f.name, Value::Null),
                    _ => {
                        let v = decode_typed_from(reg, r, &f.ty)?;
                        rec.push_unchecked(&f.name, v);
                    }
                }
            }
            let n_open = r.varint()? as usize;
            for _ in 0..n_open {
                let name = r.str()?.to_string();
                let v = decode_from(r)?;
                rec.push_unchecked(name, v);
            }
            Ok(Value::record(rec))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RecordTypeBuilder;

    fn sample() -> Value {
        crate::parse::parse_value(
            r#"{
                "id": 42,
                "name": "Ann",
                "user-since": datetime("2012-08-20T10:10:00"),
                "friend-ids": {{ 1, 2, 3 }},
                "address": { "zip": "98765", "city": "X" },
                "loc": point("1,2"),
                "pi": 3.14159,
                "ok": true,
                "nothing": null
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn self_describing_roundtrip() {
        let v = sample();
        let bytes = encode(&v);
        let v2 = decode(&bytes).unwrap();
        assert_eq!(v.total_cmp(&v2), std::cmp::Ordering::Equal);
    }

    #[test]
    fn typed_roundtrip_with_open_fields() {
        let mut reg = TypeRegistry::new();
        reg.define(
            "T",
            RecordTypeBuilder::open()
                .field("id", Datatype::Primitive(PrimitiveType::Int64))
                .field("name", Datatype::Primitive(PrimitiveType::String))
                .optional_field("nothing", Datatype::Primitive(PrimitiveType::String))
                .build(),
        );
        let ty = Datatype::Named("T".into());
        let v = sample();
        let bytes = encode_typed(&reg, &v, &ty).unwrap();
        let v2 = decode_typed(&reg, &bytes, &ty).unwrap();
        // All fields survive, declared and open alike.
        assert_eq!(v2.field("id"), Value::Int64(42));
        assert_eq!(v2.field("name"), Value::string("Ann"));
        assert_eq!(v2.field("nothing"), Value::Null);
        assert_eq!(v2.field("address").field("zip"), Value::string("98765"));
        assert!(matches!(v2.field("loc"), Value::Point(_)));
    }

    #[test]
    fn typed_encoding_is_smaller_when_schema_declared() {
        // The Table 2 effect: declaring fields moves names off the instances.
        let mut reg = TypeRegistry::new();
        reg.define(
            "Full",
            RecordTypeBuilder::open()
                .field("id", Datatype::Primitive(PrimitiveType::Int64))
                .field("name", Datatype::Primitive(PrimitiveType::String))
                .field("user-since", Datatype::Primitive(PrimitiveType::DateTime))
                .field(
                    "friend-ids",
                    Datatype::UnorderedList(Arc::new(Datatype::Primitive(PrimitiveType::Int64))),
                )
                .field("loc", Datatype::Primitive(PrimitiveType::Point))
                .field("pi", Datatype::Primitive(PrimitiveType::Double))
                .field("ok", Datatype::Primitive(PrimitiveType::Boolean))
                .optional_field("nothing", Datatype::Primitive(PrimitiveType::String))
                .field(
                    "address",
                    RecordTypeBuilder::open()
                        .field("zip", Datatype::Primitive(PrimitiveType::String))
                        .field("city", Datatype::Primitive(PrimitiveType::String))
                        .build(),
                )
                .build(),
        );
        reg.define(
            "KeyOnly",
            RecordTypeBuilder::open()
                .field("id", Datatype::Primitive(PrimitiveType::Int64))
                .build(),
        );
        let v = sample();
        let full = encode_typed(&reg, &v, &Datatype::Named("Full".into())).unwrap();
        let key_only = encode_typed(&reg, &v, &Datatype::Named("KeyOnly".into())).unwrap();
        let untyped = encode(&v);
        assert!(full.len() < key_only.len(), "{} !< {}", full.len(), key_only.len());
        // KeyOnly is within a few bytes of fully self-describing.
        assert!(key_only.len() as i64 - untyped.len() as i64 <= 8);
    }

    #[test]
    fn missing_vs_null_in_typed_records() {
        let mut reg = TypeRegistry::new();
        reg.define(
            "T",
            RecordTypeBuilder::closed()
                .field("a", Datatype::Primitive(PrimitiveType::Int64))
                .optional_field("b", Datatype::Primitive(PrimitiveType::String))
                .build(),
        );
        let ty = Datatype::Named("T".into());
        let with_null =
            Value::record(Record::from_fields([("a", Value::Int64(1)), ("b", Value::Null)]));
        let without = Value::record(Record::from_fields([("a", Value::Int64(1))]));
        let b1 = encode_typed(&reg, &with_null, &ty).unwrap();
        let b2 = encode_typed(&reg, &without, &ty).unwrap();
        let v1 = decode_typed(&reg, &b1, &ty).unwrap();
        let v2 = decode_typed(&reg, &b2, &ty).unwrap();
        assert_eq!(v1.field("b"), Value::Null);
        assert!(v2.field("b").is_missing());
    }

    #[test]
    fn encoded_record_field_addresses_without_decode() {
        let v = sample();
        let bytes = encode(&v);
        // Present scalar/nested fields slice to exactly their encoding.
        for name in ["id", "name", "address", "loc", "pi", "ok", "nothing", "friend-ids"] {
            let field = encoded_record_field(&bytes, name).unwrap();
            let expect = encode(&v.field(name));
            assert_eq!(field, &expect[..], "field {name}");
        }
        // Absent fields and non-records yield None (missing-propagating).
        assert!(encoded_record_field(&bytes, "no-such-field").is_none());
        assert!(encoded_record_field(&encode(&Value::Int64(7)), "id").is_none());
        assert!(encoded_record_field(&encode(&Value::Null), "id").is_none());
        assert!(encoded_record_field(&[], "id").is_none());
        // Truncated record bytes fail closed rather than panicking.
        assert!(encoded_record_field(&bytes[..bytes.len() - 2], "nothing").is_none());
    }

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[200]).is_err());
        let mut bytes = encode(&sample());
        bytes.truncate(bytes.len() - 3);
        assert!(decode(&bytes).is_err());
        let mut bytes2 = encode(&Value::Int32(5));
        bytes2.push(0);
        assert!(decode(&bytes2).is_err());
    }
}
