//! Error type shared by the ADM data-model layer.

use std::fmt;

/// Errors raised by ADM value construction, parsing, typing, and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmError {
    /// A value did not conform to the Datatype it was checked against.
    TypeMismatch(String),
    /// Text could not be parsed as an ADM value or literal.
    Parse(String),
    /// A builtin function was applied to arguments of the wrong type.
    InvalidArgument(String),
    /// A builtin function name was not recognized.
    UnknownFunction(String),
    /// Arithmetic overflow or division by zero.
    Arithmetic(String),
    /// Malformed binary serialization input.
    Corrupt(String),
}

impl fmt::Display for AdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            AdmError::Parse(m) => write!(f, "parse error: {m}"),
            AdmError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            AdmError::UnknownFunction(m) => write!(f, "unknown function: {m}"),
            AdmError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            AdmError::Corrupt(m) => write!(f, "corrupt data: {m}"),
        }
    }
}

impl std::error::Error for AdmError {}

/// Convenience alias used throughout the ADM crate.
pub type Result<T> = std::result::Result<T, AdmError>;
