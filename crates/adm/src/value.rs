//! The ADM value representation.
//!
//! ADM (the Asterix Data Model) is a superset of JSON: it adds a richer set
//! of primitive types (temporal and spatial values, sized integers, binary)
//! and additional modeling constructs (bags a.k.a. unordered lists) drawn
//! from object databases, per Section 2 of the paper.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{AdmError, Result};
use crate::temporal::{format_date, format_datetime, format_duration, format_time};

/// A 2-D point, the base spatial primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point (`spatial-distance` in Table 1).
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    pub a: Point,
    pub b: Point,
}

/// An axis-aligned rectangle given by its lower-left and upper-right corners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rectangle {
    pub low: Point,
    pub high: Point,
}

impl Rectangle {
    pub fn new(low: Point, high: Point) -> Self {
        Rectangle { low, high }
    }

    pub fn area(&self) -> f64 {
        (self.high.x - self.low.x).max(0.0) * (self.high.y - self.low.y).max(0.0)
    }

    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.low.x && p.x <= self.high.x && p.y >= self.low.y && p.y <= self.high.y
    }

    pub fn intersects(&self, other: &Rectangle) -> bool {
        self.low.x <= other.high.x
            && other.low.x <= self.high.x
            && self.low.y <= other.high.y
            && other.low.y <= self.high.y
    }
}

/// A circle with a center and radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    pub center: Point,
    pub radius: f64,
}

/// A duration split into a month part and a millisecond part, as in ADM.
///
/// ADM distinguishes `duration` (both parts), `year-month-duration` (months
/// only) and `day-time-duration` (milliseconds only); all three share this
/// representation with the unused part zeroed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DurationValue {
    pub months: i32,
    pub millis: i64,
}

/// Which temporal point type an interval's endpoints carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntervalKind {
    Date,
    Time,
    DateTime,
}

/// A half-open interval `[start, end)` over date, time, or datetime values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntervalValue {
    pub kind: IntervalKind,
    pub start: i64,
    pub end: i64,
}

/// One field of an ADM record: a name and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub value: Value,
}

/// An ADM record: an ordered list of named fields with by-name lookup.
///
/// Records preserve field order (which matters for the schema-aware binary
/// format) but are compared and hashed order-insensitively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Record {
    fields: Vec<Field>,
}

impl Record {
    pub fn new() -> Self {
        Record { fields: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> Self {
        Record { fields: Vec::with_capacity(n) }
    }

    /// Build a record from `(name, value)` pairs.
    pub fn from_fields<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Record {
            fields: pairs.into_iter().map(|(n, v)| Field { name: n.into(), value: v }).collect(),
        }
    }

    /// Append a field, replacing any existing field of the same name.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        if let Some(f) = self.fields.iter_mut().find(|f| f.name == name) {
            f.value = value;
        } else {
            self.fields.push(Field { name, value });
        }
    }

    /// Append a field without checking for duplicates (parser fast path).
    pub fn push_unchecked(&mut self, name: impl Into<String>, value: Value) {
        self.fields.push(Field { name: name.into(), value });
    }

    /// Field lookup by name; `None` when the field is absent ("missing").
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|f| f.name == name).map(|f| &f.value)
    }

    pub fn get_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.fields.iter_mut().find(|f| f.name == name).map(|f| &mut f.value)
    }

    /// Remove a field by name, returning its value if present.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|f| f.name == name)?;
        Some(self.fields.remove(idx).value)
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|f| (f.name.as_str(), &f.value))
    }
}

/// An ADM value.
///
/// `Missing` models a field that is absent altogether (distinct from `Null`,
/// which is an explicit unknown), mirroring the XQuery-inspired treatment of
/// missing information that AQL keeps (Section 3).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Missing,
    Null,
    Boolean(bool),
    Int8(i8),
    Int16(i16),
    Int32(i32),
    Int64(i64),
    Float(f32),
    Double(f64),
    String(Arc<str>),
    /// Days since the Unix epoch.
    Date(i32),
    /// Milliseconds since midnight.
    Time(i32),
    /// Milliseconds since the Unix epoch.
    DateTime(i64),
    Duration(DurationValue),
    YearMonthDuration(i32),
    DayTimeDuration(i64),
    Interval(IntervalValue),
    Point(Point),
    Line(Line),
    Rectangle(Rectangle),
    Circle(Circle),
    Polygon(Arc<[Point]>),
    Binary(Arc<[u8]>),
    Record(Arc<Record>),
    /// An ordered list `[ ... ]`.
    OrderedList(Arc<[Value]>),
    /// An unordered list (bag) `{{ ... }}`.
    UnorderedList(Arc<[Value]>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn string(s: impl AsRef<str>) -> Value {
        Value::String(Arc::from(s.as_ref()))
    }

    pub fn record(r: Record) -> Value {
        Value::Record(Arc::new(r))
    }

    pub fn ordered_list(items: Vec<Value>) -> Value {
        Value::OrderedList(Arc::from(items))
    }

    pub fn unordered_list(items: Vec<Value>) -> Value {
        Value::UnorderedList(Arc::from(items))
    }

    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Null or missing — the two "unknown" values that propagate through
    /// expressions.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Value::Null | Value::Missing)
    }

    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Value::Int8(_)
                | Value::Int16(_)
                | Value::Int32(_)
                | Value::Int64(_)
                | Value::Float(_)
                | Value::Double(_)
        )
    }

    /// Widen any numeric value to `i64`; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int8(v) => Some(*v as i64),
            Value::Int16(v) => Some(*v as i64),
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Widen any numeric value to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int8(v) => Some(*v as f64),
            Value::Int16(v) => Some(*v as f64),
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::Float(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_record(&self) -> Option<&Record> {
        match self {
            Value::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Items of either list kind.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::OrderedList(l) | Value::UnorderedList(l) => Some(l),
            _ => None,
        }
    }

    /// Field access that yields `Missing` for non-records / absent fields,
    /// matching AQL's `$x.field` semantics.
    pub fn field(&self, name: &str) -> Value {
        match self {
            Value::Record(r) => r.get(name).cloned().unwrap_or(Value::Missing),
            _ => Value::Missing,
        }
    }

    /// The type tag name used in error messages and the self-describing
    /// binary format.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Missing => "missing",
            Value::Null => "null",
            Value::Boolean(_) => "boolean",
            Value::Int8(_) => "int8",
            Value::Int16(_) => "int16",
            Value::Int32(_) => "int32",
            Value::Int64(_) => "int64",
            Value::Float(_) => "float",
            Value::Double(_) => "double",
            Value::String(_) => "string",
            Value::Date(_) => "date",
            Value::Time(_) => "time",
            Value::DateTime(_) => "datetime",
            Value::Duration(_) => "duration",
            Value::YearMonthDuration(_) => "year-month-duration",
            Value::DayTimeDuration(_) => "day-time-duration",
            Value::Interval(_) => "interval",
            Value::Point(_) => "point",
            Value::Line(_) => "line",
            Value::Rectangle(_) => "rectangle",
            Value::Circle(_) => "circle",
            Value::Polygon(_) => "polygon",
            Value::Binary(_) => "binary",
            Value::Record(_) => "record",
            Value::OrderedList(_) => "orderedlist",
            Value::UnorderedList(_) => "unorderedlist",
        }
    }

    /// Total order used for sorting and B+-tree keys.
    ///
    /// Orders first by a type rank (null < missing < booleans < numerics <
    /// strings < temporals < spatials < composites), then within numeric
    /// types by promoted `f64`/`i64` value so that `int32 1 == int64 1`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Null, Null) | (Missing, Missing) => Ordering::Equal,
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (a, b) if a.is_numeric() && b.is_numeric() => numeric_cmp(a, b),
            (String(a), String(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            (DateTime(a), DateTime(b)) => a.cmp(b),
            (Duration(a), Duration(b)) => (a.months, a.millis).cmp(&(b.months, b.millis)),
            (YearMonthDuration(a), YearMonthDuration(b)) => a.cmp(b),
            (DayTimeDuration(a), DayTimeDuration(b)) => a.cmp(b),
            (Interval(a), Interval(b)) => (a.start, a.end).cmp(&(b.start, b.end)),
            (Point(a), Point(b)) => f64_cmp(a.x, b.x).then_with(|| f64_cmp(a.y, b.y)),
            (Line(a), Line(b)) => f64_cmp(a.a.x, b.a.x)
                .then_with(|| f64_cmp(a.a.y, b.a.y))
                .then_with(|| f64_cmp(a.b.x, b.b.x))
                .then_with(|| f64_cmp(a.b.y, b.b.y)),
            (Rectangle(a), Rectangle(b)) => f64_cmp(a.low.x, b.low.x)
                .then_with(|| f64_cmp(a.low.y, b.low.y))
                .then_with(|| f64_cmp(a.high.x, b.high.x))
                .then_with(|| f64_cmp(a.high.y, b.high.y)),
            (Circle(a), Circle(b)) => f64_cmp(a.center.x, b.center.x)
                .then_with(|| f64_cmp(a.center.y, b.center.y))
                .then_with(|| f64_cmp(a.radius, b.radius)),
            (Polygon(a), Polygon(b)) => {
                for (pa, pb) in a.iter().zip(b.iter()) {
                    let c = f64_cmp(pa.x, pb.x).then_with(|| f64_cmp(pa.y, pb.y));
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Binary(a), Binary(b)) => a.cmp(b),
            (OrderedList(a), OrderedList(b)) | (UnorderedList(a), UnorderedList(b)) => {
                for (va, vb) in a.iter().zip(b.iter()) {
                    let c = va.total_cmp(vb);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Record(a), Record(b)) => {
                // Compare records by sorted field names, then values.
                let mut fa: Vec<&crate::value::Field> = a.fields().iter().collect();
                let mut fb: Vec<&crate::value::Field> = b.fields().iter().collect();
                fa.sort_by(|x, y| x.name.cmp(&y.name));
                fb.sort_by(|x, y| x.name.cmp(&y.name));
                for (x, y) in fa.iter().zip(fb.iter()) {
                    let c = x.name.cmp(&y.name).then_with(|| x.value.total_cmp(&y.value));
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                fa.len().cmp(&fb.len())
            }
            _ => Ordering::Equal,
        }
    }

    fn type_rank(&self) -> u8 {
        use Value::*;
        match self {
            Null => 0,
            Missing => 1,
            Boolean(_) => 2,
            Int8(_) | Int16(_) | Int32(_) | Int64(_) | Float(_) | Double(_) => 3,
            String(_) => 4,
            Date(_) => 5,
            Time(_) => 6,
            DateTime(_) => 7,
            Duration(_) => 8,
            YearMonthDuration(_) => 9,
            DayTimeDuration(_) => 10,
            Interval(_) => 11,
            Point(_) => 12,
            Line(_) => 13,
            Rectangle(_) => 14,
            Circle(_) => 15,
            Polygon(_) => 16,
            Binary(_) => 17,
            OrderedList(_) => 18,
            UnorderedList(_) => 19,
            Record(_) => 20,
        }
    }

    /// Equality with numeric promotion, used by `=` in AQL and hash joins.
    /// Unknown operands make the result unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_unknown() || other.is_unknown() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// A stable 64-bit hash consistent with `total_cmp` equality; used for
    /// hash partitioning (the paper's `MToNPartitioning` connector) and
    /// hash joins.
    pub fn stable_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash_into(&mut h);
        h.finish()
    }

    fn hash_into(&self, h: &mut impl Hasher) {
        use Value::*;
        match self {
            Missing => 0u8.hash(h),
            Null => 1u8.hash(h),
            Boolean(b) => {
                2u8.hash(h);
                b.hash(h);
            }
            // All numerics hash through a canonical representation so that
            // int32 1, int64 1 and double 1.0 collide (they compare equal).
            v @ (Int8(_) | Int16(_) | Int32(_) | Int64(_) | Float(_) | Double(_)) => {
                3u8.hash(h);
                let d = v.as_f64().unwrap();
                if d.fract() == 0.0 && d.abs() < 9.0e15 {
                    (d as i64).hash(h);
                } else {
                    d.to_bits().hash(h);
                }
            }
            String(s) => {
                4u8.hash(h);
                s.hash(h);
            }
            Date(d) => {
                5u8.hash(h);
                d.hash(h);
            }
            Time(t) => {
                6u8.hash(h);
                t.hash(h);
            }
            DateTime(t) => {
                7u8.hash(h);
                t.hash(h);
            }
            Duration(d) => {
                8u8.hash(h);
                d.hash(h);
            }
            YearMonthDuration(m) => {
                9u8.hash(h);
                m.hash(h);
            }
            DayTimeDuration(m) => {
                10u8.hash(h);
                m.hash(h);
            }
            Interval(i) => {
                11u8.hash(h);
                i.hash(h);
            }
            Point(p) => {
                12u8.hash(h);
                p.x.to_bits().hash(h);
                p.y.to_bits().hash(h);
            }
            Line(l) => {
                13u8.hash(h);
                l.a.x.to_bits().hash(h);
                l.a.y.to_bits().hash(h);
                l.b.x.to_bits().hash(h);
                l.b.y.to_bits().hash(h);
            }
            Rectangle(r) => {
                14u8.hash(h);
                r.low.x.to_bits().hash(h);
                r.low.y.to_bits().hash(h);
                r.high.x.to_bits().hash(h);
                r.high.y.to_bits().hash(h);
            }
            Circle(c) => {
                15u8.hash(h);
                c.center.x.to_bits().hash(h);
                c.center.y.to_bits().hash(h);
                c.radius.to_bits().hash(h);
            }
            Polygon(ps) => {
                16u8.hash(h);
                for p in ps.iter() {
                    p.x.to_bits().hash(h);
                    p.y.to_bits().hash(h);
                }
            }
            Binary(b) => {
                17u8.hash(h);
                b.hash(h);
            }
            OrderedList(l) => {
                18u8.hash(h);
                for v in l.iter() {
                    v.hash_into(h);
                }
            }
            UnorderedList(l) => {
                // Order-insensitive: xor of element hashes.
                19u8.hash(h);
                let mut acc: u64 = 0;
                for v in l.iter() {
                    acc ^= v.stable_hash();
                }
                acc.hash(h);
            }
            Record(r) => {
                20u8.hash(h);
                let mut acc: u64 = 0;
                for f in r.fields() {
                    let mut fh = DefaultHasher::new();
                    f.name.hash(&mut fh);
                    f.value.hash_into(&mut fh);
                    acc ^= fh.finish();
                }
                acc.hash(h);
            }
        }
    }

    /// Approximate in-memory footprint in bytes; used by the LSM memory
    /// component budget and the Table 2 size accounting.
    pub fn approx_size(&self) -> usize {
        use Value::*;
        match self {
            Missing | Null => 1,
            Boolean(_) | Int8(_) => 2,
            Int16(_) => 3,
            Int32(_) | Float(_) | Date(_) | Time(_) => 5,
            Int64(_) | Double(_) | DateTime(_) | DayTimeDuration(_) => 9,
            YearMonthDuration(_) => 5,
            Duration(_) => 13,
            Interval(_) => 18,
            String(s) => 5 + s.len(),
            Point(_) => 17,
            Line(_) => 33,
            Rectangle(_) => 33,
            Circle(_) => 25,
            Polygon(ps) => 5 + 16 * ps.len(),
            Binary(b) => 5 + b.len(),
            OrderedList(l) | UnorderedList(l) => {
                5 + l.iter().map(|v| v.approx_size()).sum::<usize>()
            }
            Record(r) => {
                5 + r
                    .fields()
                    .iter()
                    .map(|f| f.name.len() + 3 + f.value.approx_size())
                    .sum::<usize>()
            }
        }
    }
}

fn f64_cmp(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaNs sort last, consistently.
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!(),
        }
    })
}

fn numeric_cmp(a: &Value, b: &Value) -> Ordering {
    match (a.as_i64(), b.as_i64()) {
        (Some(x), Some(y)) => x.cmp(&y),
        _ => f64_cmp(a.as_f64().unwrap(), b.as_f64().unwrap()),
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl From<i8> for Value {
    fn from(v: i8) -> Self {
        Value::Int8(v)
    }
}
impl From<i16> for Value {
    fn from(v: i16) -> Self {
        Value::Int16(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::string(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    /// Display as ADM text syntax (see `crate::print` for the writer).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::print::write_value(f, self)
    }
}

/// Coerce a value to the requested integer width, failing on overflow.
pub fn coerce_int(v: &Value, target: &str) -> Result<Value> {
    let i = v
        .as_i64()
        .ok_or_else(|| AdmError::InvalidArgument(format!("{} is not an integer", v.type_name())))?;
    match target {
        "int8" => i8::try_from(i)
            .map(Value::Int8)
            .map_err(|_| AdmError::Arithmetic(format!("{i} overflows int8"))),
        "int16" => i16::try_from(i)
            .map(Value::Int16)
            .map_err(|_| AdmError::Arithmetic(format!("{i} overflows int16"))),
        "int32" => i32::try_from(i)
            .map(Value::Int32)
            .map_err(|_| AdmError::Arithmetic(format!("{i} overflows int32"))),
        "int64" => Ok(Value::Int64(i)),
        _ => Err(AdmError::InvalidArgument(format!("unknown integer type {target}"))),
    }
}

/// Pretty names for temporal values, used by Display via `crate::print`.
pub(crate) fn temporal_literal(v: &Value) -> Option<(&'static str, String)> {
    match v {
        Value::Date(d) => Some(("date", format_date(*d))),
        Value::Time(t) => Some(("time", format_time(*t))),
        Value::DateTime(t) => Some(("datetime", format_datetime(*t))),
        Value::Duration(d) => Some(("duration", format_duration(d.months, d.millis))),
        Value::YearMonthDuration(m) => Some(("year-month-duration", format_duration(*m, 0))),
        Value::DayTimeDuration(ms) => Some(("day-time-duration", format_duration(0, *ms))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_set_get() {
        let mut r = Record::new();
        r.set("a", Value::Int32(1));
        r.set("b", Value::string("x"));
        r.set("a", Value::Int32(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a"), Some(&Value::Int32(2)));
        assert_eq!(r.get("c"), None);
    }

    #[test]
    fn field_access_on_non_record_is_missing() {
        assert!(Value::Int32(3).field("x").is_missing());
        let r = Value::record(Record::from_fields([("x", Value::Int32(1))]));
        assert_eq!(r.field("x"), Value::Int32(1));
        assert!(r.field("y").is_missing());
    }

    #[test]
    fn numeric_promotion_in_cmp_and_hash() {
        let a = Value::Int32(7);
        let b = Value::Int64(7);
        let c = Value::Double(7.0);
        assert_eq!(a.total_cmp(&b), Ordering::Equal);
        assert_eq!(a.total_cmp(&c), Ordering::Equal);
        assert_eq!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash(), c.stable_hash());
        assert_eq!(Value::Int32(3).total_cmp(&Value::Double(3.5)), Ordering::Less);
    }

    #[test]
    fn unknown_propagation_in_eq() {
        assert_eq!(Value::Null.sql_eq(&Value::Int32(1)), None);
        assert_eq!(Value::Missing.sql_eq(&Value::Missing), None);
        assert_eq!(Value::Int32(1).sql_eq(&Value::Int32(1)), Some(true));
        assert_eq!(Value::Int32(1).sql_eq(&Value::Int32(2)), Some(false));
    }

    #[test]
    fn bag_hash_is_order_insensitive() {
        let a = Value::unordered_list(vec![Value::Int32(1), Value::Int32(2)]);
        let b = Value::unordered_list(vec![Value::Int32(2), Value::Int32(1)]);
        assert_eq!(a.stable_hash(), b.stable_hash());
        let c = Value::ordered_list(vec![Value::Int32(1), Value::Int32(2)]);
        let d = Value::ordered_list(vec![Value::Int32(2), Value::Int32(1)]);
        assert_ne!(c.stable_hash(), d.stable_hash());
    }

    #[test]
    fn rectangle_geometry() {
        let r = Rectangle::new(Point::new(0.0, 0.0), Point::new(2.0, 3.0));
        assert_eq!(r.area(), 6.0);
        assert!(r.contains_point(&Point::new(1.0, 1.0)));
        assert!(!r.contains_point(&Point::new(3.0, 1.0)));
        let s = Rectangle::new(Point::new(1.5, 2.5), Point::new(5.0, 5.0));
        assert!(r.intersects(&s));
        let t = Rectangle::new(Point::new(10.0, 10.0), Point::new(11.0, 11.0));
        assert!(!r.intersects(&t));
    }

    #[test]
    fn coerce_int_overflow() {
        assert!(coerce_int(&Value::Int64(300), "int8").is_err());
        assert_eq!(coerce_int(&Value::Int64(300), "int16").unwrap(), Value::Int16(300));
    }

    #[test]
    fn total_order_across_types_is_stable() {
        let vals = [
            Value::Null,
            Value::Missing,
            Value::Boolean(false),
            Value::Int32(0),
            Value::string("a"),
            Value::Date(0),
        ];
        for w in vals.windows(2) {
            assert_eq!(w[0].total_cmp(&w[1]), Ordering::Less);
        }
    }
}
