//! The ADM type system: Datatypes with open and closed record types.
//!
//! Section 2.1: a Datatype tells AsterixDB, a priori, what it should know
//! about data stored in a Dataset. Open record types admit extra fields at
//! the instance level; closed types do not. Optional fields (`?`) may be
//! missing or null, but when present must conform.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{AdmError, Result};
use crate::value::Value;

/// Tags for the primitive ADM types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveType {
    Boolean,
    Int8,
    Int16,
    Int32,
    Int64,
    Float,
    Double,
    String,
    Date,
    Time,
    DateTime,
    Duration,
    YearMonthDuration,
    DayTimeDuration,
    Interval,
    Point,
    Line,
    Rectangle,
    Circle,
    Polygon,
    Binary,
    /// `null` as a type (rarely declared, but valid).
    Null,
    /// The `any` wildcard — every value conforms.
    Any,
}

impl PrimitiveType {
    /// The surface-syntax name used in `create type` statements.
    pub fn name(&self) -> &'static str {
        use PrimitiveType::*;
        match self {
            Boolean => "boolean",
            Int8 => "int8",
            Int16 => "int16",
            Int32 => "int32",
            Int64 => "int64",
            Float => "float",
            Double => "double",
            String => "string",
            Date => "date",
            Time => "time",
            DateTime => "datetime",
            Duration => "duration",
            YearMonthDuration => "year-month-duration",
            DayTimeDuration => "day-time-duration",
            Interval => "interval",
            Point => "point",
            Line => "line",
            Rectangle => "rectangle",
            Circle => "circle",
            Polygon => "polygon",
            Binary => "binary",
            Null => "null",
            Any => "any",
        }
    }

    /// Resolve a surface-syntax type name (accepting common aliases).
    pub fn from_name(name: &str) -> Option<PrimitiveType> {
        use PrimitiveType::*;
        Some(match name {
            "boolean" => Boolean,
            "int8" | "tinyint" => Int8,
            "int16" | "smallint" => Int16,
            "int32" | "int" | "integer" => Int32,
            "int64" | "bigint" => Int64,
            "float" => Float,
            "double" => Double,
            "string" => String,
            "date" => Date,
            "time" => Time,
            "datetime" => DateTime,
            "duration" => Duration,
            "year-month-duration" => YearMonthDuration,
            "day-time-duration" => DayTimeDuration,
            "interval" => Interval,
            "point" => Point,
            "line" => Line,
            "rectangle" => Rectangle,
            "circle" => Circle,
            "polygon" => Polygon,
            "binary" => Binary,
            "null" => Null,
            "any" => Any,
            _ => return None,
        })
    }
}

/// One declared field of a record type.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldType {
    pub name: String,
    pub ty: Datatype,
    /// `true` for fields declared with a trailing `?` — may be missing/null.
    pub optional: bool,
}

/// A record type: declared fields plus the open/closed flag.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordType {
    pub fields: Vec<FieldType>,
    /// Open types admit undeclared extra fields (the default, §2.1).
    pub open: bool,
}

impl RecordType {
    pub fn field(&self, name: &str) -> Option<&FieldType> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// An ADM Datatype: primitive, record, list, or a reference to a named type.
#[derive(Debug, Clone, PartialEq)]
pub enum Datatype {
    Primitive(PrimitiveType),
    Record(Arc<RecordType>),
    /// `[ T ]` — an ordered list of `T`.
    OrderedList(Arc<Datatype>),
    /// `{{ T }}` — a bag of `T`.
    UnorderedList(Arc<Datatype>),
    /// A reference to a named type, resolved against a [`TypeRegistry`].
    Named(String),
}

impl Datatype {
    pub fn any() -> Datatype {
        Datatype::Primitive(PrimitiveType::Any)
    }

    /// An open record with no declared fields — the "schema never" extreme.
    pub fn open_record() -> Datatype {
        Datatype::Record(Arc::new(RecordType { fields: Vec::new(), open: true }))
    }

    pub fn as_record(&self) -> Option<&RecordType> {
        match self {
            Datatype::Record(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datatype::Primitive(p) => write!(f, "{}", p.name()),
            Datatype::Named(n) => write!(f, "{n}"),
            Datatype::OrderedList(t) => write!(f, "[{t}]"),
            Datatype::UnorderedList(t) => write!(f, "{{{{{t}}}}}"),
            Datatype::Record(r) => {
                write!(f, "{}{{ ", if r.open { "open " } else { "closed " })?;
                for (i, fld) in r.fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}{}", fld.name, fld.ty, if fld.optional { "?" } else { "" })?;
                }
                write!(f, " }}")
            }
        }
    }
}

/// A registry of named Datatypes belonging to a Dataverse.
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    types: BTreeMap<String, Datatype>,
}

impl TypeRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn define(&mut self, name: impl Into<String>, ty: Datatype) {
        self.types.insert(name.into(), ty);
    }

    pub fn get(&self, name: &str) -> Option<&Datatype> {
        self.types.get(name)
    }

    pub fn remove(&mut self, name: &str) -> Option<Datatype> {
        self.types.remove(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.types.keys().map(|s| s.as_str())
    }

    /// Resolve `Named` references (transitively) to a concrete type.
    pub fn resolve<'a>(&'a self, ty: &'a Datatype) -> Result<Datatype> {
        match ty {
            Datatype::Named(n) => {
                let inner = self
                    .get(n)
                    .ok_or_else(|| AdmError::TypeMismatch(format!("unknown type {n}")))?;
                self.resolve(inner)
            }
            other => Ok(other.clone()),
        }
    }

    /// Validate `value` against `ty` (Section 2.1 semantics).
    ///
    /// * Closed records reject undeclared fields.
    /// * Open records accept extra fields of any type.
    /// * Optional fields may be missing or null.
    /// * Numeric values are accepted at any declared integer/float width
    ///   that can represent them (insert coercion is done separately).
    pub fn validate(&self, value: &Value, ty: &Datatype) -> Result<()> {
        match ty {
            Datatype::Named(n) => {
                let resolved = self
                    .get(n)
                    .ok_or_else(|| AdmError::TypeMismatch(format!("unknown type {n}")))?
                    .clone();
                self.validate(value, &resolved)
            }
            Datatype::Primitive(p) => self.validate_primitive(value, *p),
            Datatype::OrderedList(elem) => match value {
                Value::OrderedList(items) => {
                    for (i, v) in items.iter().enumerate() {
                        self.validate(v, elem).map_err(|e| {
                            AdmError::TypeMismatch(format!("list element {i}: {e}"))
                        })?;
                    }
                    Ok(())
                }
                other => Err(AdmError::TypeMismatch(format!(
                    "expected ordered list, got {}",
                    other.type_name()
                ))),
            },
            Datatype::UnorderedList(elem) => match value {
                Value::UnorderedList(items) => {
                    for (i, v) in items.iter().enumerate() {
                        self.validate(v, elem)
                            .map_err(|e| AdmError::TypeMismatch(format!("bag element {i}: {e}")))?;
                    }
                    Ok(())
                }
                other => Err(AdmError::TypeMismatch(format!(
                    "expected unordered list (bag), got {}",
                    other.type_name()
                ))),
            },
            Datatype::Record(rt) => {
                let rec = value.as_record().ok_or_else(|| {
                    AdmError::TypeMismatch(format!("expected record, got {}", value.type_name()))
                })?;
                for fld in &rt.fields {
                    match rec.get(&fld.name) {
                        None | Some(Value::Missing) => {
                            if !fld.optional {
                                return Err(AdmError::TypeMismatch(format!(
                                    "missing required field '{}'",
                                    fld.name
                                )));
                            }
                        }
                        Some(Value::Null) if fld.optional => {}
                        Some(v) => self.validate(v, &fld.ty).map_err(|e| {
                            AdmError::TypeMismatch(format!("field '{}': {e}", fld.name))
                        })?,
                    }
                }
                if !rt.open {
                    for (name, _) in rec.iter() {
                        if rt.field(name).is_none() {
                            return Err(AdmError::TypeMismatch(format!(
                                "closed type does not allow extra field '{name}'"
                            )));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn validate_primitive(&self, value: &Value, p: PrimitiveType) -> Result<()> {
        use PrimitiveType as P;
        let ok = match (p, value) {
            (P::Any, _) => true,
            (P::Null, Value::Null) => true,
            (P::Boolean, Value::Boolean(_)) => true,
            // Integers conform to a declared width when representable there.
            (P::Int8, v) => v.as_i64().is_some_and(|i| i8::try_from(i).is_ok()),
            (P::Int16, v) => v.as_i64().is_some_and(|i| i16::try_from(i).is_ok()),
            (P::Int32, v) => v.as_i64().is_some_and(|i| i32::try_from(i).is_ok()),
            (P::Int64, v) => v.as_i64().is_some(),
            (P::Float, v) => v.is_numeric(),
            (P::Double, v) => v.is_numeric(),
            (P::String, Value::String(_)) => true,
            (P::Date, Value::Date(_)) => true,
            (P::Time, Value::Time(_)) => true,
            (P::DateTime, Value::DateTime(_)) => true,
            (P::Duration, Value::Duration(_)) => true,
            (P::Duration, Value::YearMonthDuration(_)) => true,
            (P::Duration, Value::DayTimeDuration(_)) => true,
            (P::YearMonthDuration, Value::YearMonthDuration(_)) => true,
            (P::DayTimeDuration, Value::DayTimeDuration(_)) => true,
            (P::Interval, Value::Interval(_)) => true,
            (P::Point, Value::Point(_)) => true,
            (P::Line, Value::Line(_)) => true,
            (P::Rectangle, Value::Rectangle(_)) => true,
            (P::Circle, Value::Circle(_)) => true,
            (P::Polygon, Value::Polygon(_)) => true,
            (P::Binary, Value::Binary(_)) => true,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(AdmError::TypeMismatch(format!("expected {}, got {}", p.name(), value.type_name())))
        }
    }

    /// Coerce integer literals to the declared width on the storage path,
    /// so an `int32`-typed field stores `Value::Int32` even when the parser
    /// produced an `Int64` literal. Leaves everything else untouched.
    pub fn coerce(&self, value: &Value, ty: &Datatype) -> Result<Value> {
        match ty {
            Datatype::Named(n) => {
                let resolved = self
                    .get(n)
                    .ok_or_else(|| AdmError::TypeMismatch(format!("unknown type {n}")))?
                    .clone();
                self.coerce(value, &resolved)
            }
            Datatype::Primitive(p) => {
                use PrimitiveType as P;
                Ok(match (p, value) {
                    (P::Int8, v) if v.as_i64().is_some() => crate::value::coerce_int(v, "int8")?,
                    (P::Int16, v) if v.as_i64().is_some() => crate::value::coerce_int(v, "int16")?,
                    (P::Int32, v) if v.as_i64().is_some() => crate::value::coerce_int(v, "int32")?,
                    (P::Int64, v) if v.as_i64().is_some() => Value::Int64(v.as_i64().unwrap()),
                    (P::Float, v) if v.is_numeric() => Value::Float(v.as_f64().unwrap() as f32),
                    (P::Double, v) if v.is_numeric() => Value::Double(v.as_f64().unwrap()),
                    _ => value.clone(),
                })
            }
            Datatype::OrderedList(elem) => match value {
                Value::OrderedList(items) => {
                    let coerced: Result<Vec<Value>> =
                        items.iter().map(|v| self.coerce(v, elem)).collect();
                    Ok(Value::ordered_list(coerced?))
                }
                other => Ok(other.clone()),
            },
            Datatype::UnorderedList(elem) => match value {
                Value::UnorderedList(items) => {
                    let coerced: Result<Vec<Value>> =
                        items.iter().map(|v| self.coerce(v, elem)).collect();
                    Ok(Value::unordered_list(coerced?))
                }
                other => Ok(other.clone()),
            },
            Datatype::Record(rt) => match value {
                Value::Record(rec) => {
                    let mut out = crate::value::Record::with_capacity(rec.len());
                    for (name, v) in rec.iter() {
                        let coerced = match rt.field(name) {
                            Some(f) => self.coerce(v, &f.ty)?,
                            None => v.clone(),
                        };
                        out.push_unchecked(name, coerced);
                    }
                    Ok(Value::record(out))
                }
                other => Ok(other.clone()),
            },
        }
    }
}

/// Builder for record types, used by tests and the metadata bootstrap.
pub struct RecordTypeBuilder {
    fields: Vec<FieldType>,
    open: bool,
}

impl RecordTypeBuilder {
    pub fn open() -> Self {
        RecordTypeBuilder { fields: Vec::new(), open: true }
    }

    pub fn closed() -> Self {
        RecordTypeBuilder { fields: Vec::new(), open: false }
    }

    pub fn field(mut self, name: impl Into<String>, ty: Datatype) -> Self {
        self.fields.push(FieldType { name: name.into(), ty, optional: false });
        self
    }

    pub fn optional_field(mut self, name: impl Into<String>, ty: Datatype) -> Self {
        self.fields.push(FieldType { name: name.into(), ty, optional: true });
        self
    }

    pub fn build(self) -> Datatype {
        Datatype::Record(Arc::new(RecordType { fields: self.fields, open: self.open }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Record;

    fn p(t: PrimitiveType) -> Datatype {
        Datatype::Primitive(t)
    }

    #[test]
    fn open_type_allows_extra_fields() {
        let ty = RecordTypeBuilder::open()
            .field("id", p(PrimitiveType::Int32))
            .field("name", p(PrimitiveType::String))
            .build();
        let reg = TypeRegistry::new();
        let v = Value::record(Record::from_fields([
            ("id", Value::Int32(1)),
            ("name", Value::string("a")),
            ("extra", Value::Boolean(true)),
        ]));
        assert!(reg.validate(&v, &ty).is_ok());
    }

    #[test]
    fn closed_type_rejects_extra_fields() {
        let ty = RecordTypeBuilder::closed().field("id", p(PrimitiveType::Int32)).build();
        let reg = TypeRegistry::new();
        let v = Value::record(Record::from_fields([
            ("id", Value::Int32(1)),
            ("extra", Value::Boolean(true)),
        ]));
        let err = reg.validate(&v, &ty).unwrap_err();
        assert!(matches!(err, AdmError::TypeMismatch(_)), "{err}");
    }

    #[test]
    fn required_field_must_be_present() {
        let ty = RecordTypeBuilder::open()
            .field("id", p(PrimitiveType::Int32))
            .optional_field("end-date", p(PrimitiveType::Date))
            .build();
        let reg = TypeRegistry::new();
        let missing_required = Value::record(Record::from_fields([("end-date", Value::Date(0))]));
        assert!(reg.validate(&missing_required, &ty).is_err());
        let ok = Value::record(Record::from_fields([("id", Value::Int32(1))]));
        assert!(reg.validate(&ok, &ty).is_ok());
        let with_null_opt = Value::record(Record::from_fields([
            ("id", Value::Int32(1)),
            ("end-date", Value::Null),
        ]));
        assert!(reg.validate(&with_null_opt, &ty).is_ok());
    }

    #[test]
    fn named_type_resolution_and_nested_lists() {
        let mut reg = TypeRegistry::new();
        reg.define(
            "EmploymentType",
            RecordTypeBuilder::open()
                .field("organization-name", p(PrimitiveType::String))
                .field("start-date", p(PrimitiveType::Date))
                .optional_field("end-date", p(PrimitiveType::Date))
                .build(),
        );
        let user_ty = RecordTypeBuilder::open()
            .field("id", p(PrimitiveType::Int32))
            .field(
                "employment",
                Datatype::OrderedList(Arc::new(Datatype::Named("EmploymentType".into()))),
            )
            .field("friend-ids", Datatype::UnorderedList(Arc::new(p(PrimitiveType::Int32))))
            .build();
        let v = Value::record(Record::from_fields([
            ("id", Value::Int32(1)),
            (
                "employment",
                Value::ordered_list(vec![Value::record(Record::from_fields([
                    ("organization-name", Value::string("Kongreen")),
                    ("start-date", Value::Date(15000)),
                ]))]),
            ),
            ("friend-ids", Value::unordered_list(vec![Value::Int32(5), Value::Int32(9)])),
        ]));
        assert!(reg.validate(&v, &user_ty).is_ok());

        // Wrong element type inside the bag.
        let bad = Value::record(Record::from_fields([
            ("id", Value::Int32(1)),
            ("employment", Value::ordered_list(vec![])),
            ("friend-ids", Value::unordered_list(vec![Value::string("not an int")])),
        ]));
        assert!(reg.validate(&bad, &user_ty).is_err());
    }

    #[test]
    fn int_width_conformance_and_coercion() {
        let reg = TypeRegistry::new();
        assert!(reg.validate(&Value::Int64(5), &p(PrimitiveType::Int32)).is_ok());
        assert!(reg.validate(&Value::Int64(5_000_000_000), &p(PrimitiveType::Int32)).is_err());
        let c = reg.coerce(&Value::Int64(5), &p(PrimitiveType::Int32)).unwrap();
        assert_eq!(c, Value::Int32(5));
        let c = reg.coerce(&Value::Int32(5), &p(PrimitiveType::Double)).unwrap();
        assert_eq!(c, Value::Double(5.0));
    }

    #[test]
    fn coerce_recurses_into_records() {
        let ty = RecordTypeBuilder::open().field("id", p(PrimitiveType::Int32)).build();
        let reg = TypeRegistry::new();
        let v = Value::record(Record::from_fields([("id", Value::Int64(7))]));
        let c = reg.coerce(&v, &ty).unwrap();
        assert_eq!(c.field("id"), Value::Int32(7));
    }
}
