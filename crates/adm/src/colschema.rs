//! Flush-time schema inference and record shredding for columnar LSM
//! components.
//!
//! The LSM tuple-compaction idea: no schema is declared up front, so the
//! flush watches the self-describing records that actually arrive, freezes
//! a schema of the stable top-level fields, and shreds matching records
//! into per-column byte runs. Everything that does not fit — rare fields,
//! heterogeneously-typed fields, non-record rows — falls back to a
//! row-stored "spill" representation, so the columnar format never loses
//! information and reads can reproduce the original encoding byte for
//! byte.
//!
//! Everything here operates on the self-describing [`crate::serde`]
//! encoding directly; no `Value` is materialized on either the shred or
//! the splice path.

use std::collections::BTreeMap;

use crate::error::{AdmError, Result};
use crate::serde::{self, for_each_record_field};

/// Append one LEB128 varint (same wire format as [`crate::serde`]).
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// One stable top-level column chosen by schema inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    pub name: String,
    /// The self-describing type tag shared by every non-null occurrence
    /// of the field in the observed rows.
    pub tag: u8,
    /// Number of observed rows in which the field was present.
    pub count: u64,
}

/// The schema inferred from one frozen component's records: the ordered
/// set of columns worth storing column-major, plus how many rows were
/// observed to pick them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InferredSchema {
    pub columns: Vec<ColumnSpec>,
    pub rows: u64,
}

impl InferredSchema {
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Serialize for the component footer's schema blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.rows);
        write_varint(&mut out, self.columns.len() as u64);
        for c in &self.columns {
            write_varint(&mut out, c.name.len() as u64);
            out.extend_from_slice(c.name.as_bytes());
            out.push(c.tag);
            write_varint(&mut out, c.count);
        }
        out
    }

    /// Parse a schema blob, requiring full consumption.
    pub fn from_bytes(buf: &[u8]) -> Option<InferredSchema> {
        let mut pos = 0;
        let varint = |pos: &mut usize| -> Option<u64> {
            let (v, n) = serde::read_varint(buf.get(*pos..)?)?;
            *pos += n;
            Some(v)
        };
        let rows = varint(&mut pos)?;
        let ncols = varint(&mut pos)? as usize;
        let mut columns = Vec::with_capacity(ncols.min(1 << 12));
        for _ in 0..ncols {
            let len = varint(&mut pos)? as usize;
            let name = std::str::from_utf8(buf.get(pos..pos + len)?).ok()?.to_string();
            pos += len;
            let tag = *buf.get(pos)?;
            pos += 1;
            let count = varint(&mut pos)?;
            columns.push(ColumnSpec { name, tag, count });
        }
        if pos != buf.len() {
            return None;
        }
        Some(InferredSchema { columns, rows })
    }
}

/// Per-path observation stats: which type tags a field path was seen
/// with (null excluded — a nullable column is still a column) and in how
/// many rows it appeared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldPathStat {
    /// Dot-joined path from the record root (`"user.name"`).
    pub path: String,
    /// Distinct non-null type tags observed, ascending.
    pub tags: Vec<u8>,
    /// Rows in which the path was present.
    pub count: u64,
}

#[derive(Debug, Default)]
struct PathStat {
    /// Per non-null tag occurrence counts, ascending by tag.
    tags: Vec<(u8, u64)>,
    count: u64,
}

/// A field qualifies for a column only when its most frequent non-null
/// tag covers at least this fraction of its non-null occurrences; rows
/// carrying a minority tag spill whole. Below the bar the field is
/// genuinely heterogeneous and lives in the per-row rest record instead.
const DOMINANT_TAG_FRACTION: f64 = 0.9;

impl PathStat {
    fn note(&mut self, tag: u8) {
        self.count += 1;
        if tag != serde::T_NULL {
            match self.tags.binary_search_by_key(&tag, |&(t, _)| t) {
                Ok(i) => self.tags[i].1 += 1,
                Err(i) => self.tags.insert(i, (tag, 1)),
            }
        }
    }

    fn distinct_tags(&self) -> Vec<u8> {
        self.tags.iter().map(|&(t, _)| t).collect()
    }

    /// The dominant non-null tag, if one covers enough of the non-null
    /// occurrences to anchor a column.
    fn dominant(&self) -> Option<u8> {
        let total: u64 = self.tags.iter().map(|&(_, n)| n).sum();
        let &(tag, n) = self.tags.iter().max_by_key(|&&(_, n)| n)?;
        (n as f64 >= total as f64 * DOMINANT_TAG_FRACTION).then_some(tag)
    }
}

/// How deep [`SchemaBuilder::observe`] descends into nested records when
/// collecting dotted path statistics. Only top-level fields become
/// columns; deeper paths feed observability and future nested shredding.
const MAX_PATH_DEPTH: usize = 3;

/// Streaming schema inference over a frozen component's records.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    rows: u64,
    /// Top-level field names in first-seen order (column order is data
    /// arrival order, matching the row encoding's field order for
    /// homogeneous loads).
    order: Vec<String>,
    top: BTreeMap<String, PathStat>,
    nested: BTreeMap<String, PathStat>,
}

impl SchemaBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Observe one self-describing encoded record. Returns `false`
    /// (recording nothing) when the bytes do not encode a record — such
    /// rows can only be stored on the spill path.
    pub fn observe(&mut self, record_sd: &[u8]) -> bool {
        let mut order = std::mem::take(&mut self.order);
        let mut top = std::mem::take(&mut self.top);
        let mut nested = std::mem::take(&mut self.nested);
        let is_record = for_each_record_field(record_sd, &mut |name, bytes| {
            let tag = bytes.first().copied().unwrap_or(serde::T_MISSING);
            if !top.contains_key(name) {
                order.push(name.to_string());
            }
            top.entry(name.to_string()).or_default().note(tag);
            if tag == serde::T_RECORD {
                Self::observe_nested(&mut nested, name, bytes, 1);
            }
            true
        });
        self.order = order;
        self.top = top;
        self.nested = nested;
        match is_record {
            Ok(true) => {
                self.rows += 1;
                true
            }
            _ => false,
        }
    }

    fn observe_nested(
        nested: &mut BTreeMap<String, PathStat>,
        prefix: &str,
        bytes: &[u8],
        depth: usize,
    ) {
        if depth > MAX_PATH_DEPTH {
            return;
        }
        let _ = for_each_record_field(bytes, &mut |name, fbytes| {
            let tag = fbytes.first().copied().unwrap_or(serde::T_MISSING);
            let path = format!("{prefix}.{name}");
            nested.entry(path.clone()).or_default().note(tag);
            if tag == serde::T_RECORD {
                Self::observe_nested(nested, &path, fbytes, depth + 1);
            }
            true
        });
    }

    /// Every observed field path (top-level and dotted nested) with its
    /// presence count and distinct non-null tags.
    pub fn field_paths(&self) -> Vec<FieldPathStat> {
        let mut out: Vec<FieldPathStat> = self
            .top
            .iter()
            .chain(self.nested.iter())
            .map(|(path, s)| FieldPathStat {
                path: path.clone(),
                tags: s.distinct_tags(),
                count: s.count,
            })
            .collect();
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    /// Freeze the schema: a top-level field becomes a column when it was
    /// present in at least `min_presence` of the observed rows and one
    /// type tag dominates its non-null occurrences (see
    /// [`DOMINANT_TAG_FRACTION`]); rows carrying a minority tag spill
    /// whole at shred time. Genuinely heterogeneous and rare fields are
    /// left to the per-row "rest" record; always-null fields have no
    /// useful column representation either. At most `max_columns` survive
    /// (highest presence wins); column order is first-seen order.
    pub fn finish(self, min_presence: f64, max_columns: usize) -> InferredSchema {
        if self.rows == 0 {
            return InferredSchema::default();
        }
        let threshold = ((self.rows as f64) * min_presence).ceil().max(1.0) as u64;
        let mut picked: Vec<(usize, ColumnSpec)> = Vec::new();
        for (i, name) in self.order.iter().enumerate() {
            let s = &self.top[name];
            if s.count >= threshold {
                if let Some(tag) = s.dominant() {
                    picked.push((i, ColumnSpec { name: name.clone(), tag, count: s.count }));
                }
            }
        }
        if picked.len() > max_columns {
            picked.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
            picked.truncate(max_columns);
            picked.sort_by_key(|(i, _)| *i);
        }
        InferredSchema { columns: picked.into_iter().map(|(_, c)| c).collect(), rows: self.rows }
    }
}

/// A record shredded against an [`InferredSchema`]: per-column encoded
/// field bytes (`None` = absent in this record) plus a row-stored "rest"
/// record carrying every leftover field in its original order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shredded<'a> {
    pub cols: Vec<Option<&'a [u8]>>,
    pub rest: Option<Vec<u8>>,
}

/// Shred one encoded record. Returns `None` — the caller's whole-row
/// spill signal — when the bytes are not a record, a field name repeats
/// (splice order would be ambiguous), or a schema column occurs with a
/// tag other than its inferred one (heterogeneous data that slipped past
/// inference, e.g. across merge inputs).
pub fn shred<'a>(schema: &InferredSchema, record_sd: &'a [u8]) -> Option<Shredded<'a>> {
    let mut cols: Vec<Option<&'a [u8]>> = vec![None; schema.columns.len()];
    let mut rest_parts: Vec<(&str, &[u8])> = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    let mut spill = false;
    let walked = for_each_record_field(record_sd, &mut |name, bytes| {
        if seen.contains(&name) {
            spill = true;
            return false;
        }
        seen.push(name);
        match schema.column_index(name) {
            Some(i) => {
                let tag = bytes.first().copied().unwrap_or(serde::T_MISSING);
                if tag == schema.columns[i].tag || tag == serde::T_NULL {
                    cols[i] = Some(bytes);
                } else {
                    spill = true;
                    return false;
                }
            }
            None => rest_parts.push((name, bytes)),
        }
        true
    });
    if spill || !matches!(walked, Ok(true)) {
        return None;
    }
    let rest =
        if rest_parts.is_empty() { None } else { Some(encode_record_from_parts(&rest_parts)) };
    Some(Shredded { cols, rest })
}

/// Build a self-describing record encoding from already-encoded field
/// values — the assembly primitive for both the spill "rest" record and
/// the late-materialized projection output.
pub fn encode_record_from_parts(parts: &[(&str, &[u8])]) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(serde::T_RECORD);
    write_varint(&mut out, parts.len() as u64);
    for (name, bytes) in parts {
        write_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Reassemble the full record from shredded parts: present schema columns
/// in schema order, then the rest record's fields verbatim. Build-time
/// verification compares this against the original encoding; rows where
/// the two differ (open-field order drift, anything surprising) are
/// spilled instead, so reads always reproduce original bytes exactly.
pub fn splice_full(
    schema: &InferredSchema,
    cols: &[Option<&[u8]>],
    rest: Option<&[u8]>,
) -> Result<Vec<u8>> {
    debug_assert_eq!(cols.len(), schema.columns.len());
    let (rest_fields, rest_body) = match rest {
        None => (0u64, &[][..]),
        Some(buf) => {
            let (&tag, after) =
                buf.split_first().ok_or_else(|| AdmError::Corrupt("empty rest record".into()))?;
            if tag != serde::T_RECORD {
                return Err(AdmError::Corrupt(format!("rest blob tag {tag} is not a record")));
            }
            let (n, used) = serde::read_varint(after)
                .ok_or_else(|| AdmError::Corrupt("rest record field count".into()))?;
            (n, &after[used..])
        }
    };
    let present = cols.iter().filter(|c| c.is_some()).count() as u64;
    let mut out = Vec::new();
    out.push(serde::T_RECORD);
    write_varint(&mut out, present + rest_fields);
    for (spec, col) in schema.columns.iter().zip(cols) {
        if let Some(bytes) = col {
            write_varint(&mut out, spec.name.len() as u64);
            out.extend_from_slice(spec.name.as_bytes());
            out.extend_from_slice(bytes);
        }
    }
    out.extend_from_slice(rest_body);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serde::encode;
    use crate::value::{Record, Value};

    fn rec(fields: &[(&str, Value)]) -> Value {
        let mut r = Record::new();
        for (n, v) in fields {
            r.set(*n, v.clone());
        }
        Value::record(r)
    }

    #[test]
    fn inference_picks_stable_fields_and_spills_heterogeneous() {
        let mut b = SchemaBuilder::new();
        for i in 0..10i64 {
            let mixed = if i % 2 == 0 { Value::Int64(i) } else { Value::string("s") };
            let mut fields = vec![
                ("id", Value::Int64(i)),
                ("name", Value::string(format!("u{i}"))),
                ("mixed", mixed),
            ];
            if i == 3 {
                fields.push(("rare", Value::Boolean(true)));
            }
            if i % 3 == 0 {
                fields.push(("nullable", Value::Null));
            } else {
                fields.push(("nullable", Value::Double(0.5)));
            }
            assert!(b.observe(&encode(&rec(&fields))));
        }
        let schema = b.finish(0.5, 16);
        let names: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["id", "name", "nullable"]);
        assert_eq!(schema.rows, 10);
        let roundtrip = InferredSchema::from_bytes(&schema.to_bytes()).unwrap();
        assert_eq!(roundtrip, schema);
    }

    #[test]
    fn non_records_are_rejected() {
        let mut b = SchemaBuilder::new();
        assert!(!b.observe(&encode(&Value::Int64(7))));
        assert_eq!(b.rows(), 0);
    }

    #[test]
    fn max_columns_keeps_highest_presence_in_arrival_order() {
        let mut b = SchemaBuilder::new();
        for i in 0..4i64 {
            let mut fields = vec![("a", Value::Int64(i)), ("b", Value::Int64(i))];
            if i == 0 {
                fields.push(("c", Value::Int64(i)));
            }
            b.observe(&encode(&rec(&fields)));
        }
        let schema = b.finish(0.0, 2);
        let names: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn shred_splice_roundtrips_bytes() {
        let values = [
            rec(&[
                ("id", Value::Int64(1)),
                ("name", Value::string("alice")),
                ("tags", Value::ordered_list(vec![Value::string("x"), Value::Int64(3)])),
                ("addr", rec(&[("city", Value::string("irvine")), ("zip", Value::Int64(92617))])),
            ]),
            rec(&[("id", Value::Int64(2)), ("extra", Value::Boolean(false))]),
            rec(&[("id", Value::Null), ("name", Value::string("bob"))]),
        ];
        let mut b = SchemaBuilder::new();
        let encoded: Vec<Vec<u8>> = values.iter().map(encode).collect();
        for e in &encoded {
            assert!(b.observe(e));
        }
        let schema = b.finish(0.5, 16);
        assert!(schema.column_index("id").is_some());
        for e in &encoded {
            let s = shred(&schema, e).expect("shreddable");
            let spliced = splice_full(&schema, &s.cols, s.rest.as_deref()).unwrap();
            assert_eq!(&spliced, e, "splice must reproduce original bytes");
        }
    }

    #[test]
    fn tag_mismatch_and_duplicate_names_spill() {
        let mut b = SchemaBuilder::new();
        let good = encode(&rec(&[("id", Value::Int64(1))]));
        b.observe(&good);
        let schema = b.finish(0.0, 4);
        let bad_tag = encode(&rec(&[("id", Value::string("oops"))]));
        assert!(shred(&schema, &bad_tag).is_none());
        // A duplicate field name makes splice order ambiguous.
        let dup = encode_record_from_parts(&[
            ("id", &encode(&Value::Int64(1))),
            ("id", &encode(&Value::Int64(2))),
        ]);
        assert!(shred(&schema, &dup).is_none());
        assert!(shred(&schema, &encode(&Value::Int64(9))).is_none());
    }

    #[test]
    fn field_paths_include_nested_records() {
        let mut b = SchemaBuilder::new();
        b.observe(&encode(&rec(&[("addr", rec(&[("geo", rec(&[("lat", Value::Double(1.0))]))]))])));
        let paths: Vec<String> = b.field_paths().into_iter().map(|p| p.path).collect();
        assert!(paths.contains(&"addr".to_string()));
        assert!(paths.contains(&"addr.geo".to_string()));
        assert!(paths.contains(&"addr.geo.lat".to_string()));
    }
}
