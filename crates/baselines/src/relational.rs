//! A System-X-shaped parallel relational engine.
//!
//! Architecture mirrored from Table 3's description of System-X's behavior:
//! a **normalized** schema — nested record fields live in side tables, so
//! reassembling a full record takes "small joins" (the paper's record-
//! lookup and range-scan rows call this out); B-tree indexes; and a small
//! **cost-based optimizer** that picks an index-nested-loop join when an
//! index exists and the outer side is small, else a hash join — the paper
//! notes "the cost-based optimizer of System-X picked an index nested-loop
//! join" for the indexed join rows.

use std::collections::{BTreeMap, HashMap};

use asterix_adm::Value;

/// A flat row.
pub type Row = Vec<Value>;

/// One relational table: named columns, rows, optional B-tree indexes.
pub struct RelTable {
    pub name: String,
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    /// column → sorted index (key → row ids).
    indexes: HashMap<String, BTreeMap<Vec<u8>, Vec<usize>>>,
}

fn key_bytes(v: &Value) -> Vec<u8> {
    asterix_storage::keycodec::encode_single(v).unwrap_or_default()
}

impl RelTable {
    pub fn new(name: &str, columns: &[&str]) -> RelTable {
        RelTable {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    pub fn insert(&mut self, row: Row) {
        let id = self.rows.len();
        for (col, ix) in self.indexes.iter_mut() {
            if let Some(ci) = self.columns.iter().position(|c| c == col) {
                if let Some(v) = row.get(ci) {
                    if !v.is_unknown() {
                        ix.entry(key_bytes(v)).or_default().push(id);
                    }
                }
            }
        }
        self.rows.push(row);
    }

    /// `CREATE INDEX` on one column.
    pub fn create_index(&mut self, column: &str) {
        let Some(ci) = self.col(column) else { return };
        let mut ix: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
        for (id, row) in self.rows.iter().enumerate() {
            if let Some(v) = row.get(ci) {
                if !v.is_unknown() {
                    ix.entry(key_bytes(v)).or_default().push(id);
                }
            }
        }
        self.indexes.insert(column.to_string(), ix);
    }

    pub fn has_index(&self, column: &str) -> bool {
        self.indexes.contains_key(column)
    }

    /// Storage footprint: rows without field names (schema-first), plus
    /// index entries — Table 2's System-X row.
    pub fn size_bytes(&self) -> u64 {
        let data: usize =
            self.rows.iter().map(|r| r.iter().map(|v| v.approx_size()).sum::<usize>() + 8).sum();
        let ix: usize = self
            .indexes
            .values()
            .flat_map(|ix| ix.iter().map(|(k, v)| k.len() + 8 * v.len()))
            .sum();
        (data + ix) as u64
    }

    /// Index range lookup; `None` if no index on the column.
    pub fn index_range(&self, column: &str, lo: &Value, hi: &Value) -> Option<Vec<usize>> {
        let ix = self.indexes.get(column)?;
        let mut hi_k = key_bytes(hi);
        hi_k.push(0xFF);
        Some(ix.range(key_bytes(lo)..hi_k).flat_map(|(_, ids)| ids.iter().copied()).collect())
    }

    /// Full table scan with a column predicate.
    pub fn scan_where(&self, column: &str, pred: impl Fn(&Value) -> bool) -> Vec<usize> {
        let Some(ci) = self.col(column) else { return Vec::new() };
        self.rows.iter().enumerate().filter_map(|(i, r)| pred(&r[ci]).then_some(i)).collect()
    }

    /// Range selection choosing the access path like the paper's rule:
    /// index when available, else scan.
    pub fn select_range(&self, column: &str, lo: &Value, hi: &Value) -> Vec<usize> {
        match self.index_range(column, lo, hi) {
            Some(ids) => ids,
            None => self.scan_where(column, |v| {
                !v.is_unknown() && v.total_cmp(lo).is_ge() && v.total_cmp(hi).is_le()
            }),
        }
    }
}

/// Join strategy chosen by the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPlan {
    HashJoin,
    IndexNestedLoop,
}

/// The tiny cost-based optimizer: index-NL when the inner side has an index
/// on the join column and the outer is much smaller than the inner —
/// otherwise hash join. (Selectivity-driven, exactly the distinction the
/// Table 3 join rows show.)
pub fn choose_join(outer_rows: usize, inner: &RelTable, inner_col: &str) -> JoinPlan {
    if inner.has_index(inner_col) && outer_rows * 20 < inner.rows.len().max(1) {
        JoinPlan::IndexNestedLoop
    } else {
        JoinPlan::HashJoin
    }
}

/// Execute a join of `outer_ids` rows of `outer` with `inner`, returning
/// row-id pairs.
pub fn join(
    outer: &RelTable,
    outer_ids: &[usize],
    outer_col: &str,
    inner: &RelTable,
    inner_col: &str,
) -> Vec<(usize, usize)> {
    let plan = choose_join(outer_ids.len(), inner, inner_col);
    let oc = outer.col(outer_col).expect("outer col");
    match plan {
        JoinPlan::IndexNestedLoop => {
            let mut out = Vec::new();
            for &oid in outer_ids {
                let k = &outer.rows[oid][oc];
                if k.is_unknown() {
                    continue;
                }
                if let Some(ids) = inner.index_range(inner_col, k, k) {
                    for iid in ids {
                        out.push((oid, iid));
                    }
                }
            }
            out
        }
        JoinPlan::HashJoin => {
            let ic = inner.col(inner_col).expect("inner col");
            let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
            for (iid, row) in inner.rows.iter().enumerate() {
                let v = &row[ic];
                if !v.is_unknown() {
                    table.entry(v.stable_hash()).or_default().push(iid);
                }
            }
            let mut out = Vec::new();
            for &oid in outer_ids {
                let v = &outer.rows[oid][oc];
                if v.is_unknown() {
                    continue;
                }
                if let Some(iids) = table.get(&v.stable_hash()) {
                    for &iid in iids {
                        if inner.rows[iid][ic].total_cmp(v).is_eq() {
                            out.push((oid, iid));
                        }
                    }
                }
            }
            out
        }
    }
}

/// Normalize nested records into flat tables: the main table holds scalar
/// top-level fields; one side table per list-valued or record-valued field
/// (`<name>_<field>`), keyed by the parent pk — the System-X/Hive schema of
/// §5.3.1 ("we normalized the schema for System-X and Hive for the nested
/// portions of the records").
pub struct NormalizedDataset {
    pub main: RelTable,
    pub side: Vec<RelTable>,
}

pub fn normalize(
    name: &str,
    records: &[Value],
    pk: &str,
    scalar_fields: &[&str],
    nested: &[(&str, &[&str])],
) -> NormalizedDataset {
    let mut main = RelTable::new(name, scalar_fields);
    let mut side: Vec<RelTable> = nested
        .iter()
        .map(|(nf, cols)| {
            let mut all = vec!["_parent"];
            all.extend_from_slice(cols);
            RelTable::new(&format!("{name}_{nf}"), &all)
        })
        .collect();
    for r in records {
        let row: Row = scalar_fields
            .iter()
            .map(|f| {
                // Dotted paths pull nested scalars (e.g. address.zip) into the
                // main table, as a normalized schema would.
                let mut cur = r.clone();
                for part in f.split('.') {
                    cur = cur.field(part);
                }
                cur
            })
            .collect();
        main.insert(row);
        let pk_v = r.field(pk);
        for ((nf, cols), tbl) in nested.iter().zip(side.iter_mut()) {
            let v = r.field(nf);
            if let Some(items) = v.as_list() {
                for item in items {
                    let mut row: Row = vec![pk_v.clone()];
                    match item.as_record() {
                        Some(_) => {
                            for c in *cols {
                                row.push(item.field(c));
                            }
                        }
                        None => row.push(item.clone()),
                    }
                    tbl.insert(row);
                }
            }
        }
    }
    NormalizedDataset { main, side }
}

impl NormalizedDataset {
    /// Total storage (Table 2).
    pub fn size_bytes(&self) -> u64 {
        self.main.size_bytes() + self.side.iter().map(|t| t.size_bytes()).sum::<u64>()
    }

    /// Reassemble full records for the given main-table row ids — the
    /// "small joins were needed to get the nested fields" cost of Table 3's
    /// record-lookup/range-scan rows.
    pub fn reassemble(&self, ids: &[usize], pk_col: &str) -> Vec<Value> {
        let pk_ci = self.main.col(pk_col).expect("pk col");
        let mut out = Vec::with_capacity(ids.len());
        for &id in ids {
            let row = &self.main.rows[id];
            let mut rec = asterix_adm::Record::new();
            for (c, v) in self.main.columns.iter().zip(row) {
                rec.push_unchecked(c, v.clone());
            }
            let pk_v = &row[pk_ci];
            // Join each side table on _parent = pk.
            for side in &self.side {
                let matches = match side.index_range("_parent", pk_v, pk_v) {
                    Some(ids) => ids,
                    None => side.scan_where("_parent", |v| v.total_cmp(pk_v).is_eq()),
                };
                let items: Vec<Value> = matches
                    .iter()
                    .map(|&sid| {
                        let srow = &side.rows[sid];
                        let mut srec = asterix_adm::Record::new();
                        for (c, v) in side.columns.iter().zip(srow).skip(1) {
                            srec.push_unchecked(c, v.clone());
                        }
                        Value::record(srec)
                    })
                    .collect();
                rec.push_unchecked(
                    side.name.split('_').next_back().unwrap_or(&side.name),
                    Value::ordered_list(items),
                );
            }
            out.push(Value::record(rec));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::parse::parse_value;

    fn users(n: i64) -> Vec<Value> {
        (0..n)
            .map(|i| {
                parse_value(&format!(
                    r#"{{ "id": {i}, "name": "u{i}",
                         "address": {{ "zip": "z{}" }},
                         "friend-ids": {{{{ {}, {} }}}} }}"#,
                    i % 10,
                    (i + 1) % n.max(1),
                    (i + 2) % n.max(1)
                ))
                .unwrap()
            })
            .collect()
    }

    fn normalized(n: i64) -> NormalizedDataset {
        normalize(
            "users",
            &users(n),
            "id",
            &["id", "name", "address.zip"],
            &[("friend-ids", &[] as &[&str])],
        )
    }

    #[test]
    fn normalization_splits_nested() {
        let nd = normalized(10);
        assert_eq!(nd.main.rows.len(), 10);
        assert_eq!(nd.side.len(), 1);
        assert_eq!(nd.side[0].rows.len(), 20); // 2 friends each
                                               // Dotted scalar landed in the main table.
        let ci = nd.main.col("address.zip").unwrap();
        assert_eq!(nd.main.rows[3][ci], Value::string("z3"));
    }

    #[test]
    fn reassembly_joins_side_tables() {
        let mut nd = normalized(10);
        nd.side[0].create_index("_parent");
        let recs = nd.reassemble(&[2], "id");
        assert_eq!(recs.len(), 1);
        let friends = recs[0].field("friend-ids"); // from side table "users_friend-ids"
        assert_eq!(friends.as_list().map(|l| l.len()), Some(2));
    }

    #[test]
    fn index_vs_scan_selection() {
        let mut t = RelTable::new("t", &["id", "x"]);
        for i in 0..100i64 {
            t.insert(vec![Value::Int64(i), Value::Int64(i % 7)]);
        }
        let scan = t.select_range("x", &Value::Int64(2), &Value::Int64(3));
        t.create_index("x");
        let indexed = t.select_range("x", &Value::Int64(2), &Value::Int64(3));
        assert_eq!(scan.len(), indexed.len());
        assert!(t.has_index("x"));
    }

    #[test]
    fn optimizer_picks_index_nl_for_selective_outer() {
        let mut inner = RelTable::new("msgs", &["mid", "author"]);
        for m in 0..10_000i64 {
            inner.insert(vec![Value::Int64(m), Value::Int64(m % 500)]);
        }
        inner.create_index("author");
        assert_eq!(choose_join(10, &inner, "author"), JoinPlan::IndexNestedLoop);
        assert_eq!(choose_join(5000, &inner, "author"), JoinPlan::HashJoin);
        // Without the index it is always a hash join.
        let mut no_ix = RelTable::new("m2", &["mid", "author"]);
        no_ix.insert(vec![Value::Int64(0), Value::Int64(0)]);
        assert_eq!(choose_join(1, &no_ix, "author"), JoinPlan::HashJoin);
    }

    #[test]
    fn join_strategies_agree() {
        let mut outer = RelTable::new("users", &["id"]);
        for i in 0..50i64 {
            outer.insert(vec![Value::Int64(i)]);
        }
        let mut inner = RelTable::new("msgs", &["mid", "author"]);
        for m in 0..500i64 {
            inner.insert(vec![Value::Int64(m), Value::Int64(m % 50)]);
        }
        let outer_ids: Vec<usize> = (0..5).collect();
        // Hash join result.
        let hash = join(&outer, &outer_ids, "id", &inner, "author");
        inner.create_index("author");
        // Index NL result (outer small enough).
        let inl = join(&outer, &outer_ids, "id", &inner, "author");
        assert_eq!(hash.len(), inl.len());
        assert_eq!(hash.len(), 50); // 5 users × 10 msgs each
    }
}
