//! A Hive-0.11/ORC-shaped scan engine.
//!
//! Architecture mirrored: columnar storage with lightweight compression
//! (dictionary encoding for strings, runs for repeated values), **no
//! indexes** and no point-lookup path — every Table 3 query runs as a full
//! scan ("Hive has no direct support for indexes, so it needs to scan all
//! records"), but the scan is fast and the storage small (Table 2's 38 GB
//! vs hundreds for the row stores).

use std::collections::HashMap;

use asterix_adm::Value;

/// One compressed column.
pub enum Column {
    /// Run-length-encoded i64 (also holds dates/datetimes as i64).
    IntRle { runs: Vec<(i64, u32)>, nulls: Vec<bool> },
    /// Dictionary-encoded strings.
    StrDict { dict: Vec<String>, codes: Vec<u32>, nulls: Vec<bool> },
    /// Plain doubles.
    F64(Vec<f64>, Vec<bool>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::IntRle { runs, .. } => runs.iter().map(|(_, n)| *n as usize).sum(),
            Column::StrDict { codes, .. } => codes.len(),
            Column::F64(v, _) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate compressed size in bytes.
    pub fn size_bytes(&self) -> u64 {
        (match self {
            Column::IntRle { runs, nulls } => runs.len() * 12 + nulls.len() / 8,
            Column::StrDict { dict, codes, nulls } => {
                dict.iter().map(|s| s.len() + 4).sum::<usize>() + codes.len() * 4 + nulls.len() / 8
            }
            Column::F64(v, nulls) => v.len() * 8 + nulls.len() / 8,
        }) as u64
    }

    /// Decode into values (the scan path).
    pub fn values(&self) -> Vec<Value> {
        match self {
            Column::IntRle { runs, nulls } => {
                let mut out = Vec::with_capacity(nulls.len());
                for (v, n) in runs {
                    for _ in 0..*n {
                        out.push(Value::Int64(*v));
                    }
                }
                for (i, is_null) in nulls.iter().enumerate() {
                    if *is_null {
                        out[i] = Value::Null;
                    }
                }
                out
            }
            Column::StrDict { dict, codes, nulls } => codes
                .iter()
                .zip(nulls)
                .map(
                    |(c, is_null)| {
                        if *is_null {
                            Value::Null
                        } else {
                            Value::string(&dict[*c as usize])
                        }
                    },
                )
                .collect(),
            Column::F64(v, nulls) => v
                .iter()
                .zip(nulls)
                .map(|(x, is_null)| if *is_null { Value::Null } else { Value::Double(*x) })
                .collect(),
        }
    }
}

/// Build a compressed column from values.
pub fn compress(values: &[Value]) -> Column {
    let nulls: Vec<bool> = values.iter().map(|v| v.is_unknown()).collect();
    if values.iter().all(|v| {
        v.as_i64().is_some() || v.is_unknown() || matches!(v, Value::Date(_) | Value::DateTime(_))
    }) {
        let mut runs: Vec<(i64, u32)> = Vec::new();
        for v in values {
            let x = match v {
                Value::Date(d) => *d as i64,
                Value::DateTime(t) => *t,
                _ => v.as_i64().unwrap_or(0),
            };
            match runs.last_mut() {
                Some((rv, n)) if *rv == x => *n += 1,
                _ => runs.push((x, 1)),
            }
        }
        return Column::IntRle { runs, nulls };
    }
    if values.iter().all(|v| v.as_str().is_some() || v.is_unknown()) {
        let mut dict: Vec<String> = Vec::new();
        let mut map: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let s = v.as_str().unwrap_or("");
            let code = match map.get(s) {
                Some(c) => *c,
                None => {
                    let c = dict.len() as u32;
                    dict.push(s.to_string());
                    map.insert(s.to_string(), c);
                    c
                }
            };
            codes.push(code);
        }
        return Column::StrDict { dict, codes, nulls };
    }
    Column::F64(values.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect(), nulls)
}

/// A columnar table (an "ORC file").
pub struct Table {
    pub columns: Vec<(String, Column)>,
    pub rows: usize,
}

impl Table {
    /// Build from records, extracting the given top-level fields.
    pub fn from_records(records: &[Value], fields: &[&str]) -> Table {
        let mut columns = Vec::with_capacity(fields.len());
        for f in fields {
            let vals: Vec<Value> = records.iter().map(|r| r.field(f)).collect();
            columns.push((f.to_string(), compress(&vals)));
        }
        Table { columns, rows: records.len() }
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Compressed footprint (Table 2's Hive row).
    pub fn size_bytes(&self) -> u64 {
        self.columns.iter().map(|(_, c)| c.size_bytes()).sum()
    }

    /// Full-scan filter: decode the needed columns, return matching row
    /// ids. Every query here starts this way — no indexes.
    pub fn scan_where(&self, field: &str, pred: impl Fn(&Value) -> bool) -> Vec<usize> {
        let Some(col) = self.column(field) else { return Vec::new() };
        col.values().iter().enumerate().filter_map(|(i, v)| pred(v).then_some(i)).collect()
    }

    /// Project one column at the given row ids.
    pub fn gather(&self, field: &str, rows: &[usize]) -> Vec<Value> {
        let Some(col) = self.column(field) else { return Vec::new() };
        let all = col.values();
        rows.iter().map(|&i| all[i].clone()).collect()
    }

    /// Average of a numeric column over matching rows (the agg scan).
    pub fn avg_where(
        &self,
        filter_field: &str,
        pred: impl Fn(&Value) -> bool,
        agg_field: &str,
    ) -> Option<f64> {
        let rows = self.scan_where(filter_field, pred);
        let vals = self.gather(agg_field, &rows);
        let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
        (!nums.is_empty()).then(|| nums.iter().sum::<f64>() / nums.len() as f64)
    }

    /// Hash join with another table on equal columns; returns matching row
    /// id pairs. Both sides are full scans, as Hive does.
    pub fn hash_join(
        &self,
        my_field: &str,
        other: &Table,
        other_field: &str,
    ) -> Vec<(usize, usize)> {
        let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
        let mine = self.column(my_field).map(|c| c.values()).unwrap_or_default();
        for (i, v) in mine.iter().enumerate() {
            if !v.is_unknown() {
                table.entry(v.stable_hash()).or_default().push(i);
            }
        }
        let theirs = other.column(other_field).map(|c| c.values()).unwrap_or_default();
        let mut out = Vec::new();
        for (j, v) in theirs.iter().enumerate() {
            if v.is_unknown() {
                continue;
            }
            if let Some(is) = table.get(&v.stable_hash()) {
                for &i in is {
                    if mine[i].total_cmp(v).is_eq() {
                        out.push((i, j));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::parse::parse_value;

    fn records(n: i64) -> Vec<Value> {
        (0..n)
            .map(|i| {
                parse_value(&format!(
                    "{{ \"id\": {i}, \"grp\": {}, \"city\": \"c{}\", \"score\": {}.5 }}",
                    i % 5,
                    i % 3,
                    i
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn compression_roundtrip() {
        let recs = records(100);
        let t = Table::from_records(&recs, &["id", "grp", "city", "score"]);
        assert_eq!(t.rows, 100);
        let ids = t.column("id").unwrap().values();
        assert_eq!(ids.len(), 100);
        assert_eq!(ids[42], Value::Int64(42));
        let cities = t.column("city").unwrap().values();
        assert_eq!(cities[4], Value::string("c1"));
        let scores = t.column("score").unwrap().values();
        assert_eq!(scores[2], Value::Double(2.5));
    }

    #[test]
    fn rle_and_dict_compress_well() {
        // grp cycles over 5 values; city over 3 → strong compression.
        let recs = records(10_000);
        let grp_col = compress(&recs.iter().map(|r| r.field("grp")).collect::<Vec<_>>());
        // RLE on a cycling column is poor, but a sorted column compresses:
        let mut sorted: Vec<Value> = recs.iter().map(|r| r.field("grp")).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let sorted_col = compress(&sorted);
        assert!(sorted_col.size_bytes() < grp_col.size_bytes() / 10);
        let city_col = compress(&recs.iter().map(|r| r.field("city")).collect::<Vec<_>>());
        // Dictionary: 3 entries + 4 bytes/row.
        assert!(city_col.size_bytes() < 10_000 * 8);
    }

    #[test]
    fn scan_queries() {
        let recs = records(1000);
        let t = Table::from_records(&recs, &["id", "grp", "score"]);
        let rows = t.scan_where("grp", |v| v.as_i64() == Some(2));
        assert_eq!(rows.len(), 200);
        let avg = t.avg_where("grp", |v| v.as_i64() == Some(2), "score").unwrap();
        assert!((avg - 499.0).abs() < 5.0, "{avg}");
    }

    #[test]
    fn join_via_full_scans() {
        let users = records(50);
        let msgs: Vec<Value> = (0..200)
            .map(|m| parse_value(&format!("{{ \"mid\": {m}, \"author\": {} }}", m % 50)).unwrap())
            .collect();
        let ut = Table::from_records(&users, &["id"]);
        let mt = Table::from_records(&msgs, &["mid", "author"]);
        let pairs = ut.hash_join("id", &mt, "author");
        assert_eq!(pairs.len(), 200);
    }

    #[test]
    fn nulls_survive_compression() {
        let vals = vec![Value::Int64(1), Value::Null, Value::Int64(1)];
        let col = compress(&vals);
        let back = col.values();
        assert_eq!(back[1], Value::Null);
        assert_eq!(back[2], Value::Int64(1));
    }
}
