//! # asterix-baselines — simulated comparison systems (§5.3)
//!
//! Table 3 compares AsterixDB against MongoDB 2.4.9, Apache Hive 0.11 (ORC
//! files), and "System-X", a commercial shared-nothing parallel RDBMS. None
//! are available here, so this crate implements faithful *architectural*
//! stand-ins that preserve each system's Table 3 behaviour profile (see
//! DESIGN.md's substitution table):
//!
//! * [`docstore`] — a document store: schemaless serialized documents, a
//!   primary key index, optional secondary indexes, no joins (client-side
//!   join helper), single-writer journal. MongoDB-shaped.
//! * [`scanengine`] — a scan-only columnar engine with RLE/dictionary
//!   compressed columns and no indexes; every query is a full (fast) scan.
//!   Hive/ORC-shaped.
//! * [`relational`] — a partitioned relational engine over a *normalized*
//!   schema (nested fields in side tables), B-tree indexes, and a tiny
//!   cost-based optimizer that picks index-nested-loop vs hash joins.
//!   System-X-shaped.

pub mod docstore;
pub mod relational;
pub mod scanengine;
