//! A MongoDB-2.4-shaped document store.
//!
//! Architecture mirrored: schemaless documents stored serialized with their
//! field names (so storage size tracks AsterixDB's KeyOnly configuration in
//! Table 2); a primary-key index; optional secondary B-tree indexes; no
//! join support — Table 3's join rows used "a client-side join in Java",
//! reproduced here by [`Collection::client_side_join`]; journaled writes
//! (the paper set write concern to journaled for Table 4).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;

use asterix_adm::{serde as adm_serde, Value};

/// One document collection.
pub struct Collection {
    pk_field: String,
    /// Primary index: encoded pk → serialized document.
    primary: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Secondary indexes: field → (encoded key ++ pk → pk bytes).
    secondary: BTreeMap<String, BTreeMap<Vec<u8>, Vec<u8>>>,
    /// Journal (None = in-memory only).
    journal: Option<std::io::BufWriter<std::fs::File>>,
    journal_path: Option<PathBuf>,
}

fn key_bytes(v: &Value) -> Vec<u8> {
    // Order-preserving-enough key encoding for the baseline: numeric keys
    // as big-endian sortable ints/floats, strings raw.
    let mut out = Vec::new();
    match v {
        _ if v.as_i64().is_some() => {
            out.push(1);
            out.extend_from_slice(&((v.as_i64().unwrap() as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Double(_) | Value::Float(_) => {
            out.push(1);
            let f = v.as_f64().unwrap();
            let bits = f.to_bits();
            let s = if bits >> 63 == 1 { !bits } else { bits | (1 << 63) };
            out.extend_from_slice(&s.to_be_bytes());
        }
        Value::String(s) => {
            out.push(2);
            out.extend_from_slice(s.as_bytes());
        }
        Value::DateTime(t) => {
            out.push(3);
            out.extend_from_slice(&((*t as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Date(d) => {
            out.push(4);
            out.extend_from_slice(&((*d as i64 as u64) ^ (1 << 63)).to_be_bytes());
        }
        other => {
            out.push(9);
            out.extend_from_slice(&adm_serde::encode(other));
        }
    }
    out
}

impl Collection {
    /// An in-memory collection.
    pub fn new(pk_field: &str) -> Collection {
        Collection {
            pk_field: pk_field.to_string(),
            primary: BTreeMap::new(),
            secondary: BTreeMap::new(),
            journal: None,
            journal_path: None,
        }
    }

    /// A collection with a write journal (Table 4's "journaled" durability).
    pub fn with_journal(pk_field: &str, path: PathBuf) -> std::io::Result<Collection> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Collection {
            pk_field: pk_field.to_string(),
            primary: BTreeMap::new(),
            secondary: BTreeMap::new(),
            journal: Some(std::io::BufWriter::new(file)),
            journal_path: Some(path),
        })
    }

    /// `ensureIndex({field: 1})`.
    pub fn ensure_index(&mut self, field: &str) {
        let mut ix = BTreeMap::new();
        for doc_bytes in self.primary.values() {
            let doc = adm_serde::decode(doc_bytes).expect("corrupt doc");
            let fv = doc.field(field);
            if !fv.is_unknown() {
                let pk = key_bytes(&doc.field(&self.pk_field));
                let mut k = key_bytes(&fv);
                k.extend_from_slice(&pk);
                ix.insert(k, pk);
            }
        }
        self.secondary.insert(field.to_string(), ix);
    }

    /// Insert one document (journaled if configured).
    pub fn insert(&mut self, doc: &Value) -> std::io::Result<()> {
        let pk = key_bytes(&doc.field(&self.pk_field));
        let bytes = adm_serde::encode(doc);
        if let Some(j) = &mut self.journal {
            j.write_all(&(bytes.len() as u32).to_le_bytes())?;
            j.write_all(&bytes)?;
            j.flush()?; // journaled write concern
        }
        for (field, ix) in self.secondary.iter_mut() {
            let fv = doc.field(field);
            if !fv.is_unknown() {
                let mut k = key_bytes(&fv);
                k.extend_from_slice(&pk);
                ix.insert(k, pk.clone());
            }
        }
        self.primary.insert(pk, bytes);
        Ok(())
    }

    /// Bulk insert (one journal flush per batch — batched write concern).
    pub fn insert_batch(&mut self, docs: &[Value]) -> std::io::Result<()> {
        for doc in docs {
            let pk = key_bytes(&doc.field(&self.pk_field));
            let bytes = adm_serde::encode(doc);
            if let Some(j) = &mut self.journal {
                j.write_all(&(bytes.len() as u32).to_le_bytes())?;
                j.write_all(&bytes)?;
            }
            for (field, ix) in self.secondary.iter_mut() {
                let fv = doc.field(field);
                if !fv.is_unknown() {
                    let mut k = key_bytes(&fv);
                    k.extend_from_slice(&pk);
                    ix.insert(k, pk.clone());
                }
            }
            self.primary.insert(pk, bytes);
        }
        if let Some(j) = &mut self.journal {
            j.flush()?;
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.primary.len()
    }

    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }

    /// Storage footprint: serialized docs + index entries (Table 2).
    pub fn size_bytes(&self) -> u64 {
        let docs: usize = self.primary.iter().map(|(k, v)| k.len() + v.len()).sum();
        let ix: usize =
            self.secondary.values().flat_map(|ix| ix.iter().map(|(k, v)| k.len() + v.len())).sum();
        (docs + ix) as u64
    }

    /// Point lookup by primary key.
    pub fn find_by_pk(&self, pk: &Value) -> Option<Value> {
        self.primary.get(&key_bytes(pk)).map(|b| adm_serde::decode(b).expect("corrupt doc"))
    }

    /// Range query on a field: uses a secondary index when one exists,
    /// otherwise falls back to a full collection scan (decoding every doc —
    /// the no-index rows of Table 3).
    pub fn find_range(&self, field: &str, lo: &Value, hi: &Value) -> Vec<Value> {
        if field == self.pk_field {
            return self
                .primary
                .range(key_bytes(lo)..=upper(&key_bytes(hi)))
                .map(|(_, b)| adm_serde::decode(b).expect("corrupt doc"))
                .collect();
        }
        if let Some(ix) = self.secondary.get(field) {
            let lo_k = key_bytes(lo);
            let mut hi_k = key_bytes(hi);
            hi_k.extend_from_slice(&[0xFF; 9]); // include pk suffixes
            return ix
                .range(lo_k..=hi_k)
                .filter_map(|(_, pk)| self.primary.get(pk))
                .map(|b| adm_serde::decode(b).expect("corrupt doc"))
                .collect();
        }
        self.scan_filter(|d| {
            let v = d.field(field);
            !v.is_unknown() && v.total_cmp(lo).is_ge() && v.total_cmp(hi).is_le()
        })
    }

    /// Full scan with a filter (decodes every document).
    pub fn scan_filter(&self, pred: impl Fn(&Value) -> bool) -> Vec<Value> {
        self.primary
            .values()
            .map(|b| adm_serde::decode(b).expect("corrupt doc"))
            .filter(pred)
            .collect()
    }

    /// Aggregate a numeric field over a filtered scan (Mongo's map-reduce
    /// path for Table 3's Agg rows — no direct aggregation framework
    /// support for the paper's query).
    pub fn map_reduce_avg(
        &self,
        pred: impl Fn(&Value) -> bool,
        map: impl Fn(&Value) -> f64,
    ) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for b in self.primary.values() {
            let d = adm_serde::decode(b).expect("corrupt doc");
            if pred(&d) {
                sum += map(&d);
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// The paper's client-side join: find matching docs here by `local_key`
    /// values gathered from `probes`, via bulk pk lookups when joining on
    /// the pk, else via per-value index/scan lookups. Returns (probe,
    /// match) pairs.
    pub fn client_side_join<'a>(
        &self,
        probes: &'a [Value],
        probe_key: &str,
        local_key: &str,
    ) -> Vec<(&'a Value, Value)> {
        let mut out = Vec::new();
        for p in probes {
            let k = p.field(probe_key);
            if k.is_unknown() {
                continue;
            }
            if local_key == self.pk_field {
                if let Some(m) = self.find_by_pk(&k) {
                    out.push((p, m));
                }
            } else {
                for m in self.find_range(local_key, &k, &k) {
                    out.push((p, m.clone()));
                }
            }
        }
        out
    }

    /// Drop the journal file (cleanup).
    pub fn destroy(self) {
        if let Some(p) = self.journal_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn upper(k: &[u8]) -> Vec<u8> {
    let mut v = k.to_vec();
    v.extend_from_slice(&[0xFF; 4]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::parse::parse_value;

    fn doc(id: i64, age: i64) -> Value {
        parse_value(&format!("{{ \"id\": {id}, \"age\": {age}, \"name\": \"u{id}\" }}")).unwrap()
    }

    #[test]
    fn pk_lookup_and_range() {
        let mut c = Collection::new("id");
        for i in 0..100 {
            c.insert(&doc(i, 20 + i % 50)).unwrap();
        }
        assert_eq!(c.len(), 100);
        let d = c.find_by_pk(&Value::Int64(42)).unwrap();
        assert_eq!(d.field("name"), Value::string("u42"));
        let r = c.find_range("id", &Value::Int64(10), &Value::Int64(14));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn secondary_index_matches_scan() {
        let mut c = Collection::new("id");
        for i in 0..200 {
            c.insert(&doc(i, i % 37)).unwrap();
        }
        let scan = c.find_range("age", &Value::Int64(5), &Value::Int64(7));
        c.ensure_index("age");
        let indexed = c.find_range("age", &Value::Int64(5), &Value::Int64(7));
        assert_eq!(scan.len(), indexed.len());
        assert!(!indexed.is_empty());
    }

    #[test]
    fn client_side_join_shapes() {
        let mut users = Collection::new("id");
        for i in 0..10 {
            users.insert(&doc(i, 30)).unwrap();
        }
        let msgs: Vec<Value> = (0..30)
            .map(|m| parse_value(&format!("{{ \"mid\": {m}, \"author\": {} }}", m % 10)).unwrap())
            .collect();
        let joined = users.client_side_join(&msgs, "author", "id");
        assert_eq!(joined.len(), 30);
    }

    #[test]
    fn journal_persists_and_batches() {
        let dir = tempfile::TempDir::new().unwrap();
        let mut c = Collection::with_journal("id", dir.path().join("j.log")).unwrap();
        c.insert(&doc(1, 2)).unwrap();
        c.insert_batch(&(2..22).map(|i| doc(i, 3)).collect::<Vec<_>>()).unwrap();
        assert_eq!(c.len(), 21);
        assert!(c.size_bytes() > 0);
    }

    #[test]
    fn map_reduce_avg() {
        let mut c = Collection::new("id");
        for i in 0..10 {
            c.insert(&doc(i, i)).unwrap();
        }
        let avg = c
            .map_reduce_avg(
                |d| d.field("age").as_i64().unwrap() < 4,
                |d| d.field("age").as_f64().unwrap(),
            )
            .unwrap();
        assert_eq!(avg, 1.5);
    }
}
