//! # asterix-external — external dataset adaptors (§2.3)
//!
//! "AsterixDB also supports direct access to externally resident data [...]
//! external data adaptors to access local files that reside on the Node
//! Controller nodes of an AsterixDB cluster and to access data residing in
//! HDFS."
//!
//! Adaptors here:
//! * `localfs` with `format=delimited-text` — CSV-style files (Figure 3's
//!   pipe-delimited web log), parsed at query time driven by the Dataset's
//!   Datatype;
//! * `localfs` with `format=adm` — ADM instance files;
//! * `dfs` — a directory-of-block-files stand-in for HDFS (the paper's
//!   substitution target): a dataset is a directory whose `part-*` files
//!   are read as blocks, exercising the same type-driven parse-at-query
//!   path without a Hadoop cluster.

use std::fmt;
use std::path::Path;

use asterix_adm::types::{Datatype, PrimitiveType, RecordType};
use asterix_adm::{AdmError, Record, TypeRegistry, Value};

/// External-data errors.
#[derive(Debug)]
pub enum ExternalError {
    Io(std::io::Error),
    Adm(AdmError),
    Config(String),
}

impl fmt::Display for ExternalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExternalError::Io(e) => write!(f, "io error: {e}"),
            ExternalError::Adm(e) => write!(f, "{e}"),
            ExternalError::Config(m) => write!(f, "adaptor config error: {m}"),
        }
    }
}

impl std::error::Error for ExternalError {}

impl From<std::io::Error> for ExternalError {
    fn from(e: std::io::Error) -> Self {
        ExternalError::Io(e)
    }
}

impl From<AdmError> for ExternalError {
    fn from(e: AdmError) -> Self {
        ExternalError::Adm(e)
    }
}

type XResult<T> = Result<T, ExternalError>;

fn prop<'a>(properties: &'a [(String, String)], key: &str) -> Option<&'a str> {
    properties.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// Strip the `{hostname}://` prefix the paper's `path` property uses
/// (`("path"="{hostname}://{path}")`).
fn local_path(path_prop: &str) -> &str {
    match path_prop.split_once("://") {
        Some((_host, p)) => p,
        None => path_prop,
    }
}

/// Parse one delimited-text field into the declared field type.
fn parse_field(raw: &str, ty: &Datatype, reg: &TypeRegistry) -> XResult<Value> {
    let resolved = reg.resolve(ty)?;
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match resolved {
        Datatype::Primitive(p) => match p {
            PrimitiveType::String | PrimitiveType::Any => Value::string(raw),
            PrimitiveType::Int8
            | PrimitiveType::Int16
            | PrimitiveType::Int32
            | PrimitiveType::Int64 => {
                let i: i64 = raw
                    .parse()
                    .map_err(|_| AdmError::Parse(format!("invalid integer field {raw:?}")))?;
                asterix_adm::value::coerce_int(&Value::Int64(i), p.name())?
            }
            PrimitiveType::Float => Value::Float(
                raw.parse().map_err(|_| AdmError::Parse(format!("invalid float field {raw:?}")))?,
            ),
            PrimitiveType::Double => Value::Double(
                raw.parse()
                    .map_err(|_| AdmError::Parse(format!("invalid double field {raw:?}")))?,
            ),
            PrimitiveType::Boolean => match raw {
                "true" | "TRUE" | "1" => Value::Boolean(true),
                "false" | "FALSE" | "0" => Value::Boolean(false),
                _ => return Err(AdmError::Parse(format!("invalid boolean {raw:?}")).into()),
            },
            PrimitiveType::Date => Value::Date(asterix_adm::temporal::parse_date(raw)?),
            PrimitiveType::Time => Value::Time(asterix_adm::temporal::parse_time(raw)?),
            PrimitiveType::DateTime => Value::DateTime(asterix_adm::temporal::parse_datetime(raw)?),
            PrimitiveType::Point => asterix_adm::parse::construct_from_str("point", raw)?,
            other => {
                return Err(ExternalError::Config(format!(
                    "delimited-text cannot parse a {} field",
                    other.name()
                )))
            }
        },
        other => {
            return Err(ExternalError::Config(format!(
                "delimited-text requires flat fields, found {other}"
            )))
        }
    })
}

/// Parse delimited-text content into records of `record_type`, fields in
/// declared order (how the paper's `AccessLogType` maps Figure 3's CSV).
pub fn parse_delimited(
    content: &str,
    delimiter: char,
    record_type: &RecordType,
    reg: &TypeRegistry,
) -> XResult<Vec<Value>> {
    let mut out = Vec::new();
    for (line_no, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(delimiter).collect();
        if fields.len() != record_type.fields.len() {
            return Err(ExternalError::Config(format!(
                "line {}: expected {} fields, found {}",
                line_no + 1,
                record_type.fields.len(),
                fields.len()
            )));
        }
        let mut rec = Record::with_capacity(fields.len());
        for (raw, fld) in fields.iter().zip(&record_type.fields) {
            let v = parse_field(raw, &fld.ty, reg)?;
            if v.is_null() && !fld.optional {
                return Err(ExternalError::Config(format!(
                    "line {}: required field '{}' is empty",
                    line_no + 1,
                    fld.name
                )));
            }
            rec.push_unchecked(&fld.name, v);
        }
        out.push(Value::record(rec));
    }
    Ok(out)
}

/// Read an external dataset per its adaptor and properties, returning its
/// records (§2.3: read-only and parsed at query time).
pub fn read_external(
    adaptor: &str,
    properties: &[(String, String)],
    record_type: &RecordType,
    reg: &TypeRegistry,
) -> XResult<Vec<Value>> {
    match adaptor {
        "localfs" => {
            let path_prop = prop(properties, "path")
                .ok_or_else(|| ExternalError::Config("localfs requires a path".into()))?;
            let path = local_path(path_prop);
            let content = std::fs::read_to_string(path)?;
            read_formatted(&content, properties, record_type, reg)
        }
        "dfs" => {
            // Simulated HDFS: a directory of part files read in name order.
            let path_prop = prop(properties, "path")
                .ok_or_else(|| ExternalError::Config("dfs requires a path".into()))?;
            let dir = Path::new(local_path(path_prop));
            let mut parts: Vec<_> = std::fs::read_dir(dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("part-"))
                })
                .collect();
            parts.sort();
            if parts.is_empty() {
                return Err(ExternalError::Config(format!(
                    "dfs directory {} has no part-* files",
                    dir.display()
                )));
            }
            let mut out = Vec::new();
            for p in parts {
                let content = std::fs::read_to_string(&p)?;
                out.extend(read_formatted(&content, properties, record_type, reg)?);
            }
            Ok(out)
        }
        other => Err(ExternalError::Config(format!("unknown adaptor {other:?}"))),
    }
}

fn read_formatted(
    content: &str,
    properties: &[(String, String)],
    record_type: &RecordType,
    reg: &TypeRegistry,
) -> XResult<Vec<Value>> {
    match prop(properties, "format").unwrap_or("adm") {
        "delimited-text" => {
            let delim_str = prop(properties, "delimiter").unwrap_or(",");
            let delimiter = delim_str
                .chars()
                .next()
                .ok_or_else(|| ExternalError::Config("empty delimiter".into()))?;
            parse_delimited(content, delimiter, record_type, reg)
        }
        "adm" => Ok(asterix_adm::parse::parse_many(content)?),
        other => Err(ExternalError::Config(format!("unknown format {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::RecordTypeBuilder;

    /// The paper's AccessLogType (Data definition 3).
    fn access_log_type() -> (RecordType, TypeRegistry) {
        let ty = RecordTypeBuilder::closed()
            .field("ip", Datatype::Primitive(PrimitiveType::String))
            .field("time", Datatype::Primitive(PrimitiveType::String))
            .field("user", Datatype::Primitive(PrimitiveType::String))
            .field("verb", Datatype::Primitive(PrimitiveType::String))
            .field("path", Datatype::Primitive(PrimitiveType::String))
            .field("stat", Datatype::Primitive(PrimitiveType::Int32))
            .field("size", Datatype::Primitive(PrimitiveType::Int32))
            .build();
        let rt = ty.as_record().unwrap().clone();
        (rt, TypeRegistry::new())
    }

    /// Figure 3's CSV content, verbatim.
    const FIG3: &str = "\
12.34.56.78|2013-12-22T12:13:32-0800|Nicholas|GET|/|200|2279
12.34.56.78|2013-12-22T12:13:33-0800|Nicholas|GET|/list|200|5299
";

    #[test]
    fn parses_figure3_weblog() {
        let (rt, reg) = access_log_type();
        let recs = parse_delimited(FIG3, '|', &rt, &reg).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].field("user"), Value::string("Nicholas"));
        assert_eq!(recs[0].field("stat"), Value::Int32(200));
        assert_eq!(recs[1].field("path"), Value::string("/list"));
        assert_eq!(recs[1].field("size"), Value::Int32(5299));
    }

    #[test]
    fn field_count_mismatch_is_reported() {
        let (rt, reg) = access_log_type();
        let err = parse_delimited("a|b|c", '|', &rt, &reg).unwrap_err();
        assert!(matches!(err, ExternalError::Config(_)), "{err}");
    }

    #[test]
    fn typed_fields_parse() {
        let ty = RecordTypeBuilder::closed()
            .field("id", Datatype::Primitive(PrimitiveType::Int64))
            .field("when", Datatype::Primitive(PrimitiveType::DateTime))
            .field("score", Datatype::Primitive(PrimitiveType::Double))
            .optional_field("note", Datatype::Primitive(PrimitiveType::String))
            .build();
        let rt = ty.as_record().unwrap().clone();
        let reg = TypeRegistry::new();
        let recs = parse_delimited(
            "7,2014-01-01T00:00:00,3.5,\n8,2014-01-02T10:00:00,1.25,hi",
            ',',
            &rt,
            &reg,
        )
        .unwrap();
        assert_eq!(recs[0].field("id"), Value::Int64(7));
        assert!(matches!(recs[0].field("when"), Value::DateTime(_)));
        assert_eq!(recs[0].field("note"), Value::Null); // empty optional
        assert_eq!(recs[1].field("note"), Value::string("hi"));
    }

    #[test]
    fn localfs_roundtrip() {
        let dir = tempfile::TempDir::new().unwrap();
        let path = dir.path().join("log.csv");
        std::fs::write(&path, FIG3).unwrap();
        let (rt, reg) = access_log_type();
        let props = vec![
            ("path".to_string(), format!("localhost://{}", path.display())),
            ("format".to_string(), "delimited-text".to_string()),
            ("delimiter".to_string(), "|".to_string()),
        ];
        let recs = read_external("localfs", &props, &rt, &reg).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn adm_format_files() {
        let dir = tempfile::TempDir::new().unwrap();
        let path = dir.path().join("data.adm");
        std::fs::write(&path, "{ \"a\": 1 }\n{ \"a\": 2 }").unwrap();
        let (rt, reg) = access_log_type();
        let props = vec![
            ("path".to_string(), path.display().to_string()),
            ("format".to_string(), "adm".to_string()),
        ];
        let recs = read_external("localfs", &props, &rt, &reg).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].field("a"), Value::Int64(2));
    }

    #[test]
    fn dfs_reads_part_files_in_order() {
        let dir = tempfile::TempDir::new().unwrap();
        std::fs::write(dir.path().join("part-00001"), "{ \"a\": 2 }").unwrap();
        std::fs::write(dir.path().join("part-00000"), "{ \"a\": 1 }").unwrap();
        std::fs::write(dir.path().join("ignored.txt"), "junk").unwrap();
        let (rt, reg) = access_log_type();
        let props = vec![
            ("path".to_string(), format!("hdfs://{}", dir.path().display())),
            ("format".to_string(), "adm".to_string()),
        ];
        let recs = read_external("dfs", &props, &rt, &reg).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].field("a"), Value::Int64(1));
    }

    #[test]
    fn unknown_adaptor_rejected() {
        let (rt, reg) = access_log_type();
        assert!(read_external("s3", &[], &rt, &reg).is_err());
    }
}
