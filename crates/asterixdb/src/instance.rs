//! The AsterixDB instance: the Cluster Controller role of Figure 1 —
//! receives AQL statements, compiles them through Algebricks, runs Hyracks
//! jobs over the node partitions, and manages DDL, DML, feeds, and
//! recovery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use asterix_adm::functions::FunctionContext;
use asterix_adm::types::{Datatype, FieldType, RecordType};
use asterix_adm::Value;
use asterix_algebricks::jobgen;
use asterix_algebricks::metadata::MetadataProvider;
use asterix_algebricks::plan::LogicalOp;
use asterix_algebricks::rules::{optimize, OptimizerOptions};
use asterix_aql::ast::{Expr, IndexTypeAst, Statement, TypeExpr};
use asterix_aql::normalize::normalize_query;
use asterix_aql::parser::parse_statements_spanned;
use asterix_aql::translate::Translator;
use asterix_feeds::{socket_adaptor, ComputeFn, IngestionPipeline, SocketEndpoint};
use asterix_metadata::{
    Catalog, DatasetKind, DatasetMeta, FeedMeta, FunctionMeta, IndexKindMeta, IndexMeta,
    ACTIVE_JOBS_DATASET, METRICS_DATASET,
};
use asterix_obs::{log_event, now_us, Gauge, MetricsRegistry, Sampler, Span, TraceContext};
use asterix_storage::BufferCache;
use asterix_txn::wal::{Durability, LogManager};
use asterix_txn::{recover, LockManager, RecoveryTarget};
use parking_lot::{Mutex, RwLock};

use crate::cluster::ClusterConfig;
use crate::dataset::{DatasetRuntime, SecondaryPartition};
use crate::error::{AsterixError, Result};
use crate::profile::QueryProfile;
use crate::provider::{InstanceProvider, SessionCatalog, Shared};
use crate::session::Session;

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// DDL / session statement completed.
    Ok,
    /// DML completed, affecting this many records.
    Count(usize),
    /// Query rows.
    Rows(Vec<Value>),
}

impl StatementResult {
    /// Rows of a query result (empty for non-queries).
    pub fn rows(&self) -> &[Value] {
        match self {
            StatementResult::Rows(r) => r,
            _ => &[],
        }
    }

    pub fn count(&self) -> usize {
        match self {
            StatementResult::Count(n) => *n,
            StatementResult::Rows(r) => r.len(),
            StatementResult::Ok => 0,
        }
    }
}

struct FeedRuntime {
    endpoint: SocketEndpoint,
    pipelines: HashMap<String, IngestionPipeline>, // by target dataset
}

/// A running AsterixDB instance.
pub struct Instance {
    cfg: ClusterConfig,
    shared: Arc<Shared>,
    locks: Arc<LockManager>,
    wals: Vec<Arc<LogManager>>,
    next_dataset_id: AtomicU32,
    by_id: RwLock<HashMap<u32, Arc<DatasetRuntime>>>,
    cache: Arc<BufferCache>,
    /// Exchange-layer counters accumulated across every query this
    /// instance runs (frames/tuples sent, backpressure stalls).
    exchange_stats: Arc<asterix_hyracks::ExchangeStats>,
    /// Runtime-join-filter counters accumulated across every query
    /// (filters published, probe tuples checked/pruned).
    filter_stats: asterix_hyracks::FilterStats,
    /// The unified stats registry: exchange counters, per-shard cache
    /// hit/miss, per-node WAL appends/forces, and per-index LSM
    /// maintenance metrics, all adopted under stable names.
    metrics: Arc<MetricsRegistry>,
    /// The built-in session behind the legacy session-less API
    /// (`execute`/`query`/...). Callers that need isolation — the network
    /// front end, concurrent in-process threads — create their own with
    /// [`Instance::new_session`] and use the `*_in` entry points.
    default_session: Session,
    /// Live count of sessions created by [`Instance::new_session`]
    /// (registered as `sessions.active`; the built-in session is excluded).
    sessions_active: Gauge,
    /// Serializes appends to the DDL replay log so a statement and its
    /// `use dataverse` context record land adjacently.
    ddl_append: Mutex<()>,
    feeds: Mutex<HashMap<String, FeedRuntime>>,
    /// Optimizer switches (Table 3's no-index runs, limit-pushdown
    /// ablation).
    pub optimizer_options: RwLock<OptimizerOptions>,
    /// The workload manager: admission control, per-query memory grants,
    /// and cooperative cancellation (DESIGN.md "Workload management").
    rm: Arc<asterix_rm::ResourceManager>,
    /// Columnar-storage counters shared by every dataset's primary trees
    /// (components built, columns projected, bytes skipped, spilled rows).
    columnar_stats: Arc<asterix_storage::ColumnarStats>,
    /// Continuous metrics sampler (running when the config sets
    /// `metrics_sample_interval`); stopped on drop.
    sampler: Mutex<Option<Sampler>>,
    /// When true, DDL is not persisted (used internally during replay).
    replaying: std::sync::atomic::AtomicBool,
    /// LRU cache of optimized parameterized plans, keyed by normalized
    /// statement shape × session/options state (DESIGN.md "Plan cache &
    /// prepared queries").
    plan_cache: crate::plancache::PlanCache,
}

/// Frames the continuous sampler retains (at a 1 s cadence, 10 minutes of
/// registry deltas).
const SAMPLER_RING_CAPACITY: usize = 600;

/// Per-query execution options for [`Instance::query_with`].
#[derive(Debug, Clone, Default)]
pub struct QueryOpts {
    /// Cancel the query if it has not finished within this duration
    /// (measured from admission, including any queue wait).
    pub deadline: Option<Duration>,
}

/// A compiled, runnable query plus everything the callers report: the
/// optimized plan (for EXPLAIN / profiles), the compile-side lifecycle
/// spans, and how the plan cache was involved.
struct CompiledStatement {
    job: jobgen::CompiledQuery,
    plan: Arc<LogicalOp>,
    /// Compile-phase spans in order (everything between parse and execute):
    /// `[plan_cache]` on a hit, `[translate, optimize, jobgen, plan_cache]`
    /// on a miss, `[translate, optimize, jobgen]` when the cache is off.
    phases: Vec<asterix_obs::SpanRecord>,
    /// `Some(true)` = cache hit, `Some(false)` = miss, `None` = cache
    /// bypassed (`disable_plan_cache`).
    cache_hit: Option<bool>,
}

/// Build-side runtime-filter factory: a Bloom filter over the join-key
/// hashes (the same structure storage uses for LSM point lookups), sized
/// for ~1% false positives. False positives only cost shipping a tuple the
/// join would drop anyway; there are no false negatives, so probe-side
/// pruning never changes results.
fn bloom_filter_factory() -> asterix_hyracks::FilterFactory {
    Arc::new(|hashes: &[u64]| {
        let mut bloom = asterix_storage::bloom::BloomFilter::with_capacity(hashes.len(), 0.01);
        for h in hashes {
            bloom.insert(&h.to_le_bytes());
        }
        Arc::new(move |h: u64| bloom.may_contain(&h.to_le_bytes())) as asterix_hyracks::KeyTest
    })
}

impl Instance {
    /// Open (or create) an instance rooted at the config's base dir,
    /// replaying persisted DDL and running WAL crash recovery.
    pub fn open(cfg: ClusterConfig) -> Result<Arc<Instance>> {
        std::fs::create_dir_all(&cfg.base_dir)?;
        let mut wals = Vec::with_capacity(cfg.nodes);
        for n in 0..cfg.nodes {
            std::fs::create_dir_all(cfg.node_dir(n))?;
            let durability = if cfg.fsync_commits { Durability::Fsync } else { Durability::Buffer };
            wals.push(Arc::new(LogManager::open(&cfg.node_log_path(n), durability)?));
        }
        let shared = Arc::new(Shared {
            catalog: RwLock::new(Catalog::new()),
            datasets: RwLock::new(HashMap::new()),
            external_cache: RwLock::new(HashMap::new()),
            partitions: cfg.partitions(),
            partitions_per_node: cfg.partitions_per_node.max(1),
            system_datasets: RwLock::new(HashMap::new()),
            epoch: std::sync::atomic::AtomicU64::new(0),
        });
        let instance = Arc::new(Instance {
            cache: BufferCache::with_shards(cfg.buffer_cache_pages, cfg.cache_shards),
            exchange_stats: Arc::new(asterix_hyracks::ExchangeStats::new()),
            filter_stats: asterix_hyracks::FilterStats::default(),
            columnar_stats: Arc::new(asterix_storage::ColumnarStats::default()),
            metrics: Arc::new(MetricsRegistry::new()),
            locks: LockManager::new(Duration::from_secs(10)),
            wals,
            next_dataset_id: AtomicU32::new(1),
            by_id: RwLock::new(HashMap::new()),
            shared,
            default_session: Session::new(None),
            sessions_active: Gauge::new(),
            ddl_append: Mutex::new(()),
            feeds: Mutex::new(HashMap::new()),
            optimizer_options: RwLock::new(OptimizerOptions {
                enable_runtime_filters: !cfg.disable_runtime_filters,
                ..Default::default()
            }),
            rm: asterix_rm::ResourceManager::new(asterix_rm::RmConfig {
                max_concurrent: cfg.max_concurrent_queries,
                max_queued: cfg.max_queued_queries,
                queue_timeout: cfg.admission_timeout,
                mem_pool_bytes: cfg.query_mem_pool_bytes,
                per_query_mem_bytes: cfg.per_query_mem_bytes,
                ..Default::default()
            }),
            sampler: Mutex::new(None),
            replaying: std::sync::atomic::AtomicBool::new(false),
            plan_cache: crate::plancache::PlanCache::new(if cfg.disable_plan_cache {
                0
            } else {
                cfg.plan_cache_capacity
            }),
            cfg,
        });
        // Adopt every subsystem's intrinsic counters under stable names so
        // one snapshot covers the whole instance.
        instance.exchange_stats.register_into(&instance.metrics, "exchange");
        instance.filter_stats.register_into(&instance.metrics, "filters");
        instance.columnar_stats.register_into(&instance.metrics, "storage.columnar");
        instance.cache.register_into(&instance.metrics, "cache");
        instance.rm.stats().register_into(&instance.metrics, "rm");
        instance.plan_cache.stats.register_into(&instance.metrics);
        instance.metrics.register_gauge("sessions.active", &instance.sessions_active);
        for (n, wal) in instance.wals.iter().enumerate() {
            wal.register_into(&instance.metrics, &format!("wal.node{n}"));
        }
        // Live system views: ordinary AQL over `Metadata.ActiveJobs` /
        // `Metadata.Metrics` observes the instance as of the scan.
        let rm = Arc::clone(&instance.rm);
        instance.shared.register_system_dataset(
            ACTIVE_JOBS_DATASET,
            Arc::new(move || crate::system::active_jobs_records(&rm.list_jobs())),
        );
        let metrics = Arc::clone(&instance.metrics);
        instance.shared.register_system_dataset(
            METRICS_DATASET,
            Arc::new(move || crate::system::metrics_records(&metrics.snapshot())),
        );
        if let Some(interval) = instance.cfg.metrics_sample_interval {
            *instance.sampler.lock() = Some(Sampler::start(
                Arc::clone(&instance.metrics),
                interval,
                SAMPLER_RING_CAPACITY,
            ));
        }
        instance.replay_ddl()?;
        instance.recover_from_wal()?;
        Ok(instance)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Executor settings derived from the cluster config (partition count
    /// is set per query by the compiler).
    fn executor_config(&self) -> asterix_hyracks::ExecutorConfig {
        asterix_hyracks::ExecutorConfig {
            frames_in_flight: self.cfg.frames_in_flight,
            disable_fusion: self.cfg.disable_fusion,
            disable_vectorization: self.cfg.disable_vectorization,
            disable_runtime_filters: self.cfg.disable_runtime_filters,
            filter_factory: Some(bloom_filter_factory()),
            filter_stats: self.filter_stats.clone(),
            ..Default::default()
        }
    }

    /// Cumulative runtime-join-filter counters across every job this
    /// instance ran (a view over the registry's `filters.*` metrics).
    pub fn filter_stats(&self) -> &asterix_hyracks::FilterStats {
        &self.filter_stats
    }

    /// Cumulative exchange counters across every job this instance ran.
    /// A thin view over the registry's `exchange.*` metrics.
    pub fn exchange_stats(&self) -> &asterix_hyracks::ExchangeStats {
        &self.exchange_stats
    }

    /// Buffer-cache hit/miss counters and hit rate, aggregated over the
    /// cache's shards (a view over the registry's `cache.*` metrics).
    pub fn cache_stats(&self) -> (u64, u64, f64) {
        let (hits, misses) = self.cache.stats();
        (hits, misses, self.cache.hit_rate())
    }

    /// Per-shard `(hits, misses, hit_rate)` of the buffer cache, in shard
    /// order.
    pub fn per_shard_cache_stats(&self) -> Vec<(u64, u64, f64)> {
        self.cache
            .per_shard_stats()
            .into_iter()
            .map(|(h, m)| {
                let total = h + m;
                let rate = if total == 0 { 0.0 } else { h as f64 / total as f64 };
                (h, m, rate)
            })
            .collect()
    }

    /// The unified metrics registry for this instance.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Columnar-storage counters (shared across every dataset).
    pub fn columnar_stats(&self) -> &asterix_storage::ColumnarStats {
        &self.columnar_stats
    }

    /// Schema-versioned JSON snapshot of every registered metric.
    pub fn metrics_json(&self) -> String {
        format!("{{\"schema_version\":1,\"metrics\":{}}}", self.metrics.to_json())
    }

    /// Point-in-time view of the whole instance: the workload manager's
    /// jobs table (with live tuple progress) plus a full metrics snapshot.
    /// The same data backs the queryable `Metadata.ActiveJobs` and
    /// `Metadata.Metrics` pseudo-datasets.
    pub fn system_snapshot(&self) -> crate::system::SystemSnapshot {
        crate::system::SystemSnapshot {
            ts_us: now_us(),
            jobs: self.rm.list_jobs(),
            metrics: self.metrics.snapshot(),
        }
    }

    /// Prometheus text exposition of every registered metric.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics.to_prometheus()
    }

    /// The continuous sampler's retained per-interval registry deltas as a
    /// JSON array (empty when `metrics_sample_interval` is unset).
    pub fn metrics_timeseries_json(&self) -> String {
        self.sampler.lock().as_ref().map_or_else(|| "[]".to_string(), Sampler::to_json)
    }

    /// The shared catalog/dataset state (for embedding scenarios that build
    /// their own providers, e.g. differential tests running the interpreter
    /// against live storage).
    pub fn shared_state(&self) -> Arc<crate::provider::Shared> {
        Arc::clone(&self.shared)
    }

    fn replay_ddl(&self) -> Result<()> {
        let path = self.cfg.ddl_log_path();
        if !path.exists() {
            return Ok(());
        }
        let content = std::fs::read_to_string(&path)?;
        self.replaying.store(true, Ordering::SeqCst);
        let result = (|| -> Result<()> {
            for stmt_src in content.split('\u{1e}') {
                let stmt_src = stmt_src.trim();
                if stmt_src.is_empty() {
                    continue;
                }
                self.execute(stmt_src)?;
            }
            Ok(())
        })();
        self.replaying.store(false, Ordering::SeqCst);
        result
    }

    /// Persist a dataverse-scoped DDL statement: the record is prefixed
    /// with the issuing session's `use dataverse` so replay re-creates the
    /// object in the right namespace even when statements from different
    /// sessions (different current dataverses) interleave in the log.
    fn persist_ddl(&self, sess: &Session, source: &str) -> Result<()> {
        let dv = sess.current_dataverse();
        self.persist_ddl_records(&[&format!("use dataverse {dv}"), source])
    }

    /// Persist a dataverse-independent statement (`create/drop dataverse`,
    /// `use dataverse`) verbatim.
    fn persist_ddl_absolute(&self, source: &str) -> Result<()> {
        self.persist_ddl_records(&[source])
    }

    fn persist_ddl_records(&self, records: &[&str]) -> Result<()> {
        if self.replaying.load(Ordering::SeqCst) {
            return Ok(());
        }
        use std::io::Write;
        // One writer at a time so a statement and its session-context
        // record land adjacently in the log.
        let _guard = self.ddl_append.lock();
        let mut f =
            std::fs::OpenOptions::new().create(true).append(true).open(self.cfg.ddl_log_path())?;
        for source in records {
            // Record-separator-delimited statements (statements may contain
            // semicolons inside string literals).
            writeln!(f, "{source}\u{1e}")?;
        }
        f.sync_data()?;
        Ok(())
    }

    fn recover_from_wal(&self) -> Result<()> {
        struct Target<'a> {
            by_id: &'a HashMap<u32, Arc<DatasetRuntime>>,
        }
        impl RecoveryTarget for Target<'_> {
            fn replay_insert(
                &mut self,
                dataset: u32,
                index: u32,
                key: &[u8],
                value: &[u8],
            ) -> asterix_txn::Result<()> {
                if let Some(ds) = self.by_id.get(&dataset) {
                    ds.replay(index, key, value, false).map_err(|e| {
                        asterix_txn::TxnError::Corrupt(format!("replay failed: {e}"))
                    })?;
                }
                Ok(())
            }

            fn replay_delete(
                &mut self,
                dataset: u32,
                index: u32,
                key: &[u8],
                value: &[u8],
            ) -> asterix_txn::Result<()> {
                if let Some(ds) = self.by_id.get(&dataset) {
                    ds.replay(index, key, value, true).map_err(|e| {
                        asterix_txn::TxnError::Corrupt(format!("replay failed: {e}"))
                    })?;
                }
                Ok(())
            }
        }
        let by_id = self.by_id.read().clone();
        let mut target = Target { by_id: &by_id };
        for n in 0..self.cfg.nodes {
            recover(&self.cfg.node_log_path(n), &mut target)?;
        }
        Ok(())
    }

    /// Checkpoint: flush every index and truncate the logs.
    pub fn checkpoint(&self) -> Result<()> {
        for ds in self.shared.datasets.read().values() {
            ds.flush_all()?;
        }
        for wal in &self.wals {
            wal.truncate()?;
        }
        Ok(())
    }

    fn provider(&self) -> Arc<dyn MetadataProvider> {
        Arc::new(InstanceProvider { shared: Arc::clone(&self.shared) })
    }

    fn session_catalog(&self, sess: &Session) -> SessionCatalog {
        SessionCatalog {
            shared: Arc::clone(&self.shared),
            current_dataverse: sess.current_dataverse(),
        }
    }

    fn fn_ctx(&self, sess: &Session) -> FunctionContext {
        let (simfunction, simthreshold) = sess.similarity();
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        FunctionContext { now_millis: now, simfunction, simthreshold }
    }

    /// Create a fresh session (current dataverse `Metadata`, default
    /// similarity settings). Statements run through the `*_in` entry points
    /// with this session see their own `use dataverse` / `set` state,
    /// isolated from every other session — one session per client
    /// connection or worker thread is the intended shape.
    pub fn new_session(&self) -> Session {
        Session::new(Some(self.sessions_active.clone()))
    }

    /// Live count of sessions created by [`Instance::new_session`] and not
    /// yet dropped (the `sessions.active` gauge).
    pub fn active_sessions(&self) -> i64 {
        self.sessions_active.get()
    }

    /// Execute a string of AQL statements, returning one result per
    /// statement (the Asterix Client Interface of Figure 4). Runs in the
    /// instance's built-in session; see [`Instance::execute_in`].
    pub fn execute(&self, aql: &str) -> Result<Vec<StatementResult>> {
        self.execute_in(&self.default_session, aql)
    }

    /// [`Instance::execute`] in an explicit session: `use dataverse` and
    /// `set` statements mutate `sess` and nothing else.
    pub fn execute_in(&self, sess: &Session, aql: &str) -> Result<Vec<StatementResult>> {
        let statements = parse_statements_spanned(aql)?;
        let mut out = Vec::with_capacity(statements.len());
        for (stmt, source) in statements {
            out.push(self.execute_statement(sess, stmt, &source)?);
        }
        Ok(out)
    }

    /// Execute a single query and return its rows (convenience).
    pub fn query(&self, aql: &str) -> Result<Vec<Value>> {
        self.query_in(&self.default_session, aql)
    }

    /// [`Instance::query`] in an explicit session.
    pub fn query_in(&self, sess: &Session, aql: &str) -> Result<Vec<Value>> {
        let results = self.execute_in(sess, aql)?;
        for r in results.into_iter().rev() {
            if let StatementResult::Rows(rows) = r {
                return Ok(rows);
            }
        }
        Ok(Vec::new())
    }

    /// Compile a query and return (optimized logical plan, Hyracks job
    /// description) — the EXPLAIN path used to reproduce Figure 6.
    pub fn explain(&self, aql: &str) -> Result<(String, String)> {
        let statements = parse_statements_spanned(aql)?;
        for (stmt, _) in statements {
            if let Statement::Query(e) = stmt {
                let options = self.optimizer_options.read().clone();
                let compiled =
                    self.compile_query(&self.default_session, &e, None, &options, None)?;
                return Ok((compiled.plan.pretty(), compiled.job.describe()));
            }
        }
        Err(AsterixError::Execution("no query statement to explain".into()))
    }

    /// Execute the (single) query in `aql` with full profiling: lifecycle
    /// spans for parse → translate → optimize → jobgen → execute, plus a
    /// per-operator runtime profile of the Hyracks job whose operator ids
    /// map back to the plan nodes the compiler emitted.
    pub fn profile(&self, aql: &str) -> Result<QueryProfile> {
        let parse_span = Span::start("parse");
        let statements = parse_statements_spanned(aql)?;
        let parse = parse_span.finish();
        for (stmt, _) in statements {
            if let Statement::Query(e) = stmt {
                return self.profile_query(&self.default_session, &e, parse);
            }
        }
        Err(AsterixError::Execution("no query statement to profile".into()))
    }

    /// The EXPLAIN pair of [`Instance::explain`], but produced from a real
    /// profiled run: the job description carries each operator's observed
    /// tuple counts and busy time.
    pub fn explain_profiled(&self, aql: &str) -> Result<(String, String)> {
        let p = self.profile(aql)?;
        Ok((p.plan, p.job))
    }

    fn profile_query(
        &self,
        sess: &Session,
        e: &Expr,
        parse: asterix_obs::SpanRecord,
    ) -> Result<QueryProfile> {
        // Profiled queries run under a fresh trace: a root `query` span
        // with the queue wait, compile phases, and per-thread execution
        // spans nested beneath it.
        let trace = TraceContext::new_trace(self.cfg.trace_capacity);
        let root = trace.span("query");
        let root_ctx = root.context();
        let queue_span = root_ctx.span("rm.queue_wait");
        let ticket = self.rm.begin("profile", None)?;
        queue_span.finish();
        ticket.set_trace_id(trace.trace_id());
        let res = self.profile_admitted_query(sess, e, None, Some(parse), &ticket, &root_ctx);
        root.finish();
        let res = res.map(|mut p| {
            p.trace_id = trace.trace_id();
            p.trace = trace.sink().map(|s| s.events()).unwrap_or_default();
            p
        });
        self.note_cancelled(&res);
        res
    }

    fn profile_admitted_query(
        &self,
        sess: &Session,
        e: &Expr,
        prepared: Option<(&str, &[Value])>,
        parse: Option<asterix_obs::SpanRecord>,
        ticket: &asterix_rm::QueryTicket,
        trace: &TraceContext,
    ) -> Result<QueryProfile> {
        let mut phases = Vec::new();
        if let Some(p) = parse {
            trace.record_span(&p);
            phases.push(p);
        }
        let mut options = self.optimizer_options.read().clone();
        options.query_mem_budget = Some(ticket.mem_granted());
        let compiled = self.compile_query(sess, e, prepared, &options, Some(trace))?;
        phases.extend(compiled.phases.iter().cloned());

        let mut cfg = self.executor_config();
        cfg.cancel = Some(ticket.token().clone());
        cfg.progress = Some(ticket.progress());
        let execute_span = Span::start("execute");
        let exec_tspan = trace.span("execute");
        cfg.trace = exec_tspan.context();
        let (rows, operators) = compiled.job.run_profiled_with(&cfg, &self.exchange_stats)?;
        exec_tspan.finish();
        phases.push(execute_span.finish());

        let profile = QueryProfile {
            job: compiled.job.describe_profiled(&operators),
            plan: compiled.plan.pretty(),
            phases,
            rows,
            operators,
            // Filled in by `profile_query` once the root span closes.
            trace_id: 0,
            trace: Vec::new(),
        };
        log_event(
            "asterix.query",
            "profiled",
            &[
                ("rows", profile.rows.len().into()),
                ("operators", profile.operators.operators.len().into()),
                ("total_us", profile.total_us().into()),
                (
                    "execute_us",
                    profile
                        .phase("execute")
                        .map(|s| s.duration.as_micros() as u64)
                        .unwrap_or(0)
                        .into(),
                ),
                (
                    "plan_cache",
                    match compiled.cache_hit {
                        Some(true) => "hit",
                        Some(false) => "miss",
                        None => "off",
                    }
                    .into(),
                ),
            ],
        );
        Ok(profile)
    }

    /// The single compile path behind `query`, `profile`, `explain`, and
    /// the prepared-statement API: normalize the query (literals → `Param`
    /// slots), consult the plan cache, and on a miss run
    /// translate → optimize → jobgen on the normalized shape before
    /// publishing the optimized plan. A hit skips straight to job
    /// generation with this execution's parameter vector bound into the
    /// evaluation context.
    ///
    /// `prepared` short-circuits normalization for [`Instance::prepare`]d
    /// statements: `e` is already literal-stripped and the caller supplies
    /// the fingerprint and parameters.
    fn compile_query(
        &self,
        sess: &Session,
        e: &Expr,
        prepared: Option<(&str, &[Value])>,
        options: &OptimizerOptions,
        trace: Option<&TraceContext>,
    ) -> Result<CompiledStatement> {
        let disabled = self.cfg.disable_plan_cache;
        let (expr, fingerprint, params): (std::borrow::Cow<'_, Expr>, String, Vec<Value>) =
            match prepared {
                Some((fp, ps)) => (std::borrow::Cow::Borrowed(e), fp.to_string(), ps.to_vec()),
                None => {
                    if disabled {
                        // A/B bypass: the exact pre-cache chain — compile
                        // the original expression, constants inline.
                        return self.compile_fresh(sess, e, Vec::new(), options, trace);
                    }
                    let n = normalize_query(e);
                    (std::borrow::Cow::Owned(n.expr), n.fingerprint, n.params)
                }
            };
        if disabled {
            // Prepared statement with the cache disabled: recompile the
            // normalized shape on every execution, no cache traffic.
            return self.compile_fresh(sess, &expr, params, options, trace);
        }

        let key = {
            let s = sess.snapshot();
            crate::plancache::PlanKey {
                fingerprint,
                dataverse: s.dataverse,
                simfunction: s.simfunction,
                simthreshold: s.simthreshold,
                options: crate::plancache::options_key(options),
            }
        };
        // Epoch is read before compiling: if a DDL lands mid-compile, the
        // entry is stored under the older epoch and the next lookup
        // invalidates it — stale plans are never served.
        let epoch = self.shared.current_epoch();
        if let Some(cached) = self.plan_cache.lookup(&key, epoch) {
            let span = Span::start("plan_cache");
            let job = jobgen::compile_with_params(
                &cached.plan,
                self.provider(),
                self.fn_ctx(sess),
                options,
                params,
            )?;
            let rec = span.finish();
            self.plan_cache.stats.bind_us.record_duration(rec.duration);
            if let Some(t) = trace {
                t.with_label("hit").record_span(&rec);
            }
            return Ok(CompiledStatement {
                job,
                plan: cached.plan,
                phases: vec![rec],
                cache_hit: Some(true),
            });
        }
        let nparams = params.len();
        let mut out = self.compile_fresh(sess, &expr, params, options, trace)?;
        let span = Span::start("plan_cache");
        self.plan_cache.insert(
            key,
            crate::plancache::CachedPlan { plan: Arc::clone(&out.plan), epoch, nparams },
        );
        let rec = span.finish();
        if let Some(t) = trace {
            t.with_label("miss").record_span(&rec);
        }
        out.phases.push(rec);
        out.cache_hit = Some(false);
        Ok(out)
    }

    /// The full translate → optimize → jobgen chain, used for cache misses,
    /// the `disable_plan_cache` bypass, and prepared re-compiles. `params`
    /// fills the plan's `Param` slots at job generation (empty when `e`
    /// still carries inline literals).
    fn compile_fresh(
        &self,
        sess: &Session,
        e: &Expr,
        params: Vec<Value>,
        options: &OptimizerOptions,
        trace: Option<&TraceContext>,
    ) -> Result<CompiledStatement> {
        let catalog = self.session_catalog(sess);
        let mut tr = Translator::new(&catalog);
        {
            let (simfunction, simthreshold) = sess.similarity();
            tr.simfunction = simfunction;
            tr.simthreshold = simthreshold;
        }
        let translate_span = Span::start("translate");
        let plan = tr.translate_query(e)?;
        let translate = translate_span.finish();

        let provider = self.provider();
        let optimize_span = Span::start("optimize");
        let optimized = optimize(plan, &provider, &self.fn_ctx(sess), options);
        let optimize_rec = optimize_span.finish();

        let jobgen_span = Span::start("jobgen");
        let job =
            jobgen::compile_with_params(&optimized, provider, self.fn_ctx(sess), options, params)?;
        let jobgen_rec = jobgen_span.finish();

        if let Some(t) = trace {
            t.record_span(&translate);
            t.record_span(&optimize_rec);
            t.record_span(&jobgen_rec);
        }
        Ok(CompiledStatement {
            job,
            plan: Arc::new(optimized),
            phases: vec![translate, optimize_rec, jobgen_rec],
            cache_hit: None,
        })
    }

    fn execute_statement(
        &self,
        sess: &Session,
        stmt: Statement,
        source: &str,
    ) -> Result<StatementResult> {
        // Any statement that can change the catalog (DDL, feed wiring,
        // `use dataverse`) bumps the catalog epoch, invalidating every
        // cached plan. DML and queries leave plans valid; a bump on a
        // statement that then fails only costs an extra recompile.
        if !matches!(
            stmt,
            Statement::Query(_)
                | Statement::Insert { .. }
                | Statement::Delete { .. }
                | Statement::Load { .. }
                | Statement::Set { .. }
        ) {
            self.shared.bump_epoch();
        }
        match stmt {
            Statement::CreateDataverse { name, if_not_exists } => {
                let mut catalog = self.shared.catalog.write();
                match catalog.create_dataverse(&name) {
                    Ok(()) => {}
                    Err(_) if if_not_exists => return Ok(StatementResult::Ok),
                    Err(e) => return Err(e.into()),
                }
                drop(catalog);
                self.persist_ddl_absolute(source)?;
                Ok(StatementResult::Ok)
            }
            Statement::DropDataverse { name, if_exists } => {
                let dropped = {
                    let mut catalog = self.shared.catalog.write();
                    match catalog.drop_dataverse(&name) {
                        Ok(dv) => Some(dv),
                        Err(_) if if_exists => None,
                        Err(e) => return Err(e.into()),
                    }
                };
                if let Some(dv) = dropped {
                    // Drop the stored datasets of the dataverse, including
                    // their on-disk storage.
                    let mut datasets = self.shared.datasets.write();
                    let mut by_id = self.by_id.write();
                    for ds_meta in dv.datasets.values() {
                        if let Some(rt) = datasets.remove(&ds_meta.qualified()) {
                            by_id.retain(|_, v| !Arc::ptr_eq(v, &rt));
                            rt.destroy_storage();
                        }
                        self.shared.external_cache.write().remove(&ds_meta.qualified());
                    }
                    self.persist_ddl_absolute(source)?;
                }
                Ok(StatementResult::Ok)
            }
            Statement::UseDataverse(name) => {
                if self.shared.catalog.read().dataverse(&name).is_none() {
                    return Err(AsterixError::Catalog(format!("unknown dataverse {name}")));
                }
                sess.set_dataverse(name);
                self.persist_ddl_absolute(source)?;
                Ok(StatementResult::Ok)
            }
            Statement::CreateType { name, ty } => {
                let dv = sess.current_dataverse();
                let datatype = lower_type_expr(&ty);
                self.shared.catalog.write().create_type(&dv, &name, datatype)?;
                self.persist_ddl(sess, source)?;
                Ok(StatementResult::Ok)
            }
            Statement::DropType { name, if_exists } => {
                let dv = sess.current_dataverse();
                match self.shared.catalog.write().drop_type(&dv, &name) {
                    Ok(()) => {
                        self.persist_ddl(sess, source)?;
                        Ok(StatementResult::Ok)
                    }
                    Err(_) if if_exists => Ok(StatementResult::Ok),
                    Err(e) => Err(e.into()),
                }
            }
            Statement::CreateDataset { name, type_name, primary_key, autogenerated } => {
                let dv = sess.current_dataverse();
                let meta = DatasetMeta {
                    dataverse: dv.clone(),
                    name: name.clone(),
                    type_name,
                    primary_key,
                    autogenerated,
                    kind: DatasetKind::Internal,
                    indexes: vec![],
                };
                self.shared.catalog.write().create_dataset(meta.clone())?;
                self.materialize_dataset(meta)?;
                self.persist_ddl(sess, source)?;
                Ok(StatementResult::Ok)
            }
            Statement::CreateExternalDataset { name, type_name, adaptor, properties } => {
                let dv = sess.current_dataverse();
                let meta = DatasetMeta {
                    dataverse: dv,
                    name,
                    type_name,
                    primary_key: vec![],
                    autogenerated: false,
                    kind: DatasetKind::External { adaptor, properties },
                    indexes: vec![],
                };
                self.shared.catalog.write().create_dataset(meta)?;
                self.persist_ddl(sess, source)?;
                Ok(StatementResult::Ok)
            }
            Statement::DropDataset { name, if_exists } => {
                let dv = sess.current_dataverse();
                let (dataverse, ds_name) = split_name(&dv, &name);
                match self.shared.catalog.write().drop_dataset(&dataverse, &ds_name) {
                    Ok(meta) => {
                        let qualified = meta.qualified();
                        let mut datasets = self.shared.datasets.write();
                        if let Some(rt) = datasets.remove(&qualified) {
                            self.by_id.write().retain(|_, v| !Arc::ptr_eq(v, &rt));
                            rt.destroy_storage();
                        }
                        self.shared.external_cache.write().remove(&qualified);
                        self.persist_ddl(sess, source)?;
                        Ok(StatementResult::Ok)
                    }
                    Err(_) if if_exists => Ok(StatementResult::Ok),
                    Err(e) => Err(e.into()),
                }
            }
            Statement::CreateIndex { name, dataset, fields, index_type } => {
                let dv = sess.current_dataverse();
                let (dataverse, ds_name) = split_name(&dv, &dataset);
                let kind = match index_type {
                    IndexTypeAst::BTree => IndexKindMeta::BTree,
                    IndexTypeAst::RTree => IndexKindMeta::RTree,
                    IndexTypeAst::Keyword => IndexKindMeta::Keyword,
                    IndexTypeAst::NGram(k) => IndexKindMeta::NGram(k),
                };
                let ix = IndexMeta { name: name.clone(), fields, kind };
                self.shared.catalog.write().add_index(&dataverse, &ds_name, ix.clone())?;
                let qualified = format!("{dataverse}.{ds_name}");
                if let Some(rt) = self.shared.dataset(&qualified) {
                    rt.create_index(ix)?;
                    self.register_lsm_metrics(&rt);
                }
                self.persist_ddl(sess, source)?;
                Ok(StatementResult::Ok)
            }
            Statement::DropIndex { dataset, name, if_exists } => {
                let dv = sess.current_dataverse();
                let (dataverse, ds_name) = split_name(&dv, &dataset);
                match self.shared.catalog.write().drop_index(&dataverse, &ds_name, &name) {
                    Ok(()) => {
                        if let Some(rt) = self.shared.dataset(&format!("{dataverse}.{ds_name}")) {
                            rt.drop_index(&name)?;
                        }
                        self.persist_ddl(sess, source)?;
                        Ok(StatementResult::Ok)
                    }
                    Err(_) if if_exists => Ok(StatementResult::Ok),
                    Err(e) => Err(e.into()),
                }
            }
            Statement::CreateFeed { name, adaptor, properties } => {
                let dv = sess.current_dataverse();
                {
                    let mut catalog = self.shared.catalog.write();
                    let dataverse = catalog.dataverse_mut(&dv)?;
                    if dataverse.feeds.contains_key(&name) {
                        return Err(AsterixError::Catalog(format!("feed {name} already exists")));
                    }
                    dataverse.feeds.insert(
                        name.clone(),
                        FeedMeta { name, adaptor, properties, parent: None, connections: vec![] },
                    );
                }
                self.persist_ddl(sess, source)?;
                Ok(StatementResult::Ok)
            }
            Statement::CreateSecondaryFeed { name, parent } => {
                let dv = sess.current_dataverse();
                {
                    let mut catalog = self.shared.catalog.write();
                    let dataverse = catalog.dataverse_mut(&dv)?;
                    if !dataverse.feeds.contains_key(&parent) {
                        return Err(AsterixError::Catalog(format!("unknown parent feed {parent}")));
                    }
                    if dataverse.feeds.contains_key(&name) {
                        return Err(AsterixError::Catalog(format!("feed {name} already exists")));
                    }
                    dataverse.feeds.insert(
                        name.clone(),
                        FeedMeta {
                            name,
                            adaptor: "secondary".into(),
                            properties: vec![],
                            parent: Some(parent),
                            connections: vec![],
                        },
                    );
                }
                self.persist_ddl(sess, source)?;
                Ok(StatementResult::Ok)
            }
            Statement::ConnectFeed { feed, dataset, apply_function } => {
                self.connect_feed(sess, &feed, &dataset, apply_function.as_deref())?;
                Ok(StatementResult::Ok)
            }
            Statement::DisconnectFeed { feed, dataset } => {
                self.disconnect_feed(sess, &feed, &dataset)?;
                Ok(StatementResult::Ok)
            }
            Statement::CreateFunction { name, params, body: _ } => {
                let dv = sess.current_dataverse();
                {
                    let mut catalog = self.shared.catalog.write();
                    let dataverse = catalog.dataverse_mut(&dv)?;
                    dataverse.functions.insert(
                        name.clone(),
                        FunctionMeta {
                            name,
                            params,
                            // Store the whole statement; the catalog lookup
                            // re-parses it and extracts the body.
                            body_src: source.to_string(),
                        },
                    );
                }
                self.persist_ddl(sess, source)?;
                Ok(StatementResult::Ok)
            }
            Statement::DropFunction { name, if_exists } => {
                let dv = sess.current_dataverse();
                let mut catalog = self.shared.catalog.write();
                let dataverse = catalog.dataverse_mut(&dv)?;
                if dataverse.functions.remove(&name).is_none() && !if_exists {
                    return Err(AsterixError::Catalog(format!("unknown function {name}")));
                }
                drop(catalog);
                self.persist_ddl(sess, source)?;
                Ok(StatementResult::Ok)
            }
            Statement::Set { key, value } => {
                match key.as_str() {
                    "simfunction" => sess.set_simfunction(value),
                    "simthreshold" => sess.set_simthreshold(value),
                    _ => {
                        return Err(AsterixError::Execution(format!(
                            "unknown session parameter {key}"
                        )))
                    }
                }
                Ok(StatementResult::Ok)
            }
            Statement::Insert { dataset, expr } => {
                let n = self.run_insert(sess, &dataset, &expr)?;
                Ok(StatementResult::Count(n))
            }
            Statement::Delete { var, dataset, condition } => {
                let n = self.run_delete(sess, &var, &dataset, condition.as_ref())?;
                Ok(StatementResult::Count(n))
            }
            Statement::Load { dataset, adaptor, properties } => {
                let n = self.run_load(sess, &dataset, &adaptor, &properties)?;
                Ok(StatementResult::Count(n))
            }
            Statement::Query(e) => {
                let rows = self.run_query(sess, &e)?;
                Ok(StatementResult::Rows(rows))
            }
        }
    }

    fn materialize_dataset(&self, meta: DatasetMeta) -> Result<()> {
        let catalog = self.shared.catalog.read();
        let dv = catalog.dataverse(&meta.dataverse).ok_or_else(|| {
            AsterixError::Catalog(format!("unknown dataverse {}", meta.dataverse))
        })?;
        let datatype = Datatype::Named(meta.type_name.clone());
        let registry = dv.types.clone();
        drop(catalog);
        let id = self.next_dataset_id.fetch_add(1, Ordering::SeqCst);
        let rt = DatasetRuntime::open(
            id,
            meta.clone(),
            datatype,
            registry,
            &self.cfg,
            Arc::clone(&self.cache),
            Arc::clone(&self.locks),
            self.wals.clone(),
            Arc::clone(&self.columnar_stats),
        )?;
        self.register_lsm_metrics(&rt);
        self.shared.datasets.write().insert(meta.qualified(), Arc::clone(&rt));
        self.by_id.write().insert(id, rt);
        Ok(())
    }

    /// Adopt the dataset's per-partition LSM maintenance metrics (primary
    /// tree plus any LSM-backed secondaries) into the registry under
    /// `lsm.{dataverse}.{dataset}[.{index}].p{partition}.*`.
    fn register_lsm_metrics(&self, rt: &DatasetRuntime) {
        let base = format!("lsm.{}", rt.meta.qualified());
        for (p, t) in rt.primary.iter().enumerate() {
            t.lsm().metrics().register_into(&self.metrics, &format!("{base}.p{p}"));
        }
        for ix in rt.secondaries.read().iter() {
            for (p, part) in ix.partitions.iter().enumerate() {
                let prefix = format!("{base}.{}.p{p}", ix.meta.name);
                match part {
                    SecondaryPartition::BTree(t) => {
                        t.lsm().metrics().register_into(&self.metrics, &prefix)
                    }
                    SecondaryPartition::Inverted(t) => {
                        t.lsm().metrics().register_into(&self.metrics, &prefix)
                    }
                    // The R-tree variant manages its own component
                    // lifecycle and is not LSM-metered yet.
                    SecondaryPartition::RTree(_) => {}
                }
            }
        }
    }

    fn run_query(&self, sess: &Session, e: &Expr) -> Result<Vec<Value>> {
        self.run_query_opts(sess, e, &QueryOpts::default())
    }

    fn run_query_opts(&self, sess: &Session, e: &Expr, opts: &QueryOpts) -> Result<Vec<Value>> {
        let ticket = self.rm.begin("query", opts.deadline)?;
        let res = self.run_admitted_query(sess, e, None, &ticket);
        self.note_cancelled(&res);
        res
    }

    /// Parse and normalize the (single) query in `aql` for repeated
    /// execution with [`Instance::execute_prepared`]: every literal is
    /// lifted into a parameter slot, so re-executions with different
    /// constants share one compiled-plan cache entry and skip
    /// parse → translate → optimize entirely.
    pub fn prepare(&self, aql: &str) -> Result<crate::plancache::PreparedQuery> {
        let statements = parse_statements_spanned(aql)?;
        for (stmt, _) in statements {
            if let Statement::Query(e) = stmt {
                let n = normalize_query(&e);
                return Ok(crate::plancache::PreparedQuery {
                    expr: Arc::new(n.expr),
                    fingerprint: n.fingerprint,
                    default_params: n.params,
                });
            }
        }
        Err(AsterixError::Execution("no query statement to prepare".into()))
    }

    /// Execute a prepared query with `params` bound into its slots, in slot
    /// order (pass [`PreparedQuery::default_params`] to run with the
    /// original literals). Admission, memory grants, and cancellation work
    /// exactly as for [`Instance::query`].
    ///
    /// [`PreparedQuery::default_params`]: crate::plancache::PreparedQuery::default_params
    pub fn execute_prepared(
        &self,
        prepared: &crate::plancache::PreparedQuery,
        params: &[Value],
    ) -> Result<Vec<Value>> {
        self.execute_prepared_in(&self.default_session, prepared, params)
    }

    /// [`Instance::execute_prepared`] in an explicit session. The session
    /// matters even for prepared statements: dataset names resolve (and the
    /// plan cache is keyed) against the session's current dataverse.
    pub fn execute_prepared_in(
        &self,
        sess: &Session,
        prepared: &crate::plancache::PreparedQuery,
        params: &[Value],
    ) -> Result<Vec<Value>> {
        if params.len() != prepared.param_count() {
            return Err(AsterixError::Execution(format!(
                "prepared query expects {} parameters, got {}",
                prepared.param_count(),
                params.len()
            )));
        }
        let ticket = self.rm.begin("query", None)?;
        let res = self.run_admitted_query(
            sess,
            &prepared.expr,
            Some((&prepared.fingerprint, params)),
            &ticket,
        );
        self.note_cancelled(&res);
        res
    }

    /// [`Instance::profile`] for a prepared query: the profile has no
    /// `parse` phase (parsing happened at prepare time) and its compile
    /// side is the cache lookup plus parameter bind on a hit.
    pub fn profile_prepared(
        &self,
        prepared: &crate::plancache::PreparedQuery,
        params: &[Value],
    ) -> Result<QueryProfile> {
        if params.len() != prepared.param_count() {
            return Err(AsterixError::Execution(format!(
                "prepared query expects {} parameters, got {}",
                prepared.param_count(),
                params.len()
            )));
        }
        let trace = TraceContext::new_trace(self.cfg.trace_capacity);
        let root = trace.span("query");
        let root_ctx = root.context();
        let queue_span = root_ctx.span("rm.queue_wait");
        let ticket = self.rm.begin("profile", None)?;
        queue_span.finish();
        ticket.set_trace_id(trace.trace_id());
        let res = self.profile_admitted_query(
            &self.default_session,
            &prepared.expr,
            Some((&prepared.fingerprint, params)),
            None,
            &ticket,
            &root_ctx,
        );
        root.finish();
        let res = res.map(|mut p| {
            p.trace_id = trace.trace_id();
            p.trace = trace.sink().map(|s| s.events()).unwrap_or_default();
            p
        });
        self.note_cancelled(&res);
        res
    }

    /// The compiled-plan cache (counters, length, manual `clear`).
    pub fn plan_cache(&self) -> &crate::plancache::PlanCache {
        &self.plan_cache
    }

    /// Execute a query under an admission ticket: working memory comes from
    /// the ticket's grant (divided across the plan's sorts/groups/joins)
    /// and the ticket's token makes every exchange a cancellation point.
    fn run_admitted_query(
        &self,
        sess: &Session,
        e: &Expr,
        prepared: Option<(&str, &[Value])>,
        ticket: &asterix_rm::QueryTicket,
    ) -> Result<Vec<Value>> {
        if ticket.token().is_cancelled() {
            return Err(AsterixError::Cancelled);
        }
        let mut options = self.optimizer_options.read().clone();
        options.query_mem_budget = Some(ticket.mem_granted());
        let compiled = self.compile_query(sess, e, prepared, &options, None)?;
        let mut cfg = self.executor_config();
        cfg.cancel = Some(ticket.token().clone());
        // Live tuple progress for `Metadata.ActiveJobs` / `list_jobs`.
        cfg.progress = Some(ticket.progress());
        let started = std::time::Instant::now();
        let rows = compiled.job.run_with(&cfg, &self.exchange_stats)?;
        log_event(
            "asterix.query",
            "query",
            &[
                ("rows", rows.len().into()),
                ("elapsed_us", (started.elapsed().as_micros() as u64).into()),
            ],
        );
        Ok(rows)
    }

    /// Record a cooperative cancellation in the workload manager's stats.
    /// Counted where the query actually unwinds (not in `cancel()`), so a
    /// cancel racing normal completion is never miscounted and deadline
    /// expiries are included.
    fn note_cancelled<T>(&self, res: &Result<T>) {
        if matches!(res, Err(AsterixError::Cancelled)) {
            self.rm.stats().cancelled.inc();
        }
    }

    /// Cooperatively cancel a queued or running query by the job id shown
    /// in [`Instance::list_jobs`]. The query unwinds at its next exchange
    /// boundary, releases its memory grant and admission slot, and removes
    /// any spill files. Returns false if the id is not live.
    pub fn cancel(&self, job_id: u64) -> bool {
        self.rm.cancel(job_id)
    }

    /// The workload manager's live jobs table: queued, running, and
    /// cancelling queries with their memory grants.
    pub fn list_jobs(&self) -> Vec<asterix_rm::JobInfo> {
        self.rm.list_jobs()
    }

    /// The workload manager itself (admission control, the memory pool,
    /// and `rm.*` stats).
    pub fn resource_manager(&self) -> &Arc<asterix_rm::ResourceManager> {
        &self.rm
    }

    /// Like [`Instance::query`], but with per-query options (deadline).
    pub fn query_with(&self, aql: &str, opts: &QueryOpts) -> Result<Vec<Value>> {
        let statements = parse_statements_spanned(aql)?;
        for (stmt, _) in statements {
            if let Statement::Query(e) = stmt {
                return self.run_query_opts(&self.default_session, &e, opts);
            }
        }
        Err(AsterixError::Execution("no query statement to run".into()))
    }

    /// Look up a stored dataset runtime by session-relative name.
    pub fn dataset(&self, name: &str) -> Result<Arc<DatasetRuntime>> {
        self.dataset_in(&self.default_session, name)
    }

    /// [`Instance::dataset`] resolved against an explicit session's
    /// current dataverse.
    pub fn dataset_in(&self, sess: &Session, name: &str) -> Result<Arc<DatasetRuntime>> {
        let dv = sess.current_dataverse();
        let qualified = self
            .shared
            .catalog
            .read()
            .resolve_dataset(&dv, name)
            .ok_or_else(|| AsterixError::Catalog(format!("cannot find dataset {name}")))?;
        self.shared
            .dataset(&qualified)
            .ok_or_else(|| AsterixError::Catalog(format!("{qualified} is not a stored dataset")))
    }

    fn run_insert(&self, sess: &Session, dataset: &str, expr: &Expr) -> Result<usize> {
        let ds = self.dataset_in(sess, dataset)?;
        let rows = self.run_query(sess, expr)?;
        let mut n = 0;
        for row in rows {
            // A collection-valued row inserts its elements (batch insert:
            // `insert into dataset DS ([r1, r2, ...])`, the Table 4
            // batching shape).
            match row.as_list() {
                Some(items) => {
                    for item in items {
                        ds.insert(item)?;
                        n += 1;
                    }
                }
                None => {
                    ds.insert(&row)?;
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    fn run_delete(
        &self,
        sess: &Session,
        var: &str,
        dataset: &str,
        condition: Option<&Expr>,
    ) -> Result<usize> {
        let ds = self.dataset_in(sess, dataset)?;
        let catalog = self.session_catalog(sess);
        let mut tr = Translator::new(&catalog);
        {
            let (simfunction, simthreshold) = sess.similarity();
            tr.simfunction = simfunction;
            tr.simthreshold = simthreshold;
        }
        let plan = tr.translate_delete(
            var,
            &ds.meta.qualified(),
            &ds.meta.primary_key.clone(),
            condition,
        )?;
        let ticket = self.rm.begin("delete", None)?;
        let provider = self.provider();
        let mut options = self.optimizer_options.read().clone();
        options.query_mem_budget = Some(ticket.mem_granted());
        let optimized = optimize(plan, &provider, &self.fn_ctx(sess), &options);
        let compiled = jobgen::compile(&optimized, provider, self.fn_ctx(sess), &options)?;
        let mut cfg = self.executor_config();
        cfg.cancel = Some(ticket.token().clone());
        let pk_rows = {
            let res = compiled.run_with(&cfg, &self.exchange_stats).map_err(AsterixError::from);
            self.note_cancelled(&res);
            res?
        };
        let mut n = 0;
        for pk_row in pk_rows {
            let pk = pk_row
                .as_list()
                .ok_or_else(|| AsterixError::Execution("bad delete pk row".into()))?;
            if ds.delete_by_pk(pk)? {
                n += 1;
            }
        }
        Ok(n)
    }

    fn run_load(
        &self,
        sess: &Session,
        dataset: &str,
        adaptor: &str,
        properties: &[(String, String)],
    ) -> Result<usize> {
        let ds = self.dataset_in(sess, dataset)?;
        let resolved = ds.registry.resolve(&ds.datatype)?;
        let rt = resolved
            .as_record()
            .ok_or_else(|| AsterixError::Catalog("dataset type must be a record".into()))?;
        let records = asterix_external::read_external(adaptor, properties, rt, &ds.registry)?;
        let n = records.len();
        for r in &records {
            ds.insert(r)?;
        }
        Ok(n)
    }

    // -- feeds -----------------------------------------------------------------

    fn connect_feed(
        &self,
        sess: &Session,
        feed: &str,
        dataset: &str,
        apply_function: Option<&str>,
    ) -> Result<()> {
        let ds = self.dataset_in(sess, dataset)?;
        let dv = sess.current_dataverse();
        {
            let mut catalog = self.shared.catalog.write();
            let dataverse = catalog.dataverse_mut(&dv)?;
            let meta = dataverse
                .feeds
                .get_mut(feed)
                .ok_or_else(|| AsterixError::Catalog(format!("unknown feed {feed}")))?;
            if !meta.connections.contains(&ds.meta.qualified()) {
                meta.connections.push(ds.meta.qualified());
            }
        }
        // Compute stage from `apply function f`.
        let compute: Option<ComputeFn> = match apply_function {
            None => None,
            Some(fname) => {
                let catalog = self.session_catalog(sess);
                let def = catalog
                    .shared
                    .catalog
                    .read()
                    .dataverse(&dv)
                    .and_then(|d| d.functions.get(fname).cloned())
                    .ok_or_else(|| AsterixError::Catalog(format!("unknown function {fname}")))?;
                let parsed = asterix_aql::parser::parse_statements(&def.body_src)?;
                let Some(Statement::CreateFunction { body, params, .. }) =
                    parsed.into_iter().next()
                else {
                    return Err(AsterixError::Catalog(format!(
                        "stored function {fname} is corrupt"
                    )));
                };
                if params.len() != 1 {
                    return Err(AsterixError::Execution(
                        "feed apply functions take exactly one parameter".into(),
                    ));
                }
                let mut tr = Translator::new(&catalog);
                let v = tr.fresh_var();
                let mut scope = asterix_aql::translate::Scope::new();
                scope.insert(params[0].clone(), v);
                let lowered = tr.translate_expr(&body, &scope)?;
                let provider = self.provider();
                let fn_ctx = self.fn_ctx(sess);
                let compute: ComputeFn = Arc::new(move |record: Value| {
                    let ctx = asterix_algebricks::expr::EvalCtx::new(
                        Arc::clone(&provider),
                        fn_ctx.clone(),
                    );
                    let mut bindings = std::collections::HashMap::new();
                    bindings.insert(v, record);
                    match asterix_algebricks::expr::eval(&lowered, &bindings, &ctx) {
                        Ok(out) if out.is_unknown() => Ok(None),
                        Ok(out) => Ok(Some(out)),
                        Err(e) => Err(asterix_feeds::FeedError::Adm(e)),
                    }
                });
                Some(compute)
            }
        };
        // Secondary feeds cascade from a parent pipeline's compute joint
        // rather than owning an adaptor (§2.4 / §4.5's Feed Joints).
        let parent = {
            let catalog = self.shared.catalog.read();
            catalog.dataverse(&dv).and_then(|d| d.feeds.get(feed)).and_then(|f| f.parent.clone())
        };
        let ds2 = Arc::clone(&ds);
        let store = Arc::new(move |v: Value| {
            ds2.insert(&v).map_err(|e| asterix_feeds::FeedError::Config(e.to_string()))
        });
        let mut feeds = self.feeds.lock();
        if let Some(parent_name) = parent {
            let Some(parent_rt) = feeds.get(&parent_name) else {
                return Err(AsterixError::Feed(format!(
                    "parent feed {parent_name} must be connected first"
                )));
            };
            let Some(parent_pipeline) = parent_rt.pipelines.values().next() else {
                return Err(AsterixError::Feed(format!(
                    "parent feed {parent_name} has no active pipeline"
                )));
            };
            let joint = Arc::clone(&parent_pipeline.compute_joint);
            let endpoint = parent_rt.endpoint.clone();
            let pipeline = asterix_feeds::secondary_feed(
                format!("{feed}->{dataset}"),
                &joint,
                compute,
                store,
                1024,
            );
            let runtime = feeds
                .entry(feed.to_string())
                .or_insert_with(|| FeedRuntime { endpoint, pipelines: HashMap::new() });
            runtime.pipelines.insert(ds.meta.qualified(), pipeline);
            return Ok(());
        }
        let runtime = feeds.entry(feed.to_string()).or_insert_with(|| {
            let (endpoint, _rx) = socket_adaptor(1024);
            FeedRuntime { endpoint, pipelines: HashMap::new() }
        });
        // Each connection gets its own intake channel fed from the shared
        // endpoint: simplest correct model is one endpoint per (feed,
        // dataset) pipeline; re-create the endpoint when this is the first
        // connection so pushes reach the new pipeline.
        let (endpoint, rx) = socket_adaptor(1024);
        runtime.endpoint = endpoint;
        let pipeline = IngestionPipeline::start(format!("{feed}->{dataset}"), rx, compute, store);
        runtime.pipelines.insert(ds.meta.qualified(), pipeline);
        Ok(())
    }

    fn disconnect_feed(&self, sess: &Session, feed: &str, dataset: &str) -> Result<()> {
        let ds = self.dataset_in(sess, dataset)?;
        let mut feeds = self.feeds.lock();
        let Some(runtime) = feeds.get_mut(feed) else {
            return Err(AsterixError::Feed(format!("feed {feed} is not connected")));
        };
        runtime.endpoint.close();
        if let Some(p) = runtime.pipelines.remove(&ds.meta.qualified()) {
            p.disconnect()?;
        }
        let dv = sess.current_dataverse();
        let mut catalog = self.shared.catalog.write();
        if let Ok(dataverse) = catalog.dataverse_mut(&dv) {
            if let Some(meta) = dataverse.feeds.get_mut(feed) {
                meta.connections.retain(|c| c != &ds.meta.qualified());
            }
        }
        Ok(())
    }

    /// The push endpoint of a connected feed (what a TCP client would see).
    pub fn feed_endpoint(&self, feed: &str) -> Option<SocketEndpoint> {
        self.feeds.lock().get(feed).map(|f| f.endpoint.clone())
    }

    /// Wait until a feed has stored at least `n` records (test/demo sync).
    /// Blocks on the pipelines' progress notifiers instead of sleep-polling
    /// the counters.
    pub fn feed_wait_stored(&self, feed: &str, n: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // Capture each pipeline's change sequence BEFORE summing the
            // counters: a store landing after the sum advances the
            // sequence, so the wait below returns immediately.
            let (stored, watch): (u64, Vec<_>) = {
                let feeds = self.feeds.lock();
                match feeds.get(feed) {
                    Some(f) => (
                        f.pipelines.values().map(|p| p.stats.stored.load(Ordering::Relaxed)).sum(),
                        f.pipelines
                            .values()
                            .map(|p| (Arc::clone(&p.progress), p.progress.current()))
                            .collect(),
                    ),
                    None => (0, Vec::new()),
                }
            };
            if stored >= n {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            // Wait on the first pipeline's notifier; cap the wait so
            // progress on sibling pipelines (or a feed connected after this
            // call) is observed within a bounded interval.
            let slice = (deadline - now).min(Duration::from_millis(250));
            match watch.first() {
                Some((progress, last)) => {
                    progress.wait_change(*last, slice);
                }
                None => std::thread::sleep(slice.min(Duration::from_millis(5))),
            }
        }
    }
}

fn split_name(default_dv: &str, name: &str) -> (String, String) {
    match name.split_once('.') {
        Some((dv, n)) => (dv.to_string(), n.to_string()),
        None => (default_dv.to_string(), name.to_string()),
    }
}

/// Lower a parsed type expression into an ADM Datatype.
fn lower_type_expr(t: &TypeExpr) -> Datatype {
    match t {
        TypeExpr::Named(n) => match asterix_adm::PrimitiveType::from_name(n) {
            Some(p) => Datatype::Primitive(p),
            None => Datatype::Named(n.clone()),
        },
        TypeExpr::Record { fields, open } => {
            let fs = fields
                .iter()
                .map(|(name, ty, optional)| FieldType {
                    name: name.clone(),
                    ty: lower_type_expr(ty),
                    optional: *optional,
                })
                .collect();
            Datatype::Record(Arc::new(RecordType { fields: fs, open: *open }))
        }
        TypeExpr::OrderedList(inner) => Datatype::OrderedList(Arc::new(lower_type_expr(inner))),
        TypeExpr::UnorderedList(inner) => Datatype::UnorderedList(Arc::new(lower_type_expr(inner))),
    }
}
